//! # rwalk-repro
//!
//! A workspace-level facade for the reproduction of *"A Deep Dive Into
//! Understanding The Random Walk-Based Temporal Graph Learning"* (IISWC
//! 2021). It re-exports every workspace crate under one roof so examples and
//! integration tests can reach the whole system through a single dependency.
//!
//! The pipeline (paper Fig. 1):
//!
//! 1. [`tgraph`] — temporal graph substrate (CSR `WGraph` analog).
//! 2. [`twalk`] — temporally-valid random walks (paper Algorithm 1).
//! 3. [`embed`] — word2vec skip-gram-with-negative-sampling embeddings.
//! 4. [`dataprep`] + [`nn`] — classifier data preparation and FNN
//!    training/testing for link prediction and node classification.
//!
//! Supporting substrates: [`par`] (work-stealing loops), [`kernels`]
//! (BFS/GCN/VGG contrast workloads), [`perfmodel`] (instruction-mix, cache
//! and GPU execution models), [`datasets`] (real-data loaders plus synthetic
//! stand-ins), and [`rwalk_core`] (the end-to-end pipeline API).
//!
//! # Examples
//!
//! ```
//! use rwalk_repro::prelude::*;
//!
//! let graph = tgraph::gen::preferential_attachment(200, 3, 7).build();
//! let hp = Hyperparams::paper_optimal();
//! let report = Pipeline::new(hp).run_link_prediction(&graph).unwrap();
//! assert!(report.metrics.accuracy > 0.5);
//! ```

pub use dataprep;
pub use datasets;
pub use embed;
pub use kernels;
pub use nn;
pub use par;
pub use perfmodel;
pub use rwalk_core;
pub use tgraph;
pub use twalk;

/// The paper's notation (Table I) mapped to this workspace's types.
///
/// | Paper symbol | Meaning | Here |
/// |---|---|---|
/// | `G(V, E)` | directed temporal network | [`tgraph::TemporalGraph`] |
/// | `G_t(V_t, E_t)` | snapshot at time `t` | [`tgraph::TemporalGraph::snapshot_until`] |
/// | `A`, `A_t` | adjacency matrices | [`kernels::normalized_adjacency`] (GCN) |
/// | `w(u, v)` | temporal walk from `u` to `v` | rows of [`twalk::WalkSet`] |
/// | `f` | base embedding method | [`embed::train`] (word2vec SGNS) |
/// | `d` | embedding dimensionality | [`rwalk_core::Hyperparams::dim`] |
/// | `Z` | `|V| × d` embedding matrix | [`embed::EmbeddingMatrix`] |
/// | `K` | walks per node | [`rwalk_core::Hyperparams::walks_per_node`] |
/// | `N` | walk length | [`rwalk_core::Hyperparams::walk_length`] |
/// | `Pr[v|u]` (Eq. 1) | softmax transition probability | [`twalk::TransitionSampler::Softmax`] |
pub mod notation {}

/// Convenience prelude with the most frequently used items.
pub mod prelude {
    pub use dataprep;
    pub use datasets;
    pub use embed;
    pub use kernels;
    pub use nn;
    pub use par;
    pub use perfmodel;
    pub use rwalk_core::{Backend, Hyperparams, Pipeline, TaskReport};
    pub use tgraph;
    pub use tgraph::TemporalGraph;
    pub use twalk;
}
