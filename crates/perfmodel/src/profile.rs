//! Instrumented kernel replicas.
//!
//! Each `profile_*` function re-executes a kernel's real control flow and
//! data-dependent access pattern while counting abstract operations
//! ([`crate::OpCounts`]) and feeding every memory access through the cache
//! simulator. The op *ratios* reproduce the paper's Fig. 9 and the cache /
//! irregularity numbers feed the Fig. 3 comparison.
//!
//! Costs of composite operations are fixed here once and used everywhere:
//! an `exp` counts as 8 flops, one RNG draw as 6 integer ops, a binary
//! search step as 1 load + 1 branch + 2 integer ops. Absolute totals are
//! therefore approximate, but identical conventions across kernels keep the
//! cross-kernel comparison meaningful.

// Indexed loops over parallel arrays are the intended idiom here.
#![allow(clippy::needless_range_loop)]

use tgraph::{NodeId, TemporalGraph};
use twalk::{TransitionSampler, WalkConfig, WalkRng, WalkSet};

use crate::{CacheHierarchy, OpCounts};

/// Flop cost assigned to one `exp` evaluation.
const EXP_FLOPS: u64 = 8;
/// `exp` also performs libm table lookups and range-reduction branches;
/// MICA counts those as memory/branch/other instructions.
const EXP_LOADS: u64 = 3;
const EXP_BRANCHES: u64 = 2;
const EXP_OTHER: u64 = 3;
/// Integer-op cost assigned to one RNG draw.
const RNG_INT_OPS: u64 = 6;

// Synthetic base addresses of the kernels' data structures, spaced far
// apart so streams never alias in the simulated caches.
const OFFSETS_BASE: u64 = 0x1_0000_0000;
const DSTS_BASE: u64 = 0x2_0000_0000;
const TIMES_BASE: u64 = 0x3_0000_0000;
const WALK_OUT_BASE: u64 = 0x4_0000_0000;
const SYN0_BASE: u64 = 0x5_0000_0000;
const SYN1_BASE: u64 = 0x6_0000_0000;
const MAT_A_BASE: u64 = 0x7_0000_0000;
const MAT_B_BASE: u64 = 0x8_0000_0000;
const MAT_C_BASE: u64 = 0x9_0000_0000;
const DEPTH_BASE: u64 = 0xA_0000_0000;
const FEAT_BASE: u64 = 0xB_0000_0000;

/// Budget knobs for the instrumented replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileOptions {
    /// Stop tracing after roughly this many counted operations; ratios are
    /// already stable long before typical defaults.
    pub max_events: u64,
}

impl Default for ProfileOptions {
    fn default() -> Self {
        Self { max_events: 4_000_000 }
    }
}

/// Result of profiling one kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelProfile {
    /// Kernel name (paper phase naming: rwalk, word2vec, training, …).
    pub name: String,
    /// Abstract operation counts.
    pub ops: OpCounts,
    /// Simulated L1 hit rate.
    pub l1_hit_rate: f64,
    /// Simulated L2 hit rate (over L1 misses).
    pub l2_hit_rate: f64,
    /// Fraction of accesses jumping > 256 B (replay/divergence proxy).
    pub irregularity: f64,
    /// Max-over-mean per-chunk work ratio (work-stealing input skew);
    /// `1.0` is perfectly balanced.
    pub load_imbalance: f64,
    /// Fraction of the kernel's outer loop actually traced before the
    /// event budget ran out; scale op totals by `1 / coverage` to estimate
    /// the full kernel.
    pub coverage: f64,
}

impl KernelProfile {
    /// Multiplier converting traced op totals to full-kernel totals.
    pub fn work_scale(&self) -> f64 {
        if self.coverage <= 0.0 {
            1.0
        } else {
            1.0 / self.coverage
        }
    }
}

struct Tracer {
    ops: OpCounts,
    cache: CacheHierarchy,
    budget: u64,
}

impl Tracer {
    fn new(opts: &ProfileOptions) -> Self {
        Self { ops: OpCounts::default(), cache: CacheHierarchy::default(), budget: opts.max_events }
    }

    #[inline]
    fn exhausted(&self) -> bool {
        self.ops.total() >= self.budget
    }

    #[inline]
    fn load(&mut self, addr: u64) {
        self.ops.loads += 1;
        self.cache.access(addr);
    }

    #[inline]
    fn store(&mut self, addr: u64) {
        self.ops.stores += 1;
        self.cache.access(addr);
    }

    fn finish(self, name: &str, load_imbalance: f64, coverage: f64) -> KernelProfile {
        KernelProfile {
            name: name.into(),
            ops: self.ops,
            l1_hit_rate: self.cache.l1.hit_rate(),
            l2_hit_rate: self.cache.l2_hit_rate(),
            irregularity: self.cache.irregularity(),
            load_imbalance,
            coverage: coverage.clamp(f64::MIN_POSITIVE, 1.0),
        }
    }
}

/// Max/mean ratio over per-chunk work counts (256-item chunks).
fn imbalance(work: &[u64]) -> f64 {
    if work.is_empty() {
        return 1.0;
    }
    let chunks: Vec<u64> = work.chunks(256).map(|c| c.iter().sum()).collect();
    let mean = chunks.iter().sum::<u64>() as f64 / chunks.len() as f64;
    let max = *chunks.iter().max().unwrap() as f64;
    if mean == 0.0 {
        1.0
    } else {
        (max / mean).max(1.0)
    }
}

/// Profiles the temporal random walk kernel (RW-P1).
pub fn profile_walk(g: &TemporalGraph, cfg: &WalkConfig, opts: &ProfileOptions) -> KernelProfile {
    let mut t = Tracer::new(opts);
    let n = g.num_nodes();
    let mut per_vertex_work = vec![0u64; n];
    let mut pairs_done = 0u64;

    'outer: for w in 0..cfg.walks_per_node {
        for v in 0..n as NodeId {
            if t.exhausted() {
                break 'outer;
            }
            let mut rng = WalkRng::from_stream(cfg.seed, w as u64, v as u64);
            let mut curr = v;
            let mut curr_time = f64::NEG_INFINITY;
            let mut steps = 0u64;
            for pos in 0..cfg.max_length {
                // Offset loads for the CSR segment.
                t.load(OFFSETS_BASE + curr as u64 * 8);
                t.load(OFFSETS_BASE + (curr as u64 + 1) * 8);
                t.ops.int_ops += 2;

                let (dsts, times) = if curr_time.is_finite() {
                    g.neighbors_after(curr, curr_time)
                } else {
                    g.neighbor_slices(curr)
                };
                // Binary search over the vertex's timestamp segment.
                let seg_len = g.out_degree(curr) as u64;
                let bs_steps = 64 - seg_len.leading_zeros() as u64;
                for s in 0..bs_steps {
                    t.load(TIMES_BASE + (curr as u64 * 64 + s) * 8);
                    t.ops.branches += 1;
                    t.ops.int_ops += 2;
                }

                t.ops.branches += 1; // empty-candidate check
                if dsts.is_empty() {
                    break;
                }

                let base = g.out_degree(curr) - dsts.len();
                let pick = match cfg.sampler {
                    TransitionSampler::Uniform => {
                        t.ops.int_ops += RNG_INT_OPS + 1;
                        rng.next_bounded(dsts.len())
                    }
                    TransitionSampler::LinearTime => {
                        // O(1) triangular-CDF inversion: one RNG draw plus
                        // a handful of fp ops (sqrt counted as 4).
                        t.ops.int_ops += RNG_INT_OPS + 2;
                        t.ops.fp_ops += 8;
                        let len = dsts.len();
                        let total = (len * (len + 1) / 2) as f64;
                        let target = rng.next_f64() * total;
                        ((((8.0 * target + 1.0).sqrt() - 1.0) / 2.0).floor() as usize).min(len - 1)
                    }
                    TransitionSampler::Softmax | TransitionSampler::SoftmaxRecency => {
                        // Two passes over the candidate timestamps (Eq. 1):
                        // exponentials then the cumulative-sum selection.
                        for i in 0..dsts.len() {
                            t.load(TIMES_BASE + (curr as u64 * 64 + (base + i) as u64) * 8);
                            t.ops.fp_ops += EXP_FLOPS + 2;
                            // libm exp internals: table lookups, range
                            // reduction, register shuffles. The 1 KiB
                            // table is permanently cache/constant-memory
                            // resident, so it is counted as ops but not
                            // traced as cache traffic.
                            t.ops.loads += EXP_LOADS;
                            t.ops.branches += EXP_BRANCHES;
                            t.ops.other += EXP_OTHER;
                        }
                        t.ops.int_ops += RNG_INT_OPS;
                        let pick = rng.next_bounded(dsts.len());
                        for s in 0..=pick {
                            t.load(TIMES_BASE + (curr as u64 * 64 + (base + s) as u64) * 8);
                            t.ops.fp_ops += 1;
                            t.ops.branches += 1;
                        }
                        pick
                    }
                };

                t.load(DSTS_BASE + (curr as u64 * 64 + (base + pick) as u64) * 4);
                t.load(TIMES_BASE + (curr as u64 * 64 + (base + pick) as u64) * 8);
                curr_time = times[pick];
                curr = dsts[pick];
                t.store(WALK_OUT_BASE + (v as u64 * cfg.max_length as u64 + pos as u64) * 4);
                t.ops.int_ops += 2;
                t.ops.branches += 1;
                t.ops.other += 1; // loop/stack bookkeeping
                steps += 1;
            }
            per_vertex_work[v as usize] += steps.max(1);
            pairs_done += 1;
        }
    }
    let coverage = pairs_done as f64 / (cfg.walks_per_node as f64 * n.max(1) as f64);
    t.finish("rwalk", imbalance(&per_vertex_work), coverage)
}

/// Profiles the word2vec SGNS kernel (RW-P2) over a walk corpus.
pub fn profile_word2vec(
    corpus: &WalkSet,
    dim: usize,
    window: usize,
    negatives: usize,
    num_nodes: usize,
    opts: &ProfileOptions,
) -> KernelProfile {
    let mut t = Tracer::new(opts);
    let stride = dim as u64 * 4;
    let mut rng = WalkRng::new(0x5730);
    let mut sentence_work = Vec::new();

    'outer: for walk in corpus.iter() {
        if t.exhausted() {
            break 'outer;
        }
        let mut work = 0u64;
        for i in 0..walk.len() {
            let center = walk[i] as u64;
            t.ops.int_ops += RNG_INT_OPS;
            let b = 1 + rng.next_bounded(window);
            let lo = i.saturating_sub(b);
            let hi = (i + b).min(walk.len() - 1);
            for j in lo..=hi {
                t.ops.branches += 1;
                if j == i {
                    continue;
                }
                let input = walk[j] as u64;
                // Read syn0[input] — sequential within the row.
                for k in 0..dim as u64 {
                    t.load(SYN0_BASE + input * stride + k * 4);
                }
                for neg in 0..=negatives {
                    let target = if neg == 0 {
                        center
                    } else {
                        t.ops.int_ops += RNG_INT_OPS;
                        rng.next_bounded(num_nodes) as u64
                    };
                    // Dot product + gradient + row update.
                    for k in 0..dim as u64 {
                        t.load(SYN1_BASE + target * stride + k * 4);
                        t.ops.fp_ops += 2; // mul + add of the dot
                    }
                    t.ops.fp_ops += 4; // sigmoid lookup interpolation + g
                    t.load(SYN1_BASE + target * stride); // sigmoid table folded
                    t.ops.branches += 2;
                    for k in 0..dim as u64 {
                        t.ops.fp_ops += 2; // e += g*syn1; syn1 += g*h
                        t.store(SYN1_BASE + target * stride + k * 4);
                        t.ops.other += 1; // index/move overhead
                    }
                    work += dim as u64;
                }
                // syn0[input] += e.
                for k in 0..dim as u64 {
                    t.ops.fp_ops += 1;
                    t.store(SYN0_BASE + input * stride + k * 4);
                }
                t.ops.other += 2;
            }
        }
        sentence_work.push(work.max(1));
    }
    let coverage = sentence_work.len() as f64 / corpus.num_walks().max(1) as f64;
    t.finish("word2vec", imbalance(&sentence_work), coverage)
}

/// Traces one naive GEMM (`m × k × n`) through the cache/ops model,
/// sampling at most `cap` inner iterations for the cache while counting
/// the full arithmetic.
fn gemm_trace(t: &mut Tracer, m: u64, k: u64, n: u64) {
    let total_inner = m * k * n;
    // Full analytic counts: 2 loads, 1 fma (2 flops), 1 int per inner
    // iteration; one store per output element.
    let traced = total_inner.min(t.budget.saturating_sub(t.ops.total()) / 5);
    // Trace the actual i-j-k access pattern for the sampled prefix.
    let mut seen = 0u64;
    'outer: for i in 0..m {
        for j in 0..n {
            for p in 0..k {
                if seen >= traced {
                    break 'outer;
                }
                t.cache.access(MAT_A_BASE + (i * k + p) * 4);
                t.cache.access(MAT_B_BASE + (p * n + j) * 4);
                seen += 1;
            }
            t.cache.access(MAT_C_BASE + (i * n + j) * 4);
        }
    }
    t.ops.loads += 2 * total_inner;
    t.ops.fp_ops += 2 * total_inner;
    t.ops.int_ops += total_inner;
    t.ops.branches += total_inner / 8;
    t.ops.stores += m * n;
    // Loop overhead, spills and moves: roughly one per three fused
    // multiply-adds in compiled x86 GEMM inner loops.
    t.ops.other += total_inner / 3;
}

/// Profiles FNN training (RW-P3): forward + backward GEMMs for each layer
/// over `batches` mini-batches of `batch` rows.
pub fn profile_training(
    dims: &[usize],
    batch: usize,
    batches: usize,
    opts: &ProfileOptions,
) -> KernelProfile {
    let mut t = Tracer::new(opts);
    let mut done = 0usize;
    for _ in 0..batches {
        for w in dims.windows(2) {
            let (k, n) = (w[0] as u64, w[1] as u64);
            // Forward, grad-weight (aᵀ·δ), and grad-input (δ·Wᵀ) GEMMs.
            gemm_trace(&mut t, batch as u64, k, n);
            gemm_trace(&mut t, k, batch as u64, n);
            gemm_trace(&mut t, batch as u64, n, k);
        }
        done += 1;
        if t.exhausted() {
            break;
        }
    }
    // Dense GEMM work is uniform across rows.
    t.finish("training", 1.0, done as f64 / batches.max(1) as f64)
}

/// Profiles FNN inference (RW-P4): forward GEMMs only.
pub fn profile_testing(
    dims: &[usize],
    batch: usize,
    batches: usize,
    opts: &ProfileOptions,
) -> KernelProfile {
    let mut t = Tracer::new(opts);
    let mut done = 0usize;
    for _ in 0..batches {
        for w in dims.windows(2) {
            gemm_trace(&mut t, batch as u64, w[0] as u64, w[1] as u64);
        }
        done += 1;
        if t.exhausted() {
            break;
        }
    }
    t.finish("testing", 1.0, done as f64 / batches.max(1) as f64)
}

/// Profiles level-synchronous BFS (the Fig. 3 graph-traversal contrast).
pub fn profile_bfs(g: &TemporalGraph, source: NodeId, opts: &ProfileOptions) -> KernelProfile {
    let mut t = Tracer::new(opts);
    let n = g.num_nodes();
    let mut depth = vec![u32::MAX; n];
    depth[source as usize] = 0;
    let mut frontier = vec![source];
    let mut next = Vec::new();
    let mut level = 0u32;
    let mut per_vertex_work = vec![0u64; n];
    let mut popped = 0u64;
    while !frontier.is_empty() && !t.exhausted() {
        level += 1;
        for &u in &frontier {
            popped += 1;
            t.load(OFFSETS_BASE + u as u64 * 8);
            t.load(OFFSETS_BASE + (u as u64 + 1) * 8);
            t.ops.int_ops += 2;
            let (dsts, _) = g.neighbor_slices(u);
            per_vertex_work[u as usize] += dsts.len().max(1) as u64;
            for (i, &v) in dsts.iter().enumerate() {
                t.load(DSTS_BASE + (u as u64 * 64 + i as u64) * 4);
                // The depth probe is the classic random access of BFS.
                t.load(DEPTH_BASE + v as u64 * 4);
                t.ops.branches += 1;
                if depth[v as usize] == u32::MAX {
                    depth[v as usize] = level;
                    t.store(DEPTH_BASE + v as u64 * 4);
                    t.store(DSTS_BASE + 0x1000_0000 + next.len() as u64 * 4);
                    next.push(v);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }
    let coverage = if t.exhausted() { popped as f64 / n.max(1) as f64 } else { 1.0 };
    t.finish("bfs", imbalance(&per_vertex_work), coverage)
}

/// Profiles one GCN layer inference (the Fig. 3 GCN contrast):
/// `Â · X` (SpMM over `nnz` non-zeros) followed by the dense `(n × f) ·
/// (f × out)` GEMM.
pub fn profile_gcn(
    g: &TemporalGraph,
    feat_dim: usize,
    out_dim: usize,
    opts: &ProfileOptions,
) -> KernelProfile {
    let mut t = Tracer::new(opts);
    let n = g.num_nodes();
    let mut per_vertex_work = vec![0u64; n];
    let mut v_done = 0u64;
    'outer: for v in 0..n as NodeId {
        v_done += 1;
        t.load(OFFSETS_BASE + v as u64 * 8);
        t.load(OFFSETS_BASE + (v as u64 + 1) * 8);
        let (dsts, _) = g.neighbor_slices(v);
        per_vertex_work[v as usize] = (dsts.len() * feat_dim).max(1) as u64;
        for (i, &u) in dsts.iter().enumerate() {
            if t.exhausted() {
                break 'outer;
            }
            t.load(DSTS_BASE + (v as u64 * 64 + i as u64) * 4);
            for f in 0..feat_dim as u64 {
                // Gathering neighbor features: row-random, column-seq.
                t.load(FEAT_BASE + u as u64 * feat_dim as u64 * 4 + f * 4);
                t.ops.fp_ops += 2;
            }
            t.ops.branches += 1;
        }
        for f in 0..feat_dim as u64 {
            t.store(MAT_C_BASE + v as u64 * feat_dim as u64 * 4 + f * 4);
        }
    }
    gemm_trace(&mut t, n as u64, feat_dim as u64, out_dim as u64);
    t.finish("gcn", imbalance(&per_vertex_work), v_done as f64 / n.max(1) as f64)
}

/// Profiles the VGG GEMM-sequence proxy (the Fig. 3 DNN contrast).
pub fn profile_vgg(layer_shapes: &[(usize, usize, usize)], opts: &ProfileOptions) -> KernelProfile {
    let mut t = Tracer::new(opts);
    let mut done = 0usize;
    for &(m, k, n) in layer_shapes {
        gemm_trace(&mut t, m as u64, k as u64, n as u64);
        done += 1;
        if t.exhausted() {
            break;
        }
    }
    t.finish("vgg", 1.0, done as f64 / layer_shapes.len().max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use twalk::WalkConfig;

    fn pa_graph() -> TemporalGraph {
        tgraph::gen::preferential_attachment(2_000, 3, 7).undirected(true).build()
    }

    #[test]
    fn softmax_walk_is_compute_heavy_vs_bfs() {
        let g = pa_graph();
        let opts = ProfileOptions::default();
        let walk =
            profile_walk(&g, &WalkConfig::new(4, 6).sampler(TransitionSampler::Softmax), &opts);
        let bfs = profile_bfs(&g, 0, &opts);
        // Paper §VII-B: the walk kernel executes *more compute* than a
        // traditional traversal because of Eq. (1)'s exponentials.
        assert!(
            walk.ops.fp_fraction() > bfs.ops.fp_fraction() + 0.1,
            "walk fp {} vs bfs fp {}",
            walk.ops.fp_fraction(),
            bfs.ops.fp_fraction()
        );
        // And both compute and memory are dominant in the walk kernel.
        let mix = walk.ops.mix();
        assert!(mix.compute > 0.2, "compute {}", mix.compute);
        assert!(mix.memory > 0.2, "memory {}", mix.memory);
    }

    #[test]
    fn walk_on_skewed_graph_is_imbalanced_and_irregular() {
        let g = pa_graph();
        let p = profile_walk(&g, &WalkConfig::new(4, 6), &ProfileOptions::default());
        assert!(p.load_imbalance > 1.2, "imbalance {}", p.load_imbalance);
        assert!(p.irregularity > 0.3, "irregularity {}", p.irregularity);
    }

    #[test]
    fn vgg_is_regular_and_cache_friendly() {
        let shapes = [(64usize, 128usize, 64usize), (64, 64, 32)];
        let p = profile_vgg(&shapes, &ProfileOptions::default());
        assert_eq!(p.load_imbalance, 1.0);
        assert!(p.l1_hit_rate > 0.8, "l1 {}", p.l1_hit_rate);
        assert!(p.irregularity < 0.5, "irregularity {}", p.irregularity);
        let mix = p.ops.mix();
        assert!(mix.compute > 0.35);
    }

    #[test]
    fn word2vec_mix_balances_memory_and_compute() {
        let g = pa_graph();
        let walks = twalk::generate_walks_serial(&g, &WalkConfig::new(2, 6));
        let p = profile_word2vec(&walks, 8, 5, 5, g.num_nodes(), &ProfileOptions::default());
        let mix = p.ops.mix();
        assert!(mix.memory > 0.25, "memory {}", mix.memory);
        assert!(mix.compute > 0.3, "compute {}", mix.compute);
        assert!(p.ops.stores > 0);
    }

    #[test]
    fn training_profile_counts_triple_gemms() {
        let opts = ProfileOptions::default();
        let train = profile_training(&[16, 64, 1], 32, 4, &opts);
        let test = profile_testing(&[16, 64, 1], 32, 4, &opts);
        // Backward adds roughly 2× the forward GEMM volume.
        assert!(train.ops.fp_ops > 2 * test.ops.fp_ops);
    }

    #[test]
    fn budget_caps_runtime() {
        let g = pa_graph();
        let small = ProfileOptions { max_events: 10_000 };
        let p = profile_walk(&g, &WalkConfig::new(10, 20), &small);
        assert!(p.ops.total() < 200_000);
    }

    #[test]
    fn gcn_profile_produces_normalized_mix() {
        let g = pa_graph();
        let p = profile_gcn(&g, 32, 8, &ProfileOptions::default());
        assert!(p.ops.mix().is_normalized());
        assert!(p.load_imbalance >= 1.0);
    }
}
