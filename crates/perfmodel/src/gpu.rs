//! Analytic GPU execution model (Ampere-class).
//!
//! Substitutes for the paper's physical NVIDIA Ampere GPU. The model is a
//! roofline with three additions the paper's analysis hinges on:
//!
//! 1. **Kernel launch overhead** — the unbatched GPU word2vec launches one
//!    kernel per (short) sentence, which Fig. 5 shows batching amortizes;
//! 2. **Occupancy** — kernels exposing little parallelism (tiny classifier
//!    GEMMs, single sentences) cannot fill the SMs (§VII-B reports < 10% SM
//!    utilization for training/testing);
//! 3. **Divergence penalty** — irregular access/branch streams replay
//!    instructions (the paper's irregularity metric), scaling execution
//!    time.
//!
//! Every constant is an estimate of a published Ampere (A100-class) figure
//! and is documented below; outputs are meaningful in *shape* (crossovers,
//! saturation points), not as absolute microseconds.

use crate::{KernelProfile, OpCounts};

/// Hardware parameters of the modeled GPU.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuModel {
    /// Streaming multiprocessor count (A100: 108).
    pub sm_count: f64,
    /// Maximum resident threads (A100: 2048 per SM).
    pub max_threads: f64,
    /// Peak fp32 throughput in flops per microsecond (A100: ≈19.5 TFLOP/s).
    pub flops_per_us: f64,
    /// Peak integer/branch throughput in ops per microsecond.
    pub int_ops_per_us: f64,
    /// HBM bandwidth in bytes per microsecond (A100: ≈1555 GB/s).
    pub mem_bw_bytes_per_us: f64,
    /// Fixed cost of one kernel launch in microseconds (driver + HW queue;
    /// ≈5 µs is a standard figure).
    pub kernel_launch_us: f64,
    /// Effective PCIe host↔device bandwidth in bytes per microsecond
    /// (PCIe 4.0 x16 ≈ 16 GB/s sustained).
    pub pcie_bytes_per_us: f64,
}

impl GpuModel {
    /// Ampere (A100-class) parameters.
    pub fn ampere() -> Self {
        Self {
            sm_count: 108.0,
            max_threads: 108.0 * 2048.0,
            flops_per_us: 19.5e6,
            int_ops_per_us: 9.7e6,
            mem_bw_bytes_per_us: 1.555e6,
            kernel_launch_us: 5.0,
            pcie_bytes_per_us: 16_000.0,
        }
    }

    /// Estimates one kernel's GPU execution from its measured operation
    /// counts and shape.
    ///
    /// * `ops`/`irregularity` — from an instrumented profile (possibly
    ///   traced on a budget; scale totals with `work_scale ≥ 1`);
    /// * `parallelism` — threads of work the kernel exposes per launch;
    /// * `launches` — number of kernel launches;
    /// * `transfer_bytes` — host↔device bytes moved once per run.
    ///
    /// # Panics
    ///
    /// Panics if `work_scale` or `parallelism` is not positive.
    pub fn estimate(
        &self,
        ops: &OpCounts,
        irregularity: f64,
        work_scale: f64,
        parallelism: f64,
        launches: f64,
        transfer_bytes: f64,
    ) -> GpuEstimate {
        assert!(work_scale > 0.0, "work_scale must be positive");
        assert!(parallelism > 0.0, "parallelism must be positive");
        // A single warp (32 threads) is the minimum latency-hiding unit.
        let occupancy = (parallelism / self.max_threads).clamp(32.0 / self.max_threads, 1.0);
        // Divergent warps replay instructions: up to 3× at full
        // irregularity (ratio range observed in the paper's Fig. 3).
        let divergence_factor = 1.0 + 2.0 * irregularity.clamp(0.0, 1.0);

        let fp = ops.fp_ops as f64 * work_scale;
        let intb = (ops.int_ops + ops.branches + ops.other) as f64 * work_scale;
        let bytes = ops.approx_bytes() as f64 * work_scale;

        let compute_us =
            (fp / self.flops_per_us + intb / self.int_ops_per_us) / occupancy * divergence_factor;
        // Bandwidth also needs parallelism to be saturated; irregular
        // (non-coalesced) streams waste most of each 32-byte sector.
        let mem_eff = occupancy.sqrt() * (1.0 - 0.7 * irregularity.clamp(0.0, 1.0));
        let memory_us = bytes / (self.mem_bw_bytes_per_us * mem_eff.max(1e-3));

        GpuEstimate {
            compute_us,
            memory_us,
            launch_us: launches * self.kernel_launch_us,
            transfer_us: transfer_bytes / self.pcie_bytes_per_us,
            occupancy,
            divergence_factor,
            mem_efficiency: mem_eff.clamp(0.0, 1.0),
        }
    }

    /// Convenience wrapper taking a [`KernelProfile`] directly.
    pub fn estimate_profile(
        &self,
        profile: &KernelProfile,
        work_scale: f64,
        parallelism: f64,
        launches: f64,
        transfer_bytes: f64,
    ) -> GpuEstimate {
        self.estimate(
            &profile.ops,
            profile.irregularity,
            work_scale,
            parallelism,
            launches,
            transfer_bytes,
        )
    }
}

impl Default for GpuModel {
    fn default() -> Self {
        Self::ampere()
    }
}

/// Decomposed GPU time estimate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuEstimate {
    /// Arithmetic pipeline time (µs), divergence included.
    pub compute_us: f64,
    /// Memory system time (µs).
    pub memory_us: f64,
    /// Total kernel-launch overhead (µs).
    pub launch_us: f64,
    /// Host↔device transfer time (µs).
    pub transfer_us: f64,
    /// Modeled occupancy in `(0, 1]` — the paper's SM-utilization analog.
    pub occupancy: f64,
    /// Instruction replay multiplier applied to compute.
    pub divergence_factor: f64,
    /// Fraction of peak DRAM bandwidth the access pattern can sustain
    /// (occupancy and coalescing losses).
    pub mem_efficiency: f64,
}

impl GpuEstimate {
    /// End-to-end kernel time: transfers and launches serialize with the
    /// overlapped compute/memory phases.
    pub fn total_us(&self) -> f64 {
        self.transfer_us + self.launch_us + self.compute_us.max(self.memory_us)
    }

    /// Total in seconds.
    pub fn total_secs(&self) -> f64 {
        self.total_us() / 1e6
    }

    /// Sustained fraction of peak DRAM bandwidth (the Fig. 3 DRAM
    /// utilization analog): the share of device time spent on memory,
    /// discounted by how much of the peak the access pattern can use.
    pub fn dram_utilization(&self) -> f64 {
        let exec = self.compute_us.max(self.memory_us);
        if exec <= 0.0 {
            0.0
        } else {
            (self.memory_us / exec).min(1.0) * self.mem_efficiency
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_ops(n: u64) -> OpCounts {
        OpCounts {
            loads: n,
            stores: n / 4,
            branches: n / 8,
            int_ops: n / 2,
            fp_ops: n,
            other: n / 8,
        }
    }

    #[test]
    fn launch_overhead_dominates_many_tiny_kernels() {
        let gpu = GpuModel::ampere();
        let ops = flat_ops(10_000);
        // 100k launches of tiny kernels vs 10 launches of the same work.
        let many = gpu.estimate(&ops, 0.2, 1.0, 256.0, 100_000.0, 0.0);
        let few = gpu.estimate(&ops, 0.2, 1.0, 100_000.0 * 256.0, 10.0, 0.0);
        assert!(many.total_us() > 50.0 * few.total_us());
    }

    #[test]
    fn higher_parallelism_never_hurts() {
        let gpu = GpuModel::ampere();
        let ops = flat_ops(1_000_000);
        let lo = gpu.estimate(&ops, 0.3, 1.0, 1_000.0, 1.0, 0.0);
        let hi = gpu.estimate(&ops, 0.3, 1.0, 1_000_000.0, 1.0, 0.0);
        assert!(hi.total_us() < lo.total_us());
        assert!(hi.occupancy > lo.occupancy);
    }

    #[test]
    fn irregularity_penalizes_execution() {
        let gpu = GpuModel::ampere();
        let ops = flat_ops(1_000_000);
        let regular = gpu.estimate(&ops, 0.0, 1.0, 100_000.0, 1.0, 0.0);
        let irregular = gpu.estimate(&ops, 0.9, 1.0, 100_000.0, 1.0, 0.0);
        assert!(irregular.total_us() > 1.5 * regular.total_us());
        assert!(irregular.divergence_factor > regular.divergence_factor);
    }

    #[test]
    fn transfer_amortizes_with_work_scale() {
        let gpu = GpuModel::ampere();
        let ops = flat_ops(1_000);
        let small = gpu.estimate(&ops, 0.2, 1.0, 10_000.0, 1.0, 1e6);
        let big = gpu.estimate(&ops, 0.2, 1_000.0, 10_000.0, 1.0, 1e6);
        let small_frac = small.transfer_us / small.total_us();
        let big_frac = big.transfer_us / big.total_us();
        assert!(small_frac > big_frac);
    }

    #[test]
    fn total_combines_components() {
        let e = GpuEstimate {
            compute_us: 10.0,
            memory_us: 4.0,
            launch_us: 2.0,
            transfer_us: 3.0,
            occupancy: 0.5,
            divergence_factor: 1.0,
            mem_efficiency: 0.5,
        };
        assert!((e.total_us() - 15.0).abs() < 1e-12);
        assert!((e.dram_utilization() - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "parallelism must be positive")]
    fn zero_parallelism_panics() {
        let gpu = GpuModel::ampere();
        let _ = gpu.estimate(&OpCounts::default(), 0.0, 1.0, 0.0, 1.0, 0.0);
    }
}
