//! Abstract operation accounting (the MICA-Pintool substitute).

/// Dynamic operation counts of one kernel execution.
///
/// Categories follow the paper's Fig. 9 legend: memory (loads + stores),
/// branch, compute (integer + floating point), and others.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Memory read operations.
    pub loads: u64,
    /// Memory write operations.
    pub stores: u64,
    /// Conditional and unconditional branches.
    pub branches: u64,
    /// Integer arithmetic (address math, RNG, comparisons folded in).
    pub int_ops: u64,
    /// Floating-point arithmetic (`exp` is counted as several flops).
    pub fp_ops: u64,
    /// Stack traffic, shifts, moves, SIMD shuffles, etc.
    pub other: u64,
}

impl OpCounts {
    /// Total dynamic operations.
    pub fn total(&self) -> u64 {
        self.loads + self.stores + self.branches + self.int_ops + self.fp_ops + self.other
    }

    /// Normalized breakdown in the paper's four Fig. 9 buckets.
    pub fn mix(&self) -> OpMix {
        let total = self.total().max(1) as f64;
        OpMix {
            memory: (self.loads + self.stores) as f64 / total,
            branch: self.branches as f64 / total,
            compute: (self.int_ops + self.fp_ops) as f64 / total,
            other: self.other as f64 / total,
        }
    }

    /// Element-wise accumulation.
    pub fn add(&mut self, other: &OpCounts) {
        self.loads += other.loads;
        self.stores += other.stores;
        self.branches += other.branches;
        self.int_ops += other.int_ops;
        self.fp_ops += other.fp_ops;
        self.other += other.other;
    }

    /// Fraction of operations that are floating point.
    pub fn fp_fraction(&self) -> f64 {
        self.fp_ops as f64 / self.total().max(1) as f64
    }

    /// Fraction of operations that touch memory.
    pub fn mem_fraction(&self) -> f64 {
        (self.loads + self.stores) as f64 / self.total().max(1) as f64
    }

    /// Approximate bytes moved assuming 8-byte average access width.
    pub fn approx_bytes(&self) -> u64 {
        (self.loads + self.stores) * 8
    }
}

/// Normalized instruction-type shares (sums to 1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpMix {
    /// Load + store share.
    pub memory: f64,
    /// Branch share.
    pub branch: f64,
    /// Integer + floating point share.
    pub compute: f64,
    /// Everything else.
    pub other: f64,
}

impl OpMix {
    /// Checks internal consistency (shares within `[0, 1]`, summing to 1).
    pub fn is_normalized(&self) -> bool {
        let sum = self.memory + self.branch + self.compute + self.other;
        (sum - 1.0).abs() < 1e-9
            && [self.memory, self.branch, self.compute, self.other]
                .iter()
                .all(|&x| (0.0..=1.0).contains(&x))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_sums_to_one() {
        let c = OpCounts { loads: 10, stores: 5, branches: 3, int_ops: 7, fp_ops: 20, other: 5 };
        assert!(c.mix().is_normalized());
        assert_eq!(c.total(), 50);
        assert!((c.mix().memory - 0.3).abs() < 1e-12);
        assert!((c.mix().compute - 0.54).abs() < 1e-12);
    }

    #[test]
    fn empty_counts_are_safe() {
        let c = OpCounts::default();
        assert_eq!(c.total(), 0);
        let m = c.mix();
        assert_eq!(m.memory, 0.0);
    }

    #[test]
    fn add_accumulates() {
        let mut a = OpCounts { loads: 1, ..Default::default() };
        a.add(&OpCounts { loads: 2, fp_ops: 3, ..Default::default() });
        assert_eq!(a.loads, 3);
        assert_eq!(a.fp_ops, 3);
    }
}
