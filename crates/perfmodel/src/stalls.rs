//! GPU stall-cycle attribution (the paper's Fig. 11).
//!
//! Nsight Compute attributes every issue-stall cycle to a cause. Without
//! the hardware, this module models the attribution as a blend of
//!
//! 1. a per-kernel-class **prior** calibrated to the paper's reported
//!    numbers (rwalk: 54.1% compute dependency; word2vec: 46.2% memory
//!    dependency; training/testing: 23.6%/30.6% IMC misses), and
//! 2. a **feature-driven** allocation computed from the kernel's measured
//!    profile (fp-intensity drives compute dependencies, memory intensity ×
//!    irregularity drives scoreboard/memory dependencies, low occupancy
//!    drives IMC misses, divergence drives TEX-queue pressure),
//!
//! mixed 50/50 and normalized. The prior anchors the headline shape; the
//! feature term makes the breakdown respond to actual workload changes
//! (e.g. switching the walk sampler from softmax to uniform visibly shifts
//! stalls from compute toward memory).

use crate::KernelProfile;

/// The kernel being attributed (paper Fig. 11 x-axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelClass {
    /// Temporal random walk (RW-P1).
    RandomWalk,
    /// word2vec (RW-P2).
    Word2Vec,
    /// Classifier training (RW-P3).
    Training,
    /// Classifier testing (RW-P4).
    Testing,
}

/// Stall categories, matching the paper's Fig. 11 legend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StallCategory {
    /// Immediate constant cache (IMC) misses.
    ImcMiss,
    /// Unresolved register dependencies on long fixed-latency compute.
    ComputeDependency,
    /// Instruction cache misses.
    InstCacheMiss,
    /// Scoreboard dependencies on outstanding memory operations.
    MemoryDependency,
    /// Execution pipe / MIO instruction queue busy.
    PipeBusy,
    /// Memory / CTA barriers.
    Barrier,
    /// TEX/LITEX instruction queue busy (control-flow divergence pressure).
    TexQueueBusy,
    /// Everything else.
    Other,
}

impl StallCategory {
    /// All categories in Fig. 11 legend order.
    pub const ALL: [StallCategory; 8] = [
        StallCategory::ImcMiss,
        StallCategory::ComputeDependency,
        StallCategory::InstCacheMiss,
        StallCategory::MemoryDependency,
        StallCategory::PipeBusy,
        StallCategory::Barrier,
        StallCategory::TexQueueBusy,
        StallCategory::Other,
    ];
}

/// A normalized stall breakdown (fractions sum to 1).
#[derive(Debug, Clone, PartialEq)]
pub struct StallBreakdown {
    fractions: Vec<(StallCategory, f64)>,
}

impl StallBreakdown {
    /// Fraction for one category.
    pub fn fraction(&self, cat: StallCategory) -> f64 {
        self.fractions.iter().find(|(c, _)| *c == cat).map(|(_, f)| *f).unwrap_or(0.0)
    }

    /// All `(category, fraction)` pairs in legend order.
    pub fn as_slice(&self) -> &[(StallCategory, f64)] {
        &self.fractions
    }

    /// The largest single cause of stalls.
    pub fn dominant(&self) -> StallCategory {
        self.fractions
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite fractions"))
            .map(|(c, _)| *c)
            .expect("non-empty breakdown")
    }
}

/// Per-class priors calibrated to the paper's reported Fig. 11 values
/// (order matches [`StallCategory::ALL`]).
fn prior(class: KernelClass) -> [f64; 8] {
    match class {
        //                        imc    cdep   icache mdep   pipe   barr   tex    other
        KernelClass::RandomWalk => [0.06, 0.541, 0.030, 0.050, 0.040, 0.020, 0.220, 0.039],
        KernelClass::Word2Vec => [0.100, 0.150, 0.050, 0.462, 0.080, 0.050, 0.050, 0.058],
        KernelClass::Training => [0.236, 0.150, 0.100, 0.200, 0.120, 0.080, 0.050, 0.064],
        KernelClass::Testing => [0.306, 0.130, 0.100, 0.180, 0.110, 0.070, 0.050, 0.054],
    }
}

/// Computes the stall breakdown for a kernel from its measured profile and
/// modeled occupancy.
///
/// # Panics
///
/// Panics if `occupancy` is outside `(0, 1]`.
pub fn stall_breakdown(
    class: KernelClass,
    profile: &KernelProfile,
    occupancy: f64,
) -> StallBreakdown {
    assert!(occupancy > 0.0 && occupancy <= 1.0, "occupancy must be in (0, 1]");
    let fp = profile.ops.fp_fraction();
    let mem = profile.ops.mem_fraction();
    let irr = profile.irregularity.clamp(0.0, 1.0);

    // Feature-driven raw weights (order = StallCategory::ALL).
    let features = [
        1.2 * (1.0 - occupancy),       // IMC: no immediate reuse at low occupancy
        2.2 * fp,                      // compute dependency: long fp chains
        0.08,                          // icache: roughly constant
        4.0 * mem * (0.4 + 1.6 * irr), // memory dependency: dependent gathers
        0.35 * occupancy,              // pipe busy: only when fed
        0.25 * occupancy,              // barriers: only with many CTAs
        1.4 * irr,                     // TEX queue: divergence pressure
        0.12,                          // other
    ];
    let fsum: f64 = features.iter().sum();
    let p = prior(class);

    let mut fractions = Vec::with_capacity(8);
    let mut total = 0.0;
    for (i, &cat) in StallCategory::ALL.iter().enumerate() {
        let blended = 0.5 * p[i] + 0.5 * features[i] / fsum;
        fractions.push((cat, blended));
        total += blended;
    }
    for (_, f) in &mut fractions {
        *f /= total;
    }
    StallBreakdown { fractions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{profile_walk, ProfileOptions};
    use twalk::{TransitionSampler, WalkConfig};

    fn walk_profile(sampler: TransitionSampler) -> KernelProfile {
        let g = tgraph::gen::preferential_attachment(1_000, 3, 1).undirected(true).build();
        profile_walk(&g, &WalkConfig::new(4, 6).sampler(sampler), &ProfileOptions::default())
    }

    #[test]
    fn breakdown_is_normalized() {
        let p = walk_profile(TransitionSampler::Softmax);
        let b = stall_breakdown(KernelClass::RandomWalk, &p, 0.5);
        let sum: f64 = b.as_slice().iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(b.as_slice().iter().all(|(_, f)| *f >= 0.0));
    }

    #[test]
    fn rwalk_softmax_is_compute_dependency_dominated() {
        let p = walk_profile(TransitionSampler::Softmax);
        let b = stall_breakdown(KernelClass::RandomWalk, &p, 0.5);
        assert_eq!(b.dominant(), StallCategory::ComputeDependency);
        assert!(b.fraction(StallCategory::ComputeDependency) > 0.3);
    }

    #[test]
    fn uniform_sampler_shifts_stalls_away_from_compute() {
        let soft = stall_breakdown(
            KernelClass::RandomWalk,
            &walk_profile(TransitionSampler::Softmax),
            0.5,
        );
        let unif = stall_breakdown(
            KernelClass::RandomWalk,
            &walk_profile(TransitionSampler::Uniform),
            0.5,
        );
        assert!(
            unif.fraction(StallCategory::ComputeDependency)
                < soft.fraction(StallCategory::ComputeDependency)
        );
    }

    #[test]
    fn low_occupancy_inflates_imc_misses() {
        let p = walk_profile(TransitionSampler::Softmax);
        let lo = stall_breakdown(KernelClass::Training, &p, 0.05);
        let hi = stall_breakdown(KernelClass::Training, &p, 0.95);
        assert!(lo.fraction(StallCategory::ImcMiss) > hi.fraction(StallCategory::ImcMiss));
    }

    #[test]
    #[should_panic(expected = "occupancy must be in")]
    fn bad_occupancy_panics() {
        let p = walk_profile(TransitionSampler::Uniform);
        let _ = stall_breakdown(KernelClass::Testing, &p, 0.0);
    }
}
