//! Analytic CPU execution model.
//!
//! The paper's CPU results are measured on a 128-core EPYC server this
//! environment does not have. This model turns an instrumented profile
//! into an estimated CPU time for a configurable core count, letting the
//! Table III CPU columns be *extrapolated* to server scale next to the
//! locally measured values. The model is a classic back-of-envelope:
//!
//! `cycles ≈ ops / IPC + loads × (miss path)`
//!
//! with the miss path priced from the simulated L1/L2 hit rates, and
//! multi-core scaling discounted by the measured load imbalance (work
//! stealing bounds the straggler penalty by the largest chunk).

use crate::KernelProfile;

/// Parameters of the modeled CPU.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuModel {
    /// Core clock in GHz.
    pub freq_ghz: f64,
    /// Sustained instructions per cycle for cache-resident work.
    pub base_ipc: f64,
    /// L2 hit latency in cycles (L1 miss, L2 hit).
    pub l2_latency_cycles: f64,
    /// Memory latency in cycles (L1 and L2 miss).
    pub mem_latency_cycles: f64,
    /// Fraction of a miss's latency actually exposed (out-of-order
    /// execution and prefetching hide the rest).
    pub miss_exposure: f64,
    /// Cores available.
    pub cores: usize,
}

impl CpuModel {
    /// EPYC-7742-like parameters (the paper's evaluation CPU): 2.25 GHz
    /// base, 64 cores per socket (the paper used two).
    pub fn epyc_like() -> Self {
        Self {
            freq_ghz: 2.25,
            base_ipc: 2.0,
            l2_latency_cycles: 14.0,
            mem_latency_cycles: 220.0,
            miss_exposure: 0.35,
            cores: 128,
        }
    }

    /// A single-core laptop-class configuration for sanity checks against
    /// locally measured times.
    pub fn single_core() -> Self {
        Self { cores: 1, freq_ghz: 3.0, ..Self::epyc_like() }
    }

    /// Estimates execution seconds for a profiled kernel scaled to its
    /// full size, run across `threads` (capped at the model's cores).
    ///
    /// # Panics
    ///
    /// Panics if `threads == 0`.
    pub fn estimate_secs(&self, profile: &KernelProfile, threads: usize) -> f64 {
        assert!(threads > 0, "need at least one thread");
        let scale = profile.work_scale();
        let ops = profile.ops.total() as f64 * scale;
        let loads = profile.ops.loads as f64 * scale;

        let l1_miss = 1.0 - profile.l1_hit_rate;
        let l2_hit_given_miss = profile.l2_hit_rate;
        let miss_cycles = loads
            * l1_miss
            * (l2_hit_given_miss * self.l2_latency_cycles
                + (1.0 - l2_hit_given_miss) * self.mem_latency_cycles)
            * self.miss_exposure;
        let cycles = ops / self.base_ipc + miss_cycles;

        // Work stealing keeps the straggler penalty bounded by per-chunk
        // skew; model parallel efficiency as 1/imbalance.
        let eff_threads =
            (threads.min(self.cores) as f64 / profile.load_imbalance.max(1.0)).max(1.0);
        cycles / (self.freq_ghz * 1e9) / eff_threads
    }
}

impl Default for CpuModel {
    fn default() -> Self {
        Self::epyc_like()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{profile_walk, ProfileOptions};
    use twalk::{TransitionSampler, WalkConfig};

    fn walk_profile() -> KernelProfile {
        let g = tgraph::gen::preferential_attachment(2_000, 3, 1).undirected(true).build();
        profile_walk(
            &g,
            &WalkConfig::new(10, 6).sampler(TransitionSampler::Softmax).seed(1),
            &ProfileOptions::default(),
        )
    }

    #[test]
    fn more_threads_is_faster_until_core_cap() {
        let cpu = CpuModel::epyc_like();
        let p = walk_profile();
        let t1 = cpu.estimate_secs(&p, 1);
        let t64 = cpu.estimate_secs(&p, 64);
        let t128 = cpu.estimate_secs(&p, 128);
        let t512 = cpu.estimate_secs(&p, 512);
        assert!(t64 < t1 / 8.0);
        assert!(t128 <= t64);
        assert!((t512 - t128).abs() < 1e-12, "beyond cores must not help");
    }

    #[test]
    fn estimate_is_in_a_plausible_range() {
        // The 2k-node walk kernel runs in milliseconds on real hardware;
        // the model must land within a couple orders of magnitude.
        let cpu = CpuModel::single_core();
        let p = walk_profile();
        let secs = cpu.estimate_secs(&p, 1);
        assert!((1e-5..1.0).contains(&secs), "single-core estimate {secs}s out of plausible range");
    }

    #[test]
    fn worse_cache_behavior_costs_time() {
        let cpu = CpuModel::epyc_like();
        let mut good = walk_profile();
        good.l1_hit_rate = 0.99;
        good.l2_hit_rate = 0.9;
        let mut bad = good.clone();
        bad.l1_hit_rate = 0.5;
        bad.l2_hit_rate = 0.1;
        assert!(cpu.estimate_secs(&bad, 8) > 1.5 * cpu.estimate_secs(&good, 8));
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_panics() {
        let cpu = CpuModel::default();
        let p = walk_profile();
        let _ = cpu.estimate_secs(&p, 0);
    }
}
