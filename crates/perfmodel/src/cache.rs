//! Set-associative LRU cache simulator.
//!
//! Fed with the address streams of the instrumented kernel replicas
//! (see [`crate::profile`]), this stands in for the hardware cache
//! counters behind the paper's Fig. 3 L2-hit-rate comparison.

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
    /// Line size in bytes (power of two).
    pub line_bytes: usize,
}

impl CacheConfig {
    /// A 32 KiB, 8-way, 64 B-line L1 (typical for both the paper's EPYC
    /// and Ampere SM L1).
    pub fn l1_default() -> Self {
        Self { size_bytes: 32 * 1024, assoc: 8, line_bytes: 64 }
    }

    /// A 1 MiB, 16-way, 64 B-line L2 slice.
    pub fn l2_default() -> Self {
        Self { size_bytes: 1024 * 1024, assoc: 16, line_bytes: 64 }
    }
}

/// One level of set-associative LRU cache.
#[derive(Debug, Clone)]
pub struct CacheSim {
    cfg: CacheConfig,
    sets: usize,
    // tags[set * assoc + way]; u64::MAX = invalid. LRU order tracked by
    // per-line logical timestamps.
    tags: Vec<u64>,
    stamps: Vec<u64>,
    clock: u64,
    accesses: u64,
    hits: u64,
}

impl CacheSim {
    /// Creates a cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is inconsistent (zero sizes, line not a
    /// power of two, or capacity not divisible by `assoc × line`).
    pub fn new(cfg: CacheConfig) -> Self {
        assert!(cfg.line_bytes.is_power_of_two() && cfg.line_bytes >= 4, "bad line size");
        assert!(cfg.assoc >= 1, "associativity must be positive");
        let set_bytes = cfg.assoc * cfg.line_bytes;
        assert!(
            cfg.size_bytes >= set_bytes && cfg.size_bytes.is_multiple_of(set_bytes),
            "capacity must be a multiple of assoc × line"
        );
        let sets = cfg.size_bytes / set_bytes;
        Self {
            cfg,
            sets,
            tags: vec![u64::MAX; sets * cfg.assoc],
            stamps: vec![0; sets * cfg.assoc],
            clock: 0,
            accesses: 0,
            hits: 0,
        }
    }

    /// Simulates one access; returns `true` on hit. Misses install the
    /// line, evicting the set's LRU way.
    pub fn access(&mut self, addr: u64) -> bool {
        self.clock += 1;
        self.accesses += 1;
        let line = addr / self.cfg.line_bytes as u64;
        let set = (line % self.sets as u64) as usize;
        let base = set * self.cfg.assoc;
        let ways = &mut self.tags[base..base + self.cfg.assoc];
        if let Some(w) = ways.iter().position(|&t| t == line) {
            self.stamps[base + w] = self.clock;
            self.hits += 1;
            return true;
        }
        // Evict LRU way.
        let lru = (0..self.cfg.assoc).min_by_key(|&w| self.stamps[base + w]).expect("assoc >= 1");
        self.tags[base + lru] = line;
        self.stamps[base + lru] = self.clock;
        false
    }

    /// Accesses performed so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Hit count so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Hit rate in `[0, 1]` (0 when untouched).
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// A two-level (L1 → L2) hierarchy; L2 sees only L1 misses.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    /// First level.
    pub l1: CacheSim,
    /// Second level.
    pub l2: CacheSim,
    // Recent stream heads (a hardware prefetcher tracks several
    // independent sequential streams), at cache-line granularity;
    // round-robin replacement.
    streams: [u64; 8],
    next_stream: usize,
    irregular: u64,
    transitions: u64,
}

impl CacheHierarchy {
    /// Builds a hierarchy from two configs.
    pub fn new(l1: CacheConfig, l2: CacheConfig) -> Self {
        Self {
            l1: CacheSim::new(l1),
            l2: CacheSim::new(l2),
            streams: [u64::MAX - 1024; 8],
            next_stream: 0,
            irregular: 0,
            transitions: 0,
        }
    }

    /// Simulates one access through the hierarchy.
    ///
    /// Also tracks *irregularity* at cache-line-burst granularity — a
    /// proxy for the paper's replayed-to-issued-instruction metric
    /// (non-coalescable access streams replay on GPUs). Accesses that stay
    /// within a recently touched line cost nothing; moving to a *new* line
    /// is a transition, regular if the line is within ±4 lines of one of
    /// eight tracked stream heads (so interleaved sequential streams like
    /// a GEMM's A/B/C operands register as regular) and irregular
    /// otherwise. `irregularity()` is the irregular share of transitions.
    pub fn access(&mut self, addr: u64) {
        let line = addr / 64;
        if !self.streams.contains(&line) {
            self.transitions += 1;
            match self.streams.iter().position(|&s| line.abs_diff(s) <= 4) {
                Some(i) => self.streams[i] = line,
                None => {
                    self.irregular += 1;
                    self.streams[self.next_stream] = line;
                    self.next_stream = (self.next_stream + 1) % self.streams.len();
                }
            }
        }
        if !self.l1.access(addr) {
            self.l2.access(addr);
        }
    }

    /// Fraction of line transitions classified irregular (landed > 4 lines
    /// from every active stream head).
    pub fn irregularity(&self) -> f64 {
        if self.transitions == 0 {
            0.0
        } else {
            self.irregular as f64 / self.transitions as f64
        }
    }

    /// L2 hit rate over the accesses that reached it; `0.0` when L2 was
    /// never touched (perfect L1).
    pub fn l2_hit_rate(&self) -> f64 {
        self.l2.hit_rate()
    }
}

impl Default for CacheHierarchy {
    fn default() -> Self {
        Self::new(CacheConfig::l1_default(), CacheConfig::l2_default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits_after_first_miss() {
        let mut c = CacheSim::new(CacheConfig::l1_default());
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x1008)); // same line
        assert_eq!(c.hits(), 2);
        assert_eq!(c.accesses(), 3);
    }

    #[test]
    fn sequential_scan_has_high_hit_rate() {
        let mut c = CacheSim::new(CacheConfig::l1_default());
        for i in 0..10_000u64 {
            c.access(i * 4);
        }
        // One miss per 16 4-byte words in a 64-byte line.
        assert!(c.hit_rate() > 0.9, "hit rate {}", c.hit_rate());
    }

    #[test]
    fn random_large_footprint_thrashes() {
        let mut c = CacheSim::new(CacheConfig::l1_default());
        let mut x = 12345u64;
        for _ in 0..50_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            c.access(x % (64 * 1024 * 1024));
        }
        assert!(c.hit_rate() < 0.05, "hit rate {}", c.hit_rate());
    }

    #[test]
    fn lru_evicts_oldest() {
        // Direct-mapped single-set cache of 2 ways: A, B, then C evicts A.
        let cfg = CacheConfig { size_bytes: 128, assoc: 2, line_bytes: 64 };
        let mut c = CacheSim::new(cfg);
        assert!(!c.access(0)); // A
        assert!(!c.access(128)); // B (same set)
        assert!(!c.access(256)); // C evicts A
        assert!(c.access(128)); // B still resident
        assert!(!c.access(0)); // A was evicted
    }

    #[test]
    fn hierarchy_l2_catches_l1_misses() {
        let mut h = CacheHierarchy::default();
        // Working set bigger than L1 (32 KiB) but within L2 (1 MiB).
        let footprint = 256 * 1024u64;
        for _round in 0..4 {
            for a in (0..footprint).step_by(64) {
                h.access(a);
            }
        }
        assert!(h.l1.hit_rate() < 0.2, "L1 {}", h.l1.hit_rate());
        assert!(h.l2_hit_rate() > 0.5, "L2 {}", h.l2_hit_rate());
    }

    #[test]
    fn irregularity_separates_streams() {
        let mut seq = CacheHierarchy::default();
        for i in 0..10_000u64 {
            seq.access(i * 8);
        }
        let mut rnd = CacheHierarchy::default();
        let mut x = 99u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(7);
            rnd.access(x % (1 << 30));
        }
        assert!(seq.irregularity() < 0.01);
        assert!(rnd.irregularity() > 0.9);
    }

    #[test]
    #[should_panic(expected = "capacity must be a multiple")]
    fn bad_geometry_panics() {
        let _ = CacheSim::new(CacheConfig { size_bytes: 100, assoc: 2, line_bytes: 64 });
    }
}
