//! Hardware characterization substrate.
//!
//! The paper profiles its pipeline with the MICA Pintool (CPU dynamic
//! instruction mix, Fig. 9), hardware counters, and NVIDIA Nsight Compute
//! (GPU utilization, stall attribution — Figs. 3, 11, and the GPU columns
//! of Table III). None of those tools exist in this environment, so this
//! crate substitutes *models with measured inputs*:
//!
//! * [`ops`] — abstract operation accounting. Instrumented replicas of
//!   every kernel (in [`profile`]) re-execute the real algorithms while
//!   counting loads/stores/branches/integer/floating-point operations,
//!   reproducing the instruction-mix *ratios* of Fig. 9.
//! * [`cache`] — a set-associative LRU cache hierarchy simulator fed by
//!   the replicas' actual address streams, standing in for measured cache
//!   hit rates (Fig. 3).
//! * [`gpu`] — an analytic SIMT execution model (occupancy, roofline,
//!   kernel-launch and PCIe transfer costs, divergence penalties)
//!   calibrated to an Ampere-class part. It produces the GPU columns of
//!   Table III and the batching-speedup curve of Fig. 5. Absolute times
//!   are estimates; the *shape* (who wins where, saturation points) is the
//!   reproduction target.
//! * [`stalls`] — a feature-driven stall-attribution model reproducing the
//!   Fig. 11 breakdown from measured kernel features (irregularity,
//!   fp-intensity, occupancy).
//!
//! Every constant that was calibrated rather than measured is documented
//! at its definition.

pub mod cache;
pub mod cpu;
pub mod gpu;
pub mod ops;
pub mod profile;
pub mod stalls;

pub use cache::{CacheConfig, CacheHierarchy, CacheSim};
pub use cpu::CpuModel;
pub use gpu::{GpuEstimate, GpuModel};
pub use ops::{OpCounts, OpMix};
pub use profile::{KernelProfile, ProfileOptions};
pub use stalls::{KernelClass, StallBreakdown, StallCategory};
