//! `rwalk` — command-line driver for the pipeline and its experiments.
//!
//! ```text
//! rwalk datasets [--scale S]
//! rwalk linkpred  [--dataset NAME | --wel FILE] [--scale S] [--walks K]
//!                 [--len N] [--dim D] [--threads T] [--gpu] [--seed X]
//!                 [--sampler uniform|softmax|recency|linear] [--static]
//!                 [--engine auto|perwalk|batched|interleaved]
//!                 [--sampler-method auto|cdf|alias|rejection]
//!                 [--fused on|off|auto]
//! rwalk nodeclass [--dataset NAME] [--scale S] [--walks K] [--len N]
//!                 [--dim D] [--threads T] [--gpu] [--seed X]
//!                 [--sampler uniform|softmax|recency|linear] [--static]
//!                 [--engine auto|perwalk|batched|interleaved]
//!                 [--sampler-method auto|cdf|alias|rejection]
//!                 [--fused on|off|auto]
//! rwalk sweep     [--dataset NAME] [--scale S]   # Fig. 8 mini-sweep
//! rwalk profile   [--dataset NAME] [--scale S]   # instruction mix + stalls
//! rwalk serve     [--dataset NAME | --wel FILE | --graph-store FILE]
//!                 [--snapshot FILE] [--scale S] [--port P]
//!                 [--threads T] [--max-batch B] [--max-wait-us W]
//!                 [--refresh-ms R] [--io blocking|reactor] [--shards N]
//!                 [--shard-budget Q] [--max-conns C]
//!                 [--idle-timeout-ms I] [--smoke]
//! rwalk pack      [--dataset NAME | --wel FILE] [--scale S]
//!                 [--graph-out FILE] [--snapshot-out FILE] [walk flags]
//! rwalk inspect   FILE
//! ```
//!
//! `--sampler` selects the walk transition bias (default `softmax`, the
//! paper's Eq. 1); `--static` ignores timestamps entirely — the static
//! DeepWalk baseline. `--engine` selects the walk execution strategy and
//! `--sampler-method` the per-vertex transition-sampling method (defaults
//! `auto`; walks are bit-identical across engines and methods draw from
//! the same distribution, so both are pure performance knobs). Forcing a
//! table method (`alias`, `rejection`) on a closed-form bias (`uniform`,
//! `linear`) is rejected at parse time. `--scale`, `--walks`, `--len`,
//! and `--dim` must be positive. `--fused` controls the streaming
//! walk→train pipeline (DESIGN.md §16): `on` overlaps phases 1–2 behind
//! the bounded corpus channel, `off` materializes the corpus first, and
//! `auto` (default) fuses when the corpus is large enough to pay off.
//!
//! Every command additionally accepts `--metrics-out <path>`: it enables
//! the process-global metrics recorder and, after the command succeeds,
//! writes a JSON snapshot of every counter/gauge/histogram to `<path>` —
//! including the `pipeline_phase_ns{phase=…}` spans that reproduce the
//! paper's Fig. 7 phase breakdown (DESIGN.md §12).
//!
//! `serve` trains a link model and serves it over the JSON-lines TCP
//! protocol (see the README's "Serving" section); `--smoke` starts the
//! server on a loopback port, issues one query of each type against it,
//! prints the responses, and exits — the CI smoke test. `--io` selects
//! the transport: `reactor` (default; epoll event loop + `--shards`
//! consistent-hash query workers with `--shard-budget` admission
//! control, `--max-conns`, `--idle-timeout-ms`) or `blocking`
//! (thread-per-connection on `--threads` handlers, kept for A/B runs
//! with the `loadgen` bench binary).
//!
//! Persistence (README "Persistence", DESIGN.md §14): `pack` writes
//! store files — `--graph-out` the ingested graph plus its prepared
//! sampler tables, `--snapshot-out` a trained model snapshot; `inspect`
//! validates a store file and prints its section table. `--graph-store`
//! opens a packed graph (memory-mapped, zero-copy) instead of
//! re-ingesting a dataset, and `serve --snapshot` warm-restarts from a
//! packed snapshot without training — the first query answers in
//! milliseconds under the version the snapshot was packed with.

use std::process::ExitCode;

use rwalk_core::{Backend, EmbeddingStrategy, FusedMode, Hyperparams, Pipeline};
use twalk::{SamplingMethod, TransitionSampler, WalkEngine};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!(
            "usage: rwalk <datasets|linkpred|nodeclass|sweep|profile|serve|pack|inspect> [options]"
        );
        return ExitCode::FAILURE;
    };
    // `inspect` takes a positional file path, not flags; handle it before
    // the flag parser.
    if cmd == "inspect" {
        return match cmd_inspect(&args[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let opts = match Options::parse(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The recorder must be on before any phase runs; handles resolved
    // while it is off are permanent no-ops.
    if opts.metrics_out.is_some() {
        obs::set_global_enabled(true);
    }
    let result = match cmd.as_str() {
        "datasets" => cmd_datasets(&opts),
        "linkpred" => cmd_linkpred(&opts),
        "nodeclass" => cmd_nodeclass(&opts),
        "sweep" => cmd_sweep(&opts),
        "profile" => cmd_profile(&opts),
        "serve" => cmd_serve(&opts),
        "pack" => cmd_pack(&opts),
        other => Err(format!("unknown command {other:?}")),
    };
    let result = result.and_then(|()| write_metrics_snapshot(&opts));
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Dumps the global registry as JSON to `--metrics-out`, if requested.
fn write_metrics_snapshot(opts: &Options) -> Result<(), String> {
    let Some(path) = &opts.metrics_out else {
        return Ok(());
    };
    let json = obs::global_registry().snapshot().to_json();
    std::fs::write(path, json).map_err(|e| format!("--metrics-out {path}: {e}"))?;
    println!("metrics snapshot written to {path}");
    Ok(())
}

struct Options {
    dataset: String,
    wel: Option<String>,
    scale: f64,
    walks: usize,
    len: usize,
    dim: usize,
    threads: usize,
    seed: u64,
    gpu: bool,
    sampler: TransitionSampler,
    sampler_method: SamplingMethod,
    engine: WalkEngine,
    fused: FusedMode,
    static_walks: bool,
    port: u16,
    max_batch: usize,
    max_wait_us: u64,
    refresh_ms: u64,
    io: String,
    shards: usize,
    shard_budget: usize,
    max_conns: usize,
    idle_timeout_ms: u64,
    smoke: bool,
    metrics_out: Option<String>,
    graph_store: Option<String>,
    snapshot: Option<String>,
    graph_out: Option<String>,
    snapshot_out: Option<String>,
}

impl Options {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut o = Options {
            dataset: "ia-email".into(),
            wel: None,
            scale: 0.25,
            walks: 10,
            len: 6,
            dim: 8,
            threads: 0,
            seed: 42,
            gpu: false,
            sampler: TransitionSampler::Softmax,
            sampler_method: SamplingMethod::Auto,
            engine: WalkEngine::Auto,
            fused: FusedMode::Auto,
            static_walks: false,
            port: 7878,
            max_batch: 64,
            max_wait_us: 200,
            refresh_ms: 1_000,
            io: "reactor".into(),
            shards: 0,
            shard_budget: 1024,
            max_conns: 4096,
            idle_timeout_ms: 60_000,
            smoke: false,
            metrics_out: None,
            graph_store: None,
            snapshot: None,
            graph_out: None,
            snapshot_out: None,
        };
        let mut it = args.iter();
        while let Some(flag) = it.next() {
            let mut val = |name: &str| -> Result<String, String> {
                it.next().cloned().ok_or_else(|| format!("{name} needs a value"))
            };
            match flag.as_str() {
                "--dataset" => o.dataset = val("--dataset")?,
                "--wel" => o.wel = Some(val("--wel")?),
                "--scale" => {
                    o.scale = val("--scale")?.parse().map_err(|e| format!("--scale: {e}"))?
                }
                "--walks" => {
                    o.walks = val("--walks")?.parse().map_err(|e| format!("--walks: {e}"))?
                }
                "--len" => o.len = val("--len")?.parse().map_err(|e| format!("--len: {e}"))?,
                "--dim" => o.dim = val("--dim")?.parse().map_err(|e| format!("--dim: {e}"))?,
                "--threads" => {
                    o.threads = val("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?
                }
                "--seed" => o.seed = val("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?,
                "--gpu" => o.gpu = true,
                "--sampler" => {
                    o.sampler = val("--sampler")?.parse().map_err(|e| format!("--sampler: {e}"))?
                }
                "--sampler-method" => {
                    o.sampler_method = val("--sampler-method")?
                        .parse()
                        .map_err(|e| format!("--sampler-method: {e}"))?
                }
                "--engine" => {
                    o.engine = val("--engine")?.parse().map_err(|e| format!("--engine: {e}"))?
                }
                "--fused" => {
                    o.fused = match val("--fused")?.trim().to_ascii_lowercase().as_str() {
                        "on" => FusedMode::On,
                        "off" => FusedMode::Off,
                        "auto" => FusedMode::Auto,
                        other => {
                            return Err(format!(
                                "--fused: unknown mode {other:?} (valid values: on, off, auto)"
                            ))
                        }
                    }
                }
                "--static" => o.static_walks = true,
                "--port" => o.port = val("--port")?.parse().map_err(|e| format!("--port: {e}"))?,
                "--max-batch" => {
                    o.max_batch =
                        val("--max-batch")?.parse().map_err(|e| format!("--max-batch: {e}"))?
                }
                "--max-wait-us" => {
                    o.max_wait_us =
                        val("--max-wait-us")?.parse().map_err(|e| format!("--max-wait-us: {e}"))?
                }
                "--refresh-ms" => {
                    o.refresh_ms =
                        val("--refresh-ms")?.parse().map_err(|e| format!("--refresh-ms: {e}"))?
                }
                "--io" => o.io = val("--io")?.trim().to_ascii_lowercase(),
                "--shards" => {
                    o.shards = val("--shards")?.parse().map_err(|e| format!("--shards: {e}"))?
                }
                "--shard-budget" => {
                    o.shard_budget = val("--shard-budget")?
                        .parse()
                        .map_err(|e| format!("--shard-budget: {e}"))?
                }
                "--max-conns" => {
                    o.max_conns =
                        val("--max-conns")?.parse().map_err(|e| format!("--max-conns: {e}"))?
                }
                "--idle-timeout-ms" => {
                    o.idle_timeout_ms = val("--idle-timeout-ms")?
                        .parse()
                        .map_err(|e| format!("--idle-timeout-ms: {e}"))?
                }
                "--smoke" => o.smoke = true,
                "--metrics-out" => o.metrics_out = Some(val("--metrics-out")?),
                "--graph-store" => o.graph_store = Some(val("--graph-store")?),
                "--snapshot" => o.snapshot = Some(val("--snapshot")?),
                "--graph-out" => o.graph_out = Some(val("--graph-out")?),
                "--snapshot-out" => o.snapshot_out = Some(val("--snapshot-out")?),
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        // Zero values would make the pipeline panic deep inside (or
        // degenerate into an empty dataset); reject them here with flag
        // names attached.
        if !(o.scale.is_finite() && o.scale > 0.0) {
            return Err(format!("--scale must be a positive number, got {}", o.scale));
        }
        if o.walks == 0 {
            return Err("--walks must be at least 1".into());
        }
        if o.len == 0 {
            return Err("--len must be at least 1".into());
        }
        if o.dim == 0 {
            return Err("--dim must be at least 1".into());
        }
        if o.max_batch == 0 {
            return Err("--max-batch must be at least 1".into());
        }
        if o.refresh_ms == 0 {
            return Err("--refresh-ms must be at least 1".into());
        }
        if !matches!(o.io.as_str(), "blocking" | "reactor") {
            return Err(format!(
                "--io: unknown transport {:?} (valid values: blocking, reactor)",
                o.io
            ));
        }
        if o.shard_budget == 0 {
            return Err("--shard-budget must be at least 1".into());
        }
        if o.max_conns == 0 {
            return Err("--max-conns must be at least 1".into());
        }
        if o.idle_timeout_ms == 0 {
            return Err("--idle-timeout-ms must be at least 1".into());
        }
        if o.wel.is_some() && o.graph_store.is_some() {
            return Err("--wel and --graph-store are mutually exclusive graph sources".into());
        }
        // Cross-flag rules (e.g. `--sampler-method alias` needs a weighted
        // `--sampler`) live in WalkOptions::validate, the single authority
        // also used by library callers.
        twalk::WalkOptions::new(o.walks, o.len)
            .sampler(o.sampler)
            .sampler_method(o.sampler_method)
            .engine(o.engine)
            .validate()?;
        Ok(o)
    }

    fn hyperparams(&self) -> Hyperparams {
        let strategy = if self.static_walks {
            EmbeddingStrategy::StaticDeepWalk
        } else {
            EmbeddingStrategy::TemporalWalks
        };
        Hyperparams::paper_optimal()
            .with_walks_per_node(self.walks)
            .with_walk_length(self.len)
            .with_dim(self.dim)
            .with_threads(self.threads)
            .with_seed(self.seed)
            .with_sampler(self.sampler)
            .with_sampler_method(self.sampler_method)
            .with_engine(self.engine)
            .with_strategy(strategy)
            .with_fused(self.fused)
    }

    fn pipeline(&self) -> Pipeline {
        let p = Pipeline::new(self.hyperparams());
        if self.gpu {
            p.with_backend(Backend::GpuModel(perfmodel::GpuModel::ampere()))
        } else {
            p
        }
    }

    fn named_dataset(&self) -> Result<datasets::NamedDataset, String> {
        if let Some(path) = &self.wel {
            return datasets::load_wel(path, "custom").map_err(|e| e.to_string());
        }
        let d = match self.dataset.as_str() {
            "ia-email" => datasets::ia_email(self.scale),
            "wiki-talk" => datasets::wiki_talk(self.scale),
            "stackoverflow" => datasets::stackoverflow(self.scale),
            "dblp3" => datasets::dblp3(self.scale),
            "dblp5" => datasets::dblp5(self.scale),
            "brain" => datasets::brain(self.scale),
            other => return Err(format!("unknown dataset {other:?}")),
        };
        Ok(d)
    }

    /// The graph to operate on: a packed store file when `--graph-store`
    /// is given (opened zero-copy from the mapping), otherwise the named
    /// dataset (ingested and CSR-built from scratch).
    fn load_graph(&self) -> Result<(String, tgraph::TemporalGraph), String> {
        if let Some(path) = &self.graph_store {
            let t0 = std::time::Instant::now();
            let opened = store::open_graph(std::path::Path::new(path))
                .map_err(|e| format!("--graph-store {path}: {e}"))?;
            println!(
                "graph store {path}: {} bytes, {} in {:.1} ms",
                opened.file_len,
                if opened.mapped { "mapped" } else { "heap-loaded" },
                t0.elapsed().as_secs_f64() * 1e3
            );
            return Ok((format!("store:{path}"), opened.graph));
        }
        let d = self.named_dataset()?;
        Ok((d.name, d.graph))
    }
}

fn cmd_datasets(o: &Options) -> Result<(), String> {
    let ds = datasets::all(o.scale);
    println!("{}", datasets::table2(&ds));
    Ok(())
}

fn cmd_linkpred(o: &Options) -> Result<(), String> {
    let (name, graph) = o.load_graph()?;
    println!("dataset {} ({} nodes, {} edges)", name, graph.num_nodes(), graph.num_edges());
    let report = o.pipeline().run_link_prediction(&graph).map_err(|e| e.to_string())?;
    println!("{}", report.summary());
    Ok(())
}

fn cmd_nodeclass(o: &Options) -> Result<(), String> {
    if o.graph_store.is_some() {
        return Err("--graph-store holds no labels; node classification needs a labeled dataset \
             (dblp3/dblp5/brain)"
            .into());
    }
    let d = o.named_dataset()?;
    let labels = d
        .labels
        .as_ref()
        .ok_or_else(|| format!("dataset {} has no labels; pick dblp3/dblp5/brain", d.name))?;
    println!(
        "dataset {} ({} nodes, {} edges, {} classes)",
        d.name,
        d.graph.num_nodes(),
        d.graph.num_edges(),
        d.num_classes()
    );
    let report =
        o.pipeline().run_node_classification(&d.graph, labels).map_err(|e| e.to_string())?;
    println!("{}", report.summary());
    Ok(())
}

fn cmd_sweep(o: &Options) -> Result<(), String> {
    let d = o.named_dataset()?;
    println!("Fig. 8 mini-sweep on {}:", d.name);
    println!("| K | N | d | accuracy | AUC |");
    println!("|---|---|---|---|---|");
    for (k, n, dim) in [(1, 6, 8), (5, 6, 8), (10, 6, 8), (10, 2, 8), (10, 6, 2), (10, 6, 16)] {
        let hp =
            o.hyperparams().with_walks_per_node(k).with_walk_length(n).with_dim(dim).quick_test();
        let report = Pipeline::new(hp).run_link_prediction(&d.graph).map_err(|e| e.to_string())?;
        println!(
            "| {k} | {n} | {dim} | {:.3} | {:.3} |",
            report.metrics.accuracy,
            report.metrics.auc.unwrap_or(f64::NAN)
        );
    }
    Ok(())
}

fn cmd_profile(o: &Options) -> Result<(), String> {
    use perfmodel::profile::{
        profile_testing, profile_training, profile_walk, profile_word2vec, ProfileOptions,
    };
    use perfmodel::stalls::stall_breakdown;
    use perfmodel::{GpuModel, KernelClass};

    let d = o.named_dataset()?;
    let hp = o.hyperparams();
    println!("profiling {} ({} nodes, {} edges)", d.name, d.graph.num_nodes(), d.graph.num_edges());
    let opts = ProfileOptions::default();
    let walk_cfg = hp.walk_config();
    let walks = twalk::generate_walks(&d.graph, &walk_cfg, &hp.par_config());
    let gpu = GpuModel::ampere();

    let profiles = [
        (
            KernelClass::RandomWalk,
            profile_walk(&d.graph, &walk_cfg, &opts),
            d.graph.num_nodes() as f64,
        ),
        (
            KernelClass::Word2Vec,
            profile_word2vec(&walks, hp.dim, hp.window, hp.negatives, d.graph.num_nodes(), &opts),
            (16_384 * hp.dim) as f64,
        ),
        (
            KernelClass::Training,
            profile_training(&[2 * hp.dim, hp.hidden, 1], hp.batch_size, 128, &opts),
            (hp.batch_size * hp.hidden) as f64,
        ),
        (
            KernelClass::Testing,
            profile_testing(&[2 * hp.dim, hp.hidden, 1], 4_096, 1, &opts),
            (hp.hidden * hp.hidden) as f64,
        ),
    ];

    println!(
        "| kernel | memory % | branch % | compute % | other % | irregularity | dominant stall |"
    );
    println!("|---|---|---|---|---|---|---|");
    for (class, p, parallelism) in &profiles {
        let mix = p.ops.mix();
        let occ = gpu.estimate_profile(p, p.work_scale(), *parallelism, 1.0, 0.0).occupancy;
        let stalls = stall_breakdown(*class, p, occ);
        println!(
            "| {} | {:.1} | {:.1} | {:.1} | {:.1} | {:.2} | {:?} |",
            p.name,
            mix.memory * 100.0,
            mix.branch * 100.0,
            mix.compute * 100.0,
            mix.other * 100.0,
            p.irregularity,
            stalls.dominant(),
        );
    }
    Ok(())
}

fn cmd_serve(o: &Options) -> Result<(), String> {
    use rwalk_core::IncrementalEmbedder;
    use rwserve::{BatchPolicy, EmbeddingStore, Server, Service};
    use std::sync::Arc;
    use std::time::Duration;

    let hp = if o.smoke { o.hyperparams().quick_test() } else { o.hyperparams() };

    // Model source: a packed snapshot (warm restart, no training) or a
    // fresh training run on the graph.
    let (store, graph) = if let Some(path) = &o.snapshot {
        let t0 = std::time::Instant::now();
        let snap = store::open_snapshot(std::path::Path::new(path))
            .map_err(|e| format!("--snapshot {path}: {e}"))?;
        println!(
            "warm start from snapshot {path}: version {}, {} nodes x dim {}, {} in {:.1} ms",
            snap.version,
            snap.emb.num_nodes(),
            snap.emb.dim(),
            if snap.mapped { "mapped" } else { "heap-loaded" },
            t0.elapsed().as_secs_f64() * 1e3
        );
        if snap.emb.dim() != hp.dim {
            return Err(format!(
                "--snapshot {path} was packed with dim {} but --dim is {}; pass --dim {}",
                snap.emb.dim(),
                hp.dim,
                snap.emb.dim()
            ));
        }
        // A graph is only needed for the ingest/refresh path; without
        // one the server answers queries but rejects ingest.
        let graph = if o.graph_store.is_some() { Some(o.load_graph()?.1) } else { None };
        (Arc::new(EmbeddingStore::with_version(snap.version, snap.emb, snap.model)), graph)
    } else {
        let (name, graph) = o.load_graph()?;
        println!("dataset {} ({} nodes, {} edges)", name, graph.num_nodes(), graph.num_edges());
        println!("training link model...");
        let model =
            Pipeline::new(hp.clone()).train_link_model(&graph).map_err(|e| e.to_string())?;
        println!("{}", model.report.summary());
        (Arc::new(EmbeddingStore::new(model.emb, model.mlp)), Some(graph))
    };

    let policy =
        BatchPolicy { max_batch: o.max_batch, max_wait: Duration::from_micros(o.max_wait_us) };
    let mut service =
        Service::new(Arc::clone(&store), par::ParConfig::with_threads(o.threads), policy);
    let ingest_enabled = graph.is_some();
    if let Some(graph) = graph {
        // Warm restarts skip the initial refresh — the served embedding
        // comes from the snapshot; the embedder only runs when ingested
        // edges trigger a background cycle.
        let mut embedder = IncrementalEmbedder::new(hp, &graph);
        if o.snapshot.is_none() {
            // Warm the incremental embedder so background cycles are
            // dirty-vertex refreshes, not full rebuilds.
            embedder.refresh();
        }
        service = service.with_refresher(embedder, Duration::from_millis(o.refresh_ms));
    } else {
        println!("no graph source: ingest disabled (pass --graph-store to enable)");
    }
    let service = Arc::new(service);

    let addr = if o.smoke {
        "127.0.0.1:0".to_string() // OS-assigned port; smoke must not collide
    } else {
        format!("127.0.0.1:{}", o.port)
    };

    // `--io` selects the transport: the readiness-driven reactor
    // (default) or the thread-per-connection blocking server, kept for
    // A/B comparison (see `loadgen` in crates/bench).
    if o.io == "reactor" {
        let config = rwserve::ReactorConfig {
            shards: o.shards,
            shard_budget: o.shard_budget,
            max_conns: o.max_conns,
            idle_timeout: Duration::from_millis(o.idle_timeout_ms),
            ..rwserve::ReactorConfig::default()
        };
        let server = rwserve::ReactorServer::start(Arc::clone(&service), &addr, config)
            .map_err(|e| e.to_string())?;
        println!(
            "serving on {} (reactor, {} shards, budget {}, max {} conns)",
            server.local_addr(),
            config.resolved_shards(),
            config.shard_budget,
            config.max_conns
        );
        if o.smoke {
            return smoke_check(server.local_addr(), ingest_enabled);
        }
        // Serve until killed; the stats summary goes to stdout once a minute.
        loop {
            std::thread::sleep(Duration::from_secs(60));
            println!("{}", service.stats().summary());
        }
    }

    let threads = if o.threads == 0 { 4 } else { o.threads };
    let server = Server::start(Arc::clone(&service), &addr, threads).map_err(|e| e.to_string())?;
    println!("serving on {} (blocking, {} handler threads)", server.local_addr(), threads);

    if o.smoke {
        return smoke_check(server.local_addr(), ingest_enabled);
    }
    loop {
        std::thread::sleep(Duration::from_secs(60));
        println!("{}", service.stats().summary());
    }
}

fn cmd_pack(o: &Options) -> Result<(), String> {
    if o.graph_out.is_none() && o.snapshot_out.is_none() {
        return Err(
            "pack needs at least one output: --graph-out FILE and/or --snapshot-out FILE".into()
        );
    }
    if o.graph_store.is_some() {
        // Re-packing an already packed graph is a no-op round trip; the
        // flag combination is almost certainly a mistake.
        return Err(
            "pack ingests a dataset (--dataset/--wel); --graph-store is not a pack input".into()
        );
    }
    let d = o.named_dataset()?;
    println!("dataset {} ({} nodes, {} edges)", d.name, d.graph.num_nodes(), d.graph.num_edges());

    if let Some(path) = &o.graph_out {
        // Pack the graph together with the sampler tables the configured
        // bias/method policy would build, so opening skips preparation too.
        let prepared =
            twalk::SamplerBuilder::new(o.sampler).method(o.sampler_method).build(&d.graph);
        let t0 = std::time::Instant::now();
        let bytes =
            store::pack_graph_to_path(std::path::Path::new(path), &d.graph, Some(&prepared))
                .map_err(|e| format!("--graph-out {path}: {e}"))?;
        println!(
            "graph store written to {path}: {bytes} bytes ({} sampler table bytes) in {:.1} ms",
            prepared.stats().table_bytes,
            t0.elapsed().as_secs_f64() * 1e3
        );
    }

    if let Some(path) = &o.snapshot_out {
        println!("training link model...");
        let model =
            Pipeline::new(o.hyperparams()).train_link_model(&d.graph).map_err(|e| e.to_string())?;
        println!("{}", model.report.summary());
        let t0 = std::time::Instant::now();
        let bytes =
            store::pack_snapshot_to_path(std::path::Path::new(path), 1, &model.emb, &model.mlp)
                .map_err(|e| format!("--snapshot-out {path}: {e}"))?;
        println!(
            "snapshot written to {path}: {bytes} bytes (version 1) in {:.1} ms",
            t0.elapsed().as_secs_f64() * 1e3
        );
    }
    Ok(())
}

/// `rwalk inspect FILE` — validates a store file (all checksums) and
/// prints its header and section table.
fn cmd_inspect(args: &[String]) -> Result<(), String> {
    let [path] = args else {
        return Err("usage: rwalk inspect FILE".into());
    };
    let c = store::Container::open(std::path::Path::new(path))
        .map_err(|e| format!("inspect {path}: {e}"))?;
    println!(
        "{path}: {} store, {} bytes, {} sections, all checksums ok",
        match c.kind() {
            store::ArtifactKind::Graph => "graph",
            store::ArtifactKind::Snapshot => "snapshot",
        },
        c.file_len(),
        c.sections().len()
    );
    println!("| section | offset | bytes | elem | checksum |");
    println!("|---|---|---|---|---|");
    for s in c.sections() {
        println!(
            "| {} | {} | {} | {} | {:#018x} |",
            s.name_str(),
            s.offset,
            s.len,
            s.elem_size,
            s.checksum
        );
    }
    match c.kind() {
        store::ArtifactKind::Graph => {
            let meta = c.u64s("meta").map_err(|e| e.to_string())?;
            println!("graph: {} nodes, {} edges", meta[0], meta[1]);
            if c.has_section("smet") {
                let s = c.u64s("smet").map_err(|e| e.to_string())?;
                let bias = match s[0] {
                    0 => "uniform".to_string(),
                    1 => "linear".to_string(),
                    2 => "softmax".to_string(),
                    3 => "recency".to_string(),
                    other => format!("unknown({other})"),
                };
                println!(
                    "sampler: {bias} (cdf={}, alias={}, rejection={} vertices)",
                    s[3], s[4], s[5]
                );
            } else {
                println!("sampler: none packed");
            }
        }
        store::ArtifactKind::Snapshot => {
            let meta = c.u64s("meta").map_err(|e| e.to_string())?;
            println!(
                "snapshot: version {}, {} nodes x dim {}, {} layers, head {}",
                meta[0],
                meta[1],
                meta[2],
                meta[5],
                if meta[3] == 0 { "binary" } else { "multiclass" }
            );
        }
    }
    Ok(())
}

/// One query of each protocol op against the live server (either
/// transport — only the address matters); any failure is a hard error.
/// This is the CI smoke test behind `rwalk serve --smoke`. A server
/// without a graph source has no refresher, so `ingest` is expected to
/// answer with its structured "unavailable" error instead.
fn smoke_check(addr: std::net::SocketAddr, ingest_enabled: bool) -> Result<(), String> {
    use std::io::{BufRead, BufReader, Write};
    use std::net::TcpStream;

    let mut stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let requests = [
        r#"{"op":"link_score","u":0,"v":1}"#,
        r#"{"op":"embedding","u":0}"#,
        r#"{"op":"topk","u":0,"k":3}"#,
        r#"{"op":"ingest","edges":[[0,1,0.99]]}"#,
        r#"{"op":"stats"}"#,
        r#"{"op":"metrics"}"#,
    ];
    for request in requests {
        stream.write_all(format!("{request}\n").as_bytes()).map_err(|e| e.to_string())?;
        let mut response = String::new();
        reader.read_line(&mut response).map_err(|e| e.to_string())?;
        let response = response.trim();
        println!("> {request}");
        println!("< {response}");
        if request.contains("ingest") && !ingest_enabled {
            if !response.contains("ingest unavailable") {
                return Err(format!("expected ingest-unavailable error, got: {response}"));
            }
            continue;
        }
        if !response.contains("\"ok\":true") {
            return Err(format!("smoke query failed: {request} -> {response}"));
        }
        if request.contains("metrics") && !response.contains("serve_request_ns") {
            return Err(format!("metrics scrape has no latency histograms: {response}"));
        }
    }
    println!("smoke: all {} protocol ops answered ok", requests.len());
    Ok(())
}
