//! Black-box tests for the `rwalk` binary: exit codes and stderr for
//! every rejected flag combination, plus the `--metrics-out` snapshot.
//!
//! These run the real binary (`CARGO_BIN_EXE_rwalk`), so they cover the
//! whole arg-parsing path including the exhaustive "valid values" error
//! listings from the `FromStr` impls in `twalk::config`.

use std::process::{Command, Output};

fn rwalk(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rwalk")).args(args).output().expect("spawn rwalk")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn rejected_flag_combinations_fail_with_explanations() {
    // (args, substring that must appear on stderr)
    let cases: &[(&[&str], &str)] = &[
        // Unknown sampler/engine spellings list every valid value.
        (&["linkpred", "--sampler", "sofmax"], "valid values"),
        (&["linkpred", "--sampler", "sofmax"], "uniform, softmax, recency"),
        (&["linkpred", "--sampler", ""], "valid values"),
        (&["nodeclass", "--dataset", "dblp3", "--sampler", "temporal"], "unknown sampler"),
        (&["linkpred", "--engine", "batch"], "valid values"),
        (&["linkpred", "--engine", "batch"], "auto, perwalk"),
        (&["linkpred", "--engine", "gpu"], "unknown engine"),
        (&["linkpred", "--sampler-method", "vose"], "unknown sampling method"),
        (&["linkpred", "--sampler-method", "vose"], "auto, cdf, alias, rejection"),
        (&["linkpred", "--fused", "yes"], "valid values: on, off, auto"),
        (&["linkpred", "--fused", ""], "--fused"),
        (&["linkpred", "--fused"], "--fused needs a value"),
        // Forcing a table method on a closed-form bias is a cross-flag
        // error caught at parse time, whichever order the flags come in.
        (&["linkpred", "--sampler", "uniform", "--sampler-method", "alias"], "closed form"),
        (&["linkpred", "--sampler-method", "rejection", "--sampler", "linear"], "closed form"),
        // Degenerate numeric values are rejected with the flag named.
        (&["linkpred", "--scale", "0"], "--scale"),
        (&["linkpred", "--scale", "-1"], "--scale"),
        (&["linkpred", "--scale", "NaN"], "--scale"),
        (&["linkpred", "--scale", "x"], "--scale"),
        (&["linkpred", "--walks", "0"], "--walks"),
        (&["linkpred", "--len", "0"], "--len"),
        (&["linkpred", "--dim", "0"], "--dim"),
        (&["linkpred", "--walks", "-3"], "--walks"),
        (&["serve", "--max-batch", "0"], "--max-batch"),
        (&["serve", "--refresh-ms", "0"], "--refresh-ms"),
        // Reactor transport flags.
        (&["serve", "--io", "uring"], "valid values: blocking, reactor"),
        (&["serve", "--io", ""], "--io"),
        (&["serve", "--io"], "--io needs a value"),
        (&["serve", "--shard-budget", "0"], "--shard-budget"),
        (&["serve", "--max-conns", "0"], "--max-conns"),
        (&["serve", "--idle-timeout-ms", "0"], "--idle-timeout-ms"),
        (&["serve", "--shards", "-1"], "--shards"),
        // Structural errors.
        (&["linkpred", "--no-such-flag"], "unknown flag"),
        (&["linkpred", "--sampler"], "--sampler needs a value"),
        (&["linkpred", "--metrics-out"], "--metrics-out needs a value"),
        (&["frobnicate"], "unknown command"),
        (&["linkpred", "--dataset", "no-such-dataset", "--scale", "0.05"], "unknown dataset"),
        (&["nodeclass", "--dataset", "ia-email", "--scale", "0.05"], "no labels"),
        // Store flags: conflicting sources, missing outputs, missing files.
        (&["serve", "--wel", "edges.wel", "--graph-store", "g.rws"], "mutually exclusive"),
        (&["pack", "--dataset", "ia-email"], "pack needs at least one output"),
        (&["pack", "--graph-store", "g.rws", "--graph-out", "o.rws"], "not a pack input"),
        (&["linkpred", "--graph-store", "/no/such/graph.rws"], "--graph-store /no/such/graph.rws"),
        (
            &["serve", "--snapshot", "/no/such/model.rws", "--smoke"],
            "--snapshot /no/such/model.rws",
        ),
        (&["nodeclass", "--graph-store", "g.rws"], "holds no labels"),
        (&["inspect"], "usage: rwalk inspect FILE"),
        (&["inspect", "a.rws", "b.rws"], "usage: rwalk inspect FILE"),
    ];
    for (args, needle) in cases {
        let out = rwalk(args);
        assert!(!out.status.success(), "rwalk {args:?} unexpectedly succeeded");
        let err = stderr(&out);
        assert!(err.contains(needle), "rwalk {args:?}: stderr {err:?} missing {needle:?}");
    }

    // No arguments at all prints usage and fails.
    let out = rwalk(&[]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("usage:"), "{}", stderr(&out));
}

#[test]
fn store_paths_that_are_not_valid_store_files_are_rejected() {
    let dir = std::env::temp_dir().join(format!("rwalk-badstore-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let dir_s = dir.to_str().unwrap().to_owned();

    // A directory is not a store file: rejected up front, not mmapped.
    let out = rwalk(&["inspect", &dir_s]);
    assert!(!out.status.success(), "inspect on a directory succeeded");
    assert!(stderr(&out).contains(&format!("inspect {dir_s}")), "{}", stderr(&out));

    // A file with the wrong magic is rejected with the bytes named.
    let garbage = dir.join("garbage.rws");
    std::fs::write(&garbage, b"not a store file at all, sorry. ".repeat(4)).unwrap();
    let garbage_s = garbage.to_str().unwrap();
    for args in [
        vec!["inspect", garbage_s],
        vec!["linkpred", "--graph-store", garbage_s],
        vec!["serve", "--snapshot", garbage_s, "--smoke"],
    ] {
        let out = rwalk(&args);
        assert!(!out.status.success(), "rwalk {args:?} accepted garbage");
        assert!(stderr(&out).contains("not a store file"), "rwalk {args:?}: {}", stderr(&out));
    }

    // A truncated-but-magic-prefixed file fails the structural checks.
    let truncated = dir.join("truncated.rws");
    std::fs::write(&truncated, b"RWSTORE\0only a header fragment").unwrap();
    let out = rwalk(&["inspect", truncated.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(stderr(&out).contains("truncated"), "{}", stderr(&out));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn accepted_spellings_are_case_and_separator_insensitive() {
    // `datasets` runs no pipeline, so this stays fast while still going
    // through the same Options::parse path.
    for args in [
        ["datasets", "--sampler", "SOFTMAX"],
        ["datasets", "--sampler", "linear_time"],
        ["datasets", "--engine", "Per_Walk"],
        ["datasets", "--engine", "BATCHED"],
        ["datasets", "--engine", "Interleaved"],
        ["datasets", "--sampler-method", "ALIAS"],
        ["datasets", "--sampler-method", " Rejection "],
        ["datasets", "--fused", "ON"],
        ["datasets", "--fused", " Off "],
        ["datasets", "--fused", "auto"],
    ] {
        let out = rwalk(&args);
        assert!(out.status.success(), "rwalk {args:?} failed: {}", stderr(&out));
    }
}

#[test]
fn metrics_out_snapshot_has_all_pipeline_phases() {
    let dir = std::env::temp_dir().join(format!("rwalk-metrics-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("metrics.json");
    let path_s = path.to_str().unwrap();

    let out = rwalk(&[
        "linkpred",
        "--dataset",
        "ia-email",
        "--scale",
        "0.05",
        "--walks",
        "2",
        "--len",
        "4",
        "--dim",
        "4",
        "--metrics-out",
        path_s,
    ]);
    assert!(
        out.status.success(),
        "linkpred failed: {}\n{}",
        stderr(&out),
        String::from_utf8_lossy(&out.stdout)
    );

    let text = std::fs::read_to_string(&path).expect("snapshot written");
    let v = rwserve::json::Json::parse(&text).expect("snapshot is valid JSON");
    let histograms = v.get("histograms").expect("histograms section");
    for phase in ["rw_p1_walk", "rw_p2_word2vec", "rw_p3_train", "rw_p4_test"] {
        let name = format!("pipeline_phase_ns{{phase=\"{phase}\"}}");
        let h = histograms.get(&name).unwrap_or_else(|| panic!("missing {name} in {text}"));
        let sum = h.get("sum").and_then(rwserve::json::Json::as_f64).unwrap();
        assert!(sum > 0.0, "phase {phase} recorded zero duration: {text}");
        assert_eq!(h.get("count").and_then(rwserve::json::Json::as_u64), Some(1), "{name}");
    }
    // The walk engine's own counters rode along.
    let counters = v.get("counters").expect("counters section");
    let walks = counters.get("twalk_walks_total").and_then(rwserve::json::Json::as_u64).unwrap();
    assert!(walks > 0, "no walks counted: {text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn without_metrics_out_no_snapshot_is_written_and_runs_succeed() {
    let out = rwalk(&["datasets", "--scale", "0.05"]);
    assert!(out.status.success(), "{}", stderr(&out));
    assert!(!String::from_utf8_lossy(&out.stdout).contains("metrics snapshot"));
}
