//! End-to-end warm restart through the real binary: `pack` a graph
//! store and a trained model snapshot, then launch `serve --snapshot`
//! twice and assert the server answers its first queries **without
//! training**, with identical versions and scores across relaunches,
//! and that the store open path shows up in the obs metrics snapshot.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn rwalk(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_rwalk")).args(args).output().expect("spawn rwalk")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rwalk-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Packs both artifacts once for the process and returns their paths.
fn pack_artifacts(dir: &Path) -> (String, String) {
    let graph = dir.join("graph.rws").to_str().unwrap().to_owned();
    let snap = dir.join("model.rws").to_str().unwrap().to_owned();
    let out = rwalk(&[
        "pack",
        "--dataset",
        "ia-email",
        "--scale",
        "0.05",
        "--walks",
        "2",
        "--len",
        "4",
        "--dim",
        "4",
        "--graph-out",
        &graph,
        "--snapshot-out",
        &snap,
    ]);
    assert!(out.status.success(), "pack failed: {}\n{}", stderr(&out), stdout(&out));
    let text = stdout(&out);
    assert!(text.contains("graph store written to"), "{text}");
    assert!(text.contains("snapshot written to"), "{text}");
    (graph, snap)
}

/// One `serve --snapshot --smoke` run; returns (full stdout, the "< "
/// response lines for the three deterministic pre-ingest queries).
fn serve_once(graph: &str, snap: &str, metrics: &str) -> (String, Vec<String>) {
    let out = rwalk(&[
        "serve",
        "--snapshot",
        snap,
        "--graph-store",
        graph,
        "--dim",
        "4",
        "--refresh-ms",
        "600000", // keep the background refresher quiet during smoke
        "--smoke",
        "--metrics-out",
        metrics,
    ]);
    assert!(out.status.success(), "serve failed: {}\n{}", stderr(&out), stdout(&out));
    let text = stdout(&out);
    // Warm restart means the model comes from the file, not a training
    // run: the training banner must not appear.
    assert!(text.contains("warm start from snapshot"), "{text}");
    assert!(!text.contains("training link model"), "warm start trained anyway: {text}");
    assert!(text.contains("smoke: all 6 protocol ops answered ok"), "{text}");
    // link_score, embedding, topk come before the ingest op, so they
    // are read-only against the packed snapshot and fully deterministic.
    let responses: Vec<String> =
        text.lines().filter(|l| l.starts_with("< ")).take(3).map(str::to_owned).collect();
    assert_eq!(responses.len(), 3, "{text}");
    (text, responses)
}

#[test]
fn warm_restart_answers_identically_across_relaunches() {
    let dir = temp_dir("warm");
    let (graph, snap) = pack_artifacts(&dir);

    let m1 = dir.join("m1.json").to_str().unwrap().to_owned();
    let m2 = dir.join("m2.json").to_str().unwrap().to_owned();
    let (_, first) = serve_once(&graph, &snap, &m1);
    let (_, second) = serve_once(&graph, &snap, &m2);

    // The packed snapshot carries version 1; every pre-ingest answer is
    // served from it verbatim.
    for r in &first {
        assert!(r.contains("\"version\":1"), "response not from snapshot version: {r}");
        assert!(r.contains("\"ok\":true"), "{r}");
    }
    // Kill + relaunch is invisible: scores, embeddings, and neighbor
    // rankings are byte-identical between the two server lifetimes.
    assert_eq!(first, second, "relaunched server answered differently");

    // The open path went through the store spans: both artifact kinds
    // recorded a load-time histogram and per-section byte counters.
    // (Label quotes appear JSON-escaped inside the snapshot keys.)
    let metrics = std::fs::read_to_string(&m1).expect("metrics snapshot");
    for needle in [
        r#"store_load_ns{kind=\"snapshot\"}"#,
        r#"store_load_ns{kind=\"graph\"}"#,
        r#"store_bytes{section=\"goff\"}"#,
        r#"store_bytes{section=\"embd\"}"#,
        "store_open_total",
    ] {
        assert!(metrics.contains(needle), "metrics snapshot missing {needle}: {metrics}");
    }

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_only_serve_answers_queries_and_rejects_ingest() {
    let dir = temp_dir("warm-noingest");
    let (_, snap) = pack_artifacts(&dir);

    // No --graph-store: the server has nothing to re-embed from, so it
    // must say so up front and answer ingest with a structured error
    // while still serving reads from the snapshot.
    let out = rwalk(&["serve", "--snapshot", &snap, "--dim", "4", "--smoke"]);
    assert!(out.status.success(), "serve failed: {}\n{}", stderr(&out), stdout(&out));
    let text = stdout(&out);
    assert!(text.contains("ingest disabled"), "{text}");
    assert!(text.contains("ingest unavailable"), "{text}");
    assert!(!text.contains("training link model"), "{text}");
    assert!(text.contains("smoke: all 6 protocol ops answered ok"), "{text}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_dim_mismatch_is_rejected_with_the_fix_spelled_out() {
    let dir = temp_dir("warm-dim");
    let (_, snap) = pack_artifacts(&dir);

    // The snapshot was packed with dim 4; serving with the default dim
    // must fail fast (before any thread spawns) and name the flag.
    let out = rwalk(&["serve", "--snapshot", &snap, "--smoke"]);
    assert!(!out.status.success(), "dim mismatch unexpectedly accepted");
    let err = stderr(&out);
    assert!(err.contains("pass --dim 4"), "unhelpful dim error: {err}");

    std::fs::remove_dir_all(&dir).ok();
}
