//! Multi-layer perceptron with manual backpropagation.

// Indexed loops over parallel arrays are the intended idiom here.
#![allow(clippy::needless_range_loop)]

use crate::gemm::{matmul, matmul_transb};
use crate::Tensor2;

/// Output head of an [`Mlp`], fixing the final activation and loss.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputHead {
    /// Single-logit sigmoid output trained with binary cross-entropy —
    /// the paper's link prediction head (Eq. 4).
    Binary,
    /// `C`-logit log-softmax output trained with negative log-likelihood —
    /// the paper's node classification head.
    MultiClass,
}

/// A feed-forward neural network with ReLU hidden layers.
///
/// `dims` gives the layer widths including input and output, so the
/// paper's 2-layer link prediction FNN over `2d`-dimensional edge features
/// is `Mlp::new(&[2 * d, hidden, 1], OutputHead::Binary, seed)` and the
/// 3-layer node classification FNN is
/// `Mlp::new(&[d, h1, h2, C], OutputHead::MultiClass, seed)`.
///
/// Optional residual (skip) connections on equal-width hidden layers
/// implement the ResNet-style variant the paper suggests in §VIII-A.
#[derive(Debug, Clone)]
pub struct Mlp {
    weights: Vec<Tensor2>, // layer i: dims[i] × dims[i+1]
    biases: Vec<Tensor2>,  // layer i: 1 × dims[i+1]
    head: OutputHead,
    residual: bool,
}

impl Mlp {
    /// Creates a network with Xavier-initialized weights.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dims are given, any dim is zero, or a
    /// `Binary` head is requested with output width ≠ 1.
    pub fn new(dims: &[usize], head: OutputHead, seed: u64) -> Self {
        assert!(dims.len() >= 2, "need at least input and output dims");
        assert!(dims.iter().all(|&d| d > 0), "zero-width layer");
        if head == OutputHead::Binary {
            assert_eq!(*dims.last().unwrap(), 1, "binary head needs one output");
        }
        let mut weights = Vec::new();
        let mut biases = Vec::new();
        for (i, w) in dims.windows(2).enumerate() {
            weights.push(Tensor2::xavier(w[0], w[1], seed.wrapping_add(i as u64)));
            biases.push(Tensor2::zeros(1, w[1]));
        }
        Self { weights, biases, head, residual: false }
    }

    /// Enables ResNet-style skip connections on hidden layers whose input
    /// and output widths match (paper §VIII-A extension).
    #[must_use]
    pub fn with_residual(mut self, yes: bool) -> Self {
        self.residual = yes;
        self
    }

    /// Rebuilds a network from explicit parameters — the import path for
    /// the persistent storage layer, which round-trips a trained model
    /// through a snapshot file. Shapes are *checked*, not assumed: the
    /// same chaining and head invariants [`Mlp::new`] constructs must
    /// hold, or an `Err` comes back (never a panic on file data).
    pub fn from_parts(
        weights: Vec<Tensor2>,
        biases: Vec<Tensor2>,
        head: OutputHead,
        residual: bool,
    ) -> Result<Self, String> {
        if weights.is_empty() {
            return Err("network needs at least one layer".into());
        }
        if weights.len() != biases.len() {
            return Err(format!("{} weight layers but {} bias rows", weights.len(), biases.len()));
        }
        for (i, (w, b)) in weights.iter().zip(&biases).enumerate() {
            if w.rows() == 0 || w.cols() == 0 {
                return Err(format!("layer {i} has a zero dimension"));
            }
            if b.shape() != (1, w.cols()) {
                return Err(format!(
                    "layer {i} bias shape {:?} does not match weight columns {}",
                    b.shape(),
                    w.cols()
                ));
            }
            if i + 1 < weights.len() && weights[i + 1].rows() != w.cols() {
                return Err(format!(
                    "layer {} input width {} does not chain from layer {i} output {}",
                    i + 1,
                    weights[i + 1].rows(),
                    w.cols()
                ));
            }
        }
        if head == OutputHead::Binary && weights.last().expect("nonempty").cols() != 1 {
            return Err("binary head needs one output".into());
        }
        Ok(Self { weights, biases, head, residual })
    }

    /// Layer widths including input and output — the `dims` that
    /// [`Mlp::new`] was (or could have been) called with.
    pub fn layer_dims(&self) -> Vec<usize> {
        let mut dims = Vec::with_capacity(self.weights.len() + 1);
        dims.push(self.weights[0].rows());
        dims.extend(self.weights.iter().map(Tensor2::cols));
        dims
    }

    /// The per-layer weight matrices (`dims[i] × dims[i+1]`).
    pub fn weights(&self) -> &[Tensor2] {
        &self.weights
    }

    /// The per-layer bias rows (`1 × dims[i+1]`).
    pub fn biases(&self) -> &[Tensor2] {
        &self.biases
    }

    /// Whether residual (skip) connections are enabled.
    pub fn residual(&self) -> bool {
        self.residual
    }

    /// Number of weight layers.
    pub fn num_layers(&self) -> usize {
        self.weights.len()
    }

    /// Input feature width (`dims[0]`) — what a serving layer must feed
    /// each row of the forward batch.
    pub fn input_dim(&self) -> usize {
        self.weights[0].rows()
    }

    /// Output width (`dims.last()`): 1 for a binary head, `C` for
    /// multi-class.
    pub fn output_dim(&self) -> usize {
        self.weights.last().expect("at least one layer").cols()
    }

    /// Output head.
    pub fn head(&self) -> OutputHead {
        self.head
    }

    /// Total trainable parameter count.
    pub fn num_params(&self) -> usize {
        self.weights.iter().map(Tensor2::len).sum::<usize>()
            + self.biases.iter().map(Tensor2::len).sum::<usize>()
    }

    /// Mutable references to all parameters interleaved as
    /// `[W0, b0, W1, b1, …]`, matching the gradient order returned by the
    /// loss functions — hand both to [`crate::Sgd::step`].
    pub fn params_mut(&mut self) -> Vec<&mut Tensor2> {
        let mut out = Vec::with_capacity(self.weights.len() * 2);
        for (w, b) in self.weights.iter_mut().zip(self.biases.iter_mut()) {
            out.push(w);
            out.push(b);
        }
        out
    }

    fn layer_has_residual(&self, i: usize) -> bool {
        self.residual
            && i + 1 < self.weights.len() // hidden layers only
            && self.weights[i].rows() == self.weights[i].cols()
    }

    /// Forward pass returning raw logits (`batch × out`).
    pub fn forward(&self, x: &Tensor2) -> Tensor2 {
        let (_, _, logits) = self.forward_cached(x);
        logits
    }

    /// Forward pass keeping per-layer pre-activations `z` and activations
    /// `a` for backprop. Returns `(zs, activations, logits)` where
    /// `activations[0]` is the input.
    fn forward_cached(&self, x: &Tensor2) -> (Vec<Tensor2>, Vec<Tensor2>, Tensor2) {
        let l = self.weights.len();
        let mut zs = Vec::with_capacity(l);
        let mut acts: Vec<Tensor2> = Vec::with_capacity(l + 1);
        acts.push(x.clone());
        // Per-layer GEMM timing (RW-P3/P4 breakdown): one relaxed bool
        // load per forward when disabled; clock reads and registry
        // lookups happen only while a recorder is listening, and a GEMM
        // is µs-scale so the lookup is noise even then.
        let rec = obs::Recorder::global();
        let timing = rec.is_enabled();
        for i in 0..l {
            let t0 = timing.then(std::time::Instant::now);
            let mut z = matmul(&acts[i], &self.weights[i]);
            if let Some(t0) = t0 {
                rec.record_duration(&format!("nn_gemm_ns{{layer=\"{i}\"}}"), t0.elapsed());
            }
            z.add_bias_row(self.biases[i].as_slice());
            let is_last = i + 1 == l;
            if is_last {
                let logits = z.clone();
                zs.push(z);
                return (zs, acts, logits);
            }
            let mut a = z.clone();
            for v in a.as_mut_slice() {
                if *v < 0.0 {
                    *v = 0.0;
                }
            }
            if self.layer_has_residual(i) {
                let prev = acts[i].clone();
                a.axpy(1.0, &prev);
            }
            zs.push(z);
            acts.push(a);
        }
        unreachable!("loop returns at the last layer")
    }

    /// Mean binary cross-entropy loss and parameter gradients for targets
    /// `y ∈ {0, 1}` (paper Eq. 4). Gradients are ordered like
    /// [`params_mut`](Self::params_mut).
    ///
    /// # Panics
    ///
    /// Panics if the head is not [`OutputHead::Binary`] or
    /// `y.len() != x.rows()`.
    pub fn loss_and_grads_binary(&self, x: &Tensor2, y: &[f32]) -> (f32, Vec<Tensor2>) {
        assert_eq!(self.head, OutputHead::Binary, "binary loss on non-binary head");
        assert_eq!(y.len(), x.rows(), "target count mismatch");
        let (zs, acts, logits) = self.forward_cached(x);
        let batch = x.rows() as f32;

        // Numerically stable BCE-with-logits:
        // loss = max(z, 0) - z*y + ln(1 + exp(-|z|)); dL/dz = sigmoid(z) - y.
        let mut loss = 0.0f32;
        let mut delta = Tensor2::zeros(x.rows(), 1);
        for r in 0..x.rows() {
            let z = logits.get(r, 0);
            let t = y[r];
            loss += z.max(0.0) - z * t + (-z.abs()).exp().ln_1p();
            let p = sigmoid(z);
            delta.set(r, 0, (p - t) / batch);
        }
        loss /= batch;
        (loss, self.backward(&zs, &acts, delta))
    }

    /// Mean negative log-likelihood loss and gradients for integer class
    /// labels (paper's node classification loss).
    ///
    /// # Panics
    ///
    /// Panics if the head is not [`OutputHead::MultiClass`], a label is out
    /// of range, or `labels.len() != x.rows()`.
    pub fn loss_and_grads_multiclass(&self, x: &Tensor2, labels: &[usize]) -> (f32, Vec<Tensor2>) {
        assert_eq!(self.head, OutputHead::MultiClass, "multiclass loss on wrong head");
        assert_eq!(labels.len(), x.rows(), "label count mismatch");
        let (zs, acts, logits) = self.forward_cached(x);
        let classes = logits.cols();
        let batch = x.rows() as f32;

        let mut loss = 0.0f32;
        let mut delta = Tensor2::zeros(x.rows(), classes);
        for r in 0..x.rows() {
            let row = logits.row(r);
            let label = labels[r];
            assert!(label < classes, "label {label} out of range for {classes} classes");
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let lse = max + row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln();
            loss += lse - row[label];
            for c in 0..classes {
                let softmax = (row[c] - lse).exp();
                let onehot = if c == label { 1.0 } else { 0.0 };
                delta.set(r, c, (softmax - onehot) / batch);
            }
        }
        loss /= batch;
        (loss, self.backward(&zs, &acts, delta))
    }

    /// Backpropagates `delta = dL/d(logits)` through the cached forward
    /// pass, returning gradients ordered `[gW0, gb0, gW1, gb1, …]`.
    fn backward(&self, zs: &[Tensor2], acts: &[Tensor2], delta_out: Tensor2) -> Vec<Tensor2> {
        let l = self.weights.len();
        let mut grads = vec![Tensor2::zeros(0, 0); l * 2];
        let mut grad_a = delta_out; // dL/dz at the output layer already.

        for i in (0..l).rev() {
            let is_last = i + 1 == l;
            let delta = if is_last {
                grad_a.clone()
            } else {
                // ReLU mask from the stored pre-activation.
                let mut d = grad_a.clone();
                for (v, &z) in d.as_mut_slice().iter_mut().zip(zs[i].as_slice()) {
                    if z <= 0.0 {
                        *v = 0.0;
                    }
                }
                d
            };

            // gW = aᵀ · delta; gb = column sums of delta.
            let at = acts[i].transposed();
            grads[2 * i] = matmul(&at, &delta);
            let mut gb = Tensor2::zeros(1, delta.cols());
            for r in 0..delta.rows() {
                for c in 0..delta.cols() {
                    gb.set(0, c, gb.get(0, c) + delta.get(r, c));
                }
            }
            grads[2 * i + 1] = gb;

            if i > 0 {
                // grad wrt previous activation: delta · Wᵀ (+ identity path
                // when this layer had a residual connection). W is in×out,
                // so matmul_transb(delta, W) = delta · Wᵀ.
                let mut prev = matmul_transb(&delta, &self.weights[i]);
                if self.layer_has_residual(i) {
                    prev.axpy(1.0, &grad_a);
                }
                grad_a = prev;
            }
        }
        grads
    }

    /// Predicted positive-class probabilities for a binary head.
    ///
    /// # Panics
    ///
    /// Panics if the head is not [`OutputHead::Binary`].
    pub fn predict_proba(&self, x: &Tensor2) -> Vec<f32> {
        assert_eq!(self.head, OutputHead::Binary, "predict_proba needs binary head");
        let logits = self.forward(x);
        (0..x.rows()).map(|r| sigmoid(logits.get(r, 0))).collect()
    }

    /// Predicted class index per row for a multi-class head.
    ///
    /// # Panics
    ///
    /// Panics if the head is not [`OutputHead::MultiClass`].
    pub fn predict_class(&self, x: &Tensor2) -> Vec<usize> {
        assert_eq!(self.head, OutputHead::MultiClass, "predict_class needs multiclass head");
        let logits = self.forward(x);
        (0..x.rows())
            .map(|r| {
                logits
                    .row(r)
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                    .map(|(i, _)| i)
                    .expect("non-empty row")
            })
            .collect()
    }
}

#[inline]
fn sigmoid(z: f32) -> f32 {
    1.0 / (1.0 + (-z).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Sgd;

    /// Central-difference gradient check for every parameter of a tiny net.
    fn grad_check(head: OutputHead, residual: bool) {
        let dims: &[usize] = match head {
            OutputHead::Binary => &[3, 4, 4, 1],
            OutputHead::MultiClass => &[3, 4, 4, 3],
        };
        let mut mlp = Mlp::new(dims, head, 9).with_residual(residual);
        let x = Tensor2::from_rows(&[&[0.5, -0.2, 0.8], &[-0.7, 0.1, 0.3]]);
        let yb = vec![1.0f32, 0.0];
        let ym = vec![2usize, 0];

        let loss_fn = |mlp: &Mlp| -> f32 {
            match head {
                OutputHead::Binary => mlp.loss_and_grads_binary(&x, &yb).0,
                OutputHead::MultiClass => mlp.loss_and_grads_multiclass(&x, &ym).0,
            }
        };
        let grads = match head {
            OutputHead::Binary => mlp.loss_and_grads_binary(&x, &yb).1,
            OutputHead::MultiClass => mlp.loss_and_grads_multiclass(&x, &ym).1,
        };

        let eps = 1e-3f32;
        let num_layers = mlp.num_layers();
        for layer in 0..num_layers {
            for pi in 0..2 {
                let g = grads[2 * layer + pi].clone();
                for idx in 0..g.len() {
                    let orig = {
                        let mut params = mlp.params_mut();
                        let p = &mut params[2 * layer + pi];
                        let orig = p.as_slice()[idx];
                        p.as_mut_slice()[idx] = orig + eps;
                        orig
                    };
                    let up = loss_fn(&mlp);
                    {
                        let mut params = mlp.params_mut();
                        params[2 * layer + pi].as_mut_slice()[idx] = orig - eps;
                    }
                    let down = loss_fn(&mlp);
                    {
                        let mut params = mlp.params_mut();
                        params[2 * layer + pi].as_mut_slice()[idx] = orig;
                    }
                    let numeric = (up - down) / (2.0 * eps);
                    let analytic = g.as_slice()[idx];
                    assert!(
                        (numeric - analytic).abs() < 2e-2 * (1.0 + numeric.abs().max(analytic.abs())),
                        "layer {layer} param {pi} idx {idx}: numeric {numeric} vs analytic {analytic}"
                    );
                }
            }
        }
    }

    #[test]
    fn gradients_match_finite_differences_binary() {
        grad_check(OutputHead::Binary, false);
    }

    #[test]
    fn gradients_match_finite_differences_multiclass() {
        grad_check(OutputHead::MultiClass, false);
    }

    #[test]
    fn gradients_match_finite_differences_residual() {
        grad_check(OutputHead::Binary, true);
        grad_check(OutputHead::MultiClass, true);
    }

    #[test]
    fn multiclass_learns_separable_classes() {
        // Three well-separated clusters in 2-D.
        let mut rows: Vec<Vec<f32>> = Vec::new();
        let mut labels = Vec::new();
        for (c, center) in [(0usize, (0.0, 0.0)), (1, (4.0, 0.0)), (2, (0.0, 4.0))] {
            for k in 0..20 {
                let jitter = (k as f32) * 0.01;
                rows.push(vec![center.0 + jitter, center.1 - jitter]);
                labels.push(c);
            }
        }
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        let x = Tensor2::from_rows(&refs);
        let mut mlp = Mlp::new(&[2, 16, 16, 3], OutputHead::MultiClass, 3);
        let mut opt = Sgd::new(0.1);
        for _ in 0..300 {
            let (_l, g) = mlp.loss_and_grads_multiclass(&x, &labels);
            opt.step(mlp.params_mut(), &g);
        }
        let pred = mlp.predict_class(&x);
        let correct = pred.iter().zip(&labels).filter(|(a, b)| a == b).count();
        assert!(correct >= 58, "only {correct}/60 correct");
    }

    #[test]
    fn loss_decreases_under_training() {
        let x = Tensor2::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0], &[0.0, 0.0]]);
        let y = vec![1.0f32, 1.0, 0.0, 0.0];
        let mut mlp = Mlp::new(&[2, 8, 1], OutputHead::Binary, 1);
        let mut opt = Sgd::new(0.3);
        let (first, g) = mlp.loss_and_grads_binary(&x, &y);
        opt.step(mlp.params_mut(), &g);
        let mut last = first;
        for _ in 0..200 {
            let (l, g) = mlp.loss_and_grads_binary(&x, &y);
            opt.step(mlp.params_mut(), &g);
            last = l;
        }
        assert!(last < first * 0.5, "loss did not halve: {first} -> {last}");
    }

    #[test]
    fn param_count_matches_dims() {
        let mlp = Mlp::new(&[4, 8, 2], OutputHead::MultiClass, 0);
        assert_eq!(mlp.num_params(), 4 * 8 + 8 + 8 * 2 + 2);
    }

    #[test]
    fn io_dims_match_construction() {
        let mlp = Mlp::new(&[16, 64, 1], OutputHead::Binary, 0);
        assert_eq!(mlp.input_dim(), 16);
        assert_eq!(mlp.output_dim(), 1);
        let mc = Mlp::new(&[8, 32, 32, 5], OutputHead::MultiClass, 0);
        assert_eq!(mc.input_dim(), 8);
        assert_eq!(mc.output_dim(), 5);
    }

    #[test]
    #[should_panic(expected = "binary head needs one output")]
    fn binary_head_with_wide_output_panics() {
        let _ = Mlp::new(&[4, 8, 2], OutputHead::Binary, 0);
    }

    #[test]
    #[should_panic(expected = "label 5 out of range")]
    fn out_of_range_label_panics() {
        let mlp = Mlp::new(&[2, 4, 3], OutputHead::MultiClass, 0);
        let x = Tensor2::zeros(1, 2);
        let _ = mlp.loss_and_grads_multiclass(&x, &[5]);
    }
}
