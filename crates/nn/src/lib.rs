//! Feed-forward neural network substrate (PyTorch-C++ substitute).
//!
//! The paper implements its downstream classifiers with the PyTorch C++
//! API: a 2-layer FNN with binary cross-entropy for link prediction and a
//! 3-layer FNN with negative log-likelihood for node classification, both
//! optimized with SGD (§IV-B). This crate rebuilds exactly that much of a
//! deep learning framework from scratch:
//!
//! * [`Tensor2`] — dense row-major `f32` matrices;
//! * [`gemm`] — naive, blocked, and parallel matrix multiplication (the
//!   GEMM kernels the paper's §VIII discussion targets);
//! * [`Mlp`] — multi-layer perceptron with ReLU hidden layers and either a
//!   sigmoid/BCE binary head or a log-softmax/NLL multi-class head, with
//!   manual backpropagation;
//! * [`Sgd`] — stochastic gradient descent with optional momentum;
//! * [`Trainer`] — mini-batch training loop with shuffling, validation
//!   tracking, and per-epoch timing (feeding the paper's Table III);
//! * [`metrics`] — accuracy, ROC-AUC, and F1.
//!
//! # Examples
//!
//! Learn XOR with a 2-layer network:
//!
//! ```
//! use nn::{Mlp, OutputHead, Sgd, Tensor2};
//!
//! let x = Tensor2::from_rows(&[
//!     &[0.0, 0.0], &[0.0, 1.0], &[1.0, 0.0], &[1.0, 1.0],
//! ]);
//! let y = vec![0.0f32, 1.0, 1.0, 0.0];
//! let mut mlp = Mlp::new(&[2, 8, 1], OutputHead::Binary, 42);
//! let mut opt = Sgd::new(0.5);
//! for _ in 0..2000 {
//!     let (_loss, grads) = mlp.loss_and_grads_binary(&x, &y);
//!     opt.step(mlp.params_mut(), &grads);
//! }
//! let p = mlp.predict_proba(&x);
//! assert!(p[0] < 0.3 && p[1] > 0.7 && p[2] > 0.7 && p[3] < 0.3);
//! ```

pub mod gemm;
pub mod metrics;
mod mlp;
mod sgd;
mod tensor;
mod trainer;

pub use mlp::{Mlp, OutputHead};
pub use sgd::Sgd;
pub use tensor::Tensor2;
pub use trainer::{EpochStats, TrainOptions, TrainReport, Trainer};
