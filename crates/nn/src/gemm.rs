//! Matrix multiplication kernels.
//!
//! The paper finds classifier training — which lowers to GEMM — dominates
//! the end-to-end workload, and that vendor GEMM libraries are poorly tuned
//! for the pipeline's small matrix sizes (§VII-B, §VIII). These kernels make
//! that trade-off space explorable: a naive triple loop, a transpose-packed
//! blocked kernel, and a work-stealing parallel kernel, all bit-compatible
//! in shape semantics.

use par::{parallel_chunks, ParConfig};

use crate::Tensor2;

/// `C = A · B` with the naive `i-j-k` triple loop. Baseline for the GEMM
/// ablation benches.
///
/// # Panics
///
/// Panics if `A.cols() != B.rows()`.
pub fn matmul_naive(a: &Tensor2, b: &Tensor2) -> Tensor2 {
    let (m, k) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2, "inner dimensions must agree");
    let mut c = Tensor2::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += a.get(i, p) * b.get(p, j);
            }
            c.set(i, j, acc);
        }
    }
    c
}

/// `C = A · B` with `B` transposed up front so the inner loop reads both
/// operands sequentially (cache-friendly; auto-vectorizable).
///
/// # Panics
///
/// Panics if `A.cols() != B.rows()`.
///
/// # Examples
///
/// ```
/// use nn::{gemm, Tensor2};
///
/// let a = Tensor2::from_rows(&[&[1.0, 2.0]]);
/// let b = Tensor2::from_rows(&[&[3.0], &[4.0]]);
/// assert_eq!(gemm::matmul(&a, &b).as_slice(), &[11.0]);
/// ```
pub fn matmul(a: &Tensor2, b: &Tensor2) -> Tensor2 {
    let bt = b.transposed();
    matmul_transb(a, &bt)
}

/// `C = A · Bᵀ` where `bt` is already transposed (`bt` is `n × k`).
/// Lowered onto the register-blocked, runtime-dispatched SIMD microkernel.
///
/// # Panics
///
/// Panics if `A.cols() != bt.cols()`.
pub fn matmul_transb(a: &Tensor2, bt: &Tensor2) -> Tensor2 {
    let (m, k) = a.shape();
    let (n, k2) = bt.shape();
    assert_eq!(k, k2, "inner dimensions must agree");
    let mut c = Tensor2::zeros(m, n);
    simd::gemm_transb(m, n, k, a.as_slice(), bt.as_slice(), c.as_mut_slice());
    c
}

/// Parallel `C = A · B`, splitting rows of `A` across the work-stealing
/// pool. Matches [`matmul`] exactly.
///
/// # Panics
///
/// Panics if `A.cols() != B.rows()`.
pub fn matmul_parallel(a: &Tensor2, b: &Tensor2, par: &ParConfig) -> Tensor2 {
    let bt = b.transposed();
    let (m, k) = a.shape();
    let (n, k2) = bt.shape();
    assert_eq!(k, k2, "inner dimensions must agree");
    let mut c = Tensor2::zeros(m, n);
    let c_ptr = c.as_mut_slice().as_mut_ptr() as usize;
    parallel_chunks(&par.chunk_size(16.max(m / (4 * par.threads()).max(1))), m, |lo, hi| {
        // SAFETY: each worker writes rows lo..hi of C exclusively.
        let cdata = c_ptr as *mut f32;
        let cchunk = unsafe { std::slice::from_raw_parts_mut(cdata.add(lo * n), (hi - lo) * n) };
        simd::gemm_transb(hi - lo, n, k, &a.as_slice()[lo * k..hi * k], bt.as_slice(), cchunk);
    });
    c
}

/// Dot product via the runtime-dispatched SIMD kernel (AVX2/FMA or NEON
/// when available, unrolled scalar otherwise) — the CPU analog of the
/// paper's coalesced / parallel-reduction GPU word2vec kernel.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    simd::dot(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random(rows: usize, cols: usize, seed: u64) -> Tensor2 {
        let mut rng = StdRng::seed_from_u64(seed);
        Tensor2::from_vec(rows, cols, (0..rows * cols).map(|_| rng.gen_range(-1.0..1.0)).collect())
    }

    fn assert_close(a: &Tensor2, b: &Tensor2) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn identity_multiplication() {
        let a = random(5, 5, 1);
        let mut eye = Tensor2::zeros(5, 5);
        for i in 0..5 {
            eye.set(i, i, 1.0);
        }
        assert_close(&matmul(&a, &eye), &a);
        assert_close(&matmul(&eye, &a), &a);
    }

    #[test]
    fn all_kernels_agree() {
        for (m, k, n) in [(1, 1, 1), (3, 4, 5), (17, 9, 13), (32, 64, 8)] {
            let a = random(m, k, m as u64);
            let b = random(k, n, n as u64 + 100);
            let naive = matmul_naive(&a, &b);
            assert_close(&naive, &matmul(&a, &b));
            assert_close(&naive, &matmul_parallel(&a, &b, &ParConfig::with_threads(4)));
        }
    }

    #[test]
    fn known_product() {
        let a = Tensor2::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor2::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = matmul(&a, &b);
        assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn dot_handles_remainders() {
        let a: Vec<f32> = (0..7).map(|i| i as f32).collect();
        let b = vec![1.0f32; 7];
        assert_eq!(dot(&a, &b), 21.0);
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions")]
    fn mismatched_shapes_panic() {
        let _ = matmul(&Tensor2::zeros(2, 3), &Tensor2::zeros(2, 2));
    }
}
