//! Classification quality metrics (the paper reports prediction accuracy;
//! AUC and F1 are included for completeness of the link prediction study).

/// Fraction of predictions equal to their label.
///
/// # Panics
///
/// Panics if lengths differ or inputs are empty.
///
/// # Examples
///
/// ```
/// let acc = nn::metrics::accuracy(&[0, 1, 2, 1], &[0, 1, 1, 1]);
/// assert!((acc - 0.75).abs() < 1e-9);
/// ```
pub fn accuracy(pred: &[usize], truth: &[usize]) -> f64 {
    assert_eq!(pred.len(), truth.len(), "length mismatch");
    assert!(!pred.is_empty(), "empty inputs");
    let correct = pred.iter().zip(truth).filter(|(a, b)| a == b).count();
    correct as f64 / pred.len() as f64
}

/// Binary accuracy of probability scores at a 0.5 threshold against
/// `{0.0, 1.0}` targets.
///
/// # Panics
///
/// Panics if lengths differ or inputs are empty.
pub fn binary_accuracy(scores: &[f32], truth: &[f32]) -> f64 {
    assert_eq!(scores.len(), truth.len(), "length mismatch");
    assert!(!scores.is_empty(), "empty inputs");
    let correct = scores.iter().zip(truth).filter(|&(&s, &t)| (s >= 0.5) == (t >= 0.5)).count();
    correct as f64 / scores.len() as f64
}

/// Area under the ROC curve via the rank-sum (Mann–Whitney) formulation,
/// with tie handling by midranks.
///
/// Returns 0.5 when either class is absent.
///
/// # Panics
///
/// Panics if lengths differ.
pub fn roc_auc(scores: &[f32], truth: &[f32]) -> f64 {
    assert_eq!(scores.len(), truth.len(), "length mismatch");
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].partial_cmp(&scores[b]).expect("finite scores"));

    // Midrank assignment over tied score groups.
    let mut ranks = vec![0.0f64; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let midrank = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = midrank;
        }
        i = j + 1;
    }

    let pos = truth.iter().filter(|&&t| t >= 0.5).count();
    let neg = truth.len() - pos;
    if pos == 0 || neg == 0 {
        return 0.5;
    }
    let rank_sum_pos: f64 =
        truth.iter().zip(&ranks).filter(|&(&t, _)| t >= 0.5).map(|(_, &r)| r).sum();
    (rank_sum_pos - pos as f64 * (pos as f64 + 1.0) / 2.0) / (pos as f64 * neg as f64)
}

/// Macro-averaged F1 over `classes` classes.
///
/// Classes absent from both prediction and truth contribute an F1 of 0
/// unless entirely absent, in which case they are skipped.
///
/// # Panics
///
/// Panics if lengths differ or inputs are empty.
pub fn macro_f1(pred: &[usize], truth: &[usize], classes: usize) -> f64 {
    assert_eq!(pred.len(), truth.len(), "length mismatch");
    assert!(!pred.is_empty(), "empty inputs");
    let mut f1s = Vec::new();
    for c in 0..classes {
        let tp = pred.iter().zip(truth).filter(|&(&p, &t)| p == c && t == c).count() as f64;
        let fp = pred.iter().zip(truth).filter(|&(&p, &t)| p == c && t != c).count() as f64;
        let fn_ = pred.iter().zip(truth).filter(|&(&p, &t)| p != c && t == c).count() as f64;
        if tp + fp + fn_ == 0.0 {
            continue; // class entirely absent
        }
        let f1 = if tp == 0.0 { 0.0 } else { 2.0 * tp / (2.0 * tp + fp + fn_) };
        f1s.push(f1);
    }
    if f1s.is_empty() {
        0.0
    } else {
        f1s.iter().sum::<f64>() / f1s.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_scores() {
        assert_eq!(accuracy(&[1, 2, 3], &[1, 2, 3]), 1.0);
        assert_eq!(binary_accuracy(&[0.9, 0.1], &[1.0, 0.0]), 1.0);
        assert_eq!(roc_auc(&[0.9, 0.8, 0.1, 0.2], &[1.0, 1.0, 0.0, 0.0]), 1.0);
        assert_eq!(macro_f1(&[0, 1], &[0, 1], 2), 1.0);
    }

    #[test]
    fn auc_of_random_scores_is_half() {
        // Symmetric arrangement: positives at ranks 2 and 3 of 4 -> 0.5.
        let scores = [0.1f32, 0.2, 0.3, 0.4];
        let truth = [0.0f32, 1.0, 1.0, 0.0];
        let auc = roc_auc(&scores, &truth);
        assert!((auc - 0.5).abs() < 1e-9);
    }

    #[test]
    fn auc_handles_ties_with_midranks() {
        let scores = [0.5f32, 0.5, 0.5, 0.5];
        let truth = [1.0f32, 0.0, 1.0, 0.0];
        assert!((roc_auc(&scores, &truth) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn auc_single_class_is_half() {
        assert_eq!(roc_auc(&[0.3, 0.7], &[1.0, 1.0]), 0.5);
    }

    #[test]
    fn inverted_scores_give_zero_auc() {
        let scores = [0.1f32, 0.9];
        let truth = [1.0f32, 0.0];
        assert!(roc_auc(&scores, &truth) < 1e-9);
    }

    #[test]
    fn macro_f1_penalizes_missing_class() {
        // Class 1 never predicted.
        let f1 = macro_f1(&[0, 0, 0, 0], &[0, 0, 1, 1], 2);
        // class0: tp=2 fp=2 fn=0 -> f1 = 4/6; class1: tp=0 -> 0.
        assert!((f1 - (4.0 / 6.0) / 2.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = accuracy(&[1], &[1, 2]);
    }
}
