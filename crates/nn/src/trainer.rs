//! Mini-batch training loop with validation tracking and per-epoch timing.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::{metrics, Mlp, OutputHead, Sgd, Tensor2};

/// Training-loop hyperparameters (artifact §A.8: epochs, hidden dims,
/// learning rate, batch size, target accuracy).
#[derive(Debug, Clone, PartialEq)]
pub struct TrainOptions {
    /// Maximum number of epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Initial learning rate.
    pub lr: f32,
    /// Classical momentum coefficient (`0.0` disables it).
    pub momentum: f32,
    /// Per-epoch multiplicative learning-rate decay.
    pub lr_decay: f32,
    /// Seed for epoch shuffling.
    pub shuffle_seed: u64,
    /// Stop early once validation accuracy reaches this value.
    pub target_valid_accuracy: Option<f64>,
}

impl Default for TrainOptions {
    fn default() -> Self {
        Self {
            epochs: 20,
            batch_size: 64,
            lr: 0.1,
            momentum: 0.9,
            lr_decay: 0.97,
            shuffle_seed: 0,
            target_valid_accuracy: None,
        }
    }
}

/// Per-epoch measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct EpochStats {
    /// 0-based epoch index.
    pub epoch: usize,
    /// Mean training loss over the epoch's batches.
    pub train_loss: f64,
    /// Validation accuracy after the epoch (0.5-threshold for binary).
    pub valid_accuracy: f64,
    /// Wall-clock time of the epoch (the paper's per-epoch training time,
    /// Table III).
    pub duration: Duration,
}

/// Result of a training run.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainReport {
    /// Stats for each epoch actually run.
    pub epochs: Vec<EpochStats>,
    /// Total wall-clock training time.
    pub total_time: Duration,
}

impl TrainReport {
    /// Mean per-epoch duration (Table III reports training time per epoch).
    pub fn mean_epoch_time(&self) -> Duration {
        if self.epochs.is_empty() {
            return Duration::ZERO;
        }
        self.total_time / self.epochs.len() as u32
    }

    /// Final validation accuracy (0 if no epochs ran).
    pub fn final_valid_accuracy(&self) -> f64 {
        self.epochs.last().map_or(0.0, |e| e.valid_accuracy)
    }
}

/// Drives SGD over mini-batches for either task head.
///
/// # Examples
///
/// ```
/// use nn::{Mlp, OutputHead, Tensor2, TrainOptions, Trainer};
///
/// // Learn y = x > 0 on one feature.
/// let x: Vec<Vec<f32>> = (-20..20).map(|i| vec![i as f32 / 10.0]).collect();
/// let rows: Vec<&[f32]> = x.iter().map(|r| r.as_slice()).collect();
/// let xs = Tensor2::from_rows(&rows);
/// let ys: Vec<f32> = (-20..20).map(|i| if i > 0 { 1.0 } else { 0.0 }).collect();
/// let mut mlp = Mlp::new(&[1, 4, 1], OutputHead::Binary, 0);
/// let trainer = Trainer::new(TrainOptions { epochs: 50, batch_size: 8, ..Default::default() });
/// let report = trainer.fit_binary(&mut mlp, &xs, &ys, &xs, &ys);
/// assert!(report.final_valid_accuracy() > 0.9);
/// ```
#[derive(Debug, Clone)]
pub struct Trainer {
    opts: TrainOptions,
}

impl Trainer {
    /// Creates a trainer.
    ///
    /// # Panics
    ///
    /// Panics if `epochs == 0` or `batch_size == 0`.
    pub fn new(opts: TrainOptions) -> Self {
        assert!(opts.epochs >= 1, "need at least one epoch");
        assert!(opts.batch_size >= 1, "need a positive batch size");
        Self { opts }
    }

    /// The options this trainer runs with.
    pub fn options(&self) -> &TrainOptions {
        &self.opts
    }

    /// Trains a binary-head network on `{0.0, 1.0}` targets.
    ///
    /// # Panics
    ///
    /// Panics if the network head is not [`OutputHead::Binary`] or if
    /// feature/target row counts disagree.
    pub fn fit_binary(
        &self,
        mlp: &mut Mlp,
        x_train: &Tensor2,
        y_train: &[f32],
        x_valid: &Tensor2,
        y_valid: &[f32],
    ) -> TrainReport {
        assert_eq!(mlp.head(), OutputHead::Binary, "trainer/head mismatch");
        self.run(
            mlp,
            x_train.rows(),
            |mlp, idx| {
                let xb = x_train.gather_rows(idx);
                let yb: Vec<f32> = idx.iter().map(|&i| y_train[i]).collect();
                mlp.loss_and_grads_binary(&xb, &yb)
            },
            |mlp| {
                let p = mlp.predict_proba(x_valid);
                metrics::binary_accuracy(&p, y_valid)
            },
        )
    }

    /// Trains a multi-class network on integer labels.
    ///
    /// # Panics
    ///
    /// Panics if the network head is not [`OutputHead::MultiClass`] or if
    /// feature/label row counts disagree.
    pub fn fit_multiclass(
        &self,
        mlp: &mut Mlp,
        x_train: &Tensor2,
        y_train: &[usize],
        x_valid: &Tensor2,
        y_valid: &[usize],
    ) -> TrainReport {
        assert_eq!(mlp.head(), OutputHead::MultiClass, "trainer/head mismatch");
        self.run(
            mlp,
            x_train.rows(),
            |mlp, idx| {
                let xb = x_train.gather_rows(idx);
                let yb: Vec<usize> = idx.iter().map(|&i| y_train[i]).collect();
                mlp.loss_and_grads_multiclass(&xb, &yb)
            },
            |mlp| {
                let p = mlp.predict_class(x_valid);
                metrics::accuracy(&p, y_valid)
            },
        )
    }

    fn run<B, V>(
        &self,
        mlp: &mut Mlp,
        n_rows: usize,
        mut batch_fn: B,
        mut valid_fn: V,
    ) -> TrainReport
    where
        B: FnMut(&Mlp, &[usize]) -> (f32, Vec<Tensor2>),
        V: FnMut(&Mlp) -> f64,
    {
        assert!(n_rows > 0, "no training rows");
        let mut opt = Sgd::new(self.opts.lr).decay(self.opts.lr_decay);
        if self.opts.momentum > 0.0 {
            opt = opt.momentum(self.opts.momentum);
        }
        let mut rng = StdRng::seed_from_u64(self.opts.shuffle_seed);
        let mut order: Vec<usize> = (0..n_rows).collect();
        let start = Instant::now();
        let mut epochs = Vec::new();

        for epoch in 0..self.opts.epochs {
            let tick = Instant::now();
            order.shuffle(&mut rng);
            let mut loss_sum = 0.0f64;
            let mut batches = 0usize;
            for idx in order.chunks(self.opts.batch_size) {
                let (loss, grads) = batch_fn(mlp, idx);
                opt.step(mlp.params_mut(), &grads);
                loss_sum += loss as f64;
                batches += 1;
            }
            opt.decay_lr();
            let valid_accuracy = valid_fn(mlp);
            epochs.push(EpochStats {
                epoch,
                train_loss: loss_sum / batches.max(1) as f64,
                valid_accuracy,
                duration: tick.elapsed(),
            });
            if let Some(target) = self.opts.target_valid_accuracy {
                if valid_accuracy >= target {
                    break;
                }
            }
        }

        TrainReport { epochs, total_time: start.elapsed() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blob_data(seed: f32) -> (Tensor2, Vec<usize>) {
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for i in 0..30 {
            let j = i as f32 * 0.03 + seed;
            rows.push(vec![j.sin() * 0.2, j.cos() * 0.2]);
            labels.push(0usize);
            rows.push(vec![3.0 + j.sin() * 0.2, 3.0 + j.cos() * 0.2]);
            labels.push(1usize);
        }
        let refs: Vec<&[f32]> = rows.iter().map(|r| r.as_slice()).collect();
        (Tensor2::from_rows(&refs), labels)
    }

    #[test]
    fn multiclass_trainer_reaches_high_accuracy() {
        let (x, y) = blob_data(0.0);
        let (xv, yv) = blob_data(0.5);
        let mut mlp = Mlp::new(&[2, 8, 8, 2], OutputHead::MultiClass, 1);
        let trainer = Trainer::new(TrainOptions {
            epochs: 40,
            batch_size: 16,
            lr: 0.2,
            ..Default::default()
        });
        let report = trainer.fit_multiclass(&mut mlp, &x, &y, &xv, &yv);
        assert!(report.final_valid_accuracy() > 0.95, "{}", report.final_valid_accuracy());
        assert!(report.total_time >= report.mean_epoch_time());
    }

    #[test]
    fn early_stop_halts_at_target() {
        let (x, y) = blob_data(0.0);
        let mut mlp = Mlp::new(&[2, 8, 2], OutputHead::MultiClass, 2);
        let trainer = Trainer::new(TrainOptions {
            epochs: 500,
            batch_size: 16,
            lr: 0.3,
            target_valid_accuracy: Some(0.99),
            ..Default::default()
        });
        let report = trainer.fit_multiclass(&mut mlp, &x, &y, &x, &y);
        assert!(report.epochs.len() < 500, "early stop never triggered");
        assert!(report.final_valid_accuracy() >= 0.99);
    }

    #[test]
    fn loss_trends_downward() {
        let (x, y) = blob_data(0.0);
        let mut mlp = Mlp::new(&[2, 8, 2], OutputHead::MultiClass, 3);
        let trainer = Trainer::new(TrainOptions { epochs: 20, lr: 0.1, ..Default::default() });
        let report = trainer.fit_multiclass(&mut mlp, &x, &y, &x, &y);
        let first = report.epochs.first().unwrap().train_loss;
        let last = report.epochs.last().unwrap().train_loss;
        assert!(last < first, "loss went {first} -> {last}");
    }

    #[test]
    #[should_panic(expected = "trainer/head mismatch")]
    fn head_mismatch_panics() {
        let mut mlp = Mlp::new(&[2, 2], OutputHead::MultiClass, 0);
        let x = Tensor2::zeros(2, 2);
        let _ = Trainer::new(TrainOptions::default()).fit_binary(
            &mut mlp,
            &x,
            &[0.0, 1.0],
            &x,
            &[0.0, 1.0],
        );
    }
}
