//! Dense row-major 2-D tensors.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A dense `rows × cols` matrix of `f32` in row-major layout.
///
/// This is the only tensor shape the paper's classifiers need (mini-batch
/// activations and weight matrices).
///
/// # Examples
///
/// ```
/// use nn::Tensor2;
///
/// let t = Tensor2::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(t.get(1, 0), 3.0);
/// assert_eq!(t.shape(), (2, 2));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor2 {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Tensor2 {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds from explicit row slices.
    ///
    /// # Panics
    ///
    /// Panics if rows have differing lengths.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        let r = rows.len();
        let c = rows.first().map_or(0, |x| x.len());
        let mut data = Vec::with_capacity(r * c);
        for row in rows {
            assert_eq!(row.len(), c, "ragged rows");
            data.extend_from_slice(row);
        }
        Self { rows: r, cols: c, data }
    }

    /// Takes ownership of a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer does not match shape");
        Self { rows, cols, data }
    }

    /// Xavier/Glorot-uniform initialization, deterministic in `seed` —
    /// the standard initialization for the paper's FNN layers.
    pub fn xavier(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let bound = (6.0 / (rows + cols) as f32).sqrt();
        let data = (0..rows * cols).map(|_| rng.gen_range(-bound..bound)).collect();
        Self { rows, cols, data }
    }

    /// `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Mutable element at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Flat row-major view.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable row-major view.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// New tensor containing the given row indices (gather), used for
    /// mini-batch assembly.
    pub fn gather_rows(&self, indices: &[usize]) -> Tensor2 {
        let mut out = Tensor2::zeros(indices.len(), self.cols);
        for (i, &r) in indices.iter().enumerate() {
            out.row_mut(i).copy_from_slice(self.row(r));
        }
        out
    }

    /// Transposed copy.
    pub fn transposed(&self) -> Tensor2 {
        let mut out = Tensor2::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise `self += alpha * other` (SIMD-dispatched).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor2) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in axpy");
        simd::axpy(alpha, &other.data, &mut self.data);
    }

    /// Element-wise `self = a · self + b · other` — the fused
    /// scale-then-accumulate step (SIMD-dispatched), e.g. SGD momentum's
    /// `v ← μv − lr·g`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn scale_accum(&mut self, a: f32, b: f32, other: &Tensor2) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in scale_accum");
        simd::scale_accum(&mut self.data, a, b, &other.data);
    }

    /// Scales every element by `s`.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Adds `bias` (length `cols`) to every row.
    ///
    /// # Panics
    ///
    /// Panics if `bias.len() != cols`.
    pub fn add_bias_row(&mut self, bias: &[f32]) {
        assert_eq!(bias.len(), self.cols, "bias length mismatch");
        for r in 0..self.rows {
            for (a, b) in self.row_mut(r).iter_mut().zip(bias) {
                *a += b;
            }
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut t = Tensor2::zeros(2, 3);
        t.set(1, 2, 5.0);
        assert_eq!(t.get(1, 2), 5.0);
        assert_eq!(t.row(0), &[0.0, 0.0, 0.0]);
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn transpose_round_trip() {
        let t = Tensor2::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let tt = t.transposed();
        assert_eq!(tt.shape(), (3, 2));
        assert_eq!(tt.get(2, 1), 6.0);
        assert_eq!(tt.transposed(), t);
    }

    #[test]
    fn gather_rows_selects() {
        let t = Tensor2::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let g = t.gather_rows(&[2, 0]);
        assert_eq!(g.as_slice(), &[3.0, 1.0]);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor2::from_rows(&[&[1.0, 1.0]]);
        let b = Tensor2::from_rows(&[&[2.0, 4.0]]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[2.0, 3.0]);
        a.scale(2.0);
        assert_eq!(a.as_slice(), &[4.0, 6.0]);
    }

    #[test]
    fn add_bias_broadcasts_over_rows() {
        let mut t = Tensor2::zeros(2, 2);
        t.add_bias_row(&[1.0, -1.0]);
        assert_eq!(t.as_slice(), &[1.0, -1.0, 1.0, -1.0]);
    }

    #[test]
    fn xavier_is_deterministic_and_bounded() {
        let a = Tensor2::xavier(10, 10, 7);
        let b = Tensor2::xavier(10, 10, 7);
        assert_eq!(a, b);
        let bound = (6.0f32 / 20.0).sqrt();
        assert!(a.as_slice().iter().all(|&x| x.abs() <= bound));
        // Not all identical.
        assert!(a.as_slice().windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    #[should_panic(expected = "buffer does not match shape")]
    fn bad_from_vec_panics() {
        let _ = Tensor2::from_vec(2, 2, vec![0.0; 3]);
    }
}
