//! Stochastic gradient descent (the paper's optimizer for both tasks).

use crate::Tensor2;

/// SGD with optional classical momentum and multiplicative learning-rate
/// decay (the paper's training hyperparameters include learning rate and
/// rate decay, artifact §A.8).
///
/// # Examples
///
/// ```
/// use nn::{Sgd, Tensor2};
///
/// let mut w = Tensor2::from_rows(&[&[1.0]]);
/// let g = Tensor2::from_rows(&[&[0.5]]);
/// let mut opt = Sgd::new(0.1);
/// opt.step(vec![&mut w], std::slice::from_ref(&g));
/// assert!((w.get(0, 0) - 0.95).abs() < 1e-6);
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    decay: f32,
    velocity: Vec<Tensor2>,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    ///
    /// # Panics
    ///
    /// Panics if `lr <= 0`.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Self { lr, momentum: 0.0, decay: 1.0, velocity: Vec::new() }
    }

    /// Adds classical momentum (`v ← μ v - lr g`, `w ← w + v`).
    ///
    /// # Panics
    ///
    /// Panics if `momentum` is outside `[0, 1)`.
    #[must_use]
    pub fn momentum(mut self, momentum: f32) -> Self {
        assert!((0.0..1.0).contains(&momentum), "momentum must be in [0, 1)");
        self.momentum = momentum;
        self
    }

    /// Sets a per-epoch multiplicative decay applied by
    /// [`decay_lr`](Self::decay_lr).
    ///
    /// # Panics
    ///
    /// Panics if `decay` is outside `(0, 1]`.
    #[must_use]
    pub fn decay(mut self, decay: f32) -> Self {
        assert!(decay > 0.0 && decay <= 1.0, "decay must be in (0, 1]");
        self.decay = decay;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Applies one multiplicative decay step (call once per epoch).
    pub fn decay_lr(&mut self) {
        self.lr *= self.decay;
    }

    /// Applies one update to `params` given matching `grads`.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != grads.len()` or any shape mismatches
    /// (after the first call establishes velocity shapes).
    pub fn step(&mut self, mut params: Vec<&mut Tensor2>, grads: &[Tensor2]) {
        assert_eq!(params.len(), grads.len(), "params/grads length mismatch");
        if self.momentum == 0.0 {
            for (p, g) in params.iter_mut().zip(grads) {
                p.axpy(-self.lr, g);
            }
            return;
        }
        if self.velocity.is_empty() {
            self.velocity = grads.iter().map(|g| Tensor2::zeros(g.rows(), g.cols())).collect();
        }
        for ((p, g), v) in params.iter_mut().zip(grads).zip(self.velocity.iter_mut()) {
            // v ← μv − lr·g in one fused pass, then w ← w + v.
            v.scale_accum(self.momentum, -self.lr, g);
            p.axpy(1.0, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn momentum_accumulates_velocity() {
        let mut w = Tensor2::from_rows(&[&[0.0]]);
        let g = Tensor2::from_rows(&[&[1.0]]);
        let mut opt = Sgd::new(0.1).momentum(0.9);
        opt.step(vec![&mut w], std::slice::from_ref(&g));
        assert!((w.get(0, 0) + 0.1).abs() < 1e-6);
        opt.step(vec![&mut w], std::slice::from_ref(&g));
        // v = 0.9 * (-0.1) - 0.1 = -0.19; w = -0.1 - 0.19 = -0.29.
        assert!((w.get(0, 0) + 0.29).abs() < 1e-6);
    }

    #[test]
    fn lr_decay_compounds() {
        let mut opt = Sgd::new(1.0).decay(0.5);
        opt.decay_lr();
        opt.decay_lr();
        assert!((opt.lr() - 0.25).abs() < 1e-7);
    }

    #[test]
    fn converges_on_quadratic() {
        // Minimize (w - 3)^2 by hand-fed gradients 2(w - 3).
        let mut w = Tensor2::from_rows(&[&[0.0]]);
        let mut opt = Sgd::new(0.1).momentum(0.5);
        for _ in 0..200 {
            let g = Tensor2::from_rows(&[&[2.0 * (w.get(0, 0) - 3.0)]]);
            opt.step(vec![&mut w], std::slice::from_ref(&g));
        }
        assert!((w.get(0, 0) - 3.0).abs() < 1e-3);
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn zero_lr_panics() {
        let _ = Sgd::new(0.0);
    }
}
