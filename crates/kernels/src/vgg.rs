//! VGG-style dense inference proxy (the Fig. 3 "VGG" workload).
//!
//! After im2col lowering, a convolutional layer is a GEMM with shape
//! `(H·W) × (C_in · k²) · (C_in · k² × C_out)`. This proxy runs the GEMM
//! sequence of VGG-16's convolutional trunk (plus its classifier FC
//! layers), spatially scaled down by a configurable factor, which preserves
//! the property the paper leans on in §VII-B: *very large, regular* matrix
//! multiplications — the paper measures VGG's largest layer as 3136× larger
//! than the pipeline's, explaining the 37.4× per-instruction gap.

use nn::gemm::matmul;
use nn::Tensor2;

/// VGG-16 conv layers as `(spatial, in_ch × 9, out_ch)` GEMM triples at
/// full 224×224 resolution.
const VGG16_CONV: &[(usize, usize, usize)] = &[
    (224 * 224, 3 * 9, 64),
    (224 * 224, 64 * 9, 64),
    (112 * 112, 64 * 9, 128),
    (112 * 112, 128 * 9, 128),
    (56 * 56, 128 * 9, 256),
    (56 * 56, 256 * 9, 256),
    (56 * 56, 256 * 9, 256),
    (28 * 28, 256 * 9, 512),
    (28 * 28, 512 * 9, 512),
    (28 * 28, 512 * 9, 512),
    (14 * 14, 512 * 9, 512),
    (14 * 14, 512 * 9, 512),
    (14 * 14, 512 * 9, 512),
];

/// GEMM-sequence proxy for VGG-16 inference.
#[derive(Debug, Clone)]
pub struct VggProxy {
    layers: Vec<(usize, usize, usize)>,
    weights: Vec<Tensor2>,
}

impl VggProxy {
    /// Builds the proxy with every dimension divided by `shrink`
    /// (`shrink = 1` is full VGG-16; the Fig. 3 bench uses 8–16 to stay
    /// laptop-sized). Weights are Xavier-initialized.
    ///
    /// # Panics
    ///
    /// Panics if `shrink == 0`.
    pub fn new(shrink: usize, seed: u64) -> Self {
        assert!(shrink >= 1, "shrink factor must be at least 1");
        let layers: Vec<(usize, usize, usize)> = VGG16_CONV
            .iter()
            .map(|&(m, k, n)| {
                ((m / (shrink * shrink)).max(4), (k / shrink).max(4), (n / shrink).max(4))
            })
            .collect();
        let weights = layers
            .iter()
            .enumerate()
            .map(|(i, &(_, k, n))| Tensor2::xavier(k, n, seed.wrapping_add(i as u64)))
            .collect();
        Self { layers, weights }
    }

    /// GEMM shapes `(m, k, n)` of every layer.
    pub fn layer_shapes(&self) -> &[(usize, usize, usize)] {
        &self.layers
    }

    /// Total multiply-accumulate count of one inference pass.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|&(m, k, n)| (m * k * n) as u64).sum()
    }

    /// Size (elements) of the largest single GEMM, for the paper's
    /// "largest layer is 3136× larger" comparison.
    pub fn largest_layer_elems(&self) -> u64 {
        self.layers.iter().map(|&(m, k, n)| (m * k).max(k * n) as u64).max().unwrap_or(0)
    }

    /// Runs the proxy inference: each layer multiplies a fresh im2col
    /// activation of the right shape (activations are synthesized rather
    /// than re-laid-out — only the GEMM behavior matters for the study).
    /// Returns the final activation tensor.
    pub fn infer(&self, seed: u64) -> Tensor2 {
        let mut last = Tensor2::zeros(0, 0);
        for (i, (&(m, k, _n), w)) in self.layers.iter().zip(&self.weights).enumerate() {
            let x = Tensor2::xavier(m, k, seed.wrapping_add(1000 + i as u64));
            let mut z = matmul(&x, w);
            for v in z.as_mut_slice() {
                if *v < 0.0 {
                    *v = 0.0;
                }
            }
            last = z;
        }
        last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_size_macs_match_vgg_scale() {
        let vgg = VggProxy::new(1, 0);
        // VGG-16 conv trunk ≈ 15.3 GMACs.
        let gmacs = vgg.total_macs() as f64 / 1e9;
        assert!((13.0..18.0).contains(&gmacs), "GMACs {gmacs}");
    }

    #[test]
    fn shrink_reduces_work() {
        let big = VggProxy::new(4, 0);
        let small = VggProxy::new(8, 0);
        assert!(big.total_macs() > small.total_macs());
    }

    #[test]
    fn inference_produces_finite_activations() {
        let vgg = VggProxy::new(16, 1);
        let out = vgg.infer(2);
        assert!(out.rows() > 0);
        assert!(out.as_slice().iter().all(|v| v.is_finite() && *v >= 0.0));
    }

    #[test]
    fn largest_layer_dwarfs_pipeline_layers() {
        let vgg = VggProxy::new(1, 0);
        // The paper's pipeline trains (2d=16) × 64-ish layers; VGG's
        // largest im2col operand should be thousands of times bigger.
        let pipeline_layer = 16 * 64;
        assert!(vgg.largest_layer_elems() > 1000 * pipeline_layer as u64);
    }
}
