//! Graph convolution network inference (the Fig. 3 "GCN" workload).

use nn::gemm::matmul;
use nn::Tensor2;
use tgraph::{NodeId, TemporalGraph};

/// A sparse matrix in CSR form with `f32` values, used for the normalized
/// adjacency `Â = D^{-1/2} (A + I) D^{-1/2}` of GCN.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    offsets: Vec<usize>,
    cols: Vec<NodeId>,
    vals: Vec<f32>,
    n: usize,
}

impl CsrMatrix {
    /// Dimension (square matrix).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of stored non-zeros.
    pub fn nnz(&self) -> usize {
        self.vals.len()
    }

    /// Sparse × dense product `Y = S · X`.
    ///
    /// # Panics
    ///
    /// Panics if `x.rows() != n`.
    pub fn spmm(&self, x: &Tensor2) -> Tensor2 {
        assert_eq!(x.rows(), self.n, "dimension mismatch in spmm");
        let mut y = Tensor2::zeros(self.n, x.cols());
        for r in 0..self.n {
            let (a, b) = (self.offsets[r], self.offsets[r + 1]);
            let yrow = y.row_mut(r);
            for k in a..b {
                let c = self.cols[k] as usize;
                let v = self.vals[k];
                for (yo, xo) in yrow.iter_mut().zip(x.row(c)) {
                    *yo += v * xo;
                }
            }
        }
        y
    }
}

/// Builds the symmetric-normalized adjacency with self-loops,
/// `Â = D^{-1/2} (A + I) D^{-1/2}`, collapsing temporal multi-edges (GCN
/// operates on the static projection of the graph — exactly the
/// information loss the paper motivates temporal walks to avoid).
pub fn normalized_adjacency(g: &TemporalGraph) -> CsrMatrix {
    let n = g.num_nodes();
    // Collapse multi-edges: adjacency sets including self-loops.
    let mut neigh: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for v in 0..n as NodeId {
        let (dsts, _) = g.neighbor_slices(v);
        let mut set: Vec<NodeId> = dsts.to_vec();
        set.push(v);
        set.sort_unstable();
        set.dedup();
        neigh[v as usize] = set;
    }
    let deg: Vec<f32> = neigh.iter().map(|s| s.len() as f32).collect();
    let mut offsets = Vec::with_capacity(n + 1);
    let mut cols = Vec::new();
    let mut vals = Vec::new();
    offsets.push(0);
    for v in 0..n {
        for &u in &neigh[v] {
            cols.push(u);
            vals.push(1.0 / (deg[v] * deg[u as usize]).sqrt());
        }
        offsets.push(cols.len());
    }
    CsrMatrix { offsets, cols, vals, n }
}

/// A GCN for inference: `H_{l+1} = ReLU(Â · H_l · W_l)` with no activation
/// after the last layer.
#[derive(Debug, Clone)]
pub struct GcnModel {
    weights: Vec<Tensor2>,
}

impl GcnModel {
    /// Creates a model with Xavier-initialized layers of the given widths
    /// (`dims[0]` = input feature width).
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dims are given.
    pub fn new(dims: &[usize], seed: u64) -> Self {
        assert!(dims.len() >= 2, "need at least one layer");
        let weights = dims
            .windows(2)
            .enumerate()
            .map(|(i, w)| Tensor2::xavier(w[0], w[1], seed.wrapping_add(i as u64)))
            .collect();
        Self { weights }
    }

    /// Number of layers.
    pub fn num_layers(&self) -> usize {
        self.weights.len()
    }

    /// Full-graph inference from input features `x` (`n × dims[0]`).
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatches.
    pub fn infer(&self, adj: &CsrMatrix, x: &Tensor2) -> Tensor2 {
        let mut h = x.clone();
        for (i, w) in self.weights.iter().enumerate() {
            let agg = adj.spmm(&h);
            let mut z = matmul(&agg, w);
            if i + 1 < self.weights.len() {
                for v in z.as_mut_slice() {
                    if *v < 0.0 {
                        *v = 0.0;
                    }
                }
            }
            h = z;
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgraph::{GraphBuilder, TemporalEdge};

    #[test]
    fn normalization_rows_are_consistent() {
        let g = GraphBuilder::new()
            .add_edge(TemporalEdge::new(0, 1, 0.0))
            .add_edge(TemporalEdge::new(1, 0, 0.0))
            .add_edge(TemporalEdge::new(1, 2, 0.0))
            .add_edge(TemporalEdge::new(2, 1, 0.0))
            .build();
        let a = normalized_adjacency(&g);
        assert_eq!(a.n(), 3);
        // Node 0: neighbors {0, 1}; deg(0)=2, deg(1)=3.
        // Â[0][0] = 1/2, Â[0][1] = 1/sqrt(6).
        let x = Tensor2::from_rows(&[&[1.0], &[0.0], &[0.0]]);
        let y = a.spmm(&x);
        assert!((y.get(0, 0) - 0.5).abs() < 1e-6);
        assert!((y.get(1, 0) - 1.0 / 6.0f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn multi_edges_collapse() {
        let g = GraphBuilder::new()
            .add_edge(TemporalEdge::new(0, 1, 0.1))
            .add_edge(TemporalEdge::new(0, 1, 0.5))
            .add_edge(TemporalEdge::new(0, 1, 0.9))
            .build();
        let a = normalized_adjacency(&g);
        // Row 0 stores {0, 1} once each plus row 1 stores {1}: 3 nnz.
        assert_eq!(a.nnz(), 3);
    }

    #[test]
    fn spmm_identity_behavior() {
        // A graph with no edges yields Â = I (self-loops, degree 1).
        let g = GraphBuilder::new().num_nodes(4).build();
        let a = normalized_adjacency(&g);
        let x = Tensor2::xavier(4, 3, 1);
        let y = a.spmm(&x);
        for r in 0..4 {
            for c in 0..3 {
                assert!((y.get(r, c) - x.get(r, c)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn inference_shapes_flow_through_layers() {
        let g = tgraph::gen::erdos_renyi(50, 400, 2).build();
        let adj = normalized_adjacency(&g);
        let model = GcnModel::new(&[16, 32, 4], 0);
        let x = Tensor2::xavier(50, 16, 9);
        let out = model.infer(&adj, &x);
        assert_eq!(out.shape(), (50, 4));
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
    }
}
