//! Level-synchronous breadth-first search (the Fig. 3 "BFS" workload).

use tgraph::{NodeId, TemporalGraph};

/// Depth of every vertex from `source` (ignoring timestamps — BFS here is
/// the *traditional* traversal the paper contrasts against), or
/// `u32::MAX` for unreachable vertices.
///
/// # Panics
///
/// Panics if `source` is out of range.
///
/// # Examples
///
/// ```
/// use tgraph::{GraphBuilder, TemporalEdge};
///
/// let g = GraphBuilder::new()
///     .add_edge(TemporalEdge::new(0, 1, 0.0))
///     .add_edge(TemporalEdge::new(1, 2, 0.0))
///     .num_nodes(4)
///     .build();
/// let depth = kernels::bfs_levels(&g, 0);
/// assert_eq!(depth, vec![0, 1, 2, u32::MAX]);
/// ```
pub fn bfs_levels(g: &TemporalGraph, source: NodeId) -> Vec<u32> {
    let n = g.num_nodes();
    assert!((source as usize) < n, "source out of range");
    let mut depth = vec![u32::MAX; n];
    depth[source as usize] = 0;
    let mut frontier = vec![source];
    let mut next = Vec::new();
    let mut level = 0u32;
    while !frontier.is_empty() {
        level += 1;
        for &u in &frontier {
            let (dsts, _) = g.neighbor_slices(u);
            for &v in dsts {
                if depth[v as usize] == u32::MAX {
                    depth[v as usize] = level;
                    next.push(v);
                }
            }
        }
        std::mem::swap(&mut frontier, &mut next);
        next.clear();
    }
    depth
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgraph::{GraphBuilder, TemporalEdge};

    #[test]
    fn bfs_on_cycle() {
        let g = GraphBuilder::new()
            .add_edge(TemporalEdge::new(0, 1, 0.0))
            .add_edge(TemporalEdge::new(1, 2, 0.0))
            .add_edge(TemporalEdge::new(2, 3, 0.0))
            .add_edge(TemporalEdge::new(3, 0, 0.0))
            .build();
        assert_eq!(bfs_levels(&g, 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs_levels(&g, 2), vec![2, 3, 0, 1]);
    }

    #[test]
    fn bfs_ignores_timestamps() {
        // Decreasing timestamps are no obstacle to plain BFS.
        let g = GraphBuilder::new()
            .add_edge(TemporalEdge::new(0, 1, 0.9))
            .add_edge(TemporalEdge::new(1, 2, 0.1))
            .build();
        assert_eq!(bfs_levels(&g, 0), vec![0, 1, 2]);
    }

    #[test]
    fn bfs_reaches_whole_er_component_consistently() {
        let g = tgraph::gen::erdos_renyi(500, 4_000, 1).undirected(true).build();
        let d = bfs_levels(&g, 0);
        let reached = d.iter().filter(|&&x| x != u32::MAX).count();
        // Dense ER graph: the giant component holds nearly everything.
        assert!(reached > 450, "only {reached} reached");
        // Triangle inequality sanity: neighbor depths differ by at most 1
        // when both reached.
        for e in g.edges() {
            let (a, b) = (d[e.src as usize], d[e.dst as usize]);
            if a != u32::MAX && b != u32::MAX {
                assert!(a.abs_diff(b) <= 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "source out of range")]
    fn bad_source_panics() {
        let g = GraphBuilder::new().add_edge(TemporalEdge::new(0, 1, 0.0)).build();
        let _ = bfs_levels(&g, 9);
    }
}
