//! Contrast workloads for the paper's Fig. 3 comparison.
//!
//! Fig. 3 compares the random-walk learning pipeline against three
//! well-studied workloads: a pure graph traversal (BFS on a Rodinia-style
//! synthetic graph), deep learning inference (VGG on ImageNet), and GCN
//! inference (on Reddit). This crate implements runnable equivalents of all
//! three so the same instrumentation (see `perfmodel`) can profile them:
//!
//! * [`bfs`] — level-synchronous breadth-first search;
//! * [`gcn`] — multi-layer graph convolution inference
//!   (`ReLU(Â · X · W)`) over a degree-normalized adjacency;
//! * [`vgg`] — the GEMM sequence of a VGG-16-like network after im2col
//!   lowering, scaled down by a configurable factor.

pub mod bfs;
pub mod gcn;
pub mod gcn_train;
pub mod vgg;

pub use bfs::bfs_levels;
pub use gcn::{normalized_adjacency, CsrMatrix, GcnModel};
pub use gcn_train::{GcnClassifier, GcnTrainOptions};
pub use vgg::VggProxy;
