//! Trainable GCN for node classification — the paper's comparison point.
//!
//! §IV-C motivates temporal walks *against* GCN: spectral convolution over
//! a static projection of the graph, with high computation/memory cost and
//! no temporal modeling. This module makes that comparison runnable: a
//! two-layer featureless GCN (`Z = Â · ReLU(Â · W0) · W1`, i.e. identity
//! input features so `W0` doubles as a learned node-embedding table),
//! trained full-batch with SGD on a labeled vertex subset — the standard
//! Kipf-&-Welling semi-supervised setup.
//!
//! The `ext_gcn_comparison` experiment pits it against the random-walk
//! pipeline on the node-classification stand-ins for both accuracy and
//! cost scaling.

// Indexed loops over parallel arrays are the intended idiom here.
#![allow(clippy::needless_range_loop)]

use nn::gemm::{matmul, matmul_transb};
use nn::Tensor2;

use crate::gcn::CsrMatrix;

/// Training options for [`GcnClassifier::fit`].
#[derive(Debug, Clone, PartialEq)]
pub struct GcnTrainOptions {
    /// Full-batch epochs.
    pub epochs: usize,
    /// Learning rate.
    pub lr: f32,
    /// Classical momentum coefficient.
    pub momentum: f32,
    /// Per-epoch multiplicative learning-rate decay.
    pub lr_decay: f32,
}

impl Default for GcnTrainOptions {
    fn default() -> Self {
        Self { epochs: 200, lr: 2.0, momentum: 0.9, lr_decay: 0.999 }
    }
}

/// A two-layer featureless GCN classifier.
#[derive(Debug, Clone)]
pub struct GcnClassifier {
    w0: Tensor2, // n × hidden (identity features make this the embedding table)
    w1: Tensor2, // hidden × classes
}

impl GcnClassifier {
    /// Creates a classifier for `n` vertices, `hidden` units, and
    /// `classes` output labels.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(n: usize, hidden: usize, classes: usize, seed: u64) -> Self {
        assert!(n > 0 && hidden > 0 && classes > 0, "zero-sized GCN");
        Self {
            w0: Tensor2::xavier(n, hidden, seed),
            w1: Tensor2::xavier(hidden, classes, seed.wrapping_add(1)),
        }
    }

    /// Trainable parameter count.
    pub fn num_params(&self) -> usize {
        self.w0.len() + self.w1.len()
    }

    /// Forward pass returning logits (`n × classes`).
    fn forward(&self, adj: &CsrMatrix) -> (Tensor2, Tensor2, Tensor2) {
        // X = I  =>  Â X W0 = Â W0.
        let z1 = adj.spmm(&self.w0);
        let mut h1 = z1.clone();
        for v in h1.as_mut_slice() {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
        let a2 = adj.spmm(&h1);
        let logits = matmul(&a2, &self.w1);
        (z1, a2, logits)
    }

    /// Full-graph class predictions.
    pub fn predict(&self, adj: &CsrMatrix) -> Vec<usize> {
        let (_, _, logits) = self.forward(adj);
        (0..logits.rows())
            .map(|r| {
                logits
                    .row(r)
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                    .map(|(i, _)| i)
                    .expect("non-empty row")
            })
            .collect()
    }

    /// Trains on the labeled subset `train_idx` (semi-supervised:
    /// unlabeled vertices still participate in the convolutions) and
    /// returns the per-epoch training losses.
    ///
    /// # Panics
    ///
    /// Panics if `adj.n()` disagrees with the vertex count, a label is out
    /// of range, or `train_idx` is empty.
    pub fn fit(
        &mut self,
        adj: &CsrMatrix,
        labels: &[u16],
        train_idx: &[usize],
        opts: &GcnTrainOptions,
    ) -> Vec<f64> {
        assert_eq!(adj.n(), self.w0.rows(), "adjacency size mismatch");
        assert_eq!(labels.len(), adj.n(), "label count mismatch");
        assert!(!train_idx.is_empty(), "no training vertices");
        let classes = self.w1.cols();
        for &i in train_idx {
            assert!((labels[i] as usize) < classes, "label out of range");
        }

        let mut lr = opts.lr;
        let mut losses = Vec::with_capacity(opts.epochs);
        let inv = 1.0 / train_idx.len() as f32;
        let mut v0 = Tensor2::zeros(self.w0.rows(), self.w0.cols());
        let mut v1 = Tensor2::zeros(self.w1.rows(), self.w1.cols());

        for _ in 0..opts.epochs {
            let (z1, a2, logits) = self.forward(adj);

            // Masked NLL loss and dL/dlogits (zero outside train_idx).
            let mut dlogits = Tensor2::zeros(adj.n(), classes);
            let mut loss = 0.0f64;
            for &i in train_idx {
                let row = logits.row(i);
                let label = labels[i] as usize;
                let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                let lse = max + row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln();
                loss += f64::from(lse - row[label]);
                for c in 0..classes {
                    let softmax = (row[c] - lse).exp();
                    let onehot = if c == label { 1.0 } else { 0.0 };
                    dlogits.set(i, c, (softmax - onehot) * inv);
                }
            }
            losses.push(loss / train_idx.len() as f64);

            // Backprop: dW1 = A2ᵀ dZ2; dH1 = Â (dZ2 W1ᵀ) (Â symmetric);
            // dZ1 = dH1 ⊙ ReLU'(Z1); dW0 = Âᵀ dZ1 = Â dZ1.
            let dw1 = matmul(&a2.transposed(), &dlogits);
            let da2 = matmul_transb(&dlogits, &self.w1);
            let mut dz1 = adj.spmm(&da2);
            for (g, &z) in dz1.as_mut_slice().iter_mut().zip(z1.as_slice()) {
                if z <= 0.0 {
                    *g = 0.0;
                }
            }
            let dw0 = adj.spmm(&dz1);

            v0.scale(opts.momentum);
            v0.axpy(-lr, &dw0);
            self.w0.axpy(1.0, &v0);
            v1.scale(opts.momentum);
            v1.axpy(-lr, &dw1);
            self.w1.axpy(1.0, &v1);
            lr *= opts.lr_decay;
        }
        losses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gcn::normalized_adjacency;

    fn sbm_setup() -> (CsrMatrix, Vec<u16>, Vec<usize>, Vec<usize>) {
        let gen = tgraph::gen::temporal_sbm(240, 3, 7_000, 0.93, 4);
        let labels = gen.labels.clone();
        let g = gen.builder.undirected(true).build();
        let adj = normalized_adjacency(&g);
        // 30% labeled for training, the rest held out.
        let train: Vec<usize> = (0..240).filter(|i| i % 10 < 3).collect();
        let test: Vec<usize> = (0..240).filter(|i| i % 10 >= 3).collect();
        (adj, labels, train, test)
    }

    #[test]
    fn gcn_learns_planted_communities() {
        let (adj, labels, train, test) = sbm_setup();
        let mut gcn = GcnClassifier::new(adj.n(), 16, 3, 7);
        let losses = gcn.fit(&adj, &labels, &train, &GcnTrainOptions::default());
        assert!(
            losses.last().unwrap() < &(losses[0] * 0.5),
            "loss barely moved: {} -> {}",
            losses[0],
            losses.last().unwrap()
        );
        let pred = gcn.predict(&adj);
        let correct = test.iter().filter(|&&i| pred[i] == labels[i] as usize).count();
        let acc = correct as f64 / test.len() as f64;
        assert!(acc > 0.8, "test accuracy {acc}");
    }

    #[test]
    fn gradient_check_against_finite_differences() {
        // Tiny graph, tiny net: perturb a few weights and compare dW with
        // central differences of the masked loss.
        let g = tgraph::gen::erdos_renyi(12, 60, 1).undirected(true).build();
        let adj = normalized_adjacency(&g);
        let labels: Vec<u16> = (0..12).map(|i| (i % 2) as u16).collect();
        let train: Vec<usize> = (0..12).collect();
        let gcn = GcnClassifier::new(12, 5, 2, 3);

        let loss_of = |gcn: &GcnClassifier| -> f64 {
            let (_, _, logits) = gcn.forward(&adj);
            let mut loss = 0.0f64;
            for &i in &train {
                let row = logits.row(i);
                let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                let lse = max + row.iter().map(|&v| (v - max).exp()).sum::<f32>().ln();
                loss += f64::from(lse - row[labels[i] as usize]);
            }
            loss / train.len() as f64
        };

        // Analytic gradient from one fit step with lr captured via delta.
        // Re-derive by calling the internals: replicate fit's gradient at
        // the current parameters using a single epoch with lr so small the
        // parameters barely move, then compare parameter deltas.
        let before_w0 = gcn.w0.clone();
        let before_w1 = gcn.w1.clone();
        let eps_lr = 1e-3f32;
        let mut probe = gcn.clone();
        probe.fit(
            &adj,
            &labels,
            &train,
            &GcnTrainOptions { epochs: 1, lr: eps_lr, momentum: 0.0, lr_decay: 1.0 },
        );
        // dW ≈ (before - after) / lr.
        let grad_at = |before: &Tensor2, after: &Tensor2, idx: usize| -> f32 {
            (before.as_slice()[idx] - after.as_slice()[idx]) / eps_lr
        };

        let eps = 1e-2f32;
        for idx in [0usize, 7, 23] {
            let analytic = grad_at(&before_w0, &probe.w0, idx);
            let mut plus = gcn.clone();
            plus.w0.as_mut_slice()[idx] += eps;
            let mut minus = gcn.clone();
            minus.w0.as_mut_slice()[idx] -= eps;
            let numeric = ((loss_of(&plus) - loss_of(&minus)) / (2.0 * eps as f64)) as f32;
            assert!(
                (numeric - analytic).abs() < 0.05 * (1.0 + numeric.abs().max(analytic.abs())),
                "w0[{idx}]: numeric {numeric} vs analytic {analytic}"
            );
        }
        for idx in [0usize, 3] {
            let analytic = grad_at(&before_w1, &probe.w1, idx);
            let mut plus = gcn.clone();
            plus.w1.as_mut_slice()[idx] += eps;
            let mut minus = gcn.clone();
            minus.w1.as_mut_slice()[idx] -= eps;
            let numeric = ((loss_of(&plus) - loss_of(&minus)) / (2.0 * eps as f64)) as f32;
            assert!(
                (numeric - analytic).abs() < 0.05 * (1.0 + numeric.abs().max(analytic.abs())),
                "w1[{idx}]: numeric {numeric} vs analytic {analytic}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "no training vertices")]
    fn empty_train_set_panics() {
        let g = tgraph::gen::erdos_renyi(10, 40, 2).build();
        let adj = normalized_adjacency(&g);
        let mut gcn = GcnClassifier::new(10, 4, 2, 0);
        let _ = gcn.fit(&adj, &[0u16; 10], &[], &GcnTrainOptions::default());
    }
}
