//! Corruption corpus: opening arbitrary or damaged bytes must always
//! return a structured [`StoreError`] — never a panic, never undefined
//! behavior. This file is the executable contract; it runs in-memory
//! only, so it works under miri and under `SIMD_FORCE_SCALAR=1`
//! unchanged.
//!
//! Corpus dimensions:
//! * bit flips in every header byte
//! * truncation at *every* byte boundary of a small file, and at every
//!   section boundary ± 1 of a larger one
//! * forged headers (bad magic / endianness / version / kind / length)
//!   with *valid* checksums, so the deeper validation layers are hit
//! * forged TOCs (misaligned offsets, out-of-bounds ranges, overlap
//!   with the header, bogus element sizes, duplicate names) with valid
//!   checksums
//! * deterministic pseudo-random garbage of many lengths

use std::io::Cursor;

use store::format::{checksum64, Header, SectionEntry, HEADER_LEN, TOC_ENTRY_LEN};
use store::{pack_graph, pack_snapshot, ArtifactKind, Container, StoreError, StoreWriter};

/// A small but fully featured graph image (graph + adaptive sampler).
/// Under miri the graph shrinks: the interpreter pays ~100× per
/// instruction and the corpus sweeps whole files repeatedly.
fn graph_image() -> Vec<u8> {
    let (n, m) = if cfg!(miri) { (14, 2) } else { (40, 3) };
    let g = tgraph::gen::preferential_attachment(n, m, 5).undirected(true).build();
    let prepared = twalk::SamplerBuilder::new(twalk::TransitionSampler::Softmax)
        .method(twalk::SamplingMethod::Auto)
        .alias_degree_threshold(6)
        .build(&g);
    let mut cur = Cursor::new(Vec::new());
    pack_graph(&mut cur, &g, Some(&prepared)).expect("pack");
    cur.into_inner()
}

/// A small snapshot image.
fn snapshot_image() -> Vec<u8> {
    let emb = embed::EmbeddingMatrix::from_vec(10, 4, (0..40).map(|i| i as f32 * 0.25).collect());
    let mlp = nn::Mlp::new(&[8, 8, 1], nn::OutputHead::Binary, 3);
    let mut cur = Cursor::new(Vec::new());
    pack_snapshot(&mut cur, 5, &emb, &mlp).expect("pack");
    cur.into_inner()
}

/// Patches header fields and re-stamps the header checksum, so forged
/// values reach the checks *behind* the checksum.
fn forge_header(bytes: &mut [u8], patch: impl FnOnce(&mut [u8])) {
    patch(&mut bytes[..56]);
    let sum = checksum64(&bytes[..56]);
    bytes[56..64].copy_from_slice(&sum.to_le_bytes());
}

/// Patches a TOC entry and re-stamps the TOC checksum in the header, so
/// forged section entries reach the per-section validation.
fn forge_toc_entry(bytes: &mut [u8], index: usize, patch: impl FnOnce(&mut [u8])) {
    let toc_offset = u64::from_le_bytes(bytes[32..40].try_into().expect("8")) as usize;
    let count = u32::from_le_bytes(bytes[24..28].try_into().expect("4")) as usize;
    let start = toc_offset + index * TOC_ENTRY_LEN;
    patch(&mut bytes[start..start + TOC_ENTRY_LEN]);
    let toc_sum = checksum64(&bytes[toc_offset..toc_offset + count * TOC_ENTRY_LEN]);
    forge_header(bytes, |h| h[48..56].copy_from_slice(&toc_sum.to_le_bytes()));
}

/// Every open of a damaged image must produce `Err`, and this helper
/// makes the test read as the contract: structured error, no panic.
fn assert_rejected(bytes: &[u8], what: &str) -> StoreError {
    match Container::from_bytes(bytes) {
        Err(e) => e,
        Ok(_) => panic!("{what}: corrupt image was accepted"),
    }
}

#[test]
fn valid_images_open() {
    assert!(Container::from_bytes(&graph_image()).is_ok());
    assert!(Container::from_bytes(&snapshot_image()).is_ok());
    assert!(store::open_graph_bytes(&graph_image()).is_ok());
    assert!(store::open_snapshot_bytes(&snapshot_image()).is_ok());
}

#[test]
fn every_header_byte_flip_is_rejected() {
    let image = graph_image();
    let bits: &[u8] = if cfg!(miri) { &[0x01] } else { &[0x01, 0x80] };
    for byte in 0..HEADER_LEN {
        for &bit in bits {
            let mut bad = image.clone();
            bad[byte] ^= bit;
            let err = assert_rejected(&bad, &format!("header byte {byte} bit {bit:#x}"));
            // Whatever the specific variant, it must be a header-layer
            // error — never a section checksum (the header is checked
            // first) and never success.
            assert!(
                matches!(
                    err,
                    StoreError::BadMagic { .. }
                        | StoreError::HeaderChecksum { .. }
                        | StoreError::Endianness { .. }
                        | StoreError::UnsupportedVersion { .. }
                        | StoreError::UnknownKind { .. }
                        | StoreError::Truncated { .. }
                        | StoreError::Misaligned { .. }
                        | StoreError::OutOfBounds { .. }
                        | StoreError::TocChecksum { .. }
                ),
                "header byte {byte}: unexpected error class {err:?}"
            );
        }
    }
}

#[test]
fn truncation_at_every_byte_of_a_small_image_is_rejected() {
    let image = snapshot_image();
    // Full byte sweep natively; strided under miri (the boundary-focused
    // sweep below still runs exact ±1 cuts there).
    let step = if cfg!(miri) { 13 } else { 1 };
    for cut in (0..image.len()).step_by(step) {
        let err = assert_rejected(&image[..cut], &format!("truncated to {cut}"));
        assert!(
            matches!(err, StoreError::Truncated { .. } | StoreError::HeaderChecksum { .. }),
            "cut {cut}: unexpected error class {err:?}"
        );
    }
}

#[test]
fn truncation_at_every_section_boundary_is_rejected() {
    let image = graph_image();
    let c = Container::from_bytes(&image).expect("valid image");
    let mut cuts: Vec<usize> = vec![0, 1, HEADER_LEN - 1, HEADER_LEN, HEADER_LEN + 1];
    for s in c.sections() {
        for d in [-1i64, 0, 1] {
            let cut = (s.offset as i64 + d).clamp(0, image.len() as i64) as usize;
            cuts.push(cut);
            let end = ((s.offset + s.len) as i64 + d).clamp(0, image.len() as i64) as usize;
            cuts.push(end);
        }
    }
    cuts.push(image.len() - 1);
    drop(c);
    for cut in cuts {
        if cut == image.len() {
            continue; // not a truncation
        }
        assert_rejected(&image[..cut], &format!("truncated to {cut}"));
    }
}

#[test]
fn appended_garbage_is_rejected() {
    // file_len is part of the committed header: extra trailing bytes are
    // as invalid as missing ones.
    let mut image = graph_image();
    image.extend_from_slice(&[0u8; 17]);
    let err = assert_rejected(&image, "appended garbage");
    assert!(matches!(err, StoreError::Truncated { .. }), "got {err:?}");
}

#[test]
fn forged_magic_version_endianness_and_kind_are_rejected() {
    let image = graph_image();

    let mut bad = image.clone();
    forge_header(&mut bad, |h| h[..8].copy_from_slice(b"NOTASTOR"));
    assert!(matches!(assert_rejected(&bad, "magic"), StoreError::BadMagic { .. }));

    let mut bad = image.clone();
    forge_header(&mut bad, |h| h[8..16].reverse()); // byte-swapped endian marker
    assert!(matches!(assert_rejected(&bad, "endianness"), StoreError::Endianness { .. }));

    let mut bad = image.clone();
    forge_header(&mut bad, |h| h[16..20].copy_from_slice(&99u32.to_le_bytes()));
    let err = assert_rejected(&bad, "version");
    match err {
        StoreError::UnsupportedVersion { found, supported } => {
            assert_eq!(found, 99);
            assert_eq!(supported, store::format::FORMAT_VERSION);
        }
        other => panic!("version: unexpected {other:?}"),
    }

    let mut bad = image.clone();
    forge_header(&mut bad, |h| h[20..24].copy_from_slice(&7u32.to_le_bytes()));
    assert!(matches!(assert_rejected(&bad, "kind"), StoreError::UnknownKind { .. }));

    // Kind confusion between valid kinds: caught at the artifact layer.
    let graph = graph_image();
    let snap = snapshot_image();
    assert!(matches!(
        store::open_snapshot_bytes(&graph).unwrap_err(),
        StoreError::WrongKind { .. }
    ));
    assert!(matches!(store::open_graph_bytes(&snap).unwrap_err(), StoreError::WrongKind { .. }));
}

#[test]
fn forged_toc_entries_are_rejected() {
    let image = graph_image();

    // Misaligned section offset (valid checksum, off the 64-byte grid).
    let mut bad = image.clone();
    forge_toc_entry(&mut bad, 0, |e| {
        let off = u64::from_le_bytes(e[8..16].try_into().expect("8")) + 4;
        e[8..16].copy_from_slice(&off.to_le_bytes());
    });
    assert!(matches!(assert_rejected(&bad, "misaligned"), StoreError::Misaligned { .. }));

    // Offset pointing into the header.
    let mut bad = image.clone();
    forge_toc_entry(&mut bad, 0, |e| e[8..16].copy_from_slice(&0u64.to_le_bytes()));
    assert!(matches!(assert_rejected(&bad, "into header"), StoreError::OutOfBounds { .. }));

    // Length escaping the file (and overflowing ranges).
    for len in [u64::MAX, 1 << 60, image.len() as u64] {
        let mut bad = image.clone();
        forge_toc_entry(&mut bad, 1, |e| e[16..24].copy_from_slice(&len.to_le_bytes()));
        let err = assert_rejected(&bad, &format!("len {len}"));
        assert!(
            matches!(err, StoreError::OutOfBounds { .. } | StoreError::Misaligned { .. }),
            "len {len}: got {err:?}"
        );
    }

    // Element size that is not 1/4/8.
    let mut bad = image.clone();
    forge_toc_entry(&mut bad, 0, |e| e[24..28].copy_from_slice(&3u32.to_le_bytes()));
    assert!(matches!(assert_rejected(&bad, "elem size"), StoreError::Invalid { .. }));

    // Duplicate section names.
    let mut bad = image.clone();
    let first_name: [u8; 8] = bad[{
        let toc = u64::from_le_bytes(bad[32..40].try_into().expect("8")) as usize;
        toc..toc + 8
    }]
    .try_into()
    .expect("8");
    forge_toc_entry(&mut bad, 1, |e| e[..8].copy_from_slice(&first_name));
    assert!(matches!(assert_rejected(&bad, "duplicate"), StoreError::DuplicateSection { .. }));
}

#[test]
fn every_payload_section_bit_flip_is_rejected() {
    let image = graph_image();
    let c = Container::from_bytes(&image).expect("valid image");
    let targets: Vec<(String, usize)> = c
        .sections()
        .iter()
        .map(|s| (s.name_str().to_string(), (s.offset + s.len / 2) as usize))
        .collect();
    drop(c);
    for (name, pos) in targets {
        let mut bad = image.clone();
        bad[pos] ^= 0x40;
        let err = assert_rejected(&bad, &format!("payload of {name}"));
        match err {
            StoreError::SectionChecksum { section, .. } => assert_eq!(section, name),
            other => panic!("payload of {name}: unexpected {other:?}"),
        }
    }
}

#[test]
fn semantically_inconsistent_graph_sections_are_rejected() {
    // A graph whose CSR invariants are broken but whose checksums are
    // fine: decreasing offsets must be caught by from_csr_parts, as a
    // structured Invalid — the walk kernels never see such a graph.
    let mut cur = Cursor::new(Vec::new());
    {
        let mut w = StoreWriter::new(&mut cur, ArtifactKind::Graph).expect("writer");
        w.begin_section("meta", 8).expect("b");
        w.write_u64s(&[2, 3]).expect("w");
        w.end_section().expect("e");
        w.begin_section("goff", 8).expect("b");
        w.write_u64s(&[0, 3, 1]).expect("w"); // decreasing
        w.end_section().expect("e");
        w.begin_section("gdst", 4).expect("b");
        w.write_u32s(&[0, 1, 0]).expect("w");
        w.end_section().expect("e");
        w.begin_section("gtim", 8).expect("b");
        w.write_f64s(&[0.1, 0.2, 0.3]).expect("w");
        w.end_section().expect("e");
        w.finish().expect("finish");
    }
    let err = store::open_graph_bytes(&cur.into_inner()).unwrap_err();
    assert!(matches!(err, StoreError::Invalid { .. }), "got {err:?}");
}

#[test]
fn pseudo_random_garbage_never_panics() {
    // Deterministic LCG; no entropy needed, the point is panic-freedom
    // over a broad spread of shapes and lengths.
    let mut state = 0x2545_f491_4f6c_dd1du64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) as u8
    };
    for len in [0usize, 1, 7, 8, 63, 64, 65, 100, 104, 256, 1000, 4096] {
        for _round in 0..8 {
            let bytes: Vec<u8> = (0..len).map(|_| next()).collect();
            assert!(Container::from_bytes(&bytes).is_err(), "garbage of len {len} accepted");
        }
    }
    // Garbage behind a valid header prefix: forge a plausible header
    // onto random tails.
    let image = graph_image();
    for len in [65usize, 128, 200] {
        let mut bytes: Vec<u8> = image[..64.min(image.len())].to_vec();
        bytes.extend((64..len).map(|_| next()));
        assert!(Container::from_bytes(&bytes).is_err(), "forged prefix of len {len} accepted");
    }
}

#[test]
fn header_constants_are_pinned() {
    // The on-disk format is a compatibility contract; these values can
    // only change together with a FORMAT_VERSION bump (DESIGN.md §14).
    let image = graph_image();
    assert_eq!(&image[..8], b"RWSTORE\0");
    assert_eq!(u64::from_le_bytes(image[8..16].try_into().expect("8")), 0x0123_4567_89AB_CDEF);
    assert_eq!(u32::from_le_bytes(image[16..20].try_into().expect("4")), 1);
    let h = Header::decode(&image).expect("header");
    assert_eq!(h.kind, ArtifactKind::Graph);
    // TOC entries decode with the pinned 40-byte stride.
    let toc = h.toc_offset as usize;
    let e = SectionEntry::decode(&image[toc..toc + TOC_ENTRY_LEN]);
    assert_eq!(e.name_str(), "meta");
}
