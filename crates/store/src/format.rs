//! The on-disk container format: magic, header, section table, checksum.
//!
//! ```text
//! offset 0                64               64-aligned sections          64-aligned
//! ┌──────────────────────┬────────────────┬───────────┬─────┬──────────┬───────────┐
//! │ header (64 bytes)    │ section 0      │ section 1 │ ... │ section k│ TOC       │
//! └──────────────────────┴────────────────┴───────────┴─────┴──────────┴───────────┘
//! ```
//!
//! All integers are little-endian. Every structure is located by a byte
//! *offset* from the start of the file — never a pointer — so the same
//! bytes are valid mapped at any address. Payload sections are 64-byte
//! aligned (cache-line, and a superset of every element alignment used),
//! which is what makes the zero-copy slice reinterpretation in the
//! reader sound: a mapping is page-aligned, so `map_base + 64k·i` is
//! aligned for `u64`/`f64` and everything smaller.
//!
//! The section table (TOC) is written *after* the payload so the writer
//! streams sections in one pass; the header is patched last with the
//! TOC offset, file length, and checksums.

use crate::StoreError;

/// First 8 bytes of every store file.
pub const MAGIC: [u8; 8] = *b"RWSTORE\0";

/// Endianness canary: decodes to this value only when reader and writer
/// agree on byte order.
pub const ENDIAN_MARK: u64 = 0x0123_4567_89AB_CDEF;

/// Current (and only) format version this build writes.
pub const FORMAT_VERSION: u32 = 1;

/// Header size in bytes; also the offset of the first section.
pub const HEADER_LEN: usize = 64;

/// Payload sections start on multiples of this.
pub const SECTION_ALIGN: usize = 64;

/// One TOC entry's encoded size.
pub const TOC_ENTRY_LEN: usize = 40;

/// Maximum section-name length (NUL-padded into 8 bytes on disk).
pub const NAME_LEN: usize = 8;

/// What a store file holds. One artifact kind per file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArtifactKind {
    /// A CSR temporal graph, optionally with prepared sampler tables.
    Graph,
    /// A model snapshot: embedding table + link-FNN weights + version.
    Snapshot,
}

impl ArtifactKind {
    /// The on-disk tag.
    pub fn tag(self) -> u32 {
        match self {
            ArtifactKind::Graph => 1,
            ArtifactKind::Snapshot => 2,
        }
    }

    /// Inverse of [`Self::tag`].
    pub fn from_tag(tag: u32) -> Result<Self, StoreError> {
        match tag {
            1 => Ok(ArtifactKind::Graph),
            2 => Ok(ArtifactKind::Snapshot),
            other => Err(StoreError::UnknownKind { found: other }),
        }
    }

    /// Human-readable name (used in errors and `inspect` output).
    pub fn name(self) -> &'static str {
        match self {
            ArtifactKind::Graph => "graph",
            ArtifactKind::Snapshot => "snapshot",
        }
    }
}

/// Rounds `n` up to the next multiple of [`SECTION_ALIGN`].
pub fn align_up(n: u64) -> u64 {
    n.div_ceil(SECTION_ALIGN as u64) * SECTION_ALIGN as u64
}

/// Streaming FNV-1a-64 variant striped across [`LANES`] independent
/// lanes of little-endian `u64` words. Word `i` of the stream folds
/// into lane `i % LANES`, and [`Checksum::finish`] chains the lane
/// digests through one more FNV pass together with the total length.
///
/// Why lanes: plain FNV is one serial multiply chain — latency-bound at
/// ~8 bytes per multiply, which caps validation around 2 GB/s and sits
/// directly on the warm-restart critical path (the open path checksums
/// every payload byte). Four independent chains let the CPU overlap the
/// multiplies, roughly quadrupling throughput, while preserving the
/// properties the corruption corpus relies on: every input bit perturbs
/// exactly one lane before the combine mixes all lanes, the tail word
/// is zero-padded, and the total length is folded in so distinct-length
/// zero-extensions of a stream cannot collide trivially.
#[derive(Debug, Clone)]
pub struct Checksum {
    lanes: [u64; LANES],
    carry: [u8; 8],
    carry_len: usize,
    words: u64,
    total: u64,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
/// Number of interleaved FNV chains; part of the on-disk format.
const LANES: usize = 4;

/// One lane step: `(lane ^ word) * FNV_PRIME`.
///
/// On x86-64 the multiply is issued as an explicit scalar `imul`: LLVM
/// otherwise SLP-vectorizes the four lane chains into SSE2 `pmuludq`
/// sequences that emulate a 64-bit multiply in ~7 µops, which measures
/// ~2× *slower* than four interleaved scalar multiplies. The asm block
/// is opaque to the vectorizer, so each chain keeps its own register
/// and 3-cycle multiply. Value is identical on every path.
#[inline(always)]
fn lane_step(lane: u64, word: u64) -> u64 {
    #[cfg(all(target_arch = "x86_64", not(miri)))]
    {
        let mut h = lane ^ word;
        // SAFETY: a register-only multiply; no memory, no flags needed
        // beyond what the instruction itself clobbers.
        unsafe {
            core::arch::asm!(
                "imul {h}, {p}",
                h = inout(reg) h,
                p = in(reg) FNV_PRIME,
                options(pure, nomem, nostack),
            );
        }
        h
    }
    #[cfg(not(all(target_arch = "x86_64", not(miri))))]
    {
        (lane ^ word).wrapping_mul(FNV_PRIME)
    }
}

impl Checksum {
    /// Fresh hasher.
    pub fn new() -> Self {
        // Distinct lane seeds so a block of repeated words does not put
        // every lane in the same state.
        let mut lanes = [FNV_OFFSET; LANES];
        for (i, lane) in lanes.iter_mut().enumerate() {
            *lane = (*lane ^ i as u64).wrapping_mul(FNV_PRIME);
        }
        Self { lanes, carry: [0; 8], carry_len: 0, words: 0, total: 0 }
    }

    /// Folds `bytes` into the hash. Chunk boundaries do not affect the
    /// result: `update(a); update(b)` equals `update(a ++ b)`.
    pub fn update(&mut self, mut bytes: &[u8]) {
        self.total += bytes.len() as u64;
        if self.carry_len > 0 {
            let take = bytes.len().min(8 - self.carry_len);
            self.carry[self.carry_len..self.carry_len + take].copy_from_slice(&bytes[..take]);
            self.carry_len += take;
            bytes = &bytes[take..];
            if self.carry_len == 8 {
                self.fold(u64::from_le_bytes(self.carry));
                self.carry_len = 0;
            } else {
                return;
            }
        }
        // Re-align to lane 0 so the unrolled loop's lane assignment
        // matches the stream position regardless of chunk boundaries.
        while !self.words.is_multiple_of(LANES as u64) && bytes.len() >= 8 {
            self.fold(u64::from_le_bytes(bytes[..8].try_into().expect("8-byte word")));
            bytes = &bytes[8..];
        }
        // Hot loop: LANES independent multiply chains per block, kept in
        // named locals so each chain stays in its own register and the
        // multiplies overlap.
        let [mut l0, mut l1, mut l2, mut l3] = self.lanes;
        let mut blocks = bytes.chunks_exact(8 * LANES);
        for b in &mut blocks {
            let w0 = u64::from_le_bytes(b[0..8].try_into().expect("word"));
            let w1 = u64::from_le_bytes(b[8..16].try_into().expect("word"));
            let w2 = u64::from_le_bytes(b[16..24].try_into().expect("word"));
            let w3 = u64::from_le_bytes(b[24..32].try_into().expect("word"));
            l0 = lane_step(l0, w0);
            l1 = lane_step(l1, w1);
            l2 = lane_step(l2, w2);
            l3 = lane_step(l3, w3);
        }
        self.lanes = [l0, l1, l2, l3];
        self.words += (bytes.len() / (8 * LANES) * LANES) as u64;
        let mut words = blocks.remainder().chunks_exact(8);
        for w in &mut words {
            self.fold(u64::from_le_bytes(w.try_into().expect("8-byte chunk")));
        }
        let rem = words.remainder();
        self.carry[..rem.len()].copy_from_slice(rem);
        self.carry_len = rem.len();
    }

    fn fold(&mut self, word: u64) {
        let lane = (self.words % LANES as u64) as usize;
        self.lanes[lane] = (self.lanes[lane] ^ word).wrapping_mul(FNV_PRIME);
        self.words += 1;
    }

    /// The digest: remaining tail bytes are zero-padded into one final
    /// word, then the lane states are chained through a final FNV pass
    /// and the total length is xored in.
    pub fn finish(&self) -> u64 {
        let mut h = self.clone();
        if h.carry_len > 0 {
            h.carry[h.carry_len..].fill(0);
            let w = u64::from_le_bytes(h.carry);
            h.fold(w);
        }
        let mut out = FNV_OFFSET;
        for lane in h.lanes {
            out = (out ^ lane).wrapping_mul(FNV_PRIME);
        }
        out ^ h.total
    }
}

impl Default for Checksum {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot checksum of a byte slice.
pub fn checksum64(bytes: &[u8]) -> u64 {
    let mut c = Checksum::new();
    c.update(bytes);
    c.finish()
}

/// Block size for section payload digests; part of the on-disk format.
///
/// Section checksums are not one flat [`Checksum`] over the payload:
/// they are a chain over independent per-block digests (see
/// [`BlockChecksum`]). 8 MiB keeps the per-block overhead negligible
/// while giving the reader enough blocks to spread validation of even a
/// single huge section across every core.
pub const CHECKSUM_BLOCK: usize = 8 << 20;

/// Streaming section-payload digest: the payload is cut into
/// [`CHECKSUM_BLOCK`]-byte blocks (the last may be short), each block is
/// hashed independently with [`Checksum`], and the final digest is a
/// [`Checksum`] over the little-endian block digests in order.
///
/// Why blocks: a single FNV stream must be hashed front to back, so a
/// one-digest-per-section format caps open-path parallelism at the
/// *largest section* — and the CSR arrays dominate real files. Chaining
/// per-block digests keeps the stored checksum a single `u64` while
/// letting the reader verify all blocks of all sections concurrently.
/// Corruption detection is preserved: a flipped payload bit perturbs its
/// block digest, which perturbs the chain; block digests fold their own
/// length (so short-block boundaries matter) and the chain folds the
/// digest count, so blocks cannot be dropped, reordered, or merged
/// silently.
///
/// Chunking-invariant like [`Checksum`]: `update(a); update(b)` equals
/// `update(a ++ b)`.
#[derive(Debug, Clone)]
pub struct BlockChecksum {
    /// Chain over completed block digests.
    chain: Checksum,
    /// The in-flight block.
    block: Checksum,
    block_bytes: usize,
    block_len: usize,
}

impl BlockChecksum {
    /// Fresh hasher with the format's block size.
    pub fn new() -> Self {
        Self::with_block_len(CHECKSUM_BLOCK)
    }

    /// Test-size blocks so boundary logic is exercisable under miri
    /// (hashing multi-MiB blocks there is impractically slow).
    #[cfg(test)]
    fn with_block_len_for_test(block_len: usize) -> Self {
        Self::with_block_len(block_len)
    }

    fn with_block_len(block_len: usize) -> Self {
        assert!(block_len > 0, "block length must be positive");
        Self { chain: Checksum::new(), block: Checksum::new(), block_bytes: 0, block_len }
    }

    /// Folds `bytes` into the digest.
    pub fn update(&mut self, mut bytes: &[u8]) {
        while !bytes.is_empty() {
            let take = bytes.len().min(self.block_len - self.block_bytes);
            self.block.update(&bytes[..take]);
            self.block_bytes += take;
            bytes = &bytes[take..];
            if self.block_bytes == self.block_len {
                self.chain.update(&self.block.finish().to_le_bytes());
                self.block = Checksum::new();
                self.block_bytes = 0;
            }
        }
    }

    /// The digest: a trailing short block (if any) is folded into the
    /// chain, then the chain is finished. An empty payload is the chain
    /// over zero digests.
    pub fn finish(&self) -> u64 {
        let mut chain = self.chain.clone();
        if self.block_bytes > 0 {
            chain.update(&self.block.finish().to_le_bytes());
        }
        chain.finish()
    }
}

impl Default for BlockChecksum {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot section-payload digest of a byte slice.
pub fn block_checksum64(bytes: &[u8]) -> u64 {
    let mut c = BlockChecksum::new();
    c.update(bytes);
    c.finish()
}

/// Reads a little-endian `u64` at `off`; caller guarantees bounds.
pub(crate) fn read_u64(bytes: &[u8], off: usize) -> u64 {
    u64::from_le_bytes(bytes[off..off + 8].try_into().expect("8 bytes"))
}

/// Reads a little-endian `u32` at `off`; caller guarantees bounds.
pub(crate) fn read_u32(bytes: &[u8], off: usize) -> u32 {
    u32::from_le_bytes(bytes[off..off + 4].try_into().expect("4 bytes"))
}

/// The decoded fixed-size file header.
#[derive(Debug, Clone, Copy)]
pub struct Header {
    /// Artifact kind tag (see [`ArtifactKind`]).
    pub kind: ArtifactKind,
    /// Number of TOC entries.
    pub section_count: u32,
    /// Byte offset of the TOC.
    pub toc_offset: u64,
    /// Total file length the writer committed.
    pub file_len: u64,
    /// Checksum over the encoded TOC bytes.
    pub toc_checksum: u64,
}

impl Header {
    /// Encodes the 64-byte header. The final 8 bytes are a checksum over
    /// the preceding 56.
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let mut h = [0u8; HEADER_LEN];
        h[0..8].copy_from_slice(&MAGIC);
        h[8..16].copy_from_slice(&ENDIAN_MARK.to_le_bytes());
        h[16..20].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        h[20..24].copy_from_slice(&self.kind.tag().to_le_bytes());
        h[24..28].copy_from_slice(&self.section_count.to_le_bytes());
        // h[28..32] reserved, zero.
        h[32..40].copy_from_slice(&self.toc_offset.to_le_bytes());
        h[40..48].copy_from_slice(&self.file_len.to_le_bytes());
        h[48..56].copy_from_slice(&self.toc_checksum.to_le_bytes());
        let sum = checksum64(&h[..56]);
        h[56..64].copy_from_slice(&sum.to_le_bytes());
        h
    }

    /// Decodes and validates a header from the start of `bytes`.
    ///
    /// Check order matters for error quality: magic first (is this even
    /// a store file?), then the header checksum (random corruption),
    /// then endianness/version/kind (real but incompatible files), then
    /// the structural offsets against the actual file length.
    pub fn decode(bytes: &[u8]) -> Result<Self, StoreError> {
        if bytes.len() < HEADER_LEN {
            return Err(StoreError::Truncated {
                what: "header".into(),
                needed: HEADER_LEN as u64,
                actual: bytes.len() as u64,
            });
        }
        if bytes[0..8] != MAGIC {
            return Err(StoreError::BadMagic { found: bytes[0..8].try_into().expect("8 bytes") });
        }
        let stored = read_u64(bytes, 56);
        let computed = checksum64(&bytes[..56]);
        if stored != computed {
            return Err(StoreError::HeaderChecksum { stored, computed });
        }
        let endian = read_u64(bytes, 8);
        if endian != ENDIAN_MARK {
            return Err(StoreError::Endianness { found: endian });
        }
        let version = read_u32(bytes, 16);
        if version != FORMAT_VERSION {
            return Err(StoreError::UnsupportedVersion {
                found: version,
                supported: FORMAT_VERSION,
            });
        }
        let kind = ArtifactKind::from_tag(read_u32(bytes, 20))?;
        let header = Header {
            kind,
            section_count: read_u32(bytes, 24),
            toc_offset: read_u64(bytes, 32),
            file_len: read_u64(bytes, 40),
            toc_checksum: read_u64(bytes, 48),
        };
        if header.file_len != bytes.len() as u64 {
            return Err(StoreError::Truncated {
                what: "file body".into(),
                needed: header.file_len,
                actual: bytes.len() as u64,
            });
        }
        let toc_len = header.section_count as u64 * TOC_ENTRY_LEN as u64;
        if !header.toc_offset.is_multiple_of(SECTION_ALIGN as u64) {
            return Err(StoreError::Misaligned {
                section: "<toc>".into(),
                offset: header.toc_offset,
                multiple_of: SECTION_ALIGN as u64,
            });
        }
        let toc_end = header.toc_offset.checked_add(toc_len).ok_or(StoreError::OutOfBounds {
            section: "<toc>".into(),
            offset: header.toc_offset,
            len: toc_len,
            file_len: header.file_len,
        })?;
        if header.toc_offset < HEADER_LEN as u64 || toc_end > header.file_len {
            return Err(StoreError::OutOfBounds {
                section: "<toc>".into(),
                offset: header.toc_offset,
                len: toc_len,
                file_len: header.file_len,
            });
        }
        Ok(header)
    }
}

/// One decoded TOC entry: a named, typed, checksummed byte range.
#[derive(Debug, Clone)]
pub struct SectionEntry {
    /// NUL-padded section name.
    pub name: [u8; NAME_LEN],
    /// Payload byte offset from the start of the file (64-aligned).
    pub offset: u64,
    /// Payload byte length.
    pub len: u64,
    /// Element size the payload reinterprets as (1, 4, or 8).
    pub elem_size: u32,
    /// Block-chained digest over the payload bytes ([`BlockChecksum`]).
    pub checksum: u64,
}

impl SectionEntry {
    /// The name as UTF-8 with the NUL padding stripped.
    pub fn name_str(&self) -> &str {
        let end = self.name.iter().position(|&b| b == 0).unwrap_or(NAME_LEN);
        std::str::from_utf8(&self.name[..end]).unwrap_or("<non-utf8>")
    }

    /// Encodes the 40-byte TOC entry.
    pub fn encode(&self) -> [u8; TOC_ENTRY_LEN] {
        let mut e = [0u8; TOC_ENTRY_LEN];
        e[0..8].copy_from_slice(&self.name);
        e[8..16].copy_from_slice(&self.offset.to_le_bytes());
        e[16..24].copy_from_slice(&self.len.to_le_bytes());
        e[24..28].copy_from_slice(&self.elem_size.to_le_bytes());
        // e[28..32] reserved, zero.
        e[32..40].copy_from_slice(&self.checksum.to_le_bytes());
        e
    }

    /// Decodes one entry (no validation beyond field extraction — the
    /// container validates ranges with the whole file in hand).
    pub fn decode(bytes: &[u8]) -> Self {
        SectionEntry {
            name: bytes[0..8].try_into().expect("8 bytes"),
            offset: read_u64(bytes, 8),
            len: read_u64(bytes, 16),
            elem_size: read_u32(bytes, 24),
            checksum: read_u64(bytes, 32),
        }
    }
}

/// Builds the fixed 8-byte name array from a short ASCII string.
///
/// # Panics
///
/// Panics if `name` exceeds 8 bytes — section names are compile-time
/// constants chosen by this crate, so a long one is a programming error.
pub fn section_name(name: &str) -> [u8; NAME_LEN] {
    assert!(name.len() <= NAME_LEN, "section name {name:?} exceeds {NAME_LEN} bytes");
    let mut out = [0u8; NAME_LEN];
    out[..name.len()].copy_from_slice(name.as_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checksum_is_chunking_invariant() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i * 7 + 13) as u8).collect();
        let whole = checksum64(&data);
        for split in [0, 1, 7, 8, 9, 63, 64, 65, 999, 1000] {
            let mut c = Checksum::new();
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), whole, "split at {split} changed the digest");
        }
        // Three-way split with awkward boundaries.
        let mut c = Checksum::new();
        c.update(&data[..3]);
        c.update(&data[3..10]);
        c.update(&data[10..]);
        assert_eq!(c.finish(), whole);
    }

    #[test]
    fn checksum_distinguishes_lengths_and_contents() {
        assert_ne!(checksum64(b""), checksum64(b"\0"));
        assert_ne!(checksum64(b"\0"), checksum64(b"\0\0"));
        assert_ne!(checksum64(b"abcdefgh"), checksum64(b"abcdefgi"));
        // A trailing zero after a word boundary must still matter.
        assert_ne!(checksum64(b"abcdefgh"), checksum64(b"abcdefgh\0"));
    }

    #[test]
    fn block_checksum_is_chunking_invariant_and_boundary_sensitive() {
        let data: Vec<u8> = (0..512u32).map(|i| (i * 31 + 5) as u8).collect();
        // Whole-slice reference with a 100-byte test block size.
        let mut whole = BlockChecksum::with_block_len_for_test(100);
        whole.update(&data);
        let reference = whole.finish();
        for split in [0, 1, 99, 100, 101, 200, 511, 512] {
            let mut c = BlockChecksum::with_block_len_for_test(100);
            c.update(&data[..split]);
            c.update(&data[split..]);
            assert_eq!(c.finish(), reference, "split at {split} changed the digest");
        }
        // Block size is part of the digest: the same bytes hashed with a
        // different block length must not collide.
        let mut other = BlockChecksum::with_block_len_for_test(128);
        other.update(&data);
        assert_ne!(other.finish(), reference);
        // Exactly one block vs one block plus one byte.
        let mut exact = BlockChecksum::with_block_len_for_test(100);
        exact.update(&data[..100]);
        let mut over = BlockChecksum::with_block_len_for_test(100);
        over.update(&data[..101]);
        assert_ne!(exact.finish(), over.finish());
        // Empty payload has a stable, distinct digest.
        assert_eq!(
            BlockChecksum::with_block_len_for_test(100).finish(),
            BlockChecksum::with_block_len_for_test(100).finish()
        );
        assert_ne!(BlockChecksum::with_block_len_for_test(100).finish(), exact.finish());
    }

    #[cfg(not(miri))]
    #[test]
    fn block_checksum_matches_manual_chain_at_format_block_size() {
        // Cross the real 8 MiB boundary once so the production block
        // size is exercised, and check the one-shot helper agrees with
        // hand-chaining the block digests (the reader's parallel path).
        let data: Vec<u8> = (0..CHECKSUM_BLOCK + 12_345).map(|i| (i * 7 + 1) as u8).collect();
        let mut chain = Checksum::new();
        for block in data.chunks(CHECKSUM_BLOCK) {
            chain.update(&checksum64(block).to_le_bytes());
        }
        assert_eq!(block_checksum64(&data), chain.finish());
    }

    #[test]
    fn header_round_trips() {
        let h = Header {
            kind: ArtifactKind::Graph,
            section_count: 3,
            toc_offset: 256,
            file_len: 376,
            toc_checksum: 0xdead_beef,
        };
        let mut file = vec![0u8; 376];
        file[..HEADER_LEN].copy_from_slice(&h.encode());
        let d = Header::decode(&file).expect("valid header");
        assert_eq!(d.kind, ArtifactKind::Graph);
        assert_eq!(d.section_count, 3);
        assert_eq!(d.toc_offset, 256);
        assert_eq!(d.file_len, 376);
        assert_eq!(d.toc_checksum, 0xdead_beef);
    }

    #[test]
    fn header_rejects_bad_magic_and_corruption() {
        let h = Header {
            kind: ArtifactKind::Snapshot,
            section_count: 1,
            toc_offset: 64,
            file_len: 104,
            toc_checksum: 1,
        };
        let mut file = vec![0u8; 104];
        file[..HEADER_LEN].copy_from_slice(&h.encode());
        assert!(Header::decode(&file).is_ok());

        let mut bad = file.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(Header::decode(&bad), Err(StoreError::BadMagic { .. })));

        // Any single bit flip in the checksummed region must be caught.
        for byte in [9, 17, 21, 25, 33, 41, 49] {
            let mut bad = file.clone();
            bad[byte] ^= 0x10;
            assert!(
                matches!(Header::decode(&bad), Err(StoreError::HeaderChecksum { .. })),
                "flip at byte {byte} was not caught"
            );
        }
    }

    #[test]
    fn section_entry_round_trips() {
        let e = SectionEntry {
            name: section_name("goff"),
            offset: 64,
            len: 800,
            elem_size: 8,
            checksum: 42,
        };
        let d = SectionEntry::decode(&e.encode());
        assert_eq!(d.name_str(), "goff");
        assert_eq!(d.offset, 64);
        assert_eq!(d.len, 800);
        assert_eq!(d.elem_size, 8);
        assert_eq!(d.checksum, 42);
    }

    #[test]
    fn align_up_rounds_to_cache_lines() {
        assert_eq!(align_up(0), 0);
        assert_eq!(align_up(1), 64);
        assert_eq!(align_up(64), 64);
        assert_eq!(align_up(65), 128);
    }
}
