//! Graph artifact: packing a [`TemporalGraph`] (plus optionally its
//! [`PreparedSampler`] tables) into a container and opening it back
//! zero-copy.
//!
//! Sections (`kind = Graph`):
//!
//! | name   | elem | contents                                          |
//! |--------|------|---------------------------------------------------|
//! | `meta` | u64  | `[num_nodes, num_edges]`                          |
//! | `goff` | u64  | CSR offsets, `n + 1` entries                      |
//! | `gdst` | u32  | CSR destination node ids, `m` entries             |
//! | `gtim` | f64  | CSR edge timestamps (IEEE-754 bits), `m` entries  |
//! | `smet` | u64  | sampler meta (present iff a sampler was packed)   |
//! | `smth` | u8   | per-vertex method bytes (weighted, adaptive only) |
//! | `scst` | u64  | CDF row starts, `n + 1` entries                   |
//! | `scdf` | f64  | CDF cumulative weights                            |
//! | `sast` | u64  | alias row starts, `n + 1` entries                 |
//! | `sapr` | f64  | alias probabilities                               |
//! | `sali` | u32  | alias indices (segment-local)                     |
//!
//! `smet` words: `[bias_tag, span_bits, has_methods, cdf_vertices,
//! alias_vertices, rejection_vertices]`, with `bias_tag` 0 = uniform,
//! 1 = linear-time, 2 = softmax, 3 = softmax-recency, and `span_bits`
//! the `f64` bit pattern of the graph-wide span (0 for closed forms).
//!
//! Opening reconstructs the graph through [`TemporalGraph::from_csr_parts`]
//! and the sampler through [`PreparedSampler::from_weighted_tables`], so
//! every structural invariant the walk hot path assumes is re-checked —
//! a store file is untrusted input even after its checksums pass.

use std::io::{Seek, Write};
use std::path::Path;

use tgraph::TemporalGraph;
use twalk::{PreparedSampler, SamplerTables, SamplingMethod, TransitionSampler, WeightedTables};

use crate::format::ArtifactKind;
use crate::reader::Container;
use crate::writer::StoreWriter;
use crate::StoreError;

const BIAS_UNIFORM: u64 = 0;
const BIAS_LINEAR: u64 = 1;
const BIAS_SOFTMAX: u64 = 2;
const BIAS_RECENCY: u64 = 3;

/// Packs `g` (and optionally its prepared sampler) into `out`.
///
/// Sections are streamed straight from the graph's own arrays through a
/// fixed-size encode chunk — peak memory is the graph itself plus a few
/// KiB, never a serialized second copy.
///
/// Returns the total file length. Fails with [`StoreError::Invalid`] if
/// the sampler is a custom bias (no on-disk form) or was prepared for a
/// different graph shape.
pub fn pack_graph<W: Write + Seek>(
    out: W,
    g: &TemporalGraph,
    sampler: Option<&PreparedSampler>,
) -> Result<u64, StoreError> {
    let mut w = StoreWriter::new(out, ArtifactKind::Graph)?;
    let (offsets, dsts, times) = g.csr_parts();

    w.begin_section("meta", 8)?;
    w.write_u64s(&[g.num_nodes() as u64, g.num_edges() as u64])?;
    w.end_section()?;

    w.begin_section("goff", 8)?;
    w.write_usizes(offsets)?;
    w.end_section()?;

    w.begin_section("gdst", 4)?;
    w.write_u32s(dsts)?;
    w.end_section()?;

    w.begin_section("gtim", 8)?;
    w.write_f64s(times)?;
    w.end_section()?;

    if let Some(s) = sampler {
        if s.num_nodes() != g.num_nodes() || s.num_edges() != g.num_edges() {
            return Err(StoreError::Invalid {
                what: "sampler".into(),
                message: format!(
                    "prepared for {}x{} but the graph is {}x{}",
                    s.num_nodes(),
                    s.num_edges(),
                    g.num_nodes(),
                    g.num_edges()
                ),
            });
        }
        let tables = s.export_tables().ok_or_else(|| StoreError::Invalid {
            what: "sampler".into(),
            message: "custom bias functions have no on-disk representation".into(),
        })?;
        let stats = s.stats();
        match tables {
            SamplerTables::Uniform => {
                w.begin_section("smet", 8)?;
                w.write_u64s(&[BIAS_UNIFORM, 0, 0, 0, 0, 0])?;
                w.end_section()?;
            }
            SamplerTables::LinearTime => {
                w.begin_section("smet", 8)?;
                w.write_u64s(&[BIAS_LINEAR, 0, 0, 0, 0, 0])?;
                w.end_section()?;
            }
            SamplerTables::Weighted { recency, span, methods, cdf, alias } => {
                let bias_tag = if recency { BIAS_RECENCY } else { BIAS_SOFTMAX };
                w.begin_section("smet", 8)?;
                w.write_u64s(&[
                    bias_tag,
                    span.to_bits(),
                    methods.is_some() as u64,
                    stats.cdf_vertices as u64,
                    stats.alias_vertices as u64,
                    stats.rejection_vertices as u64,
                ])?;
                w.end_section()?;
                if let Some(ms) = methods {
                    w.begin_section("smth", 1)?;
                    let mut chunk = [0u8; 8192];
                    for group in ms.chunks(chunk.len()) {
                        for (i, m) in group.iter().enumerate() {
                            chunk[i] = m.as_u8();
                        }
                        w.write_bytes(&chunk[..group.len()])?;
                    }
                    w.end_section()?;
                }
                if let Some((starts, weights)) = cdf {
                    w.begin_section("scst", 8)?;
                    w.write_usizes(starts)?;
                    w.end_section()?;
                    w.begin_section("scdf", 8)?;
                    w.write_f64s(weights)?;
                    w.end_section()?;
                }
                if let Some((starts, prob, idx)) = alias {
                    w.begin_section("sast", 8)?;
                    w.write_usizes(starts)?;
                    w.end_section()?;
                    w.begin_section("sapr", 8)?;
                    w.write_f64s(prob)?;
                    w.end_section()?;
                    w.begin_section("sali", 4)?;
                    w.write_u32s(idx)?;
                    w.end_section()?;
                }
            }
        }
    }

    w.finish()
}

/// Packs to a file path (buffered), creating or truncating it.
pub fn pack_graph_to_path(
    path: &Path,
    g: &TemporalGraph,
    sampler: Option<&PreparedSampler>,
) -> Result<u64, StoreError> {
    let file = std::fs::File::create(path)?;
    pack_graph(std::io::BufWriter::new(file), g, sampler)
}

/// A graph opened from a store file: the CSR arrays (and weighted
/// sampler tables, when packed) borrow the mapping zero-copy.
#[derive(Debug)]
pub struct OpenedGraph {
    /// The reconstructed, fully validated graph.
    pub graph: TemporalGraph,
    /// The packed sampler, if the file has one.
    pub sampler: Option<PreparedSampler>,
    /// Whether the backing bytes are a live memory mapping.
    pub mapped: bool,
    /// Total store file length in bytes.
    pub file_len: u64,
}

/// Opens a packed graph from disk (mmap fast path).
pub fn open_graph(path: &Path) -> Result<OpenedGraph, StoreError> {
    let span = obs::Recorder::global().span("store_load_ns{kind=\"graph\"}");
    let out = open_graph_container(Container::open(path)?);
    drop(span);
    out
}

/// Opens a packed graph from an in-memory image (tests, miri).
pub fn open_graph_bytes(bytes: &[u8]) -> Result<OpenedGraph, StoreError> {
    open_graph_container(Container::from_bytes(bytes)?)
}

fn open_graph_container(c: Container) -> Result<OpenedGraph, StoreError> {
    c.expect_kind(ArtifactKind::Graph)?;
    crate::record_section_metrics(&c);

    let meta = c.u64s("meta")?;
    if meta.len() != 2 {
        return Err(StoreError::Invalid {
            what: "graph meta".into(),
            message: format!("expected 2 words, found {}", meta.len()),
        });
    }
    let (n, m) = (meta[0] as usize, meta[1] as usize);

    let offsets = c.usizes("goff")?;
    let dsts = c.u32s("gdst")?;
    let times = c.f64s("gtim")?;
    if offsets.len() != n + 1 || dsts.len() != m || times.len() != m {
        return Err(StoreError::Invalid {
            what: "graph sections".into(),
            message: format!(
                "meta says {n} nodes / {m} edges but sections hold {} offsets, {} dsts, {} times",
                offsets.len(),
                dsts.len(),
                times.len()
            ),
        });
    }
    let graph = TemporalGraph::from_csr_parts(offsets, dsts, times)
        .map_err(|e| StoreError::Invalid { what: "graph CSR".into(), message: e.to_string() })?;

    let sampler = if c.has_section("smet") { Some(open_sampler(&c, n, m)?) } else { None };

    Ok(OpenedGraph { graph, sampler, mapped: c.is_mapped(), file_len: c.file_len() })
}

fn open_sampler(c: &Container, n: usize, m: usize) -> Result<PreparedSampler, StoreError> {
    let invalid =
        |message: String| StoreError::Invalid { what: "sampler sections".into(), message };
    let meta = c.u64s("smet")?;
    if meta.len() != 6 {
        return Err(invalid(format!("sampler meta has {} words, expected 6", meta.len())));
    }
    match meta[0] {
        BIAS_UNIFORM => {
            PreparedSampler::from_closed_form(TransitionSampler::Uniform, n, m).map_err(invalid)
        }
        BIAS_LINEAR => {
            PreparedSampler::from_closed_form(TransitionSampler::LinearTime, n, m).map_err(invalid)
        }
        tag @ (BIAS_SOFTMAX | BIAS_RECENCY) => {
            let methods = if meta[2] != 0 {
                // The method map is |V| bytes — copied (not zero-copy)
                // because each byte must be validated into the enum;
                // reinterpreting arbitrary bytes as `SamplingMethod`
                // would be undefined behavior on a corrupt file.
                let raw = c.section_bytes("smth")?;
                let mut ms = Vec::with_capacity(raw.len());
                for (v, &b) in raw.iter().enumerate() {
                    ms.push(
                        SamplingMethod::from_u8(b)
                            .map_err(|e| invalid(format!("vertex {v}: {e}")))?,
                    );
                }
                Some(ms)
            } else {
                None
            };
            let cdf = if c.has_section("scst") {
                Some((c.usizes("scst")?, c.f64s("scdf")?))
            } else {
                None
            };
            let alias = if c.has_section("sast") {
                Some((c.usizes("sast")?, c.f64s("sapr")?, c.u32s("sali")?))
            } else {
                None
            };
            let tables = WeightedTables {
                recency: tag == BIAS_RECENCY,
                span: f64::from_bits(meta[1]),
                methods,
                cdf,
                alias,
            };
            let counts = (meta[3] as usize, meta[4] as usize, meta[5] as usize);
            PreparedSampler::from_weighted_tables(tables, n, m, counts).map_err(invalid)
        }
        other => Err(invalid(format!("unknown bias tag {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;
    use twalk::SamplerBuilder;

    fn small_graph() -> TemporalGraph {
        tgraph::gen::erdos_renyi(60, 400, 11).build()
    }

    fn pack_bytes(g: &TemporalGraph, s: Option<&PreparedSampler>) -> Vec<u8> {
        let mut cur = Cursor::new(Vec::new());
        pack_graph(&mut cur, g, s).expect("pack");
        cur.into_inner()
    }

    #[test]
    fn graph_round_trips_bit_exactly() {
        let g = small_graph();
        let opened = open_graph_bytes(&pack_bytes(&g, None)).expect("open");
        assert!(opened.sampler.is_none());
        let (o1, d1, t1) = g.csr_parts();
        let (o2, d2, t2) = opened.graph.csr_parts();
        assert_eq!(o1, o2);
        assert_eq!(d1, d2);
        // Timestamps must round-trip as bits, not as values.
        let b1: Vec<u64> = t1.iter().map(|t| t.to_bits()).collect();
        let b2: Vec<u64> = t2.iter().map(|t| t.to_bits()).collect();
        assert_eq!(b1, b2);
    }

    #[test]
    fn closed_form_samplers_round_trip() {
        let g = small_graph();
        for bias in [TransitionSampler::Uniform, TransitionSampler::LinearTime] {
            let prepared = bias.prepare(&g);
            let opened = open_graph_bytes(&pack_bytes(&g, Some(&prepared))).expect("open");
            let s = opened.sampler.expect("sampler present");
            assert_eq!(s.num_nodes(), g.num_nodes());
            assert_eq!(s.num_edges(), g.num_edges());
        }
    }

    #[test]
    fn weighted_sampler_round_trips_with_stats() {
        let g = small_graph();
        let prepared = SamplerBuilder::new(TransitionSampler::Softmax)
            .method(SamplingMethod::Auto)
            .alias_degree_threshold(8)
            .build(&g);
        let stats = prepared.stats();
        let opened = open_graph_bytes(&pack_bytes(&g, Some(&prepared))).expect("open");
        let s = opened.sampler.expect("sampler present");
        let s2 = s.stats();
        assert_eq!(s2.cdf_vertices, stats.cdf_vertices);
        assert_eq!(s2.alias_vertices, stats.alias_vertices);
        assert_eq!(s2.rejection_vertices, stats.rejection_vertices);
        assert_eq!(s2.table_bytes, stats.table_bytes);
    }

    #[test]
    fn shape_mismatch_is_rejected_at_pack_time() {
        let g = small_graph();
        let other = tgraph::gen::erdos_renyi(10, 30, 3).build();
        let prepared = TransitionSampler::Softmax.prepare(&other);
        let mut cur = Cursor::new(Vec::new());
        let err = pack_graph(&mut cur, &g, Some(&prepared)).unwrap_err();
        assert!(matches!(err, StoreError::Invalid { .. }));
    }

    #[test]
    fn corrupt_method_byte_is_a_structured_error() {
        let g = small_graph();
        let prepared = SamplerBuilder::new(TransitionSampler::Softmax)
            .method(SamplingMethod::Auto)
            .alias_degree_threshold(8)
            .build(&g);
        let bytes = pack_bytes(&g, Some(&prepared));
        let c = Container::from_bytes(&bytes).expect("container");
        if !c.has_section("smth") {
            return; // all-CDF compact layout on this graph; nothing to corrupt
        }
        let off = c.sections().iter().find(|s| s.name_str() == "smth").expect("smth entry").offset
            as usize;
        drop(c);
        // A corrupt method byte flips the payload checksum too, so to
        // reach the semantic check we must rewrite the file. Simpler:
        // verify from_u8 rejects, and that checksum catches the raw flip.
        let mut bad = bytes.clone();
        bad[off] = 200;
        assert!(matches!(open_graph_bytes(&bad), Err(StoreError::SectionChecksum { .. })));
        assert!(SamplingMethod::from_u8(200).is_err());
    }
}
