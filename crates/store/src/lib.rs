//! Persistent zero-copy storage for the pipeline's heavy artifacts.
//!
//! One container format (see [`format`]) holds three artifact kinds:
//!
//! * **Graphs** — the CSR arrays of a [`tgraph::TemporalGraph`], plus
//!   optionally the prepared sampler tables built for it, so a run can
//!   `open` instead of re-ingesting and re-preparing ([`open_graph`]).
//! * **Sampler tables** — packed alongside their graph: CDF prefix
//!   sums, alias tables, and the per-vertex method map, restored
//!   through validating constructors into a
//!   [`twalk::PreparedSampler`].
//! * **Model snapshots** — embedding table + link-FNN weights +
//!   publish version, so `serve` warm-restarts in milliseconds
//!   ([`open_snapshot`]).
//!
//! The design contract, in one line: *validate once at open, then
//! borrow forever*. Opening checks magic, version, endianness,
//! checksums, alignment, and bounds up front and returns structured
//! [`StoreError`]s; after that every large array is a
//! [`tgraph::Storage::mapped`] slice borrowed straight from the mapping
//! — no copy on the open path — kept alive by an `Arc` to the
//! [`StoreFile`].
//!
//! Observability: opening records `store_load_ns{kind=…}` and
//! per-section byte counters `store_bytes{section=…}` when the global
//! [`obs`] recorder is enabled.
//!
//! # Examples
//!
//! Pack a graph with its sampler, reopen it zero-copy:
//!
//! ```
//! use twalk::TransitionSampler;
//!
//! let g = tgraph::gen::erdos_renyi(100, 600, 7).build();
//! let prepared = TransitionSampler::Softmax.prepare(&g);
//!
//! let mut buf = std::io::Cursor::new(Vec::new());
//! store::pack_graph(&mut buf, &g, Some(&prepared)).unwrap();
//!
//! let opened = store::open_graph_bytes(&buf.into_inner()).unwrap();
//! assert_eq!(opened.graph.num_edges(), g.num_edges());
//! assert!(opened.sampler.is_some());
//! ```

#![warn(missing_docs)]

mod error;
mod file;
pub mod format;
mod graph;
mod reader;
mod snapshot;
mod writer;

pub use error::StoreError;
pub use file::StoreFile;
pub use format::ArtifactKind;
pub use graph::{open_graph, open_graph_bytes, pack_graph, pack_graph_to_path, OpenedGraph};
pub use reader::Container;
pub use snapshot::{
    open_snapshot, open_snapshot_bytes, pack_snapshot, pack_snapshot_to_path, OpenedSnapshot,
};
pub use writer::StoreWriter;

/// Exports per-section byte sizes to the global recorder (no-op when
/// obs is disabled) — `store_bytes{section="goff"}` etc.
pub(crate) fn record_section_metrics(c: &Container) {
    let rec = obs::Recorder::global();
    if !rec.is_enabled() {
        return;
    }
    for s in c.sections() {
        rec.counter(&format!("store_bytes{{section=\"{}\"}}", s.name_str())).add(s.len);
    }
    rec.counter("store_open_total").inc();
}
