//! Container reader: validate up front, then hand out borrowed views.
//!
//! [`Container::open`] runs the full validation chain once — magic,
//! header checksum, endianness, version, kind, TOC bounds + checksum,
//! then every section's alignment, element-size divisibility, file
//! bounds, name uniqueness, and payload checksum. After that, the typed
//! accessors are infallible-by-construction slices into the mapping: no
//! copy, no re-validation, no way to read past the file.
//!
//! # Safety argument for the zero-copy views
//!
//! A view reinterprets `&[u8]` as `&[T]` for `T ∈ {u8, u32, f32, u64,
//! f64}`. This is sound because:
//!
//! 1. *Alignment*: the mapping base is page-aligned (or 64-aligned on
//!    the heap path) and every section offset is a validated multiple
//!    of 64, so the element pointer is aligned for any `T` above.
//! 2. *Size*: section length is a validated multiple of `elem_size`,
//!    and the accessor checks the section was written with the same
//!    `elem_size` it is being read as.
//! 3. *Validity*: every bit pattern is a valid `u8`/`u32`/`u64`; for
//!    floats we reinterpret IEEE-754 bits, where every pattern is also
//!    valid (NaNs included — semantic checks happen in the artifact
//!    layer, not here). No type with invariants (`bool`, enums,
//!    references) is ever zero-copy; those are copied through
//!    validating constructors.
//! 4. *Lifetime*: views are [`Storage::mapped`] carrying an
//!    `Arc<StoreFile>` owner, so the mapping cannot be unmapped while
//!    any view is alive.

use std::path::Path;
use std::sync::Arc;

use tgraph::Storage;

use crate::file::StoreFile;
use crate::format::{
    checksum64, ArtifactKind, Checksum, Header, SectionEntry, CHECKSUM_BLOCK, HEADER_LEN,
    SECTION_ALIGN, TOC_ENTRY_LEN,
};
use crate::StoreError;

/// A validated, open store file.
pub struct Container {
    file: Arc<StoreFile>,
    header: Header,
    sections: Vec<SectionEntry>,
}

impl Container {
    /// Opens and fully validates a store file on disk.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        Self::from_file(StoreFile::open(path)?)
    }

    /// Validates a store image already in memory (tests, miri).
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, StoreError> {
        Self::from_file(StoreFile::from_bytes(bytes))
    }

    fn from_file(file: Arc<StoreFile>) -> Result<Self, StoreError> {
        let bytes = file.bytes();
        let header = Header::decode(bytes)?;

        // TOC: bounds were checked by Header::decode; verify content.
        let toc_start = header.toc_offset as usize;
        let toc_len = header.section_count as usize * TOC_ENTRY_LEN;
        let toc_bytes = &bytes[toc_start..toc_start + toc_len];
        let mut toc_sum = Checksum::new();
        toc_sum.update(toc_bytes);
        let computed = toc_sum.finish();
        if computed != header.toc_checksum {
            return Err(StoreError::TocChecksum { stored: header.toc_checksum, computed });
        }

        let mut sections = Vec::with_capacity(header.section_count as usize);
        for i in 0..header.section_count as usize {
            let entry =
                SectionEntry::decode(&toc_bytes[i * TOC_ENTRY_LEN..(i + 1) * TOC_ENTRY_LEN]);
            let name = entry.name_str().to_string();
            if sections.iter().any(|s: &SectionEntry| s.name == entry.name) {
                return Err(StoreError::DuplicateSection { section: name });
            }
            if !entry.offset.is_multiple_of(SECTION_ALIGN as u64) {
                return Err(StoreError::Misaligned {
                    section: name,
                    offset: entry.offset,
                    multiple_of: SECTION_ALIGN as u64,
                });
            }
            if !matches!(entry.elem_size, 1 | 4 | 8) {
                return Err(StoreError::Invalid {
                    what: format!("section {name:?}"),
                    message: format!("element size {} is not 1, 4, or 8", entry.elem_size),
                });
            }
            if !entry.len.is_multiple_of(entry.elem_size as u64) {
                return Err(StoreError::Misaligned {
                    section: name,
                    offset: entry.len,
                    multiple_of: entry.elem_size as u64,
                });
            }
            let end =
                entry.offset.checked_add(entry.len).ok_or_else(|| StoreError::OutOfBounds {
                    section: name.clone(),
                    offset: entry.offset,
                    len: entry.len,
                    file_len: header.file_len,
                })?;
            // Sections live strictly between the header and the TOC.
            if entry.offset < HEADER_LEN as u64 || end > header.toc_offset {
                return Err(StoreError::OutOfBounds {
                    section: name,
                    offset: entry.offset,
                    len: entry.len,
                    file_len: header.file_len,
                });
            }
            sections.push(entry);
        }

        // Payload checksums last: the structural pass above proved every
        // range in bounds, so the reads below cannot escape the file.
        // Section digests are block-chained (format::BlockChecksum), so
        // the unit of work here is one CHECKSUM_BLOCK, not one section —
        // a single huge CSR array still spreads across every core. Small
        // images (and the miri corpus) stay on the serial path.
        const PARALLEL_MIN_BYTES: u64 = 4 << 20;
        let mut blocks: Vec<(usize, usize)> = Vec::new(); // (byte start, byte len)
        let mut block_starts = Vec::with_capacity(sections.len() + 1);
        for entry in &sections {
            block_starts.push(blocks.len());
            let (start, len) = (entry.offset as usize, entry.len as usize);
            let mut off = 0;
            while off < len {
                let take = (len - off).min(CHECKSUM_BLOCK);
                blocks.push((start + off, take));
                off += take;
            }
        }
        block_starts.push(blocks.len());
        let mut digests = vec![0u64; blocks.len()];
        let digest = |&(start, len): &(usize, usize)| checksum64(&bytes[start..start + len]);
        if sections.iter().map(|s| s.len).sum::<u64>() >= PARALLEL_MIN_BYTES {
            let cfg = par::ParConfig::default().chunk_size(1);
            par::parallel_for(&cfg, &mut digests, |i, d| *d = digest(&blocks[i]));
        } else {
            for (d, block) in digests.iter_mut().zip(&blocks) {
                *d = digest(block);
            }
        }
        // Chain each section's block digests and compare, in TOC order.
        for (i, entry) in sections.iter().enumerate() {
            let mut chain = Checksum::new();
            for d in &digests[block_starts[i]..block_starts[i + 1]] {
                chain.update(&d.to_le_bytes());
            }
            let computed = chain.finish();
            if computed != entry.checksum {
                return Err(StoreError::SectionChecksum {
                    section: entry.name_str().to_string(),
                    stored: entry.checksum,
                    computed,
                });
            }
        }

        Ok(Self { file, header, sections })
    }

    /// The artifact kind this file holds.
    pub fn kind(&self) -> ArtifactKind {
        self.header.kind
    }

    /// Errors unless the file holds `expected`.
    pub fn expect_kind(&self, expected: ArtifactKind) -> Result<(), StoreError> {
        if self.header.kind != expected {
            return Err(StoreError::WrongKind {
                expected: expected.name(),
                found: self.header.kind.name(),
            });
        }
        Ok(())
    }

    /// All validated section entries, in file order.
    pub fn sections(&self) -> &[SectionEntry] {
        &self.sections
    }

    /// Total file length in bytes.
    pub fn file_len(&self) -> u64 {
        self.header.file_len
    }

    /// Whether the payload is a live memory mapping (vs heap bytes).
    pub fn is_mapped(&self) -> bool {
        self.file.is_mapped()
    }

    /// The shared file handle (the `owner` for zero-copy views).
    pub fn file(&self) -> &Arc<StoreFile> {
        &self.file
    }

    fn entry(&self, name: &str) -> Result<&SectionEntry, StoreError> {
        self.sections
            .iter()
            .find(|s| s.name_str() == name)
            .ok_or_else(|| StoreError::MissingSection { section: name.into() })
    }

    /// True if the file contains a section with this name.
    pub fn has_section(&self, name: &str) -> bool {
        self.sections.iter().any(|s| s.name_str() == name)
    }

    /// A section's raw bytes (validated range, borrowed from the map).
    pub fn section_bytes(&self, name: &str) -> Result<&[u8], StoreError> {
        let e = self.entry(name)?;
        Ok(&self.file.bytes()[e.offset as usize..(e.offset + e.len) as usize])
    }

    fn typed_ptr(&self, name: &str, elem_size: u32) -> Result<(*const u8, usize), StoreError> {
        let e = self.entry(name)?;
        if e.elem_size != elem_size {
            return Err(StoreError::Invalid {
                what: format!("section {name:?}"),
                message: format!(
                    "written with {}-byte elements, read as {}-byte",
                    e.elem_size, elem_size
                ),
            });
        }
        let ptr = unsafe { self.file.bytes().as_ptr().add(e.offset as usize) };
        debug_assert_eq!(ptr as usize % elem_size as usize, 0, "validated alignment");
        Ok((ptr, (e.len / elem_size as u64) as usize))
    }

    /// Zero-copy `u64` view of a section.
    pub fn u64s(&self, name: &str) -> Result<Storage<u64>, StoreError> {
        let (ptr, len) = self.typed_ptr(name, 8)?;
        Ok(unsafe { Storage::mapped(ptr as *const u64, len, Arc::clone(&self.file) as _) })
    }

    /// Zero-copy `usize` view of a section stored as on-disk `u64`.
    ///
    /// On 64-bit targets this reinterprets in place; elsewhere it
    /// copy-converts (with a bounds check) — the format itself is
    /// pointer-width independent.
    pub fn usizes(&self, name: &str) -> Result<Storage<usize>, StoreError> {
        #[cfg(target_pointer_width = "64")]
        {
            let (ptr, len) = self.typed_ptr(name, 8)?;
            Ok(unsafe { Storage::mapped(ptr as *const usize, len, Arc::clone(&self.file) as _) })
        }
        #[cfg(not(target_pointer_width = "64"))]
        {
            let words = self.u64s(name)?;
            let mut out = Vec::with_capacity(words.len());
            for &w in words.iter() {
                let v = usize::try_from(w).map_err(|_| StoreError::Invalid {
                    what: format!("section {name:?}"),
                    message: format!("value {w} overflows usize on this target"),
                })?;
                out.push(v);
            }
            Ok(Storage::owned(out))
        }
    }

    /// Zero-copy `u32` view of a section.
    pub fn u32s(&self, name: &str) -> Result<Storage<u32>, StoreError> {
        let (ptr, len) = self.typed_ptr(name, 4)?;
        Ok(unsafe { Storage::mapped(ptr as *const u32, len, Arc::clone(&self.file) as _) })
    }

    /// Zero-copy `f64` view of a section (raw IEEE-754 bits).
    pub fn f64s(&self, name: &str) -> Result<Storage<f64>, StoreError> {
        let (ptr, len) = self.typed_ptr(name, 8)?;
        Ok(unsafe { Storage::mapped(ptr as *const f64, len, Arc::clone(&self.file) as _) })
    }

    /// Zero-copy `f32` view of a section (raw IEEE-754 bits).
    pub fn f32s(&self, name: &str) -> Result<Storage<f32>, StoreError> {
        let (ptr, len) = self.typed_ptr(name, 4)?;
        Ok(unsafe { Storage::mapped(ptr as *const f32, len, Arc::clone(&self.file) as _) })
    }
}

impl std::fmt::Debug for Container {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Container")
            .field("kind", &self.header.kind)
            .field("file_len", &self.header.file_len)
            .field(
                "sections",
                &self.sections.iter().map(|s| s.name_str().to_string()).collect::<Vec<_>>(),
            )
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::StoreWriter;
    use std::io::Cursor;

    fn build_sample() -> Vec<u8> {
        let mut cur = Cursor::new(Vec::new());
        {
            let mut w = StoreWriter::new(&mut cur, ArtifactKind::Graph).expect("writer");
            w.begin_section("meta", 8).expect("begin");
            w.write_u64s(&[4, 9]).expect("meta");
            w.end_section().expect("end");
            w.begin_section("offs", 8).expect("begin");
            w.write_usizes(&[0, 2, 5, 7, 9]).expect("offs");
            w.end_section().expect("end");
            w.begin_section("vals", 8).expect("begin");
            w.write_f64s(&[1.5, -2.5, f64::INFINITY, 0.0, 3.25, 4.0, 5.0, 6.0, 7.0]).expect("vals");
            w.end_section().expect("end");
            w.begin_section("ids", 4).expect("begin");
            w.write_u32s(&[9, 8, 7, 6, 5, 4, 3, 2, 1]).expect("ids");
            w.end_section().expect("end");
            w.finish().expect("finish");
        }
        cur.into_inner()
    }

    #[test]
    fn round_trip_preserves_every_section() {
        let bytes = build_sample();
        let c = Container::from_bytes(&bytes).expect("open");
        assert_eq!(c.kind(), ArtifactKind::Graph);
        assert_eq!(c.sections().len(), 4);
        assert_eq!(&*c.u64s("meta").expect("meta"), &[4, 9]);
        assert_eq!(&*c.usizes("offs").expect("offs"), &[0, 2, 5, 7, 9]);
        let vals = c.f64s("vals").expect("vals");
        assert_eq!(vals[0], 1.5);
        assert!(vals[2].is_infinite());
        assert_eq!(&*c.u32s("ids").expect("ids"), &[9, 8, 7, 6, 5, 4, 3, 2, 1]);
        assert!(c.has_section("ids") && !c.has_section("nope"));
    }

    #[test]
    fn wrong_elem_size_read_is_rejected() {
        let bytes = build_sample();
        let c = Container::from_bytes(&bytes).expect("open");
        assert!(matches!(c.u32s("meta"), Err(StoreError::Invalid { .. })));
        assert!(matches!(c.u64s("ids"), Err(StoreError::Invalid { .. })));
    }

    #[test]
    fn missing_section_is_structured() {
        let bytes = build_sample();
        let c = Container::from_bytes(&bytes).expect("open");
        assert!(matches!(c.u64s("ghost"), Err(StoreError::MissingSection { .. })));
    }

    #[test]
    fn payload_bit_flip_is_caught_at_open() {
        let bytes = build_sample();
        // Flip one bit in the first payload section (offset 64).
        let mut bad = bytes.clone();
        bad[64] ^= 0x01;
        assert!(matches!(Container::from_bytes(&bad), Err(StoreError::SectionChecksum { .. })));
    }

    #[test]
    fn toc_bit_flip_is_caught_at_open() {
        let bytes = build_sample();
        let c = Container::from_bytes(&bytes).expect("open");
        let toc_off = (c.file_len() - (c.sections().len() * TOC_ENTRY_LEN) as u64) as usize;
        drop(c);
        let mut bad = bytes.clone();
        bad[toc_off + 8] ^= 0x01; // first entry's offset field
        assert!(matches!(Container::from_bytes(&bad), Err(StoreError::TocChecksum { .. })));
    }

    #[test]
    fn truncation_is_caught_at_open() {
        let bytes = build_sample();
        for cut in [0, 1, 63, 64, 65, bytes.len() / 2, bytes.len() - 1] {
            let err = Container::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, StoreError::Truncated { .. } | StoreError::HeaderChecksum { .. }),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn views_keep_the_file_alive() {
        let bytes = build_sample();
        let c = Container::from_bytes(&bytes).expect("open");
        let meta = c.u64s("meta").expect("meta");
        drop(c);
        // The Storage still owns an Arc to the file's bytes.
        assert_eq!(&*meta, &[4, 9]);
    }
}
