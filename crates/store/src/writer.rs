//! Streaming container writer.
//!
//! Sections are written in one forward pass — begin, stream chunks, end
//! — with the checksum folded as bytes go by, so packing never holds a
//! serialized copy of the payload in memory (the "never 2× RAM" rule:
//! the only buffering is the caller's own chunking). The TOC goes after
//! the last section and the header is patched by one backward seek in
//! [`StoreWriter::finish`].

use std::io::{Seek, SeekFrom, Write};

use crate::format::{
    align_up, section_name, ArtifactKind, BlockChecksum, Checksum, Header, SectionEntry,
    HEADER_LEN, SECTION_ALIGN,
};
use crate::StoreError;

/// Writes one container file section by section.
///
/// Generic over `Write + Seek` so tests (and miri) can target a
/// `Cursor<Vec<u8>>` while the CLI targets a real file.
pub struct StoreWriter<W: Write + Seek> {
    out: W,
    kind: ArtifactKind,
    /// Bytes written so far (== current stream position).
    pos: u64,
    sections: Vec<SectionEntry>,
    /// In-flight section state: (name, elem_size, running checksum, len).
    open: Option<(String, u32, BlockChecksum, u64)>,
    finished: bool,
}

impl<W: Write + Seek> StoreWriter<W> {
    /// Starts a container of the given kind; writes a placeholder header
    /// immediately (patched with real values in [`Self::finish`]).
    pub fn new(mut out: W, kind: ArtifactKind) -> Result<Self, StoreError> {
        out.write_all(&[0u8; HEADER_LEN])?;
        Ok(Self {
            out,
            kind,
            pos: HEADER_LEN as u64,
            sections: Vec::new(),
            open: None,
            finished: false,
        })
    }

    /// Opens a section. `name` must be unique within the file and at
    /// most 8 ASCII bytes; `elem_size` is the element width the payload
    /// will be reinterpreted as on read (1, 4, or 8).
    pub fn begin_section(&mut self, name: &str, elem_size: u32) -> Result<(), StoreError> {
        assert!(self.open.is_none(), "begin_section while a section is open");
        assert!(!self.finished, "begin_section after finish");
        if self.sections.iter().any(|s| s.name_str() == name) {
            return Err(StoreError::DuplicateSection { section: name.into() });
        }
        self.pad_to_alignment()?;
        self.open = Some((name.to_string(), elem_size, BlockChecksum::new(), 0));
        Ok(())
    }

    /// Streams payload bytes into the open section.
    pub fn write_bytes(&mut self, bytes: &[u8]) -> Result<(), StoreError> {
        let (_, _, checksum, len) = self.open.as_mut().expect("write_bytes with no open section");
        checksum.update(bytes);
        *len += bytes.len() as u64;
        self.out.write_all(bytes)?;
        self.pos += bytes.len() as u64;
        Ok(())
    }

    /// Streams a `u64` slice (little-endian) into the open section,
    /// encoding through a fixed 8 KiB stack chunk.
    pub fn write_u64s(&mut self, values: &[u64]) -> Result<(), StoreError> {
        let mut chunk = [0u8; 8192];
        for group in values.chunks(chunk.len() / 8) {
            for (i, v) in group.iter().enumerate() {
                chunk[i * 8..i * 8 + 8].copy_from_slice(&v.to_le_bytes());
            }
            self.write_bytes(&chunk[..group.len() * 8])?;
        }
        Ok(())
    }

    /// Streams a `usize` slice as on-disk `u64`s.
    pub fn write_usizes(&mut self, values: &[usize]) -> Result<(), StoreError> {
        let mut chunk = [0u8; 8192];
        for group in values.chunks(chunk.len() / 8) {
            for (i, v) in group.iter().enumerate() {
                chunk[i * 8..i * 8 + 8].copy_from_slice(&(*v as u64).to_le_bytes());
            }
            self.write_bytes(&chunk[..group.len() * 8])?;
        }
        Ok(())
    }

    /// Streams a `u32` slice (little-endian) into the open section.
    pub fn write_u32s(&mut self, values: &[u32]) -> Result<(), StoreError> {
        let mut chunk = [0u8; 8192];
        for group in values.chunks(chunk.len() / 4) {
            for (i, v) in group.iter().enumerate() {
                chunk[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
            }
            self.write_bytes(&chunk[..group.len() * 4])?;
        }
        Ok(())
    }

    /// Streams an `f64` slice (IEEE-754 bits, little-endian).
    pub fn write_f64s(&mut self, values: &[f64]) -> Result<(), StoreError> {
        let mut chunk = [0u8; 8192];
        for group in values.chunks(chunk.len() / 8) {
            for (i, v) in group.iter().enumerate() {
                chunk[i * 8..i * 8 + 8].copy_from_slice(&v.to_le_bytes());
            }
            self.write_bytes(&chunk[..group.len() * 8])?;
        }
        Ok(())
    }

    /// Streams an `f32` slice (IEEE-754 bits, little-endian).
    pub fn write_f32s(&mut self, values: &[f32]) -> Result<(), StoreError> {
        let mut chunk = [0u8; 8192];
        for group in values.chunks(chunk.len() / 4) {
            for (i, v) in group.iter().enumerate() {
                chunk[i * 4..i * 4 + 4].copy_from_slice(&v.to_le_bytes());
            }
            self.write_bytes(&chunk[..group.len() * 4])?;
        }
        Ok(())
    }

    /// Closes the open section, recording its TOC entry.
    pub fn end_section(&mut self) -> Result<(), StoreError> {
        let (name, elem_size, checksum, len) =
            self.open.take().expect("end_section with no open section");
        if len % elem_size as u64 != 0 {
            return Err(StoreError::Misaligned {
                section: name,
                offset: len,
                multiple_of: elem_size as u64,
            });
        }
        self.sections.push(SectionEntry {
            name: section_name(&name),
            offset: self.pos - len,
            len,
            elem_size,
            checksum: checksum.finish(),
        });
        Ok(())
    }

    /// Convenience: a whole section in one call.
    pub fn section_bytes(
        &mut self,
        name: &str,
        elem_size: u32,
        bytes: &[u8],
    ) -> Result<(), StoreError> {
        self.begin_section(name, elem_size)?;
        self.write_bytes(bytes)?;
        self.end_section()
    }

    /// Writes the TOC, patches the header, and flushes. Returns the
    /// total file length.
    pub fn finish(mut self) -> Result<u64, StoreError> {
        assert!(self.open.is_none(), "finish with a section still open");
        self.pad_to_alignment()?;
        let toc_offset = self.pos;
        let mut toc_sum = Checksum::new();
        for entry in &self.sections {
            let encoded = entry.encode();
            toc_sum.update(&encoded);
            self.out.write_all(&encoded)?;
            self.pos += encoded.len() as u64;
        }
        let header = Header {
            kind: self.kind,
            section_count: self.sections.len() as u32,
            toc_offset,
            file_len: self.pos,
            toc_checksum: toc_sum.finish(),
        };
        self.out.seek(SeekFrom::Start(0))?;
        self.out.write_all(&header.encode())?;
        self.out.flush()?;
        self.finished = true;
        Ok(header.file_len)
    }

    fn pad_to_alignment(&mut self) -> Result<(), StoreError> {
        let target = align_up(self.pos);
        let pad = (target - self.pos) as usize;
        if pad > 0 {
            self.out.write_all(&[0u8; SECTION_ALIGN][..pad])?;
            self.pos = target;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn sections_land_on_aligned_offsets() {
        let mut w = StoreWriter::new(Cursor::new(Vec::new()), ArtifactKind::Graph).expect("writer");
        w.section_bytes("a", 1, &[1, 2, 3]).expect("a");
        w.section_bytes("b", 8, &[0u8; 24]).expect("b");
        let file_len = w.finish().expect("finish");
        assert_eq!(file_len % 8, 0);
        // a at 64 (3 bytes), b at 128, toc at 192.
        assert_eq!(file_len, 192 + 2 * 40);
    }

    #[test]
    fn duplicate_names_are_rejected() {
        let mut w = StoreWriter::new(Cursor::new(Vec::new()), ArtifactKind::Graph).expect("writer");
        w.section_bytes("meta", 8, &[0u8; 8]).expect("first");
        let err = w.begin_section("meta", 8).unwrap_err();
        assert!(matches!(err, StoreError::DuplicateSection { .. }));
    }

    #[test]
    fn length_not_multiple_of_elem_size_is_rejected() {
        let mut w = StoreWriter::new(Cursor::new(Vec::new()), ArtifactKind::Graph).expect("writer");
        w.begin_section("odd", 8).expect("begin");
        w.write_bytes(&[0u8; 7]).expect("write");
        let err = w.end_section().unwrap_err();
        assert!(matches!(err, StoreError::Misaligned { .. }));
    }

    #[test]
    fn typed_writers_encode_little_endian() {
        let mut w = StoreWriter::new(Cursor::new(Vec::new()), ArtifactKind::Graph).expect("writer");
        w.begin_section("t", 8).expect("begin");
        w.write_u64s(&[0x0102030405060708]).expect("u64s");
        w.end_section().expect("end");
        let _ = w.finish().expect("finish");
        // Verified structurally via the reader round-trip tests; here we
        // only assert the call path works across chunk boundaries.
        let mut w2 =
            StoreWriter::new(Cursor::new(Vec::new()), ArtifactKind::Graph).expect("writer");
        w2.begin_section("big", 8).expect("begin");
        let vals: Vec<u64> = (0..5000).collect();
        w2.write_u64s(&vals).expect("write");
        w2.end_section().expect("end");
        let _ = w2.finish().expect("finish");
    }
}
