//! File backing: a read-only byte region that is either memory-mapped
//! (the fast path — the kernel pages bytes in lazily, so opening a
//! multi-gigabyte store costs milliseconds) or read into a 64-byte
//! aligned heap buffer (the portable fallback, and the only path under
//! miri, which has no OS).
//!
//! Both backings guarantee the base address is at least 64-byte aligned
//! — pages are 4 KiB-aligned and the heap buffer is allocated with an
//! explicit 64-byte layout — which together with the format's 64-aligned
//! section offsets makes every section base properly aligned for any
//! element type the format stores (`u8`/`u32`/`f32`/`u64`/`f64`).

use std::fs::File;
use std::io::Read;
use std::path::Path;
use std::sync::Arc;

use crate::StoreError;

/// The mmap syscall path: Linux only, raw syscalls (the workspace is
/// dependency-free, so no `libc`), and never under miri (no kernel).
#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"), not(miri)))]
mod mmap {
    use std::arch::asm;

    const PROT_READ: usize = 1;
    const MAP_PRIVATE: usize = 2;
    /// Pre-fault the whole mapping in one syscall. The open path
    /// checksums every byte immediately, so demand paging would eat
    /// tens of thousands of minor faults right after `mmap` returns —
    /// populating up front is the difference between a ~2 GB/s and a
    /// memory-bandwidth-bound validation pass.
    const MAP_POPULATE: usize = 0x8000;

    #[cfg(target_arch = "x86_64")]
    const SYS_MMAP: usize = 9;
    #[cfg(target_arch = "x86_64")]
    const SYS_MUNMAP: usize = 11;
    #[cfg(target_arch = "aarch64")]
    const SYS_MMAP: usize = 222;
    #[cfg(target_arch = "aarch64")]
    const SYS_MUNMAP: usize = 215;

    #[cfg(target_arch = "x86_64")]
    unsafe fn syscall6(
        n: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        unsafe {
            asm!(
                "syscall",
                inlateout("rax") n => ret,
                in("rdi") a,
                in("rsi") b,
                in("rdx") c,
                in("r10") d,
                in("r8") e,
                in("r9") f,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    #[cfg(target_arch = "aarch64")]
    unsafe fn syscall6(
        n: usize,
        a: usize,
        b: usize,
        c: usize,
        d: usize,
        e: usize,
        f: usize,
    ) -> isize {
        let ret: isize;
        unsafe {
            asm!(
                "svc 0",
                in("x8") n,
                inlateout("x0") a => ret,
                in("x1") b,
                in("x2") c,
                in("x3") d,
                in("x4") e,
                in("x5") f,
                options(nostack),
            );
        }
        ret
    }

    /// Maps `len` bytes of `fd` read-only. Returns the base address.
    pub unsafe fn map(fd: i32, len: usize) -> std::io::Result<*const u8> {
        let flags = MAP_PRIVATE | MAP_POPULATE;
        let mut ret = unsafe { syscall6(SYS_MMAP, 0, len, PROT_READ, flags, fd as usize, 0) };
        // The kernel signals failure by returning -errno in -4095..0.
        if (-4095..0).contains(&ret) {
            // Some filesystems reject MAP_POPULATE; plain demand paging
            // still beats a full heap copy.
            ret = unsafe { syscall6(SYS_MMAP, 0, len, PROT_READ, MAP_PRIVATE, fd as usize, 0) };
        }
        if (-4095..0).contains(&ret) {
            return Err(std::io::Error::from_raw_os_error(-ret as i32));
        }
        Ok(ret as *const u8)
    }

    /// Unmaps a region previously returned by [`map`].
    pub unsafe fn unmap(addr: *const u8, len: usize) {
        unsafe {
            let _ = syscall6(SYS_MUNMAP, addr as usize, len, 0, 0, 0, 0);
        }
    }
}

/// A heap buffer whose base address is 64-byte aligned, so the fallback
/// path satisfies the same alignment contract as a page-aligned mapping.
struct AlignedBuf {
    ptr: *mut u8,
    len: usize,
}

impl AlignedBuf {
    fn new(len: usize) -> Self {
        // Zero-size allocations are illegal; a 1-byte floor keeps the
        // pointer real (an empty file still fails header validation
        // later with a structured Truncated error).
        let layout = std::alloc::Layout::from_size_align(len.max(1), 64)
            .expect("64-byte layout for file buffer");
        let ptr = unsafe { std::alloc::alloc(layout) };
        assert!(!ptr.is_null(), "allocation of {len}-byte store buffer failed");
        Self { ptr, len }
    }

    fn as_mut_slice(&mut self) -> &mut [u8] {
        unsafe { std::slice::from_raw_parts_mut(self.ptr, self.len) }
    }
}

impl Drop for AlignedBuf {
    fn drop(&mut self) {
        let layout = std::alloc::Layout::from_size_align(self.len.max(1), 64)
            .expect("64-byte layout for file buffer");
        unsafe { std::alloc::dealloc(self.ptr, layout) };
    }
}

// The buffer is plain owned bytes; the raw pointer is an implementation
// detail of keeping it aligned.
unsafe impl Send for AlignedBuf {}
unsafe impl Sync for AlignedBuf {}

enum Backing {
    #[cfg(all(
        target_os = "linux",
        any(target_arch = "x86_64", target_arch = "aarch64"),
        not(miri)
    ))]
    Mapped {
        base: *const u8,
        len: usize,
    },
    Heap(AlignedBuf),
}

impl Drop for Backing {
    fn drop(&mut self) {
        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64"),
            not(miri)
        ))]
        if let Backing::Mapped { base, len } = *self {
            unsafe { mmap::unmap(base, len) };
        }
    }
}

unsafe impl Send for Backing {}
unsafe impl Sync for Backing {}

/// An open store file's raw bytes, shareable via `Arc`.
///
/// Zero-copy views into the file ([`tgraph::Storage::mapped`] slices)
/// hold an `Arc<StoreFile>` as their owner, so the mapping outlives
/// every borrowed slice no matter how callers move the graph or
/// embedding around.
pub struct StoreFile {
    backing: Backing,
    /// True when the bytes are a live memory mapping rather than a heap
    /// copy (diagnostic: the zero-copy gate in tests asserts on this).
    mapped: bool,
}

impl StoreFile {
    /// Opens `path` and makes its bytes addressable: mmap where
    /// available, aligned heap read otherwise. Empty files are accepted
    /// here (they fail header validation with a structured error).
    pub fn open(path: &Path) -> Result<Arc<Self>, StoreError> {
        let mut file = File::open(path)?;
        let meta = file.metadata()?;
        if !meta.is_file() {
            return Err(StoreError::Io(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("{} is not a regular file", path.display()),
            )));
        }
        let len = meta.len() as usize;

        #[cfg(all(
            target_os = "linux",
            any(target_arch = "x86_64", target_arch = "aarch64"),
            not(miri)
        ))]
        if len > 0 {
            use std::os::unix::io::AsRawFd;
            match unsafe { mmap::map(file.as_raw_fd(), len) } {
                Ok(base) => {
                    return Ok(Arc::new(Self {
                        backing: Backing::Mapped { base, len },
                        mapped: true,
                    }));
                }
                Err(_) => {
                    // Fall through to the heap read; some filesystems
                    // refuse mmap but read fine.
                }
            }
        }

        let mut buf = AlignedBuf::new(len);
        file.read_exact(buf.as_mut_slice())?;
        Ok(Arc::new(Self { backing: Backing::Heap(buf), mapped: false }))
    }

    /// Wraps in-memory bytes (copied into an aligned buffer) — the path
    /// unit tests and miri use to exercise the full reader without a
    /// filesystem.
    pub fn from_bytes(bytes: &[u8]) -> Arc<Self> {
        let mut buf = AlignedBuf::new(bytes.len());
        buf.as_mut_slice().copy_from_slice(bytes);
        Arc::new(Self { backing: Backing::Heap(buf), mapped: false })
    }

    /// The file's bytes. Base address is always ≥ 64-byte aligned.
    pub fn bytes(&self) -> &[u8] {
        match &self.backing {
            #[cfg(all(
                target_os = "linux",
                any(target_arch = "x86_64", target_arch = "aarch64"),
                not(miri)
            ))]
            Backing::Mapped { base, len } => unsafe { std::slice::from_raw_parts(*base, *len) },
            Backing::Heap(buf) => unsafe { std::slice::from_raw_parts(buf.ptr, buf.len) },
        }
    }

    /// Whether the bytes are a live memory mapping (vs a heap copy).
    pub fn is_mapped(&self) -> bool {
        self.mapped
    }
}

impl std::fmt::Debug for StoreFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreFile")
            .field("len", &self.bytes().len())
            .field("mapped", &self.mapped)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_bytes_is_aligned_and_faithful() {
        let data: Vec<u8> = (0..=200u8).collect();
        let f = StoreFile::from_bytes(&data);
        assert_eq!(f.bytes(), &data[..]);
        assert_eq!(f.bytes().as_ptr() as usize % 64, 0, "base must be 64-aligned");
        assert!(!f.is_mapped());
    }

    #[test]
    fn empty_bytes_are_accepted() {
        let f = StoreFile::from_bytes(&[]);
        assert!(f.bytes().is_empty());
    }

    #[cfg(not(miri))]
    #[test]
    fn open_reads_real_files() {
        let dir = std::env::temp_dir().join(format!("store_file_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("blob.bin");
        let payload: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
        std::fs::write(&path, &payload).expect("write");
        let f = StoreFile::open(&path).expect("open");
        assert_eq!(f.bytes(), &payload[..]);
        assert_eq!(f.bytes().as_ptr() as usize % 64, 0);
        #[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]
        assert!(f.is_mapped(), "linux path should mmap");
        std::fs::remove_file(&path).ok();
        std::fs::remove_dir(&dir).ok();
    }

    #[cfg(not(miri))]
    #[test]
    fn open_rejects_directories() {
        let err = StoreFile::open(&std::env::temp_dir()).unwrap_err();
        assert!(matches!(err, StoreError::Io(_)));
    }
}
