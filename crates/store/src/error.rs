//! Structured errors for the container format.
//!
//! Every way a store file can be wrong — truncated, bit-flipped,
//! misaligned, semantically inconsistent — maps to a variant here. The
//! corruption-corpus tests pin the contract: opening arbitrary bytes
//! returns one of these, never a panic and never undefined behavior.

use std::fmt;

/// Errors produced while writing or opening a store file.
#[derive(Debug)]
pub enum StoreError {
    /// Underlying filesystem failure (open, read, write, map).
    Io(std::io::Error),
    /// The file does not begin with the container magic.
    BadMagic {
        /// The first 8 bytes actually found.
        found: [u8; 8],
    },
    /// The format version is newer than this reader understands.
    UnsupportedVersion {
        /// Version stamped in the header.
        found: u32,
        /// Latest version this build reads.
        supported: u32,
    },
    /// The endianness marker does not decode — the file was written on
    /// an incompatible byte order (or the header is corrupt).
    Endianness {
        /// The marker bytes as read.
        found: u64,
    },
    /// The artifact kind tag is not one this reader knows.
    UnknownKind {
        /// The kind tag as read.
        found: u32,
    },
    /// The file holds a different artifact than the caller asked for.
    WrongKind {
        /// What the caller wanted, e.g. `"graph"`.
        expected: &'static str,
        /// What the file header says it holds.
        found: &'static str,
    },
    /// The file is shorter than a structure it claims to contain.
    Truncated {
        /// What was being read when the file ran out.
        what: String,
        /// Bytes that structure needs.
        needed: u64,
        /// Bytes actually available.
        actual: u64,
    },
    /// The header checksum does not match its contents.
    HeaderChecksum {
        /// Checksum stored in the header.
        stored: u64,
        /// Checksum recomputed from the bytes.
        computed: u64,
    },
    /// The section table checksum does not match its contents.
    TocChecksum {
        /// Checksum stored in the header.
        stored: u64,
        /// Checksum recomputed from the bytes.
        computed: u64,
    },
    /// A payload section's checksum does not match its bytes.
    SectionChecksum {
        /// Section name.
        section: String,
        /// Checksum stored in the section table.
        stored: u64,
        /// Checksum recomputed from the payload.
        computed: u64,
    },
    /// A section's offset violates the 64-byte alignment invariant (or
    /// its length is not a multiple of its element size).
    Misaligned {
        /// Section name.
        section: String,
        /// Offending offset or length.
        offset: u64,
        /// What the value had to be a multiple of.
        multiple_of: u64,
    },
    /// A section's `[offset, offset + len)` range escapes the file.
    OutOfBounds {
        /// Section name.
        section: String,
        /// Section byte offset.
        offset: u64,
        /// Section byte length.
        len: u64,
        /// Total file length.
        file_len: u64,
    },
    /// A section the artifact requires is not in the table.
    MissingSection {
        /// Section name.
        section: String,
    },
    /// The same section name appears twice in the table.
    DuplicateSection {
        /// Section name.
        section: String,
    },
    /// The bytes decode but the values are semantically inconsistent
    /// (CSR invariants, table shapes, metadata cross-checks).
    Invalid {
        /// What was being validated.
        what: String,
        /// Which invariant failed.
        message: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "io error: {e}"),
            StoreError::BadMagic { found } => {
                write!(f, "not a store file: magic bytes {found:02x?}")
            }
            StoreError::UnsupportedVersion { found, supported } => {
                write!(f, "store format version {found} is newer than supported {supported}")
            }
            StoreError::Endianness { found } => {
                write!(f, "endianness marker {found:#018x} does not decode on this machine")
            }
            StoreError::UnknownKind { found } => write!(f, "unknown artifact kind tag {found}"),
            StoreError::WrongKind { expected, found } => {
                write!(f, "expected a {expected} store, found a {found} store")
            }
            StoreError::Truncated { what, needed, actual } => {
                write!(f, "file truncated reading {what}: need {needed} bytes, have {actual}")
            }
            StoreError::HeaderChecksum { stored, computed } => {
                write!(f, "header checksum mismatch: stored {stored:#x}, computed {computed:#x}")
            }
            StoreError::TocChecksum { stored, computed } => write!(
                f,
                "section table checksum mismatch: stored {stored:#x}, computed {computed:#x}"
            ),
            StoreError::SectionChecksum { section, stored, computed } => write!(
                f,
                "section {section:?} checksum mismatch: stored {stored:#x}, computed {computed:#x}"
            ),
            StoreError::Misaligned { section, offset, multiple_of } => {
                write!(f, "section {section:?} value {offset} is not a multiple of {multiple_of}")
            }
            StoreError::OutOfBounds { section, offset, len, file_len } => write!(
                f,
                "section {section:?} at [{offset}, {}) escapes the {file_len}-byte file",
                offset + len
            ),
            StoreError::MissingSection { section } => {
                write!(f, "required section {section:?} is missing")
            }
            StoreError::DuplicateSection { section } => {
                write!(f, "section {section:?} appears twice")
            }
            StoreError::Invalid { what, message } => write!(f, "invalid {what}: {message}"),
        }
    }
}

impl std::error::Error for StoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StoreError {
    fn from(e: std::io::Error) -> Self {
        StoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_positions() {
        let e =
            StoreError::OutOfBounds { section: "gdst".into(), offset: 128, len: 64, file_len: 100 };
        let s = e.to_string();
        assert!(s.contains("gdst") && s.contains("128") && s.contains("100"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StoreError>();
    }
}
