//! Model-snapshot artifact: the serving state — embedding table, link
//! FNN, and publish version — packed so a restarted server answers its
//! first query without retraining.
//!
//! Sections (`kind = Snapshot`):
//!
//! | name   | elem | contents                                           |
//! |--------|------|----------------------------------------------------|
//! | `meta` | u64  | `[version, num_nodes, dim, head_tag, residual, L]`  |
//! | `mdim` | u64  | MLP layer widths, `L + 1` entries                   |
//! | `embd` | f32  | embedding table, `num_nodes · dim` row-major        |
//! | `mwts` | f32  | MLP params: `W0, b0, W1, b1, …` concatenated        |
//!
//! `head_tag` is 0 = binary (link prediction), 1 = multi-class. The
//! embedding table — the only large array — loads zero-copy from the
//! mapping; the MLP weights (a few KiB) are copied through
//! [`Mlp::from_parts`], which re-validates the layer chaining.

use std::io::{Seek, Write};
use std::path::Path;

use embed::EmbeddingMatrix;
use nn::{Mlp, OutputHead, Tensor2};

use crate::format::ArtifactKind;
use crate::reader::Container;
use crate::writer::StoreWriter;
use crate::StoreError;

const HEAD_BINARY: u64 = 0;
const HEAD_MULTICLASS: u64 = 1;

/// Packs one served model version into `out`. Returns the file length.
pub fn pack_snapshot<W: Write + Seek>(
    out: W,
    version: u64,
    emb: &EmbeddingMatrix,
    model: &Mlp,
) -> Result<u64, StoreError> {
    if version == 0 {
        return Err(StoreError::Invalid {
            what: "snapshot".into(),
            message: "versions are 1-based; 0 is not a publishable version".into(),
        });
    }
    let dims = model.layer_dims();
    let head_tag = match model.head() {
        OutputHead::Binary => HEAD_BINARY,
        OutputHead::MultiClass => HEAD_MULTICLASS,
    };

    let mut w = StoreWriter::new(out, ArtifactKind::Snapshot)?;

    w.begin_section("meta", 8)?;
    w.write_u64s(&[
        version,
        emb.num_nodes() as u64,
        emb.dim() as u64,
        head_tag,
        model.residual() as u64,
        (dims.len() - 1) as u64,
    ])?;
    w.end_section()?;

    w.begin_section("mdim", 8)?;
    w.write_usizes(&dims)?;
    w.end_section()?;

    w.begin_section("embd", 4)?;
    w.write_f32s(emb.as_slice())?;
    w.end_section()?;

    w.begin_section("mwts", 4)?;
    for (wt, b) in model.weights().iter().zip(model.biases()) {
        w.write_f32s(wt.as_slice())?;
        w.write_f32s(b.as_slice())?;
    }
    w.end_section()?;

    w.finish()
}

/// Packs to a file path (buffered), creating or truncating it.
pub fn pack_snapshot_to_path(
    path: &Path,
    version: u64,
    emb: &EmbeddingMatrix,
    model: &Mlp,
) -> Result<u64, StoreError> {
    let file = std::fs::File::create(path)?;
    pack_snapshot(std::io::BufWriter::new(file), version, emb, model)
}

/// A model snapshot opened from a store file. The embedding table
/// borrows the mapping zero-copy; the MLP is reconstructed (copied and
/// re-validated — its few KiB don't justify unsafe adoption).
#[derive(Debug)]
pub struct OpenedSnapshot {
    /// The publish version the snapshot was packed with.
    pub version: u64,
    /// The embedding table.
    pub emb: EmbeddingMatrix,
    /// The link/classification FNN.
    pub model: Mlp,
    /// Whether the backing bytes are a live memory mapping.
    pub mapped: bool,
    /// Total store file length in bytes.
    pub file_len: u64,
}

/// Opens a packed snapshot from disk (mmap fast path).
pub fn open_snapshot(path: &Path) -> Result<OpenedSnapshot, StoreError> {
    let span = obs::Recorder::global().span("store_load_ns{kind=\"snapshot\"}");
    let out = open_snapshot_container(Container::open(path)?);
    drop(span);
    out
}

/// Opens a packed snapshot from an in-memory image (tests, miri).
pub fn open_snapshot_bytes(bytes: &[u8]) -> Result<OpenedSnapshot, StoreError> {
    open_snapshot_container(Container::from_bytes(bytes)?)
}

fn open_snapshot_container(c: Container) -> Result<OpenedSnapshot, StoreError> {
    c.expect_kind(ArtifactKind::Snapshot)?;
    crate::record_section_metrics(&c);
    let invalid = |what: &str, message: String| StoreError::Invalid { what: what.into(), message };

    let meta = c.u64s("meta")?;
    if meta.len() != 6 {
        return Err(invalid("snapshot meta", format!("expected 6 words, found {}", meta.len())));
    }
    let version = meta[0];
    if version == 0 {
        return Err(invalid("snapshot meta", "version 0 is not valid (1-based)".into()));
    }
    let (n, dim) = (meta[1] as usize, meta[2] as usize);
    let head = match meta[3] {
        HEAD_BINARY => OutputHead::Binary,
        HEAD_MULTICLASS => OutputHead::MultiClass,
        other => return Err(invalid("snapshot meta", format!("unknown head tag {other}"))),
    };
    let residual = meta[4] != 0;
    let num_layers = meta[5] as usize;

    let dims = c.usizes("mdim")?;
    if dims.len() != num_layers + 1 {
        return Err(invalid(
            "snapshot layers",
            format!("meta says {num_layers} layers but mdim has {} widths", dims.len()),
        ));
    }

    let table = c.f32s("embd")?;
    let expect = n
        .checked_mul(dim)
        .ok_or_else(|| invalid("embedding table", format!("{n} x {dim} overflows")))?;
    if table.len() != expect {
        return Err(invalid(
            "embedding table",
            format!("expected {n} x {dim} = {expect} floats, found {}", table.len()),
        ));
    }
    let emb = EmbeddingMatrix::from_storage(n, dim, table);

    let params = c.f32s("mwts")?;
    let mut weights = Vec::with_capacity(num_layers);
    let mut biases = Vec::with_capacity(num_layers);
    let mut pos = 0usize;
    for i in 0..num_layers {
        let (rows, cols) = (dims[i], dims[i + 1]);
        let w_len = rows.checked_mul(cols).ok_or_else(|| {
            invalid("model weights", format!("layer {i} {rows} x {cols} overflows"))
        })?;
        let end = pos + w_len + cols;
        if end > params.len() {
            return Err(invalid(
                "model weights",
                format!(
                    "layer {i} needs {} floats at {pos} but only {} remain",
                    w_len + cols,
                    params.len() - pos
                ),
            ));
        }
        weights.push(Tensor2::from_vec(rows, cols, params[pos..pos + w_len].to_vec()));
        biases.push(Tensor2::from_vec(1, cols, params[pos + w_len..end].to_vec()));
        pos = end;
    }
    if pos != params.len() {
        return Err(invalid(
            "model weights",
            format!("{} trailing floats after the last layer", params.len() - pos),
        ));
    }
    let model =
        Mlp::from_parts(weights, biases, head, residual).map_err(|e| invalid("model", e))?;

    Ok(OpenedSnapshot { version, emb, model, mapped: c.is_mapped(), file_len: c.file_len() })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn sample() -> (EmbeddingMatrix, Mlp) {
        let n = 13;
        let d = 4;
        let data: Vec<f32> = (0..n * d).map(|i| (i as f32).sin()).collect();
        let emb = EmbeddingMatrix::from_vec(n, d, data);
        let mlp = Mlp::new(&[2 * d, 16, 1], OutputHead::Binary, 77);
        (emb, mlp)
    }

    fn pack_bytes(version: u64, emb: &EmbeddingMatrix, mlp: &Mlp) -> Vec<u8> {
        let mut cur = Cursor::new(Vec::new());
        pack_snapshot(&mut cur, version, emb, mlp).expect("pack");
        cur.into_inner()
    }

    #[test]
    fn snapshot_round_trips_bit_exactly() {
        let (emb, mlp) = sample();
        let opened = open_snapshot_bytes(&pack_bytes(42, &emb, &mlp)).expect("open");
        assert_eq!(opened.version, 42);
        assert_eq!(opened.emb.num_nodes(), emb.num_nodes());
        assert_eq!(opened.emb.dim(), emb.dim());
        let b1: Vec<u32> = emb.as_slice().iter().map(|x| x.to_bits()).collect();
        let b2: Vec<u32> = opened.emb.as_slice().iter().map(|x| x.to_bits()).collect();
        assert_eq!(b1, b2);
        assert_eq!(opened.model.layer_dims(), mlp.layer_dims());
        assert_eq!(opened.model.residual(), mlp.residual());
        for (a, b) in mlp.weights().iter().zip(opened.model.weights()) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
        for (a, b) in mlp.biases().iter().zip(opened.model.biases()) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
    }

    #[test]
    fn predictions_are_identical_after_reload() {
        let (emb, mlp) = sample();
        let opened = open_snapshot_bytes(&pack_bytes(1, &emb, &mlp)).expect("open");
        let x = Tensor2::from_vec(2, 8, (0..16).map(|i| i as f32 * 0.1).collect());
        assert_eq!(mlp.predict_proba(&x), opened.model.predict_proba(&x));
    }

    #[test]
    fn version_zero_is_rejected_both_ways() {
        let (emb, mlp) = sample();
        let mut cur = Cursor::new(Vec::new());
        assert!(matches!(pack_snapshot(&mut cur, 0, &emb, &mlp), Err(StoreError::Invalid { .. })));
    }

    #[test]
    fn graph_file_is_rejected_as_snapshot() {
        let g = tgraph::gen::erdos_renyi(20, 60, 3).build();
        let mut cur = Cursor::new(Vec::new());
        crate::pack_graph(&mut cur, &g, None).expect("pack graph");
        let err = open_snapshot_bytes(&cur.into_inner()).unwrap_err();
        assert!(matches!(err, StoreError::WrongKind { .. }));
    }

    #[test]
    fn truncated_weight_stream_is_rejected() {
        let (emb, mlp) = sample();
        let bytes = pack_bytes(1, &emb, &mlp);
        // Rewrite meta to claim an extra layer; checksums force us to go
        // through the writer, so instead corrupt mdim consistency by
        // packing mismatched parts directly.
        let c = Container::from_bytes(&bytes).expect("open");
        assert_eq!(c.kind(), ArtifactKind::Snapshot);
        drop(c);
        // Simpler: a model whose mwts section is short. Build by hand.
        let mut cur = Cursor::new(Vec::new());
        {
            let mut w = StoreWriter::new(&mut cur, ArtifactKind::Snapshot).expect("writer");
            w.begin_section("meta", 8).expect("b");
            w.write_u64s(&[1, 2, 2, 0, 0, 1]).expect("w");
            w.end_section().expect("e");
            w.begin_section("mdim", 8).expect("b");
            w.write_u64s(&[4, 1]).expect("w");
            w.end_section().expect("e");
            w.begin_section("embd", 4).expect("b");
            w.write_f32s(&[0.0; 4]).expect("w");
            w.end_section().expect("e");
            w.begin_section("mwts", 4).expect("b");
            w.write_f32s(&[0.5; 3]).expect("w"); // needs 4 + 1 = 5
            w.end_section().expect("e");
            w.finish().expect("finish");
        }
        let err = open_snapshot_bytes(&cur.into_inner()).unwrap_err();
        assert!(matches!(err, StoreError::Invalid { .. }));
    }
}
