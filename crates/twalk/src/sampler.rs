//! Transition sampling: per-vertex method-dispatched tables behind the
//! [`SamplerBuilder`] → [`VertexSampler`] → [`PreparedSampler`] API.
//!
//! The paper's Eq. (1) softmax is the compute-heavy part of the walk
//! kernel: evaluated directly, every step exponentiates each candidate
//! timestamp (three passes over the temporally-valid suffix). But the
//! weights depend only on the edge timestamps and the graph-wide span `r`
//! — not on the walk state — so for a fixed graph they can be
//! precomputed *once*. How they are best precomputed depends on the
//! vertex, which is why preparation assigns a [`SamplingMethod`] per
//! vertex (FlexiWalker-style runtime adaptation):
//!
//! * [`SamplingMethod::Cdf`] — per-segment cumulative-weight prefix sums;
//!   sampling any valid suffix `[lo..deg)` costs one subtraction (to
//!   rebase the CDF), one uniform draw, and one `partition_point` binary
//!   search: `O(log d)`. The default, and the only method whose RNG draw
//!   pattern is pinned by the bit-compat tests.
//! * [`SamplingMethod::Alias`] — Vose alias tables for high-degree static
//!   vertices: `O(1)` per draw (one bounded draw + one uniform) instead
//!   of `O(log d)`, at 1.5× the table bytes (12 vs 8 per edge). Suffix
//!   draws (`lo > 0`) condition full-table draws on landing in the
//!   suffix, with an exact direct-evaluation fallback after a bounded
//!   number of attempts.
//! * [`SamplingMethod::Rejection`] — bounded rejection sampling for
//!   vertices that churn under `DynamicGraph` ingest: no tables at all,
//!   so nothing to rebuild when the segment changes. Segment-anchored
//!   weights lie in `[e^-1, 1]` (see below), so a constant envelope of 1
//!   accepts with probability ≥ e⁻¹ per attempt; after a bounded number
//!   of rejections an exact direct evaluation finishes the draw.
//!
//! Numerical stability comes from anchoring each vertex's weights at its
//! own segment extreme: softmax weights are `exp((t - t_seg_max) / r)`,
//! recency weights `exp(-(t - t_seg_min) / r)`. A segment's time range
//! never exceeds the global span `r`, so every stored weight lies in
//! `[e^-1, 1]` and the prefix sums are well conditioned. The recency
//! variant's dependence on the walk's current time cancels under
//! normalization (`exp(-(t - now)/r) = exp(-t/r) · exp(now/r)`, and the
//! second factor is constant across the candidate set), which is what
//! makes precomputation valid at all. The same bound is what gives the
//! rejection path its ≥ e⁻¹ acceptance rate.
//!
//! [`SamplerBuilder`] is the entry point: bias × method policy × memory
//! budget × churn set, built once per graph into a [`PreparedSampler`]
//! that is shared read-only across worker threads and reusable across
//! [`crate::generate_walks_prepared`] and
//! [`crate::generate_walks_from_prepared`] calls on the same graph.
//! [`TransitionSampler::prepare`] remains as a thin all-CDF wrapper so
//! existing call sites keep their exact table layout and draw pattern.
//! Custom bias functions plug in through the [`TransitionBias`] trait via
//! [`PreparedSampler::custom`].

use std::sync::Arc;
use std::time::{Duration, Instant};

use tgraph::{NodeId, Storage, TemporalGraph, Time};

use crate::{TransitionSampler, WalkRng};

/// A pluggable transition bias: chooses the next edge among the
/// temporally-valid suffix of a vertex's time-sorted neighbor segment.
///
/// Implementations receive the *full* segment timestamp slice plus the
/// index `lo` where the valid suffix begins, and must return an absolute
/// segment index in `lo..times.len()`. `now` is the timestamp of the edge
/// the walk last traversed (`-inf` before the first hop).
///
/// Implementations must be deterministic given the RNG stream: walks stay
/// reproducible in `(seed, sampler)` and independent of thread count.
pub trait TransitionBias: Send + Sync + std::fmt::Debug {
    /// Samples an index in `lo..times.len()`.
    fn sample(&self, v: NodeId, times: &[Time], lo: usize, now: Time, rng: &mut WalkRng) -> usize;
}

/// Per-vertex sampling method for the softmax-weighted biases
/// (paper §IV-A1's transition probabilities; DESIGN.md §13's policy).
///
/// `Auto` is a *policy*, resolved per vertex at build time; the other
/// three force one method for every vertex. Uniform and linear-time
/// biases sample in closed form and ignore the method entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum SamplingMethod {
    /// Resolve per vertex: churned vertices take [`SamplingMethod::Rejection`],
    /// static vertices with degree ≥ the builder's threshold take
    /// [`SamplingMethod::Alias`] (hub-first under a memory budget), and
    /// everything else keeps [`SamplingMethod::Cdf`].
    #[default]
    Auto = 0,
    /// Inverse-CDF over per-segment prefix sums — `O(log d)` per draw,
    /// 8 bytes per edge. The bit-compat reference path.
    Cdf = 1,
    /// Vose alias table — `O(1)` per draw, 12 bytes per edge. Suffix
    /// draws condition on the valid range with an exact fallback.
    Alias = 2,
    /// Bounded rejection against a constant envelope — zero table bytes,
    /// expected ≤ e ≈ 2.72 attempts per draw. The choice for vertices
    /// whose segments churn under streaming ingest.
    Rejection = 3,
}

impl SamplingMethod {
    /// The on-disk byte for this method (the `repr(u8)` discriminant).
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Inverse of [`Self::as_u8`], rejecting unknown bytes — the
    /// storage layer validates every method byte through this instead of
    /// transmuting, so a corrupt method map can never become an invalid
    /// enum value.
    pub fn from_u8(b: u8) -> Result<Self, String> {
        match b {
            0 => Ok(SamplingMethod::Auto),
            1 => Ok(SamplingMethod::Cdf),
            2 => Ok(SamplingMethod::Alias),
            3 => Ok(SamplingMethod::Rejection),
            other => Err(format!("invalid sampling-method byte {other}")),
        }
    }
}

impl std::fmt::Display for SamplingMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SamplingMethod::Auto => "auto",
            SamplingMethod::Cdf => "cdf",
            SamplingMethod::Alias => "alias",
            SamplingMethod::Rejection => "rejection",
        })
    }
}

impl std::str::FromStr for SamplingMethod {
    type Err = String;

    /// Parses the CLI spelling: `auto`, `cdf`, `alias`, `rejection`.
    /// Normalized like every other enum parser here (trim, lowercase,
    /// `_` → `-`); anything else is rejected with the full list of valid
    /// values.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match crate::config::normalize(s).as_str() {
            "auto" => Ok(SamplingMethod::Auto),
            "cdf" => Ok(SamplingMethod::Cdf),
            "alias" => Ok(SamplingMethod::Alias),
            "rejection" => Ok(SamplingMethod::Rejection),
            _ => Err(format!(
                "unknown sampling method {s:?}: valid values are auto, cdf, alias, rejection"
            )),
        }
    }
}

/// Default degree at or above which [`SamplingMethod::Auto`] promotes a
/// static vertex to an alias table. Below this the CDF binary search is
/// ≤ 6 well-predicted probes over at most two cache lines — the alias
/// table's extra 4 bytes/edge buy nothing.
pub const DEFAULT_ALIAS_DEGREE: usize = 64;

/// Alias-table bytes per edge (`f64` probability + `u32` alias index) —
/// the unit the builder's memory budget is accounted in.
const ALIAS_ENTRY_BYTES: usize = 12;

/// Full-table attempts before an alias suffix draw (`lo > 0`) falls back
/// to exact direct evaluation. Suffix draws appear mid-walk where the
/// suffix is usually most of the segment, so a handful of attempts almost
/// always lands.
const ALIAS_SUFFIX_ATTEMPTS: usize = 8;

/// Envelope attempts before a rejection draw falls back to exact direct
/// evaluation. Acceptance is ≥ e⁻¹ per attempt, so the fallback runs
/// with probability ≤ (1 − e⁻¹)¹⁶ ≈ 6·10⁻⁴.
const REJECTION_ATTEMPTS: usize = 16;

/// Cost and shape of building a [`PreparedSampler`]: wall-clock build
/// time, resident table size, and the per-method vertex split the build
/// policy settled on (all zeros for table-free samplers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SamplerBuildStats {
    /// Wall-clock time spent building the sampler.
    pub build_time: Duration,
    /// Bytes held by the precomputed tables (CDF + alias + method map).
    pub table_bytes: usize,
    /// Vertices (with ≥ 1 out-edge) sampling through the CDF tables.
    pub cdf_vertices: usize,
    /// Vertices (with ≥ 1 out-edge) sampling through alias tables.
    pub alias_vertices: usize,
    /// Vertices (with ≥ 1 out-edge) sampling by bounded rejection.
    pub rejection_vertices: usize,
    /// Bytes held by the alias tables alone (subset of `table_bytes`).
    pub alias_bytes: usize,
}

/// A transition sampler bound to one graph, ready for `O(log d)`-or-better
/// sampling.
///
/// Built by [`SamplerBuilder::build`] (or the [`TransitionSampler::prepare`]
/// compatibility wrapper, or [`PreparedSampler::custom`]) and shared
/// read-only across walk worker threads. The softmax variants carry a
/// method-dispatched [`VertexSampler`]; uniform and linear-time sampling
/// need no tables and keep the exact RNG draw pattern of direct
/// evaluation.
///
/// # Examples
///
/// ```
/// use twalk::{generate_walks_prepared, TransitionSampler, WalkConfig};
/// use par::ParConfig;
///
/// let g = tgraph::gen::erdos_renyi(100, 800, 5).build();
/// let prepared = TransitionSampler::Softmax.prepare(&g);
/// assert!(prepared.stats().table_bytes > 0);
/// let cfg = WalkConfig::new(4, 6).sampler(TransitionSampler::Softmax);
/// // One prepare, many walk runs.
/// let a = generate_walks_prepared(&g, &cfg, &prepared, &ParConfig::default());
/// let b = generate_walks_prepared(&g, &cfg, &prepared, &ParConfig::default());
/// assert_eq!(a, b);
/// ```
#[derive(Debug)]
pub struct PreparedSampler {
    kind: PreparedKind,
    stats: SamplerBuildStats,
    num_nodes: usize,
    num_edges: usize,
}

#[derive(Debug)]
enum PreparedKind {
    /// Uniform over the valid suffix — one bounded draw, no tables.
    Uniform,
    /// CTDNE linear rank bias — closed-form CDF inversion, no tables.
    LinearTime,
    /// Softmax-weighted bias through per-vertex method dispatch.
    Weighted(VertexSampler),
    /// User-supplied bias function.
    Custom(Arc<dyn TransitionBias>),
}

/// Builds a [`PreparedSampler`]: transition bias × per-vertex method
/// policy × alias memory budget × churn set.
///
/// The method policy only affects the softmax-weighted biases
/// ([`TransitionSampler::Softmax`] / [`TransitionSampler::SoftmaxRecency`]);
/// uniform and linear-time biases sample in closed form regardless.
///
/// # Examples
///
/// ```
/// use twalk::{SamplerBuilder, SamplingMethod, TransitionSampler};
///
/// let g = tgraph::gen::preferential_attachment(500, 4, 7).undirected(true).build();
/// let prepared = SamplerBuilder::new(TransitionSampler::Softmax)
///     .method(SamplingMethod::Auto)
///     .alias_degree_threshold(32)
///     .build(&g);
/// let s = prepared.stats();
/// // The PA hubs crossed the threshold and got O(1) alias tables.
/// assert!(s.alias_vertices > 0 && s.cdf_vertices > 0);
/// ```
#[derive(Debug, Clone)]
pub struct SamplerBuilder {
    bias: TransitionSampler,
    method: SamplingMethod,
    alias_degree: usize,
    alias_budget: Option<usize>,
    churned: Vec<NodeId>,
}

impl SamplerBuilder {
    /// Starts a builder for `bias` with the [`SamplingMethod::Auto`]
    /// policy, the default alias degree threshold, and no memory budget.
    pub fn new(bias: TransitionSampler) -> Self {
        Self {
            bias,
            method: SamplingMethod::Auto,
            alias_degree: DEFAULT_ALIAS_DEGREE,
            alias_budget: None,
            churned: Vec::new(),
        }
    }

    /// Sets the method policy ([`SamplingMethod::Auto`] resolves per
    /// vertex; the rest force one method for every vertex).
    #[must_use]
    pub fn method(mut self, method: SamplingMethod) -> Self {
        self.method = method;
        self
    }

    /// Degree at or above which [`SamplingMethod::Auto`] promotes a
    /// static vertex to an alias table.
    #[must_use]
    pub fn alias_degree_threshold(mut self, degree: usize) -> Self {
        self.alias_degree = degree;
        self
    }

    /// Caps the alias tables' per-edge payload (12 bytes/edge) under
    /// [`SamplingMethod::Auto`]: candidates are admitted hub-first
    /// (descending degree, ties by vertex id) until the budget is spent;
    /// the rest keep the CDF tables.
    #[must_use]
    pub fn alias_budget_bytes(mut self, bytes: usize) -> Self {
        self.alias_budget = Some(bytes);
        self
    }

    /// Marks vertices whose segments churn under streaming ingest (e.g.
    /// `DynamicGraph::take_dirty`). Under [`SamplingMethod::Auto`] they
    /// sample by bounded rejection, so the next ingest invalidates no
    /// tables for them. Extends across calls; out-of-range ids are
    /// ignored at build time.
    #[must_use]
    pub fn churned(mut self, vertices: impl IntoIterator<Item = NodeId>) -> Self {
        self.churned.extend(vertices);
        self
    }

    /// Builds the prepared sampler for `g`.
    ///
    /// For the softmax variants this precomputes per-vertex tables
    /// (`O(|E|)` time); for [`TransitionSampler::Uniform`] and
    /// [`TransitionSampler::LinearTime`] it is free. When `obs` is
    /// enabled, exports the per-method vertex split and table bytes as
    /// gauges.
    pub fn build(&self, g: &TemporalGraph) -> PreparedSampler {
        let t0 = Instant::now();
        let (kind, counts) = match self.bias {
            TransitionSampler::Uniform => (PreparedKind::Uniform, MethodCounts::default()),
            TransitionSampler::LinearTime => (PreparedKind::LinearTime, MethodCounts::default()),
            TransitionSampler::Softmax => {
                let (vs, c) = self.build_weighted(g, false);
                (PreparedKind::Weighted(vs), c)
            }
            TransitionSampler::SoftmaxRecency => {
                let (vs, c) = self.build_weighted(g, true);
                (PreparedKind::Weighted(vs), c)
            }
        };
        let (table_bytes, alias_bytes) = table_footprint(&kind);
        let stats = SamplerBuildStats {
            build_time: t0.elapsed(),
            table_bytes,
            cdf_vertices: counts.cdf,
            alias_vertices: counts.alias,
            rejection_vertices: counts.rejection,
            alias_bytes,
        };
        export_build_metrics(&stats);
        PreparedSampler { kind, stats, num_nodes: g.num_nodes(), num_edges: g.num_edges() }
    }

    /// Resolves the per-vertex method assignment and builds the tables.
    fn build_weighted(&self, g: &TemporalGraph, recency: bool) -> (VertexSampler, MethodCounts) {
        let span = g.time_span().max(f64::MIN_POSITIVE);
        let n = g.num_nodes();
        let methods: Option<Vec<SamplingMethod>> = match self.method {
            SamplingMethod::Cdf => None,
            SamplingMethod::Alias => Some(vec![SamplingMethod::Alias; n]),
            SamplingMethod::Rejection => Some(vec![SamplingMethod::Rejection; n]),
            SamplingMethod::Auto => {
                let assigned = self.assign_auto(g);
                // A uniformly-CDF assignment collapses to the compact
                // legacy layout: no method map, no alias arrays.
                if assigned.iter().all(|&m| m == SamplingMethod::Cdf) {
                    None
                } else {
                    Some(assigned)
                }
            }
        };
        let need_cdf = methods.as_ref().is_none_or(|ms| ms.contains(&SamplingMethod::Cdf));
        let need_alias = methods.as_ref().is_some_and(|ms| ms.contains(&SamplingMethod::Alias));
        // Built as plain Vecs, wrapped into Storage-backed tables at the
        // end (the mapped variant only enters through the import path).
        let mut cdf_t: Option<(Vec<usize>, Vec<f64>)> = need_cdf.then(|| {
            let mut starts = Vec::with_capacity(n + 1);
            starts.push(0);
            (starts, Vec::new())
        });
        let mut alias_t: Option<(Vec<usize>, Vec<f64>, Vec<u32>)> = need_alias.then(|| {
            let mut starts = Vec::with_capacity(n + 1);
            starts.push(0);
            (starts, Vec::new(), Vec::new())
        });
        let mut counts = MethodCounts::default();
        let mut wbuf: Vec<f64> = Vec::new();
        let (mut small, mut large): (Vec<u32>, Vec<u32>) = (Vec::new(), Vec::new());
        for v in 0..n as NodeId {
            let (_, times) = g.neighbor_slices(v);
            let m = methods.as_ref().map_or(SamplingMethod::Cdf, |ms| ms[v as usize]);
            if !times.is_empty() {
                // Segments are time-sorted ascending, so the anchor is an end.
                let anchor = if recency { times[0] } else { times[times.len() - 1] };
                let weight = |t: Time| -> f64 {
                    let e = if recency { -(t - anchor) / span } else { (t - anchor) / span };
                    e.exp()
                };
                match m {
                    SamplingMethod::Cdf => {
                        counts.cdf += 1;
                        let (_, cdf) = cdf_t.as_mut().expect("cdf tables allocated");
                        let mut acc = 0.0;
                        for &t in times {
                            acc += weight(t);
                            cdf.push(acc);
                        }
                    }
                    SamplingMethod::Alias => {
                        counts.alias += 1;
                        wbuf.clear();
                        wbuf.extend(times.iter().map(|&t| weight(t)));
                        let (_, prob, alias) = alias_t.as_mut().expect("alias tables allocated");
                        push_vose(&wbuf, prob, alias, &mut small, &mut large);
                    }
                    SamplingMethod::Rejection => counts.rejection += 1,
                    SamplingMethod::Auto => unreachable!("Auto is resolved before table build"),
                }
            }
            if let Some((starts, cdf)) = &mut cdf_t {
                starts.push(cdf.len());
            }
            if let Some((starts, prob, _)) = &mut alias_t {
                starts.push(prob.len());
            }
        }
        let cdf = cdf_t.map(|(starts, cdf)| CdfTables { starts: starts.into(), cdf: cdf.into() });
        let alias = alias_t.map(|(starts, prob, alias)| AliasTables {
            starts: starts.into(),
            prob: prob.into(),
            alias: alias.into(),
        });
        (VertexSampler { recency, span, methods, cdf, alias }, counts)
    }

    /// The `Auto` policy: churned → rejection; static degree ≥ threshold
    /// → alias, hub-first under the memory budget; everything else CDF.
    fn assign_auto(&self, g: &TemporalGraph) -> Vec<SamplingMethod> {
        let n = g.num_nodes();
        let mut ms = vec![SamplingMethod::Cdf; n];
        for &v in &self.churned {
            if (v as usize) < n {
                ms[v as usize] = SamplingMethod::Rejection;
            }
        }
        // Degree-1 segments never reach method dispatch (a singleton
        // suffix is a forced move), so 2 is the floor worth a table.
        let threshold = self.alias_degree.max(2);
        let mut candidates: Vec<(usize, NodeId)> = (0..n as NodeId)
            .filter(|&v| ms[v as usize] == SamplingMethod::Cdf)
            .map(|v| (g.neighbor_slices(v).1.len(), v))
            .filter(|&(d, _)| d >= threshold)
            .collect();
        match self.alias_budget {
            None => {
                for &(_, v) in &candidates {
                    ms[v as usize] = SamplingMethod::Alias;
                }
            }
            Some(budget) => {
                candidates.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
                let mut spent = 0usize;
                for &(d, v) in &candidates {
                    let bytes = d * ALIAS_ENTRY_BYTES;
                    if spent + bytes <= budget {
                        spent += bytes;
                        ms[v as usize] = SamplingMethod::Alias;
                    }
                }
            }
        }
        ms
    }
}

/// The method-dispatched sampling layer for the softmax-weighted biases:
/// per-vertex method assignment plus whichever tables the assignment
/// needs. [`PreparedSampler`] is a facade over this for the weighted
/// kinds.
#[derive(Debug)]
pub struct VertexSampler {
    recency: bool,
    span: f64,
    /// `None` means every vertex uses the CDF tables — the compact
    /// legacy layout with no per-vertex method map.
    methods: Option<Vec<SamplingMethod>>,
    cdf: Option<CdfTables>,
    alias: Option<AliasTables>,
}

/// Per-segment cumulative weights aligned with CSR edge order;
/// `starts[v]..starts[v + 1]` is vertex `v`'s slice of `cdf`. Backed by
/// [`Storage`] so a mapped store file can lend the arrays zero-copy.
#[derive(Debug)]
struct CdfTables {
    starts: Storage<usize>,
    cdf: Storage<f64>,
}

/// Vose alias tables, same segment layout: `starts[v]..starts[v + 1]`
/// slices both `prob` and `alias`. `alias` holds segment-local indices.
#[derive(Debug)]
struct AliasTables {
    starts: Storage<usize>,
    prob: Storage<f64>,
    alias: Storage<u32>,
}

impl VertexSampler {
    /// The sampling method vertex `v` was assigned at build time.
    #[inline]
    pub fn method_of(&self, v: NodeId) -> SamplingMethod {
        self.methods.as_ref().map_or(SamplingMethod::Cdf, |ms| ms[v as usize])
    }

    /// Samples an absolute segment index in `lo..times.len()`; the caller
    /// has already handled the singleton suffix.
    #[inline]
    fn sample(&self, v: NodeId, times: &[Time], lo: usize, rng: &mut WalkRng) -> usize {
        match self.method_of(v) {
            SamplingMethod::Alias => self.sample_alias(v, times, lo, rng),
            SamplingMethod::Rejection => self.sample_rejection(times, lo, rng),
            _ => self.sample_cdf(v, times, lo, rng),
        }
    }

    /// Inverse-CDF draw: rebase the cumulative weights onto the valid
    /// suffix (one subtraction), one uniform draw, one binary search.
    /// `partition_point` mirrors direct evaluation's strict
    /// `target < acc` acceptance.
    #[inline]
    fn sample_cdf(&self, v: NodeId, times: &[Time], lo: usize, rng: &mut WalkRng) -> usize {
        let c = self.cdf.as_ref().expect("cdf tables allocated");
        let seg = &c.cdf[c.starts[v as usize]..c.starts[v as usize + 1]];
        debug_assert_eq!(seg.len(), times.len());
        let base = if lo == 0 { 0.0 } else { seg[lo - 1] };
        let total = seg[times.len() - 1] - base;
        let target = base + rng.next_f64() * total;
        let pick = lo + seg[lo..].partition_point(|&c| c <= target);
        // Float round-off can push `target` past the last cumulative
        // weight; clamp like direct evaluation does.
        pick.min(times.len() - 1)
    }

    /// Alias draw: one bounded draw + one uniform. A suffix draw
    /// (`lo > 0`) conditions full-table draws on landing in the suffix —
    /// each conditioned draw is exactly the suffix distribution — and
    /// falls back to exact direct evaluation after a bounded number of
    /// attempts, so the mixture stays exact.
    #[inline]
    fn sample_alias(&self, v: NodeId, times: &[Time], lo: usize, rng: &mut WalkRng) -> usize {
        let a = self.alias.as_ref().expect("alias tables allocated");
        let (s, e) = (a.starts[v as usize], a.starts[v as usize + 1]);
        let (prob, alias) = (&a.prob[s..e], &a.alias[s..e]);
        let deg = times.len();
        debug_assert_eq!(prob.len(), deg);
        for _ in 0..ALIAS_SUFFIX_ATTEMPTS {
            let j = rng.next_bounded(deg);
            let pick = if rng.next_f64() < prob[j] { j } else { alias[j] as usize };
            // `lo == 0` (the common case) accepts unconditionally here.
            if pick >= lo {
                return pick;
            }
        }
        direct_weighted_suffix(times, lo, self.span, self.recency, rng)
    }

    /// Bounded rejection against a constant envelope of 1: propose
    /// uniformly over the suffix, accept with the segment-anchored weight
    /// (∈ [e⁻¹, 1]). Exact direct evaluation finishes the rare draw that
    /// exhausts its attempts, keeping the mixture exact.
    #[inline]
    fn sample_rejection(&self, times: &[Time], lo: usize, rng: &mut WalkRng) -> usize {
        let len = times.len() - lo;
        let anchor = if self.recency { times[0] } else { times[times.len() - 1] };
        for _ in 0..REJECTION_ATTEMPTS {
            let j = lo + rng.next_bounded(len);
            let e = if self.recency {
                -(times[j] - anchor) / self.span
            } else {
                (times[j] - anchor) / self.span
            };
            if rng.next_f64() < e.exp() {
                return j;
            }
        }
        direct_weighted_suffix(times, lo, self.span, self.recency, rng)
    }

    /// Warms the *index* loads [`Self::prefetch`] depends on: the
    /// `starts[v]`/`starts[v + 1]` bounds of `v`'s table slice and the
    /// per-vertex method byte. A table prefetch cannot be issued until
    /// those resolve, so the engines call this one pipeline stage
    /// earlier — the sampler-side twin of the graph's CSR-offsets
    /// prefetch.
    #[inline]
    fn prefetch_offsets(&self, v: NodeId) {
        if let Some(m) = &self.methods {
            tgraph::prefetch::prefetch_read(m.as_ptr().wrapping_add(v as usize));
        }
        if let Some(c) = &self.cdf {
            let p = c.starts.as_ptr();
            tgraph::prefetch::prefetch_read(p.wrapping_add(v as usize));
            tgraph::prefetch::prefetch_read(p.wrapping_add(v as usize + 1));
        }
        if let Some(a) = &self.alias {
            let p = a.starts.as_ptr();
            tgraph::prefetch::prefetch_read(p.wrapping_add(v as usize));
            tgraph::prefetch::prefetch_read(p.wrapping_add(v as usize + 1));
        }
    }

    /// Hints the CPU to pull `v`'s table slice toward L1. For CDF
    /// vertices: the first, middle, and last cache lines of the prefix
    /// sums (the first positions the binary search inspects). For alias
    /// vertices: the same probes on the probability row (the draw's
    /// random index lands anywhere in it). Rejection vertices read only
    /// the times slice, which the graph-side prefetch already covers.
    #[inline]
    fn prefetch(&self, v: NodeId) {
        match self.method_of(v) {
            SamplingMethod::Alias => {
                if let Some(a) = &self.alias {
                    probe_lines(&a.prob, a.starts[v as usize], a.starts[v as usize + 1]);
                }
            }
            SamplingMethod::Rejection => {}
            _ => {
                if let Some(c) = &self.cdf {
                    probe_lines(&c.cdf, c.starts[v as usize], c.starts[v as usize + 1]);
                }
            }
        }
    }
}

/// Prefetches the first, middle, and last cache lines of `data[a..b]`,
/// deduplicated at line granularity (8 × f64 per line) so single-line
/// segments cost one hint, not three.
#[inline]
fn probe_lines(data: &[f64], a: usize, b: usize) {
    if a == b {
        return;
    }
    let (mid, last) = ((a + b) / 2, b - 1);
    let p = data.as_ptr();
    tgraph::prefetch::prefetch_read(p.wrapping_add(a));
    if mid >> 3 != a >> 3 {
        tgraph::prefetch::prefetch_read(p.wrapping_add(mid));
    }
    if last >> 3 != mid >> 3 {
        tgraph::prefetch::prefetch_read(p.wrapping_add(last));
    }
}

/// Appends one segment's Vose alias table to `t`. Probabilities are
/// scaled so the mean is 1; the small/large worklists pair each
/// deficient entry with a surplus donor. Entries left over in either
/// list are exactly 1 up to round-off and are pinned there.
fn push_vose(
    weights: &[f64],
    prob: &mut Vec<f64>,
    alias: &mut Vec<u32>,
    small: &mut Vec<u32>,
    large: &mut Vec<u32>,
) {
    let d = weights.len();
    let base = prob.len();
    let total: f64 = weights.iter().sum();
    let scale = d as f64 / total;
    prob.extend(weights.iter().map(|&w| w * scale));
    alias.resize(base + d, 0);
    small.clear();
    large.clear();
    for i in 0..d {
        if prob[base + i] < 1.0 {
            small.push(i as u32);
        } else {
            large.push(i as u32);
        }
    }
    while let Some(&l) = large.last() {
        let Some(s) = small.pop() else { break };
        alias[base + s as usize] = l;
        let p = prob[base + l as usize] - (1.0 - prob[base + s as usize]);
        prob[base + l as usize] = p;
        if p < 1.0 {
            large.pop();
            small.push(l);
        }
    }
    for &i in small.iter().chain(large.iter()) {
        prob[base + i as usize] = 1.0;
    }
}

/// Exact direct evaluation of the segment-anchored weight distribution
/// over `times[lo..]` — the fallback that bounds the alias/rejection
/// retry loops, and distribution-identical to the CDF tables (same
/// anchor, same weights, one uniform draw).
fn direct_weighted_suffix(
    times: &[Time],
    lo: usize,
    span: f64,
    recency: bool,
    rng: &mut WalkRng,
) -> usize {
    let anchor = if recency { times[0] } else { times[times.len() - 1] };
    let weight = |t: Time| -> f64 {
        let e = if recency { -(t - anchor) / span } else { (t - anchor) / span };
        e.exp()
    };
    let mut total = 0.0;
    for &t in &times[lo..] {
        total += weight(t);
    }
    let target = rng.next_f64() * total;
    let mut acc = 0.0;
    for (i, &t) in times[lo..].iter().enumerate() {
        acc += weight(t);
        if target < acc {
            return lo + i;
        }
    }
    times.len() - 1
}

#[derive(Debug, Default, Clone, Copy)]
struct MethodCounts {
    cdf: usize,
    alias: usize,
    rejection: usize,
}

/// Resident bytes of a prepared kind's tables: `(total, alias_subset)`.
fn table_footprint(kind: &PreparedKind) -> (usize, usize) {
    match kind {
        PreparedKind::Weighted(vs) => {
            let usz = std::mem::size_of::<usize>();
            let cdf = vs.cdf.as_ref().map_or(0, |c| c.starts.len() * usz + c.cdf.len() * 8);
            let alias = vs
                .alias
                .as_ref()
                .map_or(0, |a| a.starts.len() * usz + a.prob.len() * 8 + a.alias.len() * 4);
            let map =
                vs.methods.as_ref().map_or(0, |m| m.len() * std::mem::size_of::<SamplingMethod>());
            (cdf + alias + map, alias)
        }
        _ => (0, 0),
    }
}

/// Exports the build's method split to `/metrics` (no-op when obs is
/// disabled).
fn export_build_metrics(stats: &SamplerBuildStats) {
    let rec = obs::Recorder::global();
    if !rec.is_enabled() {
        return;
    }
    rec.gauge("twalk_sampler_vertices{method=\"cdf\"}").set(stats.cdf_vertices as i64);
    rec.gauge("twalk_sampler_vertices{method=\"alias\"}").set(stats.alias_vertices as i64);
    rec.gauge("twalk_sampler_vertices{method=\"rejection\"}").set(stats.rejection_vertices as i64);
    rec.gauge("twalk_sampler_table_bytes").set(stats.table_bytes as i64);
    rec.gauge("twalk_sampler_alias_bytes").set(stats.alias_bytes as i64);
}

impl TransitionSampler {
    /// Builds the prepared form of this sampler for `g` — the
    /// compatibility wrapper over [`SamplerBuilder`], forcing
    /// [`SamplingMethod::Cdf`] so the table layout, byte accounting, and
    /// RNG draw pattern match the pre-builder API exactly. New code that
    /// wants per-vertex method adaptation should use the builder.
    pub fn prepare(self, g: &TemporalGraph) -> PreparedSampler {
        SamplerBuilder::new(self).method(SamplingMethod::Cdf).build(g)
    }
}

impl PreparedSampler {
    /// Wraps a user-supplied [`TransitionBias`] for `g`.
    pub fn custom(g: &TemporalGraph, bias: Arc<dyn TransitionBias>) -> Self {
        Self {
            kind: PreparedKind::Custom(bias),
            stats: SamplerBuildStats::default(),
            num_nodes: g.num_nodes(),
            num_edges: g.num_edges(),
        }
    }

    /// Build cost of this sampler.
    pub fn stats(&self) -> SamplerBuildStats {
        self.stats
    }

    /// Whether this sampler was prepared for a graph of the same shape —
    /// the cheap sanity check the walk entry points assert.
    pub fn matches_graph(&self, g: &TemporalGraph) -> bool {
        self.num_nodes == g.num_nodes() && self.num_edges == g.num_edges()
    }

    /// The per-vertex sampling method for the weighted kinds, `None` for
    /// closed-form and custom samplers (which have no method dispatch).
    #[inline]
    pub fn method_of(&self, v: NodeId) -> Option<SamplingMethod> {
        match &self.kind {
            PreparedKind::Weighted(vs) => Some(vs.method_of(v)),
            _ => None,
        }
    }

    /// Warms the table-index entries (`starts` bounds, method byte) that
    /// [`Self::prefetch`] must read before it can compute table-line
    /// addresses — the sampler half of the engines' CSR-offsets stage.
    /// Prefetches never fault, so no bounds check. A no-op for
    /// table-free samplers.
    #[inline]
    pub fn prefetch_offsets(&self, v: NodeId) {
        if let PreparedKind::Weighted(vs) = &self.kind {
            vs.prefetch_offsets(v);
        }
    }

    /// Hints the CPU to pull `v`'s table slice toward L1 — the sampler
    /// half of the batched/interleaved engines' segment prefetch. A
    /// no-op for table-free samplers and methods.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for the prepared graph.
    #[inline]
    pub fn prefetch(&self, v: NodeId) {
        if let PreparedKind::Weighted(vs) = &self.kind {
            vs.prefetch(v);
        }
    }

    /// Samples the next edge for vertex `v` among the valid suffix
    /// `times[lo..]`, returning an absolute segment index.
    ///
    /// `times` must be `v`'s full time-sorted segment from the graph this
    /// sampler was prepared for, and `lo < times.len()`.
    ///
    /// # Panics
    ///
    /// May panic (or sample nonsense) if called with a different graph's
    /// slices; use [`Self::matches_graph`] to guard at entry points.
    #[inline]
    pub fn sample(
        &self,
        v: NodeId,
        times: &[Time],
        lo: usize,
        now: Time,
        rng: &mut WalkRng,
    ) -> usize {
        let len = times.len() - lo;
        debug_assert!(len > 0, "empty candidate set");
        match &self.kind {
            PreparedKind::Uniform => lo + rng.next_bounded(len),
            PreparedKind::LinearTime => lo + direct_linear(len, rng),
            PreparedKind::Weighted(vs) => {
                // A forced move must not consume RNG state, or prepared
                // and direct walks would diverge on every degree-1 chain.
                if len == 1 {
                    return lo;
                }
                vs.sample(v, times, lo, rng)
            }
            PreparedKind::Custom(bias) => {
                let pick = bias.sample(v, times, lo, now, rng);
                assert!(
                    (lo..times.len()).contains(&pick),
                    "custom bias returned {pick}, outside valid suffix {lo}..{}",
                    times.len()
                );
                pick
            }
        }
    }
}

/// Borrowed view of a prepared sampler's state for serialization — what
/// the persistent storage layer writes into a store file's sampler
/// sections. Obtained from [`PreparedSampler::export_tables`].
#[derive(Debug)]
pub enum SamplerTables<'a> {
    /// Closed-form uniform sampling: no tables, nothing but the bias tag
    /// to persist.
    Uniform,
    /// Closed-form CTDNE linear-time sampling: likewise table-free.
    LinearTime,
    /// Softmax-weighted sampling with per-vertex method dispatch.
    Weighted {
        /// Recency variant (`true` for [`TransitionSampler::SoftmaxRecency`]).
        recency: bool,
        /// The graph-wide span `r` the weights were anchored with.
        span: f64,
        /// Per-vertex method map; `None` is the compact all-CDF layout.
        methods: Option<&'a [SamplingMethod]>,
        /// CDF `(starts, cumulative_weights)`, if any vertex uses CDF.
        cdf: Option<(&'a [usize], &'a [f64])>,
        /// Alias `(starts, probabilities, alias_indices)`, if any vertex
        /// uses alias tables.
        alias: Option<(&'a [usize], &'a [f64], &'a [u32])>,
    },
}

/// Owned-or-mapped table parts for rebuilding a softmax-weighted
/// [`PreparedSampler`] from a store file — the import-side mirror of
/// [`SamplerTables::Weighted`], with [`Storage`] in place of borrows so
/// a mapped file can lend the big arrays zero-copy.
#[derive(Debug)]
pub struct WeightedTables {
    /// Recency variant.
    pub recency: bool,
    /// The graph-wide span `r` the weights were anchored with.
    pub span: f64,
    /// Per-vertex method map; `None` is the compact all-CDF layout.
    pub methods: Option<Vec<SamplingMethod>>,
    /// CDF `(starts, cumulative_weights)`.
    pub cdf: Option<(Storage<usize>, Storage<f64>)>,
    /// Alias `(starts, probabilities, alias_indices)`.
    pub alias: Option<(Storage<usize>, Storage<f64>, Storage<u32>)>,
}

/// Checks one `starts` array against its payload: `n + 1` entries,
/// starting at 0, nondecreasing, ending exactly at `payload_len`.
fn check_starts(what: &str, starts: &[usize], n: usize, payload_len: usize) -> Result<(), String> {
    if starts.len() != n + 1 {
        return Err(format!("{what} starts has {} entries, expected {}", starts.len(), n + 1));
    }
    if starts[0] != 0 {
        return Err(format!("{what} starts[0] is {}, expected 0", starts[0]));
    }
    if let Some(v) = starts.windows(2).position(|w| w[0] > w[1]) {
        return Err(format!("{what} starts decrease at vertex {v}"));
    }
    if starts[n] != payload_len {
        return Err(format!("{what} starts end at {}, expected {payload_len}", starts[n]));
    }
    Ok(())
}

impl PreparedSampler {
    /// Number of vertices of the graph this sampler was prepared for.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of edges of the graph this sampler was prepared for.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Exports the sampler's serializable state, or `None` for
    /// [`PreparedSampler::custom`] samplers (an arbitrary bias function
    /// has no on-disk representation).
    pub fn export_tables(&self) -> Option<SamplerTables<'_>> {
        match &self.kind {
            PreparedKind::Uniform => Some(SamplerTables::Uniform),
            PreparedKind::LinearTime => Some(SamplerTables::LinearTime),
            PreparedKind::Custom(_) => None,
            PreparedKind::Weighted(vs) => Some(SamplerTables::Weighted {
                recency: vs.recency,
                span: vs.span,
                methods: vs.methods.as_deref(),
                cdf: vs.cdf.as_ref().map(|c| (&c.starts[..], &c.cdf[..])),
                alias: vs.alias.as_ref().map(|a| (&a.starts[..], &a.prob[..], &a.alias[..])),
            }),
        }
    }

    /// Rebuilds a closed-form (table-free) prepared sampler — the import
    /// path for [`TransitionSampler::Uniform`] and
    /// [`TransitionSampler::LinearTime`], whose preparation is free.
    pub fn from_closed_form(
        bias: TransitionSampler,
        num_nodes: usize,
        num_edges: usize,
    ) -> Result<Self, String> {
        let kind = match bias {
            TransitionSampler::Uniform => PreparedKind::Uniform,
            TransitionSampler::LinearTime => PreparedKind::LinearTime,
            other => return Err(format!("{other:?} is not a closed-form sampler")),
        };
        Ok(Self { kind, stats: SamplerBuildStats::default(), num_nodes, num_edges })
    }

    /// Rebuilds a softmax-weighted prepared sampler from previously
    /// exported tables — the import path for a store file, taking
    /// [`Storage`] so mapped arrays are adopted zero-copy.
    ///
    /// The structural invariants the sampling hot path relies on are
    /// *checked*, not assumed: `starts` arrays must have `num_nodes + 1`
    /// monotone entries ending at their payload length, alias rows must
    /// be parallel with segment-local indices, the method map (when
    /// present) must cover every vertex with a concrete method whose
    /// table exists, and the span must be positive and finite. Any
    /// violation is an `Err` — never a panic later inside a walk.
    ///
    /// `counts` carries the build-time per-method vertex split
    /// (`cdf`, `alias`, `rejection`) for [`SamplerBuildStats`]; byte
    /// accounting is recomputed from the tables themselves.
    pub fn from_weighted_tables(
        t: WeightedTables,
        num_nodes: usize,
        num_edges: usize,
        counts: (usize, usize, usize),
    ) -> Result<Self, String> {
        if !(t.span.is_finite() && t.span > 0.0) {
            return Err(format!("span must be positive and finite, got {}", t.span));
        }
        if let Some(ms) = &t.methods {
            if ms.len() != num_nodes {
                return Err(format!("method map has {} entries, expected {num_nodes}", ms.len()));
            }
            for (v, &m) in ms.iter().enumerate() {
                match m {
                    SamplingMethod::Cdf if t.cdf.is_none() => {
                        return Err(format!("vertex {v} needs CDF tables but none are present"));
                    }
                    SamplingMethod::Alias if t.alias.is_none() => {
                        return Err(format!("vertex {v} needs alias tables but none are present"));
                    }
                    SamplingMethod::Auto => {
                        return Err(format!("vertex {v} has unresolved method Auto"));
                    }
                    _ => {}
                }
            }
        } else if t.cdf.is_none() {
            return Err("compact layout (no method map) requires CDF tables".into());
        }
        if let Some((starts, cdf)) = &t.cdf {
            check_starts("cdf", starts, num_nodes, cdf.len())?;
        }
        if let Some((starts, prob, alias)) = &t.alias {
            check_starts("alias", starts, num_nodes, prob.len())?;
            if alias.len() != prob.len() {
                return Err(format!(
                    "alias rows are not parallel: {} probs vs {} indices",
                    prob.len(),
                    alias.len()
                ));
            }
            // Alias entries are segment-local: every index must stay
            // inside its own vertex's row or a draw could escape the
            // segment and index out of bounds mid-walk.
            for v in 0..num_nodes {
                let (s, e) = (starts[v], starts[v + 1]);
                let deg = e - s;
                if let Some(i) = alias[s..e].iter().position(|&x| (x as usize) >= deg) {
                    return Err(format!(
                        "alias index {} at vertex {v} edge {i} exceeds segment degree {deg}",
                        alias[s + i]
                    ));
                }
            }
        }
        let vs = VertexSampler {
            recency: t.recency,
            span: t.span,
            methods: t.methods,
            cdf: t.cdf.map(|(starts, cdf)| CdfTables { starts, cdf }),
            alias: t.alias.map(|(starts, prob, alias)| AliasTables { starts, prob, alias }),
        };
        let kind = PreparedKind::Weighted(vs);
        let (table_bytes, alias_bytes) = table_footprint(&kind);
        let stats = SamplerBuildStats {
            build_time: Duration::ZERO,
            table_bytes,
            cdf_vertices: counts.0,
            alias_vertices: counts.1,
            rejection_vertices: counts.2,
            alias_bytes,
        };
        Ok(Self { kind, stats, num_nodes, num_edges })
    }
}

/// Direct evaluation of the softmax distribution of paper Eq. (1) over a
/// candidate-suffix timestamp slice — the executable reference the CDF
/// tables are verified against. With `recency` the exponent is negated
/// and shifted by the current time.
pub(crate) fn direct_softmax(
    times: &[Time],
    span: f64,
    rng: &mut WalkRng,
    recency: bool,
    now: Time,
) -> usize {
    debug_assert!(!times.is_empty());
    if times.len() == 1 {
        return 0;
    }
    // Numerically stable: subtract the max exponent before exponentiating.
    let base = if now.is_finite() { now } else { 0.0 };
    let exponent = |t: Time| -> f64 {
        if recency {
            -(t - base) / span
        } else {
            t / span
        }
    };
    let mut max_e = f64::NEG_INFINITY;
    for &t in times {
        max_e = max_e.max(exponent(t));
    }
    let mut total = 0.0;
    // Candidate sets are usually small (bounded by degree); two passes keep
    // this allocation-free.
    for &t in times {
        total += (exponent(t) - max_e).exp();
    }
    let target = rng.next_f64() * total;
    let mut acc = 0.0;
    for (i, &t) in times.iter().enumerate() {
        acc += (exponent(t) - max_e).exp();
        if target < acc {
            return i;
        }
    }
    times.len() - 1
}

/// Samples index `i ∈ 0..len` with probability proportional to `i + 1`
/// (candidates are time-sorted ascending, so the latest edge has the
/// highest rank) — CTDNE's linear temporal bias, computed in O(1) by
/// inverting the triangular CDF.
pub(crate) fn direct_linear(len: usize, rng: &mut WalkRng) -> usize {
    debug_assert!(len > 0);
    if len == 1 {
        return 0;
    }
    // CDF(i) = (i+1)(i+2)/2 over total len(len+1)/2; invert with sqrt.
    let total = (len * (len + 1) / 2) as f64;
    let target = rng.next_f64() * total;

    ((((8.0 * target + 1.0).sqrt() - 1.0) / 2.0).floor() as usize).min(len - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgraph::{GraphBuilder, TemporalEdge};

    fn star(times: &[f64]) -> TemporalGraph {
        let mut b = GraphBuilder::new();
        for (i, &t) in times.iter().enumerate() {
            b = b.add_edge(TemporalEdge::new(0, i as NodeId + 1, t));
        }
        b.build()
    }

    /// Two hubs (vertex 0 with 48 edges, vertex 1 with 16) plus the leaf
    /// tail — enough degree spread to exercise threshold and budget.
    fn two_hubs() -> TemporalGraph {
        let mut b = GraphBuilder::new();
        let mut leaf = 2u32;
        for i in 0..48 {
            b = b.add_edge(TemporalEdge::new(0, leaf, i as f64 / 48.0));
            leaf += 1;
        }
        for i in 0..16 {
            b = b.add_edge(TemporalEdge::new(1, leaf, i as f64 / 16.0));
            leaf += 1;
        }
        b.build()
    }

    #[test]
    fn uniform_and_linear_need_no_tables() {
        let g = star(&[0.1, 0.5, 0.9]);
        for s in [TransitionSampler::Uniform, TransitionSampler::LinearTime] {
            let p = s.prepare(&g);
            assert_eq!(p.stats().table_bytes, 0);
            assert!(p.matches_graph(&g));
            assert_eq!(p.method_of(0), None);
        }
    }

    #[test]
    fn cdf_tables_cover_every_edge() {
        let g = tgraph::gen::erdos_renyi(40, 300, 3).build();
        let p = TransitionSampler::Softmax.prepare(&g);
        // One f64 per edge plus the n+1 segment starts.
        let expected = g.num_edges() * 8 + (g.num_nodes() + 1) * std::mem::size_of::<usize>();
        assert_eq!(p.stats().table_bytes, expected);
    }

    #[test]
    fn prepared_uniform_matches_direct_draws_exactly() {
        let g = star(&[0.1, 0.2, 0.3, 0.4, 0.5]);
        let p = TransitionSampler::Uniform.prepare(&g);
        let (_, times) = g.neighbor_slices(0);
        for lo in 0..times.len() {
            let mut a = WalkRng::new(7);
            let mut b = WalkRng::new(7);
            for _ in 0..100 {
                let x = p.sample(0, times, lo, f64::NEG_INFINITY, &mut a);
                let y = lo + b.next_bounded(times.len() - lo);
                assert_eq!(x, y);
            }
        }
    }

    #[test]
    fn cdf_sample_stays_in_valid_suffix() {
        let g = star(&[0.05, 0.2, 0.21, 0.6, 0.61, 0.99]);
        for s in [TransitionSampler::Softmax, TransitionSampler::SoftmaxRecency] {
            let p = s.prepare(&g);
            let (_, times) = g.neighbor_slices(0);
            let mut rng = WalkRng::new(11);
            for lo in 0..times.len() {
                for _ in 0..500 {
                    let pick = p.sample(
                        0,
                        times,
                        lo,
                        times.get(lo.wrapping_sub(1)).copied().unwrap_or(f64::NEG_INFINITY),
                        &mut rng,
                    );
                    assert!((lo..times.len()).contains(&pick));
                }
            }
        }
    }

    #[test]
    fn singleton_suffix_draws_nothing_from_rng() {
        // Matches direct evaluation: a forced move must not consume RNG
        // state, or prepared and direct walks would diverge on every
        // degree-1 chain.
        let g = star(&[0.4]);
        for s in [
            TransitionSampler::Softmax,
            TransitionSampler::SoftmaxRecency,
            TransitionSampler::LinearTime,
        ] {
            let p = s.prepare(&g);
            let (_, times) = g.neighbor_slices(0);
            let mut rng = WalkRng::new(3);
            let before = rng.clone().next_u64();
            assert_eq!(p.sample(0, times, 0, 0.0, &mut rng), 0);
            assert_eq!(rng.next_u64(), before);
        }
        // The forced-move rule is method-independent: alias and rejection
        // vertices must hold it too.
        for m in [SamplingMethod::Alias, SamplingMethod::Rejection] {
            let p = SamplerBuilder::new(TransitionSampler::Softmax).method(m).build(&g);
            let (_, times) = g.neighbor_slices(0);
            let mut rng = WalkRng::new(3);
            let before = rng.clone().next_u64();
            assert_eq!(p.sample(0, times, 0, 0.0, &mut rng), 0);
            assert_eq!(rng.next_u64(), before);
        }
    }

    #[test]
    fn custom_bias_is_invoked() {
        #[derive(Debug)]
        struct AlwaysLatest;
        impl TransitionBias for AlwaysLatest {
            fn sample(
                &self,
                _v: NodeId,
                times: &[Time],
                lo: usize,
                _now: Time,
                _rng: &mut WalkRng,
            ) -> usize {
                let _ = lo;
                times.len() - 1
            }
        }
        let g = star(&[0.1, 0.5, 0.9]);
        let p = PreparedSampler::custom(&g, Arc::new(AlwaysLatest));
        let (_, times) = g.neighbor_slices(0);
        let mut rng = WalkRng::new(1);
        assert_eq!(p.sample(0, times, 1, 0.0, &mut rng), 2);
        assert_eq!(p.stats().table_bytes, 0);
    }

    #[test]
    #[should_panic(expected = "outside valid suffix")]
    fn custom_bias_escaping_suffix_is_caught() {
        #[derive(Debug)]
        struct Bad;
        impl TransitionBias for Bad {
            fn sample(&self, _: NodeId, _: &[Time], _: usize, _: Time, _: &mut WalkRng) -> usize {
                0
            }
        }
        let g = star(&[0.1, 0.9]);
        let p = PreparedSampler::custom(&g, Arc::new(Bad));
        let (_, times) = g.neighbor_slices(0);
        p.sample(0, times, 1, 0.0, &mut WalkRng::new(1));
    }

    #[test]
    fn cdf_distribution_tracks_analytic_softmax() {
        // 10k draws over a 4-candidate suffix; empirical frequencies must
        // match the closed-form Eq. (1) probabilities.
        let times = [0.0, 0.3, 0.6, 1.0];
        let g = star(&times);
        let span: f64 = 1.0;
        let p = TransitionSampler::Softmax.prepare(&g);
        let (_, seg) = g.neighbor_slices(0);
        let weights: Vec<f64> = times.iter().map(|&t| (t / span).exp()).collect();
        let total: f64 = weights.iter().sum();
        let mut counts = [0usize; 4];
        let mut rng = WalkRng::new(5);
        let draws = 10_000;
        for _ in 0..draws {
            counts[p.sample(0, seg, 0, f64::NEG_INFINITY, &mut rng)] += 1;
        }
        for i in 0..4 {
            let expect = weights[i] / total;
            let got = counts[i] as f64 / draws as f64;
            assert!(
                (got - expect).abs() < 0.02,
                "candidate {i}: empirical {got:.3} vs analytic {expect:.3}"
            );
        }
    }

    #[test]
    fn sampling_method_names_round_trip() {
        for m in [
            SamplingMethod::Auto,
            SamplingMethod::Cdf,
            SamplingMethod::Alias,
            SamplingMethod::Rejection,
        ] {
            assert_eq!(m.to_string().parse::<SamplingMethod>(), Ok(m));
        }
        assert_eq!(" Rejection ".parse(), Ok(SamplingMethod::Rejection));
        assert_eq!("CDF".parse(), Ok(SamplingMethod::Cdf));
        let err = "vose".parse::<SamplingMethod>().unwrap_err();
        for needle in ["vose", "auto", "cdf", "alias", "rejection", "valid values"] {
            assert!(err.contains(needle), "{err:?} missing {needle:?}");
        }
    }

    #[test]
    fn legacy_prepare_matches_cdf_builder_exactly() {
        let g = tgraph::gen::preferential_attachment(200, 3, 5).undirected(true).build();
        let legacy = TransitionSampler::Softmax.prepare(&g);
        let built =
            SamplerBuilder::new(TransitionSampler::Softmax).method(SamplingMethod::Cdf).build(&g);
        assert_eq!(legacy.stats().table_bytes, built.stats().table_bytes);
        assert_eq!(legacy.stats().alias_bytes, 0);
        assert_eq!(legacy.stats().alias_vertices, 0);
        assert_eq!(legacy.stats().rejection_vertices, 0);
        assert!(legacy.stats().cdf_vertices > 0);
        // Same tables ⇒ same draws from the same stream.
        let v = 0u32;
        let (_, times) = g.neighbor_slices(v);
        if times.len() > 1 {
            let mut a = WalkRng::new(17);
            let mut b = WalkRng::new(17);
            for _ in 0..200 {
                assert_eq!(
                    legacy.sample(v, times, 0, f64::NEG_INFINITY, &mut a),
                    built.sample(v, times, 0, f64::NEG_INFINITY, &mut b)
                );
            }
        }
    }

    #[test]
    fn auto_with_unreachable_threshold_collapses_to_legacy_layout() {
        let g = two_hubs();
        let auto =
            SamplerBuilder::new(TransitionSampler::Softmax).alias_degree_threshold(1_000).build(&g);
        let legacy = TransitionSampler::Softmax.prepare(&g);
        // No vertex qualifies for alias and nothing churned, so the
        // assignment collapses to the compact all-CDF layout.
        assert_eq!(auto.stats().table_bytes, legacy.stats().table_bytes);
        assert_eq!(auto.stats().alias_vertices, 0);
    }

    #[test]
    fn auto_assigns_alias_to_hubs_and_cdf_to_the_rest() {
        let g = two_hubs();
        let p =
            SamplerBuilder::new(TransitionSampler::Softmax).alias_degree_threshold(32).build(&g);
        assert_eq!(p.method_of(0), Some(SamplingMethod::Alias));
        assert_eq!(p.method_of(1), Some(SamplingMethod::Cdf));
        let s = p.stats();
        assert_eq!(s.alias_vertices, 1);
        assert_eq!(s.cdf_vertices, 1); // leaves have no out-edges
        assert_eq!(s.rejection_vertices, 0);
        // 48 alias entries at 12 payload bytes each, plus the starts row.
        assert_eq!(s.alias_bytes, 48 * 12 + (g.num_nodes() + 1) * std::mem::size_of::<usize>());
        assert!(s.table_bytes > s.alias_bytes);
    }

    #[test]
    fn alias_budget_admits_hubs_first() {
        let g = two_hubs();
        // Room for the 48-degree hub only: 48·12 = 576 bytes.
        let p = SamplerBuilder::new(TransitionSampler::Softmax)
            .alias_degree_threshold(8)
            .alias_budget_bytes(600)
            .build(&g);
        assert_eq!(p.method_of(0), Some(SamplingMethod::Alias));
        assert_eq!(p.method_of(1), Some(SamplingMethod::Cdf));
        assert_eq!(p.stats().alias_vertices, 1);
        // A zero budget demotes everything back to CDF.
        let p0 = SamplerBuilder::new(TransitionSampler::Softmax)
            .alias_degree_threshold(8)
            .alias_budget_bytes(0)
            .build(&g);
        assert_eq!(p0.stats().alias_vertices, 0);
        assert_eq!(p0.method_of(0), Some(SamplingMethod::Cdf));
    }

    #[test]
    fn churned_vertices_sample_by_rejection() {
        let g = two_hubs();
        let p = SamplerBuilder::new(TransitionSampler::SoftmaxRecency)
            .alias_degree_threshold(32)
            .churned([0u32, 9_999u32]) // out-of-range id is ignored
            .build(&g);
        assert_eq!(p.method_of(0), Some(SamplingMethod::Rejection));
        assert_eq!(p.method_of(1), Some(SamplingMethod::Cdf));
        let s = p.stats();
        assert_eq!(s.rejection_vertices, 1);
        assert_eq!(s.alias_vertices, 0); // the only alias candidate churned
        assert_eq!(s.alias_bytes, 0);
    }

    #[test]
    fn forced_rejection_builds_no_tables_beyond_the_method_map() {
        let g = two_hubs();
        let p = SamplerBuilder::new(TransitionSampler::Softmax)
            .method(SamplingMethod::Rejection)
            .build(&g);
        let s = p.stats();
        assert_eq!(s.table_bytes, g.num_nodes() * std::mem::size_of::<SamplingMethod>());
        assert_eq!(s.alias_bytes, 0);
        assert_eq!(s.rejection_vertices, 2);
        assert_eq!(s.cdf_vertices, 0);
    }

    #[test]
    fn alias_and_rejection_track_the_analytic_distribution() {
        let times: Vec<f64> = (0..32).map(|i| i as f64 / 31.0).collect();
        let g = star(&times);
        let deg = times.len();
        for (recency, bias) in
            [(false, TransitionSampler::Softmax), (true, TransitionSampler::SoftmaxRecency)]
        {
            let anchor = if recency { times[0] } else { times[deg - 1] };
            for method in [SamplingMethod::Alias, SamplingMethod::Rejection] {
                let p = SamplerBuilder::new(bias).method(method).build(&g);
                assert_eq!(p.method_of(0), Some(method));
                let (_, seg) = g.neighbor_slices(0);
                for lo in [0usize, deg / 3] {
                    let w: Vec<f64> = times[lo..]
                        .iter()
                        .map(|&t| {
                            let e = if recency { -(t - anchor) } else { t - anchor };
                            e.exp() // span is 1.0 for this star
                        })
                        .collect();
                    let total: f64 = w.iter().sum();
                    let mut counts = vec![0usize; deg - lo];
                    let mut rng = WalkRng::new(23);
                    let draws = 30_000;
                    for _ in 0..draws {
                        let pick = p.sample(0, seg, lo, f64::NEG_INFINITY, &mut rng);
                        assert!((lo..deg).contains(&pick), "{method} escaped suffix");
                        counts[pick - lo] += 1;
                    }
                    for i in 0..deg - lo {
                        let expect = w[i] / total;
                        let got = counts[i] as f64 / draws as f64;
                        assert!(
                            (got - expect).abs() < 0.015,
                            "{bias:?}/{method} lo={lo} bin {i}: {got:.4} vs {expect:.4}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn vose_tables_are_exact_for_uniform_weights() {
        // Equal weights scale to exactly 1.0 everywhere: every draw
        // accepts its first column and the alias row is never consulted.
        let (mut prob, mut alias) = (Vec::new(), Vec::new());
        let (mut s, mut l) = (Vec::new(), Vec::new());
        push_vose(&[2.5; 7], &mut prob, &mut alias, &mut s, &mut l);
        assert_eq!(prob, vec![1.0; 7]);
    }
}
