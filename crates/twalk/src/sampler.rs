//! Transition sampling: precomputed per-vertex CDF tables and the
//! pluggable bias seam.
//!
//! The paper's Eq. (1) softmax is the compute-heavy part of the walk
//! kernel: evaluated directly, every step exponentiates each candidate
//! timestamp (three passes over the temporally-valid suffix). But the
//! weights depend only on the edge timestamps and the graph-wide span `r`
//! — not on the walk state — so for a fixed graph they can be
//! precomputed *once* as per-segment prefix sums. Sampling from any valid
//! suffix `[lo..deg)` then costs one subtraction (to rebase the CDF), one
//! uniform draw, and one `partition_point` binary search: `O(log d)`
//! instead of `O(d)` exponentiations per step.
//!
//! Numerical stability comes from anchoring each vertex's weights at its
//! own segment extreme: softmax weights are `exp((t - t_seg_max) / r)`,
//! recency weights `exp(-(t - t_seg_min) / r)`. A segment's time range
//! never exceeds the global span `r`, so every stored weight lies in
//! `[e^-1, 1]` and the prefix sums are well conditioned. The recency
//! variant's dependence on the walk's current time cancels under
//! normalization (`exp(-(t - now)/r) = exp(-t/r) · exp(now/r)`, and the
//! second factor is constant across the candidate set), which is what
//! makes precomputation valid at all.
//!
//! [`TransitionSampler::prepare`] turns the configuration enum into a
//! [`PreparedSampler`] — built once per graph, shared read-only across
//! worker threads, reusable across [`crate::generate_walks_prepared`] and
//! [`crate::generate_walks_from_prepared`] calls on the same graph.
//! Custom bias functions plug in through the [`TransitionBias`] trait via
//! [`PreparedSampler::custom`].

use std::sync::Arc;
use std::time::{Duration, Instant};

use tgraph::{NodeId, TemporalGraph, Time};

use crate::{TransitionSampler, WalkRng};

/// A pluggable transition bias: chooses the next edge among the
/// temporally-valid suffix of a vertex's time-sorted neighbor segment.
///
/// Implementations receive the *full* segment timestamp slice plus the
/// index `lo` where the valid suffix begins, and must return an absolute
/// segment index in `lo..times.len()`. `now` is the timestamp of the edge
/// the walk last traversed (`-inf` before the first hop).
///
/// Implementations must be deterministic given the RNG stream: walks stay
/// reproducible in `(seed, sampler)` and independent of thread count.
pub trait TransitionBias: Send + Sync + std::fmt::Debug {
    /// Samples an index in `lo..times.len()`.
    fn sample(&self, v: NodeId, times: &[Time], lo: usize, now: Time, rng: &mut WalkRng) -> usize;
}

/// Cost of building a [`PreparedSampler`]: wall-clock build time and the
/// resident size of its tables (zero for table-free samplers).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SamplerBuildStats {
    /// Wall-clock time spent in [`TransitionSampler::prepare`].
    pub build_time: Duration,
    /// Bytes held by the precomputed tables.
    pub table_bytes: usize,
}

/// A transition sampler bound to one graph, ready for `O(log d)` sampling.
///
/// Built by [`TransitionSampler::prepare`] (or [`PreparedSampler::custom`])
/// and shared read-only across walk worker threads. The softmax variants
/// carry per-edge cumulative-weight tables aligned with the graph's CSR
/// edge order; uniform and linear-time sampling need no tables and keep
/// the exact RNG draw pattern of direct evaluation.
///
/// # Examples
///
/// ```
/// use twalk::{generate_walks_prepared, TransitionSampler, WalkConfig};
/// use par::ParConfig;
///
/// let g = tgraph::gen::erdos_renyi(100, 800, 5).build();
/// let prepared = TransitionSampler::Softmax.prepare(&g);
/// assert!(prepared.stats().table_bytes > 0);
/// let cfg = WalkConfig::new(4, 6).sampler(TransitionSampler::Softmax);
/// // One prepare, many walk runs.
/// let a = generate_walks_prepared(&g, &cfg, &prepared, &ParConfig::default());
/// let b = generate_walks_prepared(&g, &cfg, &prepared, &ParConfig::default());
/// assert_eq!(a, b);
/// ```
#[derive(Debug)]
pub struct PreparedSampler {
    kind: PreparedKind,
    stats: SamplerBuildStats,
    num_nodes: usize,
    num_edges: usize,
}

#[derive(Debug)]
enum PreparedKind {
    /// Uniform over the valid suffix — one bounded draw, no tables.
    Uniform,
    /// CTDNE linear rank bias — closed-form CDF inversion, no tables.
    LinearTime,
    /// Per-segment cumulative weights aligned with CSR edge order;
    /// `starts[v]..starts[v + 1]` is vertex `v`'s slice of `cdf`.
    Cdf { starts: Vec<usize>, cdf: Vec<f64> },
    /// User-supplied bias function.
    Custom(Arc<dyn TransitionBias>),
}

impl TransitionSampler {
    /// Builds the prepared form of this sampler for `g`.
    ///
    /// For the softmax variants this precomputes the per-vertex
    /// cumulative-weight tables (`O(|E|)` time, one `f64` per edge); for
    /// [`TransitionSampler::Uniform`] and [`TransitionSampler::LinearTime`]
    /// it is free.
    pub fn prepare(self, g: &TemporalGraph) -> PreparedSampler {
        let t0 = Instant::now();
        let kind = match self {
            TransitionSampler::Uniform => PreparedKind::Uniform,
            TransitionSampler::LinearTime => PreparedKind::LinearTime,
            TransitionSampler::Softmax => build_cdf(g, false),
            TransitionSampler::SoftmaxRecency => build_cdf(g, true),
        };
        let table_bytes = match &kind {
            PreparedKind::Cdf { starts, cdf } => {
                starts.len() * std::mem::size_of::<usize>() + cdf.len() * std::mem::size_of::<f64>()
            }
            _ => 0,
        };
        PreparedSampler {
            kind,
            stats: SamplerBuildStats { build_time: t0.elapsed(), table_bytes },
            num_nodes: g.num_nodes(),
            num_edges: g.num_edges(),
        }
    }
}

/// Builds per-segment cumulative weights. `recency` selects the
/// `exp(-(t - t_seg_min)/r)` weighting, otherwise `exp((t - t_seg_max)/r)`.
fn build_cdf(g: &TemporalGraph, recency: bool) -> PreparedKind {
    let span = g.time_span().max(f64::MIN_POSITIVE);
    let n = g.num_nodes();
    let mut starts = Vec::with_capacity(n + 1);
    let mut cdf = Vec::with_capacity(g.num_edges());
    starts.push(0);
    for v in 0..n as NodeId {
        let (_, times) = g.neighbor_slices(v);
        if !times.is_empty() {
            // Segments are time-sorted ascending, so the anchor is an end.
            let anchor = if recency { times[0] } else { times[times.len() - 1] };
            let mut acc = 0.0;
            for &t in times {
                let e = if recency { -(t - anchor) / span } else { (t - anchor) / span };
                acc += e.exp();
                cdf.push(acc);
            }
        }
        debug_assert_eq!(cdf.len(), g.segment_range(v).end);
        starts.push(cdf.len());
    }
    PreparedKind::Cdf { starts, cdf }
}

impl PreparedSampler {
    /// Wraps a user-supplied [`TransitionBias`] for `g`.
    pub fn custom(g: &TemporalGraph, bias: Arc<dyn TransitionBias>) -> Self {
        Self {
            kind: PreparedKind::Custom(bias),
            stats: SamplerBuildStats::default(),
            num_nodes: g.num_nodes(),
            num_edges: g.num_edges(),
        }
    }

    /// Build cost of this sampler.
    pub fn stats(&self) -> SamplerBuildStats {
        self.stats
    }

    /// Whether this sampler was prepared for a graph of the same shape —
    /// the cheap sanity check the walk entry points assert.
    pub fn matches_graph(&self, g: &TemporalGraph) -> bool {
        self.num_nodes == g.num_nodes() && self.num_edges == g.num_edges()
    }

    /// Hints the CPU to pull `v`'s slice of the CDF table toward L1 —
    /// the sampler half of the batched engine's segment prefetch. Probes
    /// the slice's first, middle, and last cache lines (the first
    /// positions the sampling binary search will inspect). A no-op for
    /// table-free samplers.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range for the prepared graph.
    #[inline]
    pub fn prefetch(&self, v: NodeId) {
        if let PreparedKind::Cdf { starts, cdf } = &self.kind {
            let (a, b) = (starts[v as usize], starts[v as usize + 1]);
            if a == b {
                return;
            }
            let p = cdf.as_ptr();
            tgraph::prefetch::prefetch_read(p.wrapping_add(a));
            tgraph::prefetch::prefetch_read(p.wrapping_add((a + b) / 2));
            tgraph::prefetch::prefetch_read(p.wrapping_add(b - 1));
        }
    }

    /// Samples the next edge for vertex `v` among the valid suffix
    /// `times[lo..]`, returning an absolute segment index.
    ///
    /// `times` must be `v`'s full time-sorted segment from the graph this
    /// sampler was prepared for, and `lo < times.len()`.
    ///
    /// # Panics
    ///
    /// May panic (or sample nonsense) if called with a different graph's
    /// slices; use [`Self::matches_graph`] to guard at entry points.
    #[inline]
    pub fn sample(
        &self,
        v: NodeId,
        times: &[Time],
        lo: usize,
        now: Time,
        rng: &mut WalkRng,
    ) -> usize {
        let len = times.len() - lo;
        debug_assert!(len > 0, "empty candidate set");
        match &self.kind {
            PreparedKind::Uniform => lo + rng.next_bounded(len),
            PreparedKind::LinearTime => lo + direct_linear(len, rng),
            PreparedKind::Cdf { starts, cdf } => {
                if len == 1 {
                    return lo;
                }
                let seg = &cdf[starts[v as usize]..starts[v as usize + 1]];
                debug_assert_eq!(seg.len(), times.len());
                // Rebase the cumulative weights onto the valid suffix: the
                // suffix total is one subtraction, the pick one binary
                // search. `partition_point` mirrors direct evaluation's
                // strict `target < acc` acceptance.
                let base = if lo == 0 { 0.0 } else { seg[lo - 1] };
                let total = seg[times.len() - 1] - base;
                let target = base + rng.next_f64() * total;
                let pick = lo + seg[lo..].partition_point(|&c| c <= target);
                // Float round-off can push `target` past the last
                // cumulative weight; clamp like direct evaluation does.
                pick.min(times.len() - 1)
            }
            PreparedKind::Custom(bias) => {
                let pick = bias.sample(v, times, lo, now, rng);
                assert!(
                    (lo..times.len()).contains(&pick),
                    "custom bias returned {pick}, outside valid suffix {lo}..{}",
                    times.len()
                );
                pick
            }
        }
    }
}

/// Direct evaluation of the softmax distribution of paper Eq. (1) over a
/// candidate-suffix timestamp slice — the executable reference the CDF
/// tables are verified against. With `recency` the exponent is negated
/// and shifted by the current time.
pub(crate) fn direct_softmax(
    times: &[Time],
    span: f64,
    rng: &mut WalkRng,
    recency: bool,
    now: Time,
) -> usize {
    debug_assert!(!times.is_empty());
    if times.len() == 1 {
        return 0;
    }
    // Numerically stable: subtract the max exponent before exponentiating.
    let base = if now.is_finite() { now } else { 0.0 };
    let exponent = |t: Time| -> f64 {
        if recency {
            -(t - base) / span
        } else {
            t / span
        }
    };
    let mut max_e = f64::NEG_INFINITY;
    for &t in times {
        max_e = max_e.max(exponent(t));
    }
    let mut total = 0.0;
    // Candidate sets are usually small (bounded by degree); two passes keep
    // this allocation-free.
    for &t in times {
        total += (exponent(t) - max_e).exp();
    }
    let target = rng.next_f64() * total;
    let mut acc = 0.0;
    for (i, &t) in times.iter().enumerate() {
        acc += (exponent(t) - max_e).exp();
        if target < acc {
            return i;
        }
    }
    times.len() - 1
}

/// Samples index `i ∈ 0..len` with probability proportional to `i + 1`
/// (candidates are time-sorted ascending, so the latest edge has the
/// highest rank) — CTDNE's linear temporal bias, computed in O(1) by
/// inverting the triangular CDF.
pub(crate) fn direct_linear(len: usize, rng: &mut WalkRng) -> usize {
    debug_assert!(len > 0);
    if len == 1 {
        return 0;
    }
    // CDF(i) = (i+1)(i+2)/2 over total len(len+1)/2; invert with sqrt.
    let total = (len * (len + 1) / 2) as f64;
    let target = rng.next_f64() * total;

    ((((8.0 * target + 1.0).sqrt() - 1.0) / 2.0).floor() as usize).min(len - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgraph::{GraphBuilder, TemporalEdge};

    fn star(times: &[f64]) -> TemporalGraph {
        let mut b = GraphBuilder::new();
        for (i, &t) in times.iter().enumerate() {
            b = b.add_edge(TemporalEdge::new(0, i as NodeId + 1, t));
        }
        b.build()
    }

    #[test]
    fn uniform_and_linear_need_no_tables() {
        let g = star(&[0.1, 0.5, 0.9]);
        for s in [TransitionSampler::Uniform, TransitionSampler::LinearTime] {
            let p = s.prepare(&g);
            assert_eq!(p.stats().table_bytes, 0);
            assert!(p.matches_graph(&g));
        }
    }

    #[test]
    fn cdf_tables_cover_every_edge() {
        let g = tgraph::gen::erdos_renyi(40, 300, 3).build();
        let p = TransitionSampler::Softmax.prepare(&g);
        // One f64 per edge plus the n+1 segment starts.
        let expected = g.num_edges() * 8 + (g.num_nodes() + 1) * std::mem::size_of::<usize>();
        assert_eq!(p.stats().table_bytes, expected);
    }

    #[test]
    fn prepared_uniform_matches_direct_draws_exactly() {
        let g = star(&[0.1, 0.2, 0.3, 0.4, 0.5]);
        let p = TransitionSampler::Uniform.prepare(&g);
        let (_, times) = g.neighbor_slices(0);
        for lo in 0..times.len() {
            let mut a = WalkRng::new(7);
            let mut b = WalkRng::new(7);
            for _ in 0..100 {
                let x = p.sample(0, times, lo, f64::NEG_INFINITY, &mut a);
                let y = lo + b.next_bounded(times.len() - lo);
                assert_eq!(x, y);
            }
        }
    }

    #[test]
    fn cdf_sample_stays_in_valid_suffix() {
        let g = star(&[0.05, 0.2, 0.21, 0.6, 0.61, 0.99]);
        for s in [TransitionSampler::Softmax, TransitionSampler::SoftmaxRecency] {
            let p = s.prepare(&g);
            let (_, times) = g.neighbor_slices(0);
            let mut rng = WalkRng::new(11);
            for lo in 0..times.len() {
                for _ in 0..500 {
                    let pick = p.sample(
                        0,
                        times,
                        lo,
                        times.get(lo.wrapping_sub(1)).copied().unwrap_or(f64::NEG_INFINITY),
                        &mut rng,
                    );
                    assert!((lo..times.len()).contains(&pick));
                }
            }
        }
    }

    #[test]
    fn singleton_suffix_draws_nothing_from_rng() {
        // Matches direct evaluation: a forced move must not consume RNG
        // state, or prepared and direct walks would diverge on every
        // degree-1 chain.
        let g = star(&[0.4]);
        for s in [
            TransitionSampler::Softmax,
            TransitionSampler::SoftmaxRecency,
            TransitionSampler::LinearTime,
        ] {
            let p = s.prepare(&g);
            let (_, times) = g.neighbor_slices(0);
            let mut rng = WalkRng::new(3);
            let before = rng.clone().next_u64();
            assert_eq!(p.sample(0, times, 0, 0.0, &mut rng), 0);
            assert_eq!(rng.next_u64(), before);
        }
    }

    #[test]
    fn custom_bias_is_invoked() {
        #[derive(Debug)]
        struct AlwaysLatest;
        impl TransitionBias for AlwaysLatest {
            fn sample(
                &self,
                _v: NodeId,
                times: &[Time],
                lo: usize,
                _now: Time,
                _rng: &mut WalkRng,
            ) -> usize {
                let _ = lo;
                times.len() - 1
            }
        }
        let g = star(&[0.1, 0.5, 0.9]);
        let p = PreparedSampler::custom(&g, Arc::new(AlwaysLatest));
        let (_, times) = g.neighbor_slices(0);
        let mut rng = WalkRng::new(1);
        assert_eq!(p.sample(0, times, 1, 0.0, &mut rng), 2);
        assert_eq!(p.stats().table_bytes, 0);
    }

    #[test]
    #[should_panic(expected = "outside valid suffix")]
    fn custom_bias_escaping_suffix_is_caught() {
        #[derive(Debug)]
        struct Bad;
        impl TransitionBias for Bad {
            fn sample(&self, _: NodeId, _: &[Time], _: usize, _: Time, _: &mut WalkRng) -> usize {
                0
            }
        }
        let g = star(&[0.1, 0.9]);
        let p = PreparedSampler::custom(&g, Arc::new(Bad));
        let (_, times) = g.neighbor_slices(0);
        p.sample(0, times, 1, 0.0, &mut WalkRng::new(1));
    }

    #[test]
    fn cdf_distribution_tracks_analytic_softmax() {
        // 10k draws over a 4-candidate suffix; empirical frequencies must
        // match the closed-form Eq. (1) probabilities.
        let times = [0.0, 0.3, 0.6, 1.0];
        let g = star(&times);
        let span: f64 = 1.0;
        let p = TransitionSampler::Softmax.prepare(&g);
        let (_, seg) = g.neighbor_slices(0);
        let weights: Vec<f64> = times.iter().map(|&t| (t / span).exp()).collect();
        let total: f64 = weights.iter().sum();
        let mut counts = [0usize; 4];
        let mut rng = WalkRng::new(5);
        let draws = 10_000;
        for _ in 0..draws {
            counts[p.sample(0, seg, 0, f64::NEG_INFINITY, &mut rng)] += 1;
        }
        for i in 0..4 {
            let expect = weights[i] / total;
            let got = counts[i] as f64 / draws as f64;
            assert!(
                (got - expect).abs() < 0.02,
                "candidate {i}: empirical {got:.3} vs analytic {expect:.3}"
            );
        }
    }
}
