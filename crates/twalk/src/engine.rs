//! The walk kernel itself (paper Algorithm 1).

use par::{parallel_chunks, ParConfig};
use tgraph::{NodeId, TemporalGraph, Time};

use crate::{TransitionSampler, WalkConfig, WalkRng, WalkSet};

/// Generates `K` temporal walks from every vertex, parallelizing the
/// middle (vertex) loop with dynamic scheduling — the arrangement the paper
/// found optimal (§V-A).
///
/// Walks are deterministic in `cfg.seed` and independent of the thread
/// count, because each `(walk, vertex)` pair draws from its own RNG stream.
///
/// # Examples
///
/// ```
/// use twalk::{generate_walks, WalkConfig};
/// use par::ParConfig;
///
/// let g = tgraph::gen::erdos_renyi(100, 800, 5).build();
/// let w = generate_walks(&g, &WalkConfig::new(4, 6), &ParConfig::default());
/// assert_eq!(w.num_walks(), 400);
/// ```
pub fn generate_walks(g: &TemporalGraph, cfg: &WalkConfig, par: &ParConfig) -> WalkSet {
    let n = g.num_nodes();
    let k = cfg.walks_per_node;
    let nl = cfg.max_length;
    let total = n * k;
    let mut nodes = vec![0 as NodeId; total * nl];
    let mut lengths = vec![0u32; total];
    // The softmax normalization term r (Eq. 1) is a whole-graph property;
    // computing it once here keeps the per-walk cost O(steps), not O(|E|).
    let span = g.time_span().max(f64::MIN_POSITIVE);

    // One contiguous output row per (walk w, vertex v): index w * n + v,
    // matching Algorithm 1's loop nest (outer walk loop, inner vertex loop).
    {
        let nodes_ptr = nodes.as_mut_ptr() as usize;
        let lengths_ptr = lengths.as_mut_ptr() as usize;
        parallel_chunks(par, total, |start, end| {
            // SAFETY: chunks are disjoint subranges of 0..total; each row
            // of `nodes` and slot of `lengths` is written by exactly one
            // worker.
            let nodes = nodes_ptr as *mut NodeId;
            let lengths = lengths_ptr as *mut u32;
            for idx in start..end {
                let w = idx / n;
                let v = (idx % n) as NodeId;
                let mut rng = WalkRng::from_stream(cfg.seed, w as u64, v as u64);
                let row = unsafe { std::slice::from_raw_parts_mut(nodes.add(idx * nl), nl) };
                let len = walk_into(g, span, cfg, v, &mut rng, row);
                unsafe { *lengths.add(idx) = len as u32 };
            }
        });
    }

    WalkSet::from_parts(nodes, lengths, nl)
}

/// Serial reference implementation of [`generate_walks`], used by tests and
/// the thread-scaling study's single-thread baseline.
pub fn generate_walks_serial(g: &TemporalGraph, cfg: &WalkConfig) -> WalkSet {
    generate_walks(g, cfg, &ParConfig::with_threads(1))
}

/// Generates `K` walks from each of the given `sources` only — the
/// incremental-refresh primitive: after a batch of edge insertions, only
/// the touched vertices need their neighborhoods re-sampled.
///
/// Walk `(w, i)` (for source index `i`) lands at row
/// `w * sources.len() + i` and uses the same RNG stream a full run would
/// use for that `(walk, vertex)` pair, so refreshed walks match full-run
/// walks exactly.
///
/// # Panics
///
/// Panics if any source id is out of range.
pub fn generate_walks_from(
    g: &TemporalGraph,
    cfg: &WalkConfig,
    sources: &[NodeId],
    par: &ParConfig,
) -> WalkSet {
    let n = g.num_nodes();
    assert!(
        sources.iter().all(|&v| (v as usize) < n),
        "walk source out of range"
    );
    let k = cfg.walks_per_node;
    let nl = cfg.max_length;
    let total = sources.len() * k;
    let mut nodes = vec![0 as NodeId; total * nl];
    let mut lengths = vec![0u32; total];
    let span = g.time_span().max(f64::MIN_POSITIVE);
    if !sources.is_empty() {
        let nodes_ptr = nodes.as_mut_ptr() as usize;
        let lengths_ptr = lengths.as_mut_ptr() as usize;
        parallel_chunks(par, total, |start, end| {
            // SAFETY: disjoint chunk ranges; each output row written once.
            let nodes = nodes_ptr as *mut NodeId;
            let lengths = lengths_ptr as *mut u32;
            for idx in start..end {
                let w = idx / sources.len();
                let v = sources[idx % sources.len()];
                let mut rng = WalkRng::from_stream(cfg.seed, w as u64, v as u64);
                let row = unsafe { std::slice::from_raw_parts_mut(nodes.add(idx * nl), nl) };
                let len = walk_into(g, span, cfg, v, &mut rng, row);
                unsafe { *lengths.add(idx) = len as u32 };
            }
        });
    }
    WalkSet::from_parts(nodes, lengths, nl)
}

/// Performs a single temporal walk from `start` and returns its vertices.
///
/// Exposed for diagnostics and doc examples; the bulk kernel writes into a
/// preallocated matrix instead.
///
/// # Examples
///
/// ```
/// use twalk::{walk_from, WalkConfig, WalkRng};
///
/// let g = tgraph::GraphBuilder::new()
///     .add_edge(tgraph::TemporalEdge::new(0, 1, 0.1))
///     .add_edge(tgraph::TemporalEdge::new(1, 2, 0.2))
///     .build();
/// let mut rng = WalkRng::new(1);
/// let walk = walk_from(&g, &WalkConfig::new(1, 8), 0, &mut rng);
/// assert_eq!(walk, vec![0, 1, 2]);
/// ```
pub fn walk_from(
    g: &TemporalGraph,
    cfg: &WalkConfig,
    start: NodeId,
    rng: &mut WalkRng,
) -> Vec<NodeId> {
    let mut buf = vec![0 as NodeId; cfg.max_length];
    let span = g.time_span().max(f64::MIN_POSITIVE);
    let len = walk_into(g, span, cfg, start, rng, &mut buf);
    buf.truncate(len);
    buf
}

/// Core of Algorithm 1: walks from `start`, writing vertices into `out`,
/// returning the number of vertices written (≥ 1).
fn walk_into(
    g: &TemporalGraph,
    span: f64,
    cfg: &WalkConfig,
    start: NodeId,
    rng: &mut WalkRng,
    out: &mut [NodeId],
) -> usize {
    debug_assert!(out.len() >= cfg.max_length);
    out[0] = start;
    let mut len = 1usize;
    let mut curr = start;
    let mut curr_time = cfg.start_time;
    let mut first_hop = true;

    while len < cfg.max_length {
        // Temporally-valid candidate set: binary search over the
        // timestamp-sorted segment (the paper's `sampleLatest` without the
        // O(M) scan).
        let (dsts, times) = if !cfg.respect_time {
            g.neighbor_slices(curr)
        } else if first_hop {
            if curr_time.is_finite() {
                g.neighbors_from(curr, curr_time)
            } else {
                g.neighbor_slices(curr)
            }
        } else {
            g.neighbors_after(curr, curr_time)
        };
        if dsts.is_empty() {
            break; // Algorithm 1 line 9: dead end.
        }

        let pick = match cfg.sampler {
            TransitionSampler::Uniform => rng.next_bounded(dsts.len()),
            TransitionSampler::Softmax => sample_softmax(times, span, rng, false, curr_time),
            TransitionSampler::SoftmaxRecency => {
                sample_softmax(times, span, rng, true, curr_time)
            }
            TransitionSampler::LinearTime => sample_linear(dsts.len(), rng),
        };

        curr = dsts[pick];
        curr_time = times[pick];
        out[len] = curr;
        len += 1;
        first_hop = false;
    }
    len
}

/// Samples an index from the softmax distribution of paper Eq. (1) over the
/// candidate timestamps. With `recency` the exponent is negated and shifted
/// by the current time, preferring the temporally-nearest interaction.
fn sample_softmax(times: &[Time], span: f64, rng: &mut WalkRng, recency: bool, now: Time) -> usize {
    debug_assert!(!times.is_empty());
    if times.len() == 1 {
        return 0;
    }
    // Numerically stable: subtract the max exponent before exponentiating.
    let base = if now.is_finite() { now } else { 0.0 };
    let exponent = |t: Time| -> f64 {
        if recency {
            -(t - base) / span
        } else {
            t / span
        }
    };
    let mut max_e = f64::NEG_INFINITY;
    for &t in times {
        max_e = max_e.max(exponent(t));
    }
    let mut total = 0.0;
    // Candidate sets are usually small (bounded by degree); two passes keep
    // this allocation-free.
    for &t in times {
        total += (exponent(t) - max_e).exp();
    }
    let target = rng.next_f64() * total;
    let mut acc = 0.0;
    for (i, &t) in times.iter().enumerate() {
        acc += (exponent(t) - max_e).exp();
        if target < acc {
            return i;
        }
    }
    times.len() - 1
}

/// Samples index `i ∈ 0..len` with probability proportional to `i + 1`
/// (candidates are time-sorted ascending, so the latest edge has the
/// highest rank) — CTDNE's linear temporal bias, computed in O(1) by
/// inverting the triangular CDF.
fn sample_linear(len: usize, rng: &mut WalkRng) -> usize {
    debug_assert!(len > 0);
    if len == 1 {
        return 0;
    }
    // CDF(i) = (i+1)(i+2)/2 over total len(len+1)/2; invert with sqrt.
    let total = (len * (len + 1) / 2) as f64;
    let target = rng.next_f64() * total;
    
    ((((8.0 * target + 1.0).sqrt() - 1.0) / 2.0).floor() as usize).min(len - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgraph::{GraphBuilder, TemporalEdge};

    fn chain() -> TemporalGraph {
        GraphBuilder::new()
            .add_edge(TemporalEdge::new(0, 1, 0.1))
            .add_edge(TemporalEdge::new(1, 2, 0.2))
            .add_edge(TemporalEdge::new(2, 3, 0.3))
            .add_edge(TemporalEdge::new(3, 4, 0.4))
            .build()
    }

    #[test]
    fn walk_follows_chain_until_length_cap() {
        let g = chain();
        let mut rng = WalkRng::new(0);
        let w = walk_from(&g, &WalkConfig::new(1, 3), 0, &mut rng);
        assert_eq!(w, vec![0, 1, 2]);
        let w = walk_from(&g, &WalkConfig::new(1, 10), 0, &mut rng);
        assert_eq!(w, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn walk_stops_at_temporal_dead_end() {
        // Edge times decrease: 1 -> 2 happens *before* 0 -> 1, so the walk
        // cannot continue past vertex 1.
        let g = GraphBuilder::new()
            .add_edge(TemporalEdge::new(0, 1, 0.9))
            .add_edge(TemporalEdge::new(1, 2, 0.1))
            .build();
        let mut rng = WalkRng::new(0);
        let w = walk_from(&g, &WalkConfig::new(1, 10), 0, &mut rng);
        assert_eq!(w, vec![0, 1]);
    }

    #[test]
    fn equal_timestamps_do_not_chain() {
        // Strictly-increasing requirement: t2 must be > t1.
        let g = GraphBuilder::new()
            .add_edge(TemporalEdge::new(0, 1, 0.5))
            .add_edge(TemporalEdge::new(1, 2, 0.5))
            .build();
        let mut rng = WalkRng::new(0);
        let w = walk_from(&g, &WalkConfig::new(1, 10), 0, &mut rng);
        assert_eq!(w, vec![0, 1]);
    }

    #[test]
    fn start_time_filters_first_hop() {
        let g = chain();
        let mut rng = WalkRng::new(0);
        let cfg = WalkConfig::new(1, 10).start_time(0.2);
        // First hop from vertex 0 requires t >= 0.2; the only 0-edge has
        // t = 0.1, so the walk is stuck at the start.
        let w = walk_from(&g, &cfg, 0, &mut rng);
        assert_eq!(w, vec![0]);
        // From vertex 1 the t = 0.2 edge is admissible (inclusive).
        let w = walk_from(&g, &cfg, 1, &mut rng);
        assert_eq!(w, vec![1, 2, 3, 4]);
    }

    #[test]
    fn all_walks_are_temporally_valid() {
        let g = tgraph::gen::preferential_attachment(400, 2, 3)
            .undirected(true)
            .build();
        for sampler in [
            TransitionSampler::Uniform,
            TransitionSampler::Softmax,
            TransitionSampler::SoftmaxRecency,
            TransitionSampler::LinearTime,
        ] {
            let cfg = WalkConfig::new(3, 8).sampler(sampler).seed(5);
            let walks = generate_walks_serial(&g, &cfg);
            for w in walks.iter() {
                // Re-derive edge times along the walk and check strict
                // monotonicity; each consecutive pair must be a real edge.
                let mut last_t = f64::NEG_INFINITY;
                for pair in w.windows(2) {
                    let (dsts, times) = g.neighbor_slices(pair[0]);
                    let t = dsts
                        .iter()
                        .zip(times)
                        .filter(|&(&d, &t)| d == pair[1] && t > last_t)
                        .map(|(_, &t)| t)
                        .next()
                        .expect("walk uses a real, temporally-valid edge");
                    last_t = t;
                }
            }
        }
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let g = tgraph::gen::erdos_renyi(200, 2_000, 7).build();
        let cfg = WalkConfig::new(5, 6).seed(11);
        let serial = generate_walks_serial(&g, &cfg);
        let parallel = generate_walks(&g, &cfg, &ParConfig::with_threads(8).chunk_size(13));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn every_vertex_gets_k_walks() {
        let g = chain();
        let walks = generate_walks_serial(&g, &WalkConfig::new(3, 4));
        assert_eq!(walks.num_walks(), 3 * g.num_nodes());
        // Walk for (w, v) starts at v.
        let n = g.num_nodes();
        for w in 0..3 {
            for v in 0..n {
                assert_eq!(walks.walk(w * n + v)[0], v as NodeId);
            }
        }
    }

    #[test]
    fn softmax_prefers_late_edges_and_recency_prefers_early() {
        // Vertex 0 has two candidate edges at t = 0.1 and t = 0.9 with a
        // wide span; Eq. (1) softmax should mostly take the late edge, the
        // recency variant the early edge.
        let g = GraphBuilder::new()
            .add_edge(TemporalEdge::new(0, 1, 0.001))
            .add_edge(TemporalEdge::new(0, 2, 0.999))
            // Far-apart anchor edges stretch the span so the exponent gap
            // stays meaningful after normalization.
            .add_edge(TemporalEdge::new(3, 4, 0.0))
            .add_edge(TemporalEdge::new(4, 3, 1.0))
            .build();
        let count_late = |sampler: TransitionSampler| -> usize {
            let mut late = 0;
            for seed in 0..400 {
                let mut rng = WalkRng::new(seed);
                let cfg = WalkConfig::new(1, 2).sampler(sampler);
                let w = walk_from(&g, &cfg, 0, &mut rng);
                if w[1] == 2 {
                    late += 1;
                }
            }
            late
        };
        let softmax_late = count_late(TransitionSampler::Softmax);
        let recency_late = count_late(TransitionSampler::SoftmaxRecency);
        assert!(softmax_late > 240, "softmax picked late only {softmax_late}/400");
        assert!(recency_late < 160, "recency picked late {recency_late}/400");
    }

    #[test]
    fn walks_from_sources_match_full_run_rows() {
        let g = tgraph::gen::erdos_renyi(100, 1_000, 5).build();
        let cfg = WalkConfig::new(3, 6).seed(9);
        let full = generate_walks_serial(&g, &cfg);
        let sources = [7u32, 42, 99];
        let partial = generate_walks_from(&g, &cfg, &sources, &ParConfig::with_threads(2));
        assert_eq!(partial.num_walks(), 9);
        let n = g.num_nodes();
        for w in 0..3 {
            for (i, &v) in sources.iter().enumerate() {
                assert_eq!(
                    partial.walk(w * sources.len() + i),
                    full.walk(w * n + v as usize),
                    "walk {w} from source {v} diverged"
                );
            }
        }
    }

    #[test]
    fn walks_from_empty_sources_is_empty() {
        let g = tgraph::gen::erdos_renyi(10, 50, 1).build();
        let w = generate_walks_from(&g, &WalkConfig::new(2, 4), &[], &ParConfig::default());
        assert_eq!(w.num_walks(), 0);
    }

    #[test]
    fn isolated_vertex_yields_singleton_walk() {
        let g = GraphBuilder::new()
            .add_edge(TemporalEdge::new(0, 1, 0.5))
            .num_nodes(5)
            .build();
        let walks = generate_walks_serial(&g, &WalkConfig::new(1, 4));
        assert_eq!(walks.walk(4), &[4]);
    }
}
