//! Chunked walk emission: stream the corpus instead of materializing it.
//!
//! The bulk engines produce walks in worker-local blocks already — the
//! [`WalkSet`] assembler just happens to write every block into one
//! `|V| × K × N` matrix. A [`WalkSink`] reroutes those blocks as
//! self-describing [`WalkChunk`]s the moment a worker finishes them, which
//! is what the fused walk→train pipeline (DESIGN.md §16) consumes: trainer
//! workers start on the first chunk while walk workers are still producing
//! the rest, and the full corpus never exists in memory at once.
//!
//! Chunks cover disjoint walk-index ranges and together partition
//! `0..total`; concatenated in `start` order they are **bit-identical** to
//! the `WalkSet` the same configuration produces (each `(walk, vertex)`
//! pair owns its RNG stream, so routing never changes content — asserted
//! across engines × sampling methods in `tests/engine_equivalence.rs`).
//! Delivery *order* across chunks follows dynamic scheduling and is not
//! deterministic; consumers needing global positions use
//! [`WalkChunk::start`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use obs::{GaugeHandle, HistogramHandle};
use par::BoundedQueue;
use tgraph::NodeId;

use crate::WalkSet;

/// A contiguous block of walks in [`WalkSet`] layout: walk `start + i`
/// occupies `nodes[i * max_length ..][.. lengths[i]]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalkChunk {
    /// Global index of the first walk in the chunk (`w * stride + i`
    /// addressing, same as the bulk matrix).
    pub start: usize,
    /// Row stride (`N`); shared by every chunk of a run.
    pub max_length: usize,
    /// Flat vertex buffer, `num_walks() * max_length` entries.
    pub nodes: Vec<NodeId>,
    /// Per-walk vertex counts (each ≥ 1).
    pub lengths: Vec<u32>,
}

impl WalkChunk {
    /// Number of walks in the chunk.
    pub fn num_walks(&self) -> usize {
        self.lengths.len()
    }

    /// The `i`-th walk (chunk-local index) as a vertex slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_walks()`.
    pub fn walk(&self, i: usize) -> &[NodeId] {
        let row = i * self.max_length;
        &self.nodes[row..row + self.lengths[i] as usize]
    }

    /// Total vertex occurrences across the chunk's walks (tokens).
    pub fn total_vertices(&self) -> usize {
        self.lengths.iter().map(|&l| l as usize).sum()
    }
}

/// Receives finished walk blocks from engine workers.
///
/// Implementations must tolerate concurrent calls (workers emit
/// independently) and chunks arriving in any order.
pub trait WalkSink: Sync {
    /// Accepts one finished chunk. Called from engine worker threads.
    fn emit(&self, chunk: WalkChunk);
}

/// Test/reference sink: collects every chunk, then reassembles the
/// canonical [`WalkSet`] — the executable statement of the streamed ≡
/// materialized equivalence contract.
#[derive(Debug, Default)]
pub struct CollectSink {
    chunks: Mutex<Vec<WalkChunk>>,
}

impl CollectSink {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The collected chunks, sorted by [`WalkChunk::start`].
    pub fn into_chunks(self) -> Vec<WalkChunk> {
        let mut chunks = self.chunks.into_inner().unwrap();
        chunks.sort_by_key(|c| c.start);
        chunks
    }

    /// Reassembles the chunks into a [`WalkSet`].
    ///
    /// # Panics
    ///
    /// Panics if the chunks do not exactly tile `0..total` walks or
    /// disagree on `max_length` — either means an engine violated the
    /// sink contract.
    pub fn into_walkset(self) -> WalkSet {
        let chunks = self.into_chunks();
        let max_length = chunks.first().map_or(0, |c| c.max_length);
        let total: usize = chunks.iter().map(WalkChunk::num_walks).sum();
        let mut nodes = Vec::with_capacity(total * max_length);
        let mut lengths = Vec::with_capacity(total);
        for c in &chunks {
            assert_eq!(c.start, lengths.len(), "chunks must tile 0..total without gaps");
            assert_eq!(c.max_length, max_length, "chunks must share one row stride");
            assert_eq!(c.nodes.len(), c.num_walks() * max_length, "malformed chunk buffer");
            nodes.extend_from_slice(&c.nodes);
            lengths.extend_from_slice(&c.lengths);
        }
        WalkSet::from_parts(nodes, lengths, max_length)
    }
}

impl WalkSink for CollectSink {
    fn emit(&self, chunk: WalkChunk) {
        self.chunks.lock().unwrap().push(chunk);
    }
}

/// Production sink: pushes chunks into a bounded channel, blocking (and
/// recording the stall) when trainer consumers fall behind — the
/// backpressure edge of the fused pipeline.
pub struct ChannelSink<'a> {
    queue: &'a BoundedQueue<WalkChunk>,
    /// Total nanoseconds walk workers spent blocked on a full channel —
    /// always accumulated (the fused driver reports it as honest phase
    /// attribution even with the metrics recorder off).
    stall_ns: AtomicU64,
    /// Per-stall distribution (`pipeline_producer_stall_ns`); no-op when
    /// the recorder is off.
    stall: HistogramHandle,
    /// Channel depth after each push (`pipeline_channel_depth`).
    depth: GaugeHandle,
}

impl<'a> ChannelSink<'a> {
    /// Wraps a bounded channel; callers keep ownership to pop from it.
    pub fn new(queue: &'a BoundedQueue<WalkChunk>) -> Self {
        let rec = obs::Recorder::global();
        Self {
            queue,
            stall_ns: AtomicU64::new(0),
            stall: rec.histogram("pipeline_producer_stall_ns"),
            depth: rec.gauge("pipeline_channel_depth"),
        }
    }

    /// Cumulative time walk workers spent blocked on backpressure.
    pub fn stalled(&self) -> Duration {
        Duration::from_nanos(self.stall_ns.load(Ordering::Relaxed))
    }
}

impl WalkSink for ChannelSink<'_> {
    fn emit(&self, chunk: WalkChunk) {
        // Fast path first so only genuine backpressure is timed; a closed
        // channel means the consumer side aborted, and dropping the chunk
        // is the correct producer response (the run is already failed).
        let chunk = match self.queue.try_push(chunk) {
            Ok(()) => {
                if self.depth.is_enabled() {
                    self.depth.set(self.queue.len() as i64);
                }
                return;
            }
            Err(par::TryPushError::Closed(_)) => return,
            Err(par::TryPushError::Full(chunk)) => chunk,
        };
        let t0 = std::time::Instant::now();
        let _ = self.queue.push(chunk);
        let stalled = t0.elapsed();
        self.stall_ns.fetch_add(stalled.as_nanos() as u64, Ordering::Relaxed);
        if self.stall.is_enabled() {
            self.stall.record_duration(stalled);
            self.depth.set(self.queue.len() as i64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(start: usize, walks: &[&[NodeId]], max_length: usize) -> WalkChunk {
        let mut nodes = vec![0; walks.len() * max_length];
        let mut lengths = Vec::new();
        for (i, w) in walks.iter().enumerate() {
            nodes[i * max_length..i * max_length + w.len()].copy_from_slice(w);
            lengths.push(w.len() as u32);
        }
        WalkChunk { start, max_length, nodes, lengths }
    }

    #[test]
    fn collect_sink_reassembles_out_of_order_chunks() {
        let sink = CollectSink::new();
        sink.emit(chunk(2, &[&[5, 6, 7]], 3));
        sink.emit(chunk(0, &[&[1], &[2, 3]], 3));
        let ws = sink.into_walkset();
        assert_eq!(ws.num_walks(), 3);
        assert_eq!(ws.walk(0), &[1]);
        assert_eq!(ws.walk(1), &[2, 3]);
        assert_eq!(ws.walk(2), &[5, 6, 7]);
    }

    #[test]
    #[should_panic(expected = "without gaps")]
    fn collect_sink_rejects_gapped_coverage() {
        let sink = CollectSink::new();
        sink.emit(chunk(1, &[&[4, 5]], 2));
        let _ = sink.into_walkset();
    }

    #[test]
    fn channel_sink_delivers_through_bounded_queue() {
        let queue = BoundedQueue::new(2);
        let guard = queue.register_producer();
        {
            let sink = ChannelSink::new(&queue);
            sink.emit(chunk(0, &[&[1, 2]], 2));
            sink.emit(chunk(1, &[&[3]], 2));
        }
        drop(guard);
        assert_eq!(queue.pop().unwrap().start, 0);
        assert_eq!(queue.pop().unwrap().start, 1);
        assert!(queue.pop().is_none());
    }

    #[test]
    fn chunk_walk_accessors_match_layout() {
        let c = chunk(7, &[&[9, 8], &[4]], 4);
        assert_eq!(c.num_walks(), 2);
        assert_eq!(c.walk(0), &[9, 8]);
        assert_eq!(c.walk(1), &[4]);
        assert_eq!(c.total_vertices(), 3);
    }
}
