//! Small, fast, seedable RNG for walk sampling.
//!
//! The walk kernel creates one RNG stream per (walk-number, vertex) pair so
//! results are independent of thread count and scheduling order. That
//! requires construction to be cheap, so this is a splitmix64-seeded
//! xoshiro256** rather than a cryptographic generator.

/// Deterministic per-walk random number generator.
///
/// # Examples
///
/// ```
/// use twalk::WalkRng;
///
/// let mut a = WalkRng::from_stream(42, 3, 17);
/// let mut b = WalkRng::from_stream(42, 3, 17);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = WalkRng::from_stream(42, 3, 18).next_u64();
/// assert_ne!(WalkRng::from_stream(42, 3, 17).next_u64(), x);
/// ```
#[derive(Debug, Clone)]
pub struct WalkRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl WalkRng {
    /// Creates an RNG from a single seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        Self {
            s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)],
        }
    }

    /// Creates an independent stream for `(seed, walk_index, vertex)` —
    /// the derivation mixes all three through splitmix64 so adjacent
    /// streams are uncorrelated.
    pub fn from_stream(seed: u64, walk_index: u64, vertex: u64) -> Self {
        let mut sm = seed ^ walk_index.wrapping_mul(0xA076_1D64_78BD_642F);
        let a = splitmix64(&mut sm);
        let mut sm2 = a ^ vertex.wrapping_mul(0xE703_7ED1_A0B4_28DB);
        Self::new(splitmix64(&mut sm2))
    }

    /// Next raw 64-bit value (xoshiro256**).
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` via Lemire's method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn next_bounded(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "bound must be positive");
        // 128-bit multiply keeps the distribution unbiased enough for
        // sampling (rejection step for the small-bias zone).
        let bound = bound as u64;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= low.wrapping_neg() % bound {
                return (m >> 64) as usize;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_values_stay_in_range() {
        let mut rng = WalkRng::new(1);
        for _ in 0..10_000 {
            assert!(rng.next_bounded(7) < 7);
        }
    }

    #[test]
    fn f64_in_unit_interval_and_well_spread() {
        let mut rng = WalkRng::new(2);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn bounded_is_roughly_uniform() {
        let mut rng = WalkRng::new(3);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[rng.next_bounded(10)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c} out of range");
        }
    }

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let a: Vec<u64> = {
            let mut r = WalkRng::from_stream(9, 1, 2);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = WalkRng::from_stream(9, 1, 2);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let c: Vec<u64> = {
            let mut r = WalkRng::from_stream(9, 2, 1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn zero_bound_panics() {
        WalkRng::new(0).next_bounded(0);
    }
}
