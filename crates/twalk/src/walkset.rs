//! Flat storage for generated walks (Algorithm 1's output matrix `W`).

use tgraph::NodeId;

use crate::sampler::SamplerBuildStats;

/// A set of temporal walks in the paper's `|V| × K × N` matrix layout:
/// a flat vertex buffer with stride `max_length` plus per-walk lengths.
///
/// Walk `i` occupies `nodes[i * max_length .. i * max_length + lengths[i]]`;
/// unused tail slots are left as a sentinel and never exposed.
///
/// Sets produced by the bulk kernel also carry the sampler's
/// [`SamplerBuildStats`]; equality compares walk content only, so two runs
/// with different build timings still compare equal.
#[derive(Debug, Clone)]
pub struct WalkSet {
    nodes: Vec<NodeId>,
    lengths: Vec<u32>,
    max_length: usize,
    sampler_stats: Option<SamplerBuildStats>,
}

impl PartialEq for WalkSet {
    fn eq(&self, other: &Self) -> bool {
        // Build stats are timing metadata, not walk content.
        self.nodes == other.nodes
            && self.lengths == other.lengths
            && self.max_length == other.max_length
    }
}

impl Eq for WalkSet {}

impl WalkSet {
    pub(crate) fn from_parts(nodes: Vec<NodeId>, lengths: Vec<u32>, max_length: usize) -> Self {
        debug_assert_eq!(nodes.len(), lengths.len() * max_length);
        Self { nodes, lengths, max_length, sampler_stats: None }
    }

    /// Attaches the generating sampler's build stats.
    #[must_use]
    pub(crate) fn with_sampler_stats(mut self, stats: SamplerBuildStats) -> Self {
        self.sampler_stats = Some(stats);
        self
    }

    /// Build cost of the sampler that generated this set, when it came
    /// from the bulk kernel (`None` for hand-assembled sets).
    pub fn sampler_stats(&self) -> Option<SamplerBuildStats> {
        self.sampler_stats
    }

    /// Number of walks stored (equals `K × |V|` for a full run).
    pub fn num_walks(&self) -> usize {
        self.lengths.len()
    }

    /// Configured maximum walk length `N`.
    pub fn max_length(&self) -> usize {
        self.max_length
    }

    /// The `i`-th walk as a vertex slice (length ≥ 1 for generated sets).
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_walks()`.
    pub fn walk(&self, i: usize) -> &[NodeId] {
        let start = i * self.max_length;
        &self.nodes[start..start + self.lengths[i] as usize]
    }

    /// Iterator over all walks as vertex slices.
    ///
    /// The returned [`WalkIter`] is an [`ExactSizeIterator`] (and
    /// double-ended), and `&WalkSet` implements [`IntoIterator`], so
    /// corpus consumers can write `for walk in &walks` instead of indexing
    /// with [`Self::walk`].
    ///
    /// # Examples
    ///
    /// ```
    /// use twalk::{generate_walks, WalkConfig};
    /// use par::ParConfig;
    ///
    /// let g = tgraph::gen::erdos_renyi(50, 400, 3).build();
    /// let walks = generate_walks(&g, &WalkConfig::new(2, 4), &ParConfig::with_threads(1));
    /// assert_eq!(walks.iter().len(), walks.num_walks());
    /// let total: usize = (&walks).into_iter().map(|w| w.len()).sum();
    /// assert_eq!(total, walks.total_vertices());
    /// ```
    pub fn iter(&self) -> WalkIter<'_> {
        WalkIter { set: self, front: 0, back: self.num_walks() }
    }

    /// Total number of vertex occurrences across all walks (the word2vec
    /// corpus size in tokens).
    pub fn total_vertices(&self) -> usize {
        self.lengths.iter().map(|&l| l as usize).sum()
    }

    /// Histogram of walk lengths: index `l` holds the number of walks with
    /// exactly `l` vertices (index 0 is always zero for generated sets).
    /// This is the paper's Fig. 4 data.
    pub fn length_histogram(&self) -> Vec<u64> {
        let mut hist = vec![0u64; self.max_length + 1];
        for &l in &self.lengths {
            hist[l as usize] += 1;
        }
        hist
    }

    /// Mean walk length in vertices.
    pub fn mean_length(&self) -> f64 {
        if self.lengths.is_empty() {
            return 0.0;
        }
        self.total_vertices() as f64 / self.num_walks() as f64
    }

    /// Builds a walk set from explicit walks (for tests and for feeding
    /// word2vec with external corpora).
    ///
    /// # Panics
    ///
    /// Panics if any walk is empty or longer than `max_length`.
    pub fn from_walks(walks: &[Vec<NodeId>], max_length: usize) -> Self {
        let mut nodes = vec![0 as NodeId; walks.len() * max_length];
        let mut lengths = Vec::with_capacity(walks.len());
        for (i, w) in walks.iter().enumerate() {
            assert!(!w.is_empty(), "walk {i} is empty");
            assert!(w.len() <= max_length, "walk {i} exceeds max_length");
            nodes[i * max_length..i * max_length + w.len()].copy_from_slice(w);
            lengths.push(w.len() as u32);
        }
        Self { nodes, lengths, max_length, sampler_stats: None }
    }
}

/// Incremental [`WalkSet`] assembly without intermediate copies.
///
/// `WalkSet::from_walks` needs every walk as its own `Vec`, which forces
/// callers that *generate* sets (snapshot pipelines stitching per-snapshot
/// runs together) to copy each walk twice. The builder appends straight
/// into the final flat buffers: walks via [`push_walk`], whole sets via
/// [`append_set`] — a single `memcpy` when strides match.
///
/// [`push_walk`]: WalkSetBuilder::push_walk
/// [`append_set`]: WalkSetBuilder::append_set
///
/// # Examples
///
/// ```
/// use twalk::WalkSetBuilder;
///
/// let mut b = WalkSetBuilder::new(3);
/// b.push_walk(&[1, 2]);
/// b.push_walk(&[4, 5, 6]);
/// let set = b.build();
/// assert_eq!(set.num_walks(), 2);
/// assert_eq!(set.walk(1), &[4, 5, 6]);
/// ```
#[derive(Debug, Clone)]
pub struct WalkSetBuilder {
    nodes: Vec<NodeId>,
    lengths: Vec<u32>,
    max_length: usize,
}

impl WalkSetBuilder {
    /// Creates a builder for walks of at most `max_length` vertices.
    ///
    /// # Panics
    ///
    /// Panics if `max_length == 0`.
    pub fn new(max_length: usize) -> Self {
        assert!(max_length >= 1, "walks must hold at least the start vertex");
        Self { nodes: Vec::new(), lengths: Vec::new(), max_length }
    }

    /// Pre-sizes the buffers for `num_walks` walks.
    pub fn with_capacity(max_length: usize, num_walks: usize) -> Self {
        let mut b = Self::new(max_length);
        b.nodes.reserve(num_walks * max_length);
        b.lengths.reserve(num_walks);
        b
    }

    /// Number of walks appended so far.
    pub fn num_walks(&self) -> usize {
        self.lengths.len()
    }

    /// Appends one walk.
    ///
    /// # Panics
    ///
    /// Panics if the walk is empty or longer than `max_length`.
    pub fn push_walk(&mut self, walk: &[NodeId]) {
        assert!(!walk.is_empty(), "walk {} is empty", self.lengths.len());
        assert!(walk.len() <= self.max_length, "walk {} exceeds max_length", self.lengths.len());
        self.nodes.extend_from_slice(walk);
        self.nodes.resize(self.lengths.len() * self.max_length + self.max_length, 0);
        self.lengths.push(walk.len() as u32);
    }

    /// Appends every walk of `set`, in order. When strides match this is
    /// one buffer copy; otherwise walks are re-strided individually.
    ///
    /// # Panics
    ///
    /// Panics if `set` contains a walk longer than this builder's
    /// `max_length`.
    pub fn append_set(&mut self, set: &WalkSet) {
        if set.max_length == self.max_length {
            self.nodes.extend_from_slice(&set.nodes);
            self.lengths.extend_from_slice(&set.lengths);
        } else {
            for walk in set.iter() {
                self.push_walk(walk);
            }
        }
    }

    /// Finishes the set.
    pub fn build(self) -> WalkSet {
        WalkSet::from_parts(self.nodes, self.lengths, self.max_length)
    }
}

/// Iterator over a [`WalkSet`]'s walks as vertex slices, in storage order.
///
/// Created by [`WalkSet::iter`] or iterating `&WalkSet`. Reports an exact
/// length and supports iteration from both ends.
#[derive(Debug, Clone)]
pub struct WalkIter<'a> {
    set: &'a WalkSet,
    front: usize,
    back: usize,
}

impl<'a> Iterator for WalkIter<'a> {
    type Item = &'a [NodeId];

    fn next(&mut self) -> Option<Self::Item> {
        if self.front < self.back {
            let w = self.set.walk(self.front);
            self.front += 1;
            Some(w)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.back - self.front;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for WalkIter<'_> {}

impl DoubleEndedIterator for WalkIter<'_> {
    fn next_back(&mut self) -> Option<Self::Item> {
        if self.front < self.back {
            self.back -= 1;
            Some(self.set.walk(self.back))
        } else {
            None
        }
    }
}

impl<'a> IntoIterator for &'a WalkSet {
    type Item = &'a [NodeId];
    type IntoIter = WalkIter<'a>;

    fn into_iter(self) -> WalkIter<'a> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn walk_iter_is_exact_and_double_ended() {
        let set = WalkSet::from_walks(&[vec![1, 2], vec![3], vec![4, 5, 6]], 3);
        let mut it = set.iter();
        assert_eq!(it.len(), 3);
        assert_eq!(it.next(), Some(&[1u32, 2][..]));
        assert_eq!(it.next_back(), Some(&[4u32, 5, 6][..]));
        assert_eq!(it.len(), 1);
        assert_eq!(it.next(), Some(&[3u32][..]));
        assert_eq!(it.next(), None);
        assert_eq!(it.next_back(), None);
        // `for w in &set` works and visits walks in storage order.
        let lens: Vec<usize> = (&set).into_iter().map(<[u32]>::len).collect();
        assert_eq!(lens, vec![2, 1, 3]);
    }

    #[test]
    fn from_walks_round_trip() {
        let walks = vec![vec![1, 2, 3], vec![4], vec![5, 6]];
        let set = WalkSet::from_walks(&walks, 4);
        assert_eq!(set.num_walks(), 3);
        assert_eq!(set.walk(0), &[1, 2, 3]);
        assert_eq!(set.walk(1), &[4]);
        assert_eq!(set.walk(2), &[5, 6]);
        assert_eq!(set.total_vertices(), 6);
        assert!((set.mean_length() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_counts_lengths() {
        let set = WalkSet::from_walks(&[vec![1], vec![2, 3], vec![4, 5], vec![6, 7, 8]], 3);
        assert_eq!(set.length_histogram(), vec![0, 1, 2, 1]);
    }

    #[test]
    #[should_panic(expected = "exceeds max_length")]
    fn overlong_walk_rejected() {
        let _ = WalkSet::from_walks(&[vec![1, 2, 3]], 2);
    }

    #[test]
    #[should_panic(expected = "is empty")]
    fn empty_walk_rejected() {
        let _ = WalkSet::from_walks(&[vec![]], 2);
    }

    #[test]
    fn builder_matches_from_walks() {
        let walks = vec![vec![1, 2, 3], vec![4], vec![5, 6]];
        let mut b = WalkSetBuilder::with_capacity(4, walks.len());
        for w in &walks {
            b.push_walk(w);
        }
        assert_eq!(b.num_walks(), 3);
        assert_eq!(b.build(), WalkSet::from_walks(&walks, 4));
    }

    #[test]
    fn builder_append_set_fast_path_and_restride() {
        let a = WalkSet::from_walks(&[vec![1, 2], vec![3]], 2);
        let b = WalkSet::from_walks(&[vec![4, 5, 6]], 3);
        // Same stride: one memcpy; different stride: per-walk re-stride.
        let mut builder = WalkSetBuilder::new(3);
        builder.append_set(&a);
        builder.append_set(&b);
        let set = builder.build();
        assert_eq!(set, WalkSet::from_walks(&[vec![1, 2], vec![3], vec![4, 5, 6]], 3));
    }

    #[test]
    #[should_panic(expected = "exceeds max_length")]
    fn builder_rejects_overlong_walk() {
        WalkSetBuilder::new(2).push_walk(&[1, 2, 3]);
    }

    #[test]
    fn equality_ignores_sampler_stats() {
        let a = WalkSet::from_walks(&[vec![1, 2]], 2);
        let b = a.clone().with_sampler_stats(SamplerBuildStats {
            build_time: std::time::Duration::from_millis(5),
            table_bytes: 64,
            ..Default::default()
        });
        assert_eq!(a, b);
        assert!(a.sampler_stats().is_none());
        assert!(b.sampler_stats().is_some());
    }
}
