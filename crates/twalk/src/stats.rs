//! Walk-corpus statistics (the paper's Fig. 4 analysis).

use crate::WalkSet;

/// Summary of a walk corpus's length distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct WalkLengthStats {
    /// Count of walks per exact length (index = length in vertices).
    pub histogram: Vec<u64>,
    /// Mean walk length.
    pub mean: f64,
    /// Fraction of walks with ≤ 5 vertices. The paper observes walk lengths
    /// "centered around 1 to 5" on wiki-talk (§V-B / Fig. 4).
    pub short_fraction: f64,
    /// Least-squares slope of `log(count)` vs `log(length)` over non-empty
    /// buckets — strongly negative for power-law-like decay.
    pub log_log_slope: f64,
}

/// Computes [`WalkLengthStats`] for a walk set.
///
/// # Examples
///
/// ```
/// use twalk::{generate_walks, WalkConfig};
/// use par::ParConfig;
///
/// let g = tgraph::gen::preferential_attachment(1_000, 2, 4).undirected(true).build();
/// let walks = generate_walks(&g, &WalkConfig::new(5, 20), &ParConfig::default());
/// let stats = twalk::stats::length_stats(&walks);
/// assert!(stats.mean >= 1.0);
/// assert!(stats.histogram.iter().sum::<u64>() as usize == walks.num_walks());
/// ```
pub fn length_stats(walks: &WalkSet) -> WalkLengthStats {
    let histogram = walks.length_histogram();
    let total: u64 = histogram.iter().sum();
    let mean = walks.mean_length();
    let short: u64 = histogram.iter().take(6).sum();
    let short_fraction = if total > 0 { short as f64 / total as f64 } else { 0.0 };
    WalkLengthStats { log_log_slope: log_log_slope(&histogram), histogram, mean, short_fraction }
}

/// Least-squares slope of `ln(count)` against `ln(length)` over buckets
/// with non-zero counts (length ≥ 1). Returns 0 when fewer than two
/// non-empty buckets exist.
pub fn log_log_slope(histogram: &[u64]) -> f64 {
    let points: Vec<(f64, f64)> = histogram
        .iter()
        .enumerate()
        .skip(1)
        .filter(|&(_, &c)| c > 0)
        .map(|(l, &c)| ((l as f64).ln(), (c as f64).ln()))
        .collect();
    if points.len() < 2 {
        return 0.0;
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        0.0
    } else {
        (n * sxy - sx * sy) / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_walks_serial, WalkConfig};

    #[test]
    fn slope_of_decaying_histogram_is_negative() {
        // count(l) = 1000 / l^2 — an exact power law with slope -2.
        let hist: Vec<u64> = (0..10)
            .map(|l| if l == 0 { 0 } else { (1000.0 / (l as f64).powi(2)) as u64 })
            .collect();
        let slope = log_log_slope(&hist);
        assert!((slope + 2.0).abs() < 0.1, "slope {slope} not near -2");
    }

    #[test]
    fn degenerate_histograms_give_zero_slope() {
        assert_eq!(log_log_slope(&[0, 5]), 0.0);
        assert_eq!(log_log_slope(&[]), 0.0);
    }

    #[test]
    fn pa_graph_walks_are_short_dominated() {
        // The Fig. 4 reproduction in miniature: on a power-law temporal
        // graph, most walks terminate quickly.
        let g = tgraph::gen::preferential_attachment(2_000, 2, 9).undirected(true).build();
        let walks = generate_walks_serial(&g, &WalkConfig::new(5, 40).seed(1));
        let stats = length_stats(&walks);
        assert!(
            stats.short_fraction > 0.5,
            "short fraction {} too low for power-law graph",
            stats.short_fraction
        );
        assert!(stats.log_log_slope < -0.4, "slope {} not decaying", stats.log_log_slope);
    }
}
