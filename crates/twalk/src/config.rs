//! Walk generation configuration.

use tgraph::Time;

/// How the next edge of a walk is chosen among the temporally-valid
/// candidates (paper §IV-A1).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum TransitionSampler {
    /// `p(v|u) = 1 / |N_u|` over temporally-valid neighbors — the "typical"
    /// transition probability the paper describes first.
    #[default]
    Uniform,
    /// Paper Eq. (1): `Pr[v|u] ∝ exp(τ(u, v) / r)`, where `r` is the
    /// timestamp span of the graph. Favors later interactions.
    Softmax,
    /// Temporal-continuity variant matching the paper's Fig. 2 motivation
    /// (the edge appearing *immediately after* the current time is the most
    /// correlated): `Pr[v|u] ∝ exp(-(τ(u, v) - t_curr) / r)`.
    SoftmaxRecency,
    /// CTDNE's *linear* temporal bias: candidates are weighted by the rank
    /// of their timestamp among the valid set, `Pr[v_i] ∝ rank(i)` with the
    /// latest edge ranked highest — cheaper than the softmax while still
    /// favoring recent interactions.
    LinearTime,
}

impl std::fmt::Display for TransitionSampler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            TransitionSampler::Uniform => "uniform",
            TransitionSampler::Softmax => "softmax",
            TransitionSampler::SoftmaxRecency => "recency",
            TransitionSampler::LinearTime => "linear",
        })
    }
}

impl std::str::FromStr for TransitionSampler {
    type Err = String;

    /// Parses the CLI spelling: `uniform`, `softmax`, `recency` (alias
    /// `softmax-recency`), `linear` (alias `linear-time`).
    ///
    /// This is the *single* parsing authority (the CLI and every config
    /// file path funnel through it): input is trimmed, lowercased, and
    /// `_` is accepted for `-`, so `" Softmax_Recency "` parses — but any
    /// spelling outside the list below is rejected with an error that
    /// enumerates every valid value and alias.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match normalize(s).as_str() {
            "uniform" => Ok(TransitionSampler::Uniform),
            "softmax" => Ok(TransitionSampler::Softmax),
            "recency" | "softmax-recency" => Ok(TransitionSampler::SoftmaxRecency),
            "linear" | "linear-time" => Ok(TransitionSampler::LinearTime),
            _ => Err(format!(
                "unknown sampler {s:?}: valid values are uniform, softmax, \
                 recency (alias softmax-recency), linear (alias linear-time)"
            )),
        }
    }
}

/// Canonical spelling for enum parsing: trimmed, ASCII-lowercased, `_`
/// mapped to `-` — one normalization shared by every `FromStr` in this
/// crate (including [`crate::sampler::SamplingMethod`]) so no spelling
/// variant can slip past one parser and into another.
pub(crate) fn normalize(s: &str) -> String {
    s.trim().to_ascii_lowercase().replace('_', "-")
}

/// Execution strategy for the bulk walk kernels (DESIGN.md §11).
///
/// Every engine produces bit-identical walks for a given
/// `(seed, sampler)` — each `(walk, vertex)` pair draws from its own RNG
/// stream, so execution order is free to change — which is what makes the
/// engine a pure performance knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WalkEngine {
    /// Run each walk to completion before starting the next (the paper's
    /// Algorithm 1 loop nest). Best when the graph's hot segments fit in
    /// cache: no frontier bookkeeping, every step is a handful of
    /// instructions.
    PerWalk,
    /// Step-synchronous batched execution (`twalk::engine::batched`):
    /// advance a block of walks one hop per round, counting-sort the
    /// active walks by current vertex so co-located walks share one hot
    /// neighbor segment, and software-prefetch upcoming segments. Best on
    /// large, degree-skewed graphs where per-walk pointer chasing is
    /// memory-latency-bound.
    Batched,
    /// Step-interleaved execution (`twalk::engine::interleaved`,
    /// ThunderRW-style): each worker keeps a ring of
    /// [`WalkConfig::ring`] in-flight walks and advances them through
    /// explicit fetch → sample stages, issuing a prefetch and switching
    /// to another walk instead of stalling on the cache miss. Best when
    /// the working set is so much larger than cache that even the
    /// batched engine's grouped segments keep missing.
    Interleaved,
    /// Choose per run from the graph's shape: when the estimated frontier
    /// working set (mean degree × frontier size × per-edge bytes) exceeds
    /// [`WalkConfig::auto_llc_bytes`], pick [`WalkEngine::Batched`] — or
    /// [`WalkEngine::Interleaved`] past twice the threshold, where
    /// grouping alone no longer keeps segments resident — otherwise
    /// [`WalkEngine::PerWalk`].
    #[default]
    Auto,
}

impl std::fmt::Display for WalkEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            WalkEngine::PerWalk => "perwalk",
            WalkEngine::Batched => "batched",
            WalkEngine::Interleaved => "interleaved",
            WalkEngine::Auto => "auto",
        })
    }
}

impl std::str::FromStr for WalkEngine {
    type Err = String;

    /// Parses the CLI spelling: `perwalk` (alias `per-walk`), `batched`,
    /// `interleaved`, `auto`. Normalized like [`TransitionSampler`]'s
    /// parser (trim, lowercase, `_` → `-`); anything else is rejected
    /// with the full list of valid values.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match normalize(s).as_str() {
            "perwalk" | "per-walk" => Ok(WalkEngine::PerWalk),
            "batched" => Ok(WalkEngine::Batched),
            "interleaved" => Ok(WalkEngine::Interleaved),
            "auto" => Ok(WalkEngine::Auto),
            _ => Err(format!(
                "unknown engine {s:?}: valid values are auto, perwalk (alias per-walk), \
                 batched, interleaved"
            )),
        }
    }
}

/// Default [`WalkConfig::auto_llc_bytes`]: a conservative floor for the
/// cache capacity the per-walk engine can rely on (8 MiB, a small
/// consumer LLC). Runs whose estimated frontier working set stays under
/// this keep the cheaper per-walk engine; measurements (DESIGN.md §13.5)
/// show per-walk falling behind the bulk engines well before the
/// frontier reaches big-server LLC sizes, so the default errs low.
pub const DEFAULT_AUTO_LLC_BYTES: usize = 8 << 20;

/// Default [`WalkConfig::ring`]: in-flight walks per worker for the
/// interleaved engine. Empirically the sweet spot on the sparse-regime
/// benchmark (DESIGN.md §13.5): enough independent queries to keep
/// several misses in flight, small enough that a sweep revisits a slot
/// while its prefetched lines are still resident.
pub const DEFAULT_WALK_RING: usize = 8;

/// Configuration of the temporal random walk kernel.
///
/// `walks_per_node` is the paper's `K`, `max_length` the paper's `N`; the
/// paper's empirically optimal values are `K = 10`, `N = 6` (§VII-A).
///
/// # Examples
///
/// ```
/// use twalk::{TransitionSampler, WalkConfig};
///
/// let cfg = WalkConfig::new(10, 6)
///     .sampler(TransitionSampler::Softmax)
///     .seed(42);
/// assert_eq!(cfg.walks_per_node, 10);
/// assert_eq!(cfg.max_length, 6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkConfig {
    /// Number of walks started from each vertex (`K`).
    pub walks_per_node: usize,
    /// Maximum number of vertices per walk (`N`); walks may be shorter when
    /// they hit a temporal dead end.
    pub max_length: usize,
    /// Transition probability model.
    pub sampler: TransitionSampler,
    /// RNG seed; walks are deterministic in this seed.
    pub seed: u64,
    /// Time from which the first hop may depart (inclusive). Defaults to
    /// negative infinity so every edge is admissible initially, matching
    /// Algorithm 1's `curTime ← 0` on normalized inputs.
    pub start_time: Time,
    /// When `false`, timestamps are ignored entirely and every neighbor is
    /// always a candidate — the *static* DeepWalk baseline the paper's
    /// related work contrasts temporal walks against (§II-B: modeling
    /// dynamic graphs as static "would inevitably incur information
    /// loss"). Defaults to `true`.
    pub respect_time: bool,
    /// Execution strategy for the bulk kernels; a pure performance knob,
    /// output is engine-independent. Defaults to [`WalkEngine::Auto`].
    pub engine: WalkEngine,
    /// Threshold for [`WalkEngine::Auto`]: estimated frontier working-set
    /// bytes above which a bulk engine is selected (interleaved on sparse
    /// graphs, batched on dense ones — see
    /// [`crate::engine::resolved_engine`]). Defaults to
    /// [`DEFAULT_AUTO_LLC_BYTES`]; override it to match the actual
    /// last-level cache of the deployment machine.
    pub auto_llc_bytes: usize,
    /// In-flight walks per worker for [`WalkEngine::Interleaved`];
    /// ignored by the other engines. Defaults to [`DEFAULT_WALK_RING`].
    pub ring: usize,
}

impl WalkConfig {
    /// Creates a configuration with the given `K` and `N`, uniform
    /// sampling, and seed 0.
    ///
    /// # Panics
    ///
    /// Panics if `walks_per_node == 0` or `max_length == 0`.
    pub fn new(walks_per_node: usize, max_length: usize) -> Self {
        assert!(walks_per_node >= 1, "need at least one walk per node");
        assert!(max_length >= 1, "walks must hold at least the start vertex");
        Self {
            walks_per_node,
            max_length,
            sampler: TransitionSampler::default(),
            seed: 0,
            start_time: f64::NEG_INFINITY,
            respect_time: true,
            engine: WalkEngine::default(),
            auto_llc_bytes: DEFAULT_AUTO_LLC_BYTES,
            ring: DEFAULT_WALK_RING,
        }
    }

    /// Paper-optimal hyperparameters: `K = 10`, `N = 6` (§VII-A summary).
    pub fn paper_optimal() -> Self {
        Self::new(10, 6)
    }

    /// Sets the transition sampler.
    #[must_use]
    pub fn sampler(mut self, sampler: TransitionSampler) -> Self {
        self.sampler = sampler;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the earliest admissible first-hop timestamp.
    #[must_use]
    pub fn start_time(mut self, t: Time) -> Self {
        self.start_time = t;
        self
    }

    /// Disables (or re-enables) temporal validity — `respect_time(false)`
    /// turns the engine into a static DeepWalk walker.
    #[must_use]
    pub fn respect_time(mut self, yes: bool) -> Self {
        self.respect_time = yes;
        self
    }

    /// Sets the execution strategy for the bulk kernels.
    #[must_use]
    pub fn engine(mut self, engine: WalkEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Overrides the [`WalkEngine::Auto`] working-set threshold (bytes).
    #[must_use]
    pub fn auto_llc_bytes(mut self, bytes: usize) -> Self {
        self.auto_llc_bytes = bytes;
        self
    }

    /// Sets the interleaved engine's in-flight walks per worker.
    ///
    /// # Panics
    ///
    /// Panics if `ring == 0` — an empty ring can make no progress.
    #[must_use]
    pub fn ring(mut self, ring: usize) -> Self {
        assert!(ring >= 1, "the walk ring needs at least one slot");
        self.ring = ring;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "at least one walk")]
    fn zero_walks_rejected() {
        let _ = WalkConfig::new(0, 5);
    }

    #[test]
    #[should_panic(expected = "at least the start vertex")]
    fn zero_length_rejected() {
        let _ = WalkConfig::new(1, 0);
    }

    #[test]
    fn paper_optimal_matches_section_vii() {
        let cfg = WalkConfig::paper_optimal();
        assert_eq!((cfg.walks_per_node, cfg.max_length), (10, 6));
    }

    #[test]
    fn sampler_names_round_trip() {
        for s in [
            TransitionSampler::Uniform,
            TransitionSampler::Softmax,
            TransitionSampler::SoftmaxRecency,
            TransitionSampler::LinearTime,
        ] {
            assert_eq!(s.to_string().parse::<TransitionSampler>(), Ok(s));
        }
        assert_eq!("softmax-recency".parse(), Ok(TransitionSampler::SoftmaxRecency));
        assert_eq!("linear-time".parse(), Ok(TransitionSampler::LinearTime));
        assert!("deepwalk".parse::<TransitionSampler>().is_err());
    }

    #[test]
    fn sampler_spellings_normalize() {
        assert_eq!("  Uniform ".parse(), Ok(TransitionSampler::Uniform));
        assert_eq!("SOFTMAX".parse(), Ok(TransitionSampler::Softmax));
        assert_eq!("Softmax_Recency".parse(), Ok(TransitionSampler::SoftmaxRecency));
        assert_eq!("LINEAR_TIME".parse(), Ok(TransitionSampler::LinearTime));
        // The error names every valid value (and the input as given).
        let err = "soft max".parse::<TransitionSampler>().unwrap_err();
        for needle in ["soft max", "uniform", "softmax", "recency", "linear", "valid values"] {
            assert!(err.contains(needle), "{err:?} missing {needle:?}");
        }
        assert!("".parse::<TransitionSampler>().is_err());
    }

    #[test]
    fn engine_names_round_trip() {
        for e in
            [WalkEngine::PerWalk, WalkEngine::Batched, WalkEngine::Interleaved, WalkEngine::Auto]
        {
            assert_eq!(e.to_string().parse::<WalkEngine>(), Ok(e));
        }
        assert_eq!("per-walk".parse(), Ok(WalkEngine::PerWalk));
        assert!("gpu".parse::<WalkEngine>().is_err());
    }

    #[test]
    fn engine_spellings_normalize() {
        assert_eq!("Per_Walk".parse(), Ok(WalkEngine::PerWalk));
        assert_eq!(" BATCHED ".parse(), Ok(WalkEngine::Batched));
        assert_eq!("Interleaved".parse(), Ok(WalkEngine::Interleaved));
        assert_eq!("Auto".parse(), Ok(WalkEngine::Auto));
        let err = "gpu".parse::<WalkEngine>().unwrap_err();
        for needle in
            ["gpu", "auto", "perwalk", "per-walk", "batched", "interleaved", "valid values"]
        {
            assert!(err.contains(needle), "{err:?} missing {needle:?}");
        }
        assert!("".parse::<WalkEngine>().is_err());
    }

    #[test]
    fn engine_defaults_to_auto() {
        let cfg = WalkConfig::new(1, 2);
        assert_eq!(cfg.engine, WalkEngine::Auto);
        assert_eq!(cfg.auto_llc_bytes, DEFAULT_AUTO_LLC_BYTES);
        assert_eq!(cfg.ring, DEFAULT_WALK_RING);
        let cfg = cfg.engine(WalkEngine::Batched).auto_llc_bytes(1).ring(4);
        assert_eq!(cfg.engine, WalkEngine::Batched);
        assert_eq!(cfg.auto_llc_bytes, 1);
        assert_eq!(cfg.ring, 4);
    }

    #[test]
    #[should_panic(expected = "at least one slot")]
    fn zero_ring_rejected() {
        let _ = WalkConfig::new(1, 2).ring(0);
    }
}
