//! Step-interleaved walk engine: a ring of in-flight walks per worker.
//!
//! The batched engine hides memory latency by *grouping* — walks on the
//! same vertex share one segment fetch per round, which pays off exactly
//! when segments are fat and walks pile onto hubs. On *sparse* graphs the
//! economics invert: a grouped fetch serves ~1 walk and ~1 cache line,
//! so the per-round counting sort is pure overhead on top of a miss that
//! nobody shares. This engine attacks that regime the way ThunderRW's
//! step-interleaved mode does: instead of *sharing* fetches, it
//! *overlaps* them, keeping several independent misses in flight per
//! worker with no grouping passes at all.
//!
//! Each worker holds a ring of [`crate::WalkConfig::ring`] in-flight walk
//! queries and sweeps it round-robin, advancing every live walk through a
//! two-stage pipeline. Both stages are issued from a single sweep visit,
//! but for *different* slots, so every fetch overlaps [`LOOKAHEAD`] other
//! walks' advances:
//!
//! 1. **Fetch** — issue software prefetches for the vertex of the slot
//!    [`LOOKAHEAD`] positions ahead in the ring: the CSR segment
//!    (timestamps + destinations) and the sampler's table slice for
//!    whatever [`crate::SamplingMethod`] that vertex was assigned. The
//!    CSR *offsets* entry was already prefetched when that walk arrived
//!    at the vertex (a prefetch cannot chase a pointer, so the offsets
//!    load is warmed one stage earlier than the segment it unlocks).
//! 2. **Advance** — the visited slot's own segment was fetched
//!    [`LOOKAHEAD`] visits ago and has had that many other walks' work
//!    to arrive: compute the valid suffix, sample the transition, write
//!    the output row, and either retire the walk (dead end / length cap)
//!    or move it and issue the next offsets prefetch.
//!
//! A retired slot immediately seeds the next walk from the worker's
//! block, so the ring stays full until the block drains — occupancy,
//! exported as `twalk_ring_occupancy`, is the direct measure of how much
//! memory-level parallelism the engine sustains.
//!
//! Output is **bit-identical** to the per-walk engine for any prepared
//! sampler: each `(walk, vertex)` pair owns its own
//! `WalkRng::from_stream` RNG, and a walk's draws still happen in hop
//! order (interleaving only changes *which walk* the worker touches
//! next, never the order of draws *within* a walk). The equivalence
//! suite in `tests/engine_equivalence.rs` asserts this across ring sizes
//! and thread counts.

use obs::{CounterHandle, HistogramHandle};
use par::{parallel_workers, ParConfig};
use tgraph::{NodeId, TemporalGraph, Time};

use super::{batched::MIN_BLOCK, suffix_start, Output, StartSet};
use crate::sampler::{PreparedSampler, SamplingMethod};
use crate::{WalkConfig, WalkRng};

/// Slot holds no walk (block drained past it).
const EMPTY: usize = usize::MAX;

/// How many ring positions ahead of the advancing slot the fetch stage
/// runs — the pipeline depth, in units of one walk-hop's worth of work.
/// Matches the batched engine's [`super::batched::SEGMENT_PREFETCH_DIST`]
/// rationale: far enough to cover memory latency, near enough that the
/// lines survive until use. Rings smaller than this degrade gracefully
/// (the distance clamps to `ring − 1`).
const LOOKAHEAD: usize = 4;

/// The per-worker ring, struct-of-arrays so the sweep walks a handful of
/// dense vectors instead of striding over fat slot structs. All vectors
/// are indexed by ring slot; `walk` holds the global walk index or
/// [`EMPTY`].
struct Ring {
    walk: Vec<usize>,
    curr: Vec<NodeId>,
    curr_time: Vec<Time>,
    written: Vec<u32>,
    rng: Vec<WalkRng>,
    first_hop: Vec<bool>,
    /// `true` once the fetch stage has run for the slot's current vertex,
    /// so the lookahead never issues the same prefetches twice.
    fetched: Vec<bool>,
}

impl Ring {
    fn new(slots: usize) -> Self {
        Self {
            walk: vec![EMPTY; slots],
            curr: vec![0; slots],
            curr_time: vec![0.0; slots],
            written: vec![0; slots],
            rng: vec![WalkRng::new(0); slots],
            first_hop: vec![false; slots],
            fetched: vec![false; slots],
        }
    }

    /// Raw views over the ring arrays for the per-visit hot path: the
    /// sweep touches up to nine slot fields per hop, and bounds checks
    /// on seven separate vectors are measurable overhead at sparse-graph
    /// hop costs. Exclusively borrows the ring, so the pointers are the
    /// only live access path.
    fn ptrs(&mut self) -> RingPtrs<'_> {
        RingPtrs {
            slots: self.walk.len(),
            walk: self.walk.as_mut_ptr(),
            curr: self.curr.as_mut_ptr(),
            curr_time: self.curr_time.as_mut_ptr(),
            written: self.written.as_mut_ptr(),
            rng: self.rng.as_mut_ptr(),
            first_hop: self.first_hop.as_mut_ptr(),
            fetched: self.fetched.as_mut_ptr(),
            _ring: std::marker::PhantomData,
        }
    }
}

/// Unchecked view over a [`Ring`]'s arrays, valid while the borrow on
/// the ring lives.
///
/// SAFETY invariants: every array holds exactly `slots` elements for the
/// view's lifetime (the vectors are sized at [`Ring::new`] and never
/// resized), and callers only pass indices in `0..slots`.
struct RingPtrs<'a> {
    slots: usize,
    walk: *mut usize,
    curr: *mut NodeId,
    curr_time: *mut Time,
    written: *mut u32,
    rng: *mut WalkRng,
    first_hop: *mut bool,
    fetched: *mut bool,
    _ring: std::marker::PhantomData<&'a mut Ring>,
}

/// Where the next seed comes from: the worker's claimed block `[..end)`
/// with the walk-number / start-index counters carried so the seeding
/// path stays division-free (one division per block). `base` is the
/// output-row offset from the [`Output::with_block`] contract (walk
/// `idx` writes row `idx − base`).
struct SeedCursor {
    next: usize,
    end: usize,
    w: usize,
    i: usize,
    stride: usize,
    base: usize,
}

/// Runs the interleaved engine over `total` walk slots, writing the same
/// walks the per-walk engine would produce to `out`.
///
/// Blocks are disjoint slot ranges, so each output row is written by
/// exactly one worker (same aliasing argument as the other engines). In
/// sink mode a block is emitted only once it fully drains — writes land
/// out of row order *within* a block as walks retire, which is why
/// emission granularity is the block, not the walk.
pub(super) fn run(
    g: &TemporalGraph,
    cfg: &WalkConfig,
    sampler: &PreparedSampler,
    par: &ParConfig,
    starts: StartSet<'_>,
    total: usize,
    out: &Output<'_>,
) {
    // Same block floor as the batched engine: a ring cannot stay full on
    // a block smaller than itself, and tiny blocks cannot amortize the
    // seeding bookkeeping either.
    let par = par.chunk_size(par.chunk().max(MIN_BLOCK));
    let stats = RingStats::from_global();
    parallel_workers(&par, total, |queue| {
        let mut ring = Ring::new(cfg.ring.max(1));
        while let Some(block) = queue.next_chunk() {
            out.with_block(block, cfg.max_length, |nodes_ptr, lengths_ptr, base| {
                run_block(
                    g,
                    cfg,
                    sampler,
                    starts,
                    block,
                    &mut ring,
                    nodes_ptr,
                    lengths_ptr,
                    base,
                    &stats,
                );
            });
        }
    });
}

/// Handles for the pipeline metrics, resolved once per bulk run (all
/// no-ops when the global recorder is off). Occupancy is recorded once
/// per *sweep*; sweep, block, and per-method draw counts accumulate in
/// worker locals and flush once per *block*, so the per-hop path records
/// nothing at all.
struct RingStats {
    occupancy: HistogramHandle,
    sweeps: CounterHandle,
    blocks: CounterHandle,
    /// Draws by resolved sampling method: `[cdf, alias, rejection]`.
    draws: [CounterHandle; 3],
}

impl RingStats {
    fn from_global() -> Self {
        let rec = obs::Recorder::global();
        Self {
            occupancy: rec.histogram("twalk_ring_occupancy"),
            sweeps: rec.counter("twalk_ring_sweeps_total"),
            blocks: rec.counter("twalk_ring_blocks_total"),
            draws: [
                rec.counter("twalk_draws_total{method=\"cdf\"}"),
                rec.counter("twalk_draws_total{method=\"alias\"}"),
                rec.counter("twalk_draws_total{method=\"rejection\"}"),
            ],
        }
    }
}

/// Index into [`RingStats::draws`] for a resolved method.
fn method_slot(m: SamplingMethod) -> usize {
    match m {
        SamplingMethod::Alias => 1,
        SamplingMethod::Rejection => 2,
        _ => 0,
    }
}

/// Drains one block through the ring: seed until full, sweep until empty.
#[allow(clippy::too_many_arguments)]
fn run_block(
    g: &TemporalGraph,
    cfg: &WalkConfig,
    sampler: &PreparedSampler,
    starts: StartSet<'_>,
    (start, end): (usize, usize),
    r: &mut Ring,
    nodes_ptr: usize,
    lengths_ptr: usize,
    base: usize,
    stats: &RingStats,
) {
    let nodes = nodes_ptr as *mut NodeId;
    let lengths = lengths_ptr as *mut u32;
    let nl = cfg.max_length;
    let stride = starts.stride();
    let mut cur =
        SeedCursor { next: start, end, w: start / stride, i: start % stride, stride, base };
    let r = r.ptrs();
    let slots = r.slots;

    // SAFETY (all unchecked ring accesses below): `slot` iterates
    // `0..slots`, `ahead` is reduced into `0..slots` by the conditional
    // subtract, and every ring array holds exactly `slots` elements
    // (see [`RingPtrs`]). The output writes through `nodes` / `lengths`
    // stay inside this worker's disjoint block, and `len < nl` because
    // walks retire at `nl` written vertices.
    unsafe {
        let mut live = 0usize;
        for slot in 0..slots {
            if seed_slot(&mut cur, &r, slot, starts, cfg, g, sampler, nodes, lengths) {
                live += 1;
            } else {
                *r.walk.add(slot) = EMPTY;
            }
        }

        let record = stats.occupancy.is_enabled();
        let mut sweeps_local = 0u64;
        let mut draws_local = [0u64; 3];
        // Pipeline depth, clamped so the lookahead index stays in-ring
        // for degenerate ring sizes (ring = 1 collapses to
        // fetch-then-advance on the same visit).
        let dist = LOOKAHEAD.min(slots - 1);
        // Warm the first `dist` slots so the opening advances are not the
        // only ones whose fetch stage never ran; after this, the in-sweep
        // lookahead keeps every slot fetched `dist` visits before its
        // advance (retire-path refills included).
        for slot in 0..dist {
            if *r.walk.add(slot) != EMPTY {
                g.prefetch_segment(*r.curr.add(slot));
                sampler.prefetch(*r.curr.add(slot));
                *r.fetched.add(slot) = true;
            }
        }
        while live > 0 {
            if record {
                stats.occupancy.record(live as u64);
                sweeps_local += 1;
            }
            for slot in 0..slots {
                // Fetch stage for the slot `dist` positions ahead: warm
                // its segment and table lines while this visit's advance
                // (and the next `dist − 1` visits' work) hides the
                // latency.
                let ahead = slot + dist;
                let ahead = if ahead >= slots { ahead - slots } else { ahead };
                if *r.walk.add(ahead) != EMPTY && !*r.fetched.add(ahead) {
                    let av = *r.curr.add(ahead);
                    g.prefetch_segment(av);
                    sampler.prefetch(av);
                    *r.fetched.add(ahead) = true;
                }
                let idx = *r.walk.add(slot);
                if idx == EMPTY {
                    continue;
                }
                // Advance stage.
                let v = *r.curr.add(slot);
                let now = *r.curr_time.add(slot);
                let (dsts, times) = g.neighbor_slices(v);
                let lo = suffix_start(times, cfg, now, *r.first_hop.add(slot));
                if lo < dsts.len() {
                    let pick = sampler.sample(v, times, lo, now, &mut *r.rng.add(slot));
                    if record {
                        if let Some(m) = sampler.method_of(v) {
                            draws_local[method_slot(m)] += 1;
                        }
                    }
                    let next = dsts[pick];
                    *r.curr.add(slot) = next;
                    *r.curr_time.add(slot) = times[pick];
                    *r.first_hop.add(slot) = false;
                    let len = *r.written.add(slot) as usize;
                    *nodes.add((idx - base) * nl + len) = next;
                    *r.written.add(slot) = (len + 1) as u32;
                    if len + 1 < nl {
                        g.prefetch_offsets(next);
                        sampler.prefetch_offsets(next);
                        *r.fetched.add(slot) = false;
                        continue;
                    }
                }
                // Retire (dead end or length cap) and refill the slot.
                *lengths.add(idx - base) = *r.written.add(slot);
                if !seed_slot(&mut cur, &r, slot, starts, cfg, g, sampler, nodes, lengths) {
                    *r.walk.add(slot) = EMPTY;
                    live -= 1;
                }
            }
        }
        stats.sweeps.add(sweeps_local);
        stats.blocks.inc();
        for (h, n) in stats.draws.iter().zip(draws_local) {
            h.add(n);
        }
    }
}

/// Claims the next walk from the block and seeds it into `slot`, issuing
/// the offsets prefetch for its start vertex. Length-1 walks complete at
/// the seed and are retired inline without ever occupying the slot.
/// Returns `false` when the block is exhausted.
///
/// # Safety
///
/// `slot < r.slots`, and `nodes` / `lengths` must cover every walk index
/// the cursor can claim (they address the full output matrix; the
/// cursor's block is a subrange of it).
#[allow(clippy::too_many_arguments)]
unsafe fn seed_slot(
    cur: &mut SeedCursor,
    r: &RingPtrs<'_>,
    slot: usize,
    starts: StartSet<'_>,
    cfg: &WalkConfig,
    g: &TemporalGraph,
    sampler: &PreparedSampler,
    nodes: *mut NodeId,
    lengths: *mut u32,
) -> bool {
    let nl = cfg.max_length;
    while cur.next < cur.end {
        let idx = cur.next;
        let v = starts.vertex(cur.i);
        let wn = cur.w as u64;
        cur.next += 1;
        cur.i += 1;
        if cur.i == cur.stride {
            cur.i = 0;
            cur.w += 1;
        }
        // SAFETY: `idx` lies in this worker's disjoint block (output row
        // `idx - cur.base`, the Output contract) and `slot < r.slots`
        // (caller contract).
        unsafe {
            *nodes.add((idx - cur.base) * nl) = v;
            if nl == 1 {
                *lengths.add(idx - cur.base) = 1;
                continue;
            }
            *r.walk.add(slot) = idx;
            *r.curr.add(slot) = v;
            *r.curr_time.add(slot) = cfg.start_time;
            *r.written.add(slot) = 1;
            *r.rng.add(slot) = WalkRng::from_stream(cfg.seed, wn, v as u64);
            *r.first_hop.add(slot) = true;
            *r.fetched.add(slot) = false;
        }
        g.prefetch_offsets(v);
        sampler.prefetch_offsets(v);
        return true;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_walks, TransitionSampler, WalkEngine};

    fn engines(cfg: WalkConfig) -> (crate::WalkSet, crate::WalkSet) {
        let g = tgraph::gen::preferential_attachment(500, 3, 17).undirected(true).build();
        let par = ParConfig::with_threads(4).chunk_size(64);
        let a = generate_walks(&g, &cfg.engine(WalkEngine::PerWalk), &par);
        let b = generate_walks(&g, &cfg.engine(WalkEngine::Interleaved), &par);
        (a, b)
    }

    #[test]
    fn interleaved_matches_per_walk_on_skewed_graph() {
        for sampler in [
            TransitionSampler::Uniform,
            TransitionSampler::Softmax,
            TransitionSampler::SoftmaxRecency,
            TransitionSampler::LinearTime,
        ] {
            let (a, b) = engines(WalkConfig::new(4, 8).sampler(sampler).seed(3));
            assert_eq!(a, b, "engines diverged for {sampler}");
        }
    }

    #[test]
    fn interleaved_handles_walk_length_one() {
        // Every walk retires at the seed; the ring never fills.
        let (a, b) = engines(WalkConfig::new(2, 1).seed(9));
        assert_eq!(a, b);
        assert!(b.iter().all(|w| w.len() == 1));
    }

    #[test]
    fn degenerate_ring_sizes_stay_bit_identical() {
        // ring = 1 serializes the pipeline (fetch → advance with nothing
        // in between); a ring much larger than the block leaves most
        // slots empty. Both must still produce per-walk output.
        for ring in [1usize, 3, 4096] {
            let (a, b) = engines(WalkConfig::new(2, 6).seed(13).ring(ring));
            assert_eq!(a, b, "ring {ring} diverged");
        }
    }
}
