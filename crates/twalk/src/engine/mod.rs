//! The walk kernel itself (paper Algorithm 1).
//!
//! Bulk generation is a two-step API: [`TransitionSampler::prepare`] binds
//! the configured sampler to the graph (building CDF tables for the
//! softmax variants), then [`generate_walks_prepared`] /
//! [`generate_walks_from_prepared`] run the kernel against the shared
//! read-only [`PreparedSampler`]. The one-shot wrappers
//! [`generate_walks`] / [`generate_walks_from`] prepare internally and
//! stay source-compatible. [`walk_from`] keeps the direct-evaluation
//! sampling path as the executable reference the prepared kernel is
//! verified against.
//!
//! Three execution strategies run the same kernel ([`crate::WalkEngine`]):
//! the classic per-walk loop nest below, the step-synchronous [`batched`]
//! engine that trades bookkeeping for memory-level parallelism on large
//! graphs, and the step-[`interleaved`] engine that keeps a ring of
//! in-flight walks per worker to overlap cache misses outright. All
//! produce bit-identical output because every `(walk, vertex)` pair draws
//! from its own RNG stream; the engine is resolved per run by
//! [`resolved_engine`] from the estimated working set
//! ([`estimated_working_set`]) and the graph's mean degree — the proxy
//! for how much reuse locality grouping can find.

use std::sync::atomic::{AtomicU64, Ordering};

use par::{parallel_chunks_shared, ParConfig};
use tgraph::{NodeId, TemporalGraph, Time};

use crate::sampler::{direct_linear, direct_softmax, PreparedSampler};
use crate::sink::{WalkChunk, WalkSink};
use crate::{TransitionSampler, WalkConfig, WalkEngine, WalkRng, WalkSet};

pub mod batched;
pub mod interleaved;

/// Where a bulk run's walks go: the canonical `total × N` matrix, or a
/// [`WalkSink`] receiving worker blocks as they finish. Engines address
/// output rows as `global_index − base`, which the two destinations make
/// coincide with the right buffer: the matrix hands out its global
/// pointers with `base = 0`, the sink variant hands each block a fresh
/// local buffer with `base = block start` and emits it afterwards. The
/// sink path therefore also works for the interleaved engine, whose
/// writes land out of row order *within* a block — emission waits for the
/// whole block.
pub(super) enum Output<'a> {
    /// Preallocated full-run buffers (as raw addresses, so workers can
    /// write their disjoint rows without aliasing a `&mut`).
    Matrix { nodes: usize, lengths: usize },
    /// Stream finished blocks to a sink; `hops` accumulates
    /// `total_vertices − walks` across blocks for the post-hoc metrics.
    Sink { sink: &'a dyn WalkSink, hops: &'a AtomicU64 },
}

impl Output<'_> {
    /// Runs `f` with `(nodes_ptr, lengths_ptr, base)` for the block of
    /// walk slots `start..end` — `f` must fully write rows
    /// `(start − base)..(end − base)` of both buffers — then routes the
    /// block to its destination.
    fn with_block(
        &self,
        (start, end): (usize, usize),
        nl: usize,
        f: impl FnOnce(usize, usize, usize),
    ) {
        match *self {
            Output::Matrix { nodes, lengths } => f(nodes, lengths, 0),
            Output::Sink { sink, hops } => {
                let walks = end - start;
                let mut nodes = vec![0 as NodeId; walks * nl];
                let mut lengths = vec![0u32; walks];
                f(nodes.as_mut_ptr() as usize, lengths.as_mut_ptr() as usize, start);
                let verts: u64 = lengths.iter().map(|&l| u64::from(l)).sum();
                hops.fetch_add(verts - walks as u64, Ordering::Relaxed);
                sink.emit(WalkChunk { start, max_length: nl, nodes, lengths });
            }
        }
    }
}

/// How bulk-run walk slot indices map to `(walk number, start vertex)`
/// pairs: slot `w * stride + i` is walk `w` from the `i`-th start.
#[derive(Debug, Clone, Copy)]
enum StartSet<'a> {
    /// Full run over every vertex: start `i` is vertex `i` itself.
    AllVertices(usize),
    /// Incremental refresh: start `i` is `sources[i]` (repeats allowed).
    Sources(&'a [NodeId]),
}

impl StartSet<'_> {
    /// Number of starts per walk round (`n` or `sources.len()`).
    #[inline]
    fn stride(&self) -> usize {
        match self {
            StartSet::AllVertices(n) => *n,
            StartSet::Sources(s) => s.len(),
        }
    }

    /// Start vertex of the `i`-th start slot.
    #[inline]
    fn vertex(&self, i: usize) -> NodeId {
        match self {
            StartSet::AllVertices(_) => i as NodeId,
            StartSet::Sources(s) => s[i],
        }
    }
}

/// The engine a bulk run with this configuration will actually execute:
/// [`WalkEngine::Auto`] is resolved against the graph's shape, explicit
/// choices pass through. Exposed so benchmarks and tests can observe the
/// Auto heuristic without rerunning it.
pub fn resolved_engine(
    g: &TemporalGraph,
    cfg: &WalkConfig,
    sampler: &PreparedSampler,
    total_walks: usize,
) -> WalkEngine {
    match cfg.engine {
        WalkEngine::Auto => {
            // Tiny runs (under one batch block) always stay per-walk:
            // they cannot amortize grouping or ring bookkeeping.
            if g.num_nodes() == 0 || total_walks < batched::MIN_BLOCK {
                return WalkEngine::PerWalk;
            }
            let ws = estimated_working_set(g, sampler, total_walks);
            if ws <= cfg.auto_llc_bytes as f64 {
                return WalkEngine::PerWalk;
            }
            // Past the cache threshold the two bulk engines split by how
            // much reuse grouping can find: each grouped fetch serves
            // `mean_degree`-sized segments to every co-located walk, so
            // dense skewed graphs amortize the counting sort many times
            // over, while on sparse graphs a fetch serves ~1 walk and ~1
            // cache line and the sort is pure overhead — there the ring's
            // miss overlap wins (measured crossover: DESIGN.md §13.5).
            let mean_degree = g.num_edges() as f64 / g.num_nodes() as f64;
            if mean_degree <= INTERLEAVE_MAX_MEAN_DEGREE {
                WalkEngine::Interleaved
            } else {
                WalkEngine::Batched
            }
        }
        explicit => explicit,
    }
}

/// Mean-degree boundary between [`WalkEngine::Auto`]'s two bulk bands:
/// at or below it the step-interleaved ring wins (sparse graphs, little
/// grouping reuse), above it the batched engine's locality grouping wins
/// (dense skewed graphs, one hub fetch serves many walks). The measured
/// crossover on the `rwalk/engine` workload family sits near mean degree
/// ~32, where the two engines tie within noise (DESIGN.md §13.5).
pub const INTERLEAVE_MAX_MEAN_DEGREE: f64 = 32.0;

/// The Auto heuristic's working-set estimate (DESIGN.md §11/§13): one
/// neighbor segment per distinct active vertex — mean degree × per-edge
/// bytes (timestamps + destinations + table entry when the sampler
/// carries tables) plus the CSR offsets entry — times the number of
/// distinct start vertices a block can hold. Under
/// [`WalkConfig::auto_llc_bytes`] the per-walk loop nest barely misses
/// and wins on simplicity; past it one of the bulk engines takes over,
/// split by mean degree (see [`resolved_engine`] and
/// [`INTERLEAVE_MAX_MEAN_DEGREE`]). Exposed so tests and tools can probe
/// the bands without rerunning the kernel.
pub fn estimated_working_set(
    g: &TemporalGraph,
    sampler: &PreparedSampler,
    total_walks: usize,
) -> f64 {
    let n = g.num_nodes();
    if n == 0 {
        return 0.0;
    }
    let mean_degree = g.num_edges() as f64 / n as f64;
    let frontier = total_walks.min(n) as f64;
    let per_edge = (std::mem::size_of::<Time>()
        + std::mem::size_of::<NodeId>()
        + if sampler.stats().table_bytes > 0 { std::mem::size_of::<f64>() } else { 0 })
        as f64;
    let per_vertex = mean_degree * per_edge + std::mem::size_of::<usize>() as f64;
    frontier * per_vertex
}

/// Generates `K` temporal walks from every vertex, parallelizing the
/// middle (vertex) loop with dynamic scheduling — the arrangement the paper
/// found optimal (§V-A).
///
/// Walks are deterministic in `(cfg.seed, cfg.sampler)` and independent of
/// the thread count, because each `(walk, vertex)` pair draws from its own
/// RNG stream.
///
/// Prepares the sampler internally; to amortize table construction over
/// several runs on the same graph, call [`TransitionSampler::prepare`]
/// once and use [`generate_walks_prepared`].
///
/// # Examples
///
/// ```
/// use twalk::{generate_walks, WalkConfig};
/// use par::ParConfig;
///
/// let g = tgraph::gen::erdos_renyi(100, 800, 5).build();
/// let w = generate_walks(&g, &WalkConfig::new(4, 6), &ParConfig::default());
/// assert_eq!(w.num_walks(), 400);
/// ```
pub fn generate_walks(g: &TemporalGraph, cfg: &WalkConfig, par: &ParConfig) -> WalkSet {
    let prepared = cfg.sampler.prepare(g);
    generate_walks_prepared(g, cfg, &prepared, par)
}

/// [`generate_walks`] against an already-prepared sampler.
///
/// The sampler is shared read-only across the worker threads; walks are
/// identical to what [`generate_walks`] produces for `cfg.sampler` (the
/// prepared form of a config sampler defines the kernel's distribution).
///
/// # Panics
///
/// Panics if `sampler` was prepared for a graph of a different shape.
pub fn generate_walks_prepared(
    g: &TemporalGraph,
    cfg: &WalkConfig,
    sampler: &PreparedSampler,
    par: &ParConfig,
) -> WalkSet {
    assert!(sampler.matches_graph(g), "sampler was prepared for a different graph");
    // One contiguous output row per (walk w, vertex v): index w * n + v,
    // matching Algorithm 1's loop nest (outer walk loop, inner vertex loop).
    run_bulk(g, cfg, sampler, par, StartSet::AllVertices(g.num_nodes()))
}

/// Shared skeleton of the bulk entry points: allocates the output matrix
/// and runs the engine [`resolved_engine`] picks over the start set.
fn run_bulk(
    g: &TemporalGraph,
    cfg: &WalkConfig,
    sampler: &PreparedSampler,
    par: &ParConfig,
    starts: StartSet<'_>,
) -> WalkSet {
    let nl = cfg.max_length;
    let total = starts.stride() * cfg.walks_per_node;
    let mut nodes = vec![0 as NodeId; total * nl];
    let mut lengths = vec![0u32; total];
    if total > 0 {
        // Observability is entirely post-hoc here: the kernel is timed
        // around the dispatch and hop counts are derived from the output
        // `lengths` (sum of lengths minus one start vertex per walk), so
        // the hot loops carry zero instrumentation. Disabled cost: one
        // relaxed bool load per bulk run.
        let rec = obs::Recorder::global();
        let t0 = rec.is_enabled().then(std::time::Instant::now);
        let out = Output::Matrix {
            nodes: nodes.as_mut_ptr() as usize,
            lengths: lengths.as_mut_ptr() as usize,
        };
        dispatch(g, cfg, sampler, par, starts, total, &out);
        if let Some(t0) = t0 {
            let hops = lengths.iter().map(|&l| u64::from(l)).sum::<u64>() - total as u64;
            rec.histogram("twalk_run_ns").record_duration(t0.elapsed());
            rec.counter("twalk_walks_total").add(total as u64);
            rec.counter("twalk_hops_total").add(hops);
        }
    }
    WalkSet::from_parts(nodes, lengths, nl).with_sampler_stats(sampler.stats())
}

/// Sink twin of [`run_bulk`]: same engine dispatch, blocks streamed to
/// `sink` instead of assembled into a matrix.
fn run_bulk_to_sink(
    g: &TemporalGraph,
    cfg: &WalkConfig,
    sampler: &PreparedSampler,
    par: &ParConfig,
    starts: StartSet<'_>,
    sink: &dyn WalkSink,
) {
    let total = starts.stride() * cfg.walks_per_node;
    if total == 0 {
        return;
    }
    let rec = obs::Recorder::global();
    let t0 = rec.is_enabled().then(std::time::Instant::now);
    // With no output matrix to derive hop counts from post hoc, blocks
    // accumulate them here — one relaxed add per block, still nothing in
    // the per-hop path.
    let hops = AtomicU64::new(0);
    let out = Output::Sink { sink, hops: &hops };
    dispatch(g, cfg, sampler, par, starts, total, &out);
    if let Some(t0) = t0 {
        rec.histogram("twalk_run_ns").record_duration(t0.elapsed());
        rec.counter("twalk_walks_total").add(total as u64);
        rec.counter("twalk_hops_total").add(hops.load(Ordering::Relaxed));
    }
}

/// Runs the engine [`resolved_engine`] picks over the start set, writing
/// to `out`.
fn dispatch(
    g: &TemporalGraph,
    cfg: &WalkConfig,
    sampler: &PreparedSampler,
    par: &ParConfig,
    starts: StartSet<'_>,
    total: usize,
    out: &Output<'_>,
) {
    match resolved_engine(g, cfg, sampler, total) {
        WalkEngine::Batched => batched::run(g, cfg, sampler, par, starts, total, out),
        WalkEngine::Interleaved => interleaved::run(g, cfg, sampler, par, starts, total, out),
        _ => run_per_walk(g, cfg, sampler, par, starts, total, out),
    }
}

/// The classic engine: each walk runs to completion inside its chunk.
///
/// Chunks are disjoint, so each output row is written by exactly one
/// worker; in sink mode each chunk is its own emitted block.
fn run_per_walk(
    g: &TemporalGraph,
    cfg: &WalkConfig,
    sampler: &PreparedSampler,
    par: &ParConfig,
    starts: StartSet<'_>,
    total: usize,
    out: &Output<'_>,
) {
    let stride = starts.stride();
    let nl = cfg.max_length;
    parallel_chunks_shared(par, sampler, total, |sampler, start, end| {
        out.with_block((start, end), nl, |nodes_ptr, lengths_ptr, base| {
            // SAFETY: chunks are disjoint subranges of 0..total; each row
            // of `nodes` and slot of `lengths` is written by exactly one
            // worker, at `idx - base` (the Output contract).
            let nodes = nodes_ptr as *mut NodeId;
            let lengths = lengths_ptr as *mut u32;
            // One division locates the chunk's (walk, start) position; the
            // pair is then carried as counters so the hot loop runs
            // division-free (idx / stride and idx % stride per iteration
            // showed up on short-walk configs).
            let mut w = start / stride;
            let mut i = start % stride;
            for idx in start..end {
                let v = starts.vertex(i);
                let mut rng = WalkRng::from_stream(cfg.seed, w as u64, v as u64);
                let row =
                    unsafe { std::slice::from_raw_parts_mut(nodes.add((idx - base) * nl), nl) };
                let len = walk_into(g, sampler, cfg, v, &mut rng, row);
                unsafe { *lengths.add(idx - base) = len as u32 };
                i += 1;
                if i == stride {
                    i = 0;
                    w += 1;
                }
            }
        });
    });
}

/// [`generate_walks`], streamed: walk blocks go to `sink` as workers
/// finish them instead of being assembled into a [`WalkSet`], so peak
/// memory is one in-flight block per worker rather than the full
/// `K · N · |V|` corpus.
///
/// Chunk *content* is bit-identical to the matrix path (concatenating the
/// chunks in [`crate::WalkChunk::start`] order reproduces the `WalkSet`
/// exactly); chunk *arrival order* follows dynamic scheduling.
///
/// Prepares the sampler internally; pipelines that re-walk the same graph
/// (fused training epochs) should prepare once and call
/// [`generate_walks_prepared_to_sink`].
pub fn generate_walks_to_sink(
    g: &TemporalGraph,
    cfg: &WalkConfig,
    par: &ParConfig,
    sink: &dyn WalkSink,
) {
    let prepared = cfg.sampler.prepare(g);
    generate_walks_prepared_to_sink(g, cfg, &prepared, par, sink);
}

/// [`generate_walks_to_sink`] against an already-prepared sampler.
///
/// # Panics
///
/// Panics if `sampler` was prepared for a graph of a different shape.
pub fn generate_walks_prepared_to_sink(
    g: &TemporalGraph,
    cfg: &WalkConfig,
    sampler: &PreparedSampler,
    par: &ParConfig,
    sink: &dyn WalkSink,
) {
    assert!(sampler.matches_graph(g), "sampler was prepared for a different graph");
    run_bulk_to_sink(g, cfg, sampler, par, StartSet::AllVertices(g.num_nodes()), sink);
}

/// Serial reference implementation of [`generate_walks`], used by tests and
/// the thread-scaling study's single-thread baseline.
pub fn generate_walks_serial(g: &TemporalGraph, cfg: &WalkConfig) -> WalkSet {
    generate_walks(g, cfg, &ParConfig::with_threads(1))
}

/// Generates `K` walks from each of the given `sources` only — the
/// incremental-refresh primitive: after a batch of edge insertions, only
/// the touched vertices need their neighborhoods re-sampled.
///
/// Walk `(w, i)` (for source index `i`) lands at row
/// `w * sources.len() + i` and uses the same RNG stream a full run would
/// use for that `(walk, vertex)` pair, so refreshed walks match full-run
/// walks exactly.
///
/// Prepares the sampler internally; incremental pipelines that refresh
/// repeatedly against one snapshot should prepare once and call
/// [`generate_walks_from_prepared`].
///
/// # Panics
///
/// Panics if any source id is out of range.
pub fn generate_walks_from(
    g: &TemporalGraph,
    cfg: &WalkConfig,
    sources: &[NodeId],
    par: &ParConfig,
) -> WalkSet {
    let prepared = cfg.sampler.prepare(g);
    generate_walks_from_prepared(g, cfg, &prepared, sources, par)
}

/// [`generate_walks_from`] against an already-prepared sampler.
///
/// # Panics
///
/// Panics if any source id is out of range or `sampler` was prepared for a
/// graph of a different shape.
pub fn generate_walks_from_prepared(
    g: &TemporalGraph,
    cfg: &WalkConfig,
    sampler: &PreparedSampler,
    sources: &[NodeId],
    par: &ParConfig,
) -> WalkSet {
    assert!(sampler.matches_graph(g), "sampler was prepared for a different graph");
    let n = g.num_nodes();
    assert!(sources.iter().all(|&v| (v as usize) < n), "walk source out of range");
    run_bulk(g, cfg, sampler, par, StartSet::Sources(sources))
}

/// Performs a single temporal walk from `start` and returns its vertices.
///
/// This is the *direct-evaluation* reference: transition probabilities are
/// recomputed from raw timestamps at every step with no precomputed
/// tables. For [`TransitionSampler::Uniform`] and
/// [`TransitionSampler::LinearTime`] it draws from the RNG exactly like
/// the prepared kernel, so single walks match bulk rows bit-for-bit; the
/// softmax variants agree in distribution (the tables anchor weights per
/// segment rather than per candidate set, so round-off can differ).
///
/// # Examples
///
/// ```
/// use twalk::{walk_from, WalkConfig, WalkRng};
///
/// let g = tgraph::GraphBuilder::new()
///     .add_edge(tgraph::TemporalEdge::new(0, 1, 0.1))
///     .add_edge(tgraph::TemporalEdge::new(1, 2, 0.2))
///     .build();
/// let mut rng = WalkRng::new(1);
/// let walk = walk_from(&g, &WalkConfig::new(1, 8), 0, &mut rng);
/// assert_eq!(walk, vec![0, 1, 2]);
/// ```
pub fn walk_from(
    g: &TemporalGraph,
    cfg: &WalkConfig,
    start: NodeId,
    rng: &mut WalkRng,
) -> Vec<NodeId> {
    let mut buf = vec![0 as NodeId; cfg.max_length];
    let span = g.time_span().max(f64::MIN_POSITIVE);
    let len = walk_into_direct(g, span, cfg, start, rng, &mut buf);
    buf.truncate(len);
    buf
}

/// Index where the temporally-valid suffix of a time-sorted segment
/// begins: strict (`t > now`) after the first hop, inclusive on the first
/// hop when a finite start time is set, everything when timestamps are
/// ignored (static DeepWalk mode).
#[inline]
fn suffix_start(times: &[Time], cfg: &WalkConfig, now: Time, first_hop: bool) -> usize {
    if !cfg.respect_time {
        0
    } else if first_hop {
        if now.is_finite() {
            times.partition_point(|&t| t < now)
        } else {
            0
        }
    } else {
        times.partition_point(|&t| t <= now)
    }
}

/// Core of Algorithm 1 on the prepared-sampler path: walks from `start`,
/// writing vertices into `out`, returning the number written (≥ 1).
fn walk_into(
    g: &TemporalGraph,
    sampler: &PreparedSampler,
    cfg: &WalkConfig,
    start: NodeId,
    rng: &mut WalkRng,
    out: &mut [NodeId],
) -> usize {
    debug_assert!(out.len() >= cfg.max_length);
    out[0] = start;
    let mut len = 1usize;
    let mut curr = start;
    let mut curr_time = cfg.start_time;
    let mut first_hop = true;

    while len < cfg.max_length {
        let (dsts, times) = g.neighbor_slices(curr);
        let lo = suffix_start(times, cfg, curr_time, first_hop);
        if lo >= dsts.len() {
            break; // Algorithm 1 line 9: dead end.
        }
        let pick = sampler.sample(curr, times, lo, curr_time, rng);
        curr = dsts[pick];
        curr_time = times[pick];
        out[len] = curr;
        len += 1;
        first_hop = false;
    }
    len
}

/// Direct-evaluation twin of [`walk_into`]: recomputes transition weights
/// from raw timestamps at every step (the seed kernel's behavior), kept as
/// the reference the prepared path is tested against.
fn walk_into_direct(
    g: &TemporalGraph,
    span: f64,
    cfg: &WalkConfig,
    start: NodeId,
    rng: &mut WalkRng,
    out: &mut [NodeId],
) -> usize {
    debug_assert!(out.len() >= cfg.max_length);
    out[0] = start;
    let mut len = 1usize;
    let mut curr = start;
    let mut curr_time = cfg.start_time;
    let mut first_hop = true;

    while len < cfg.max_length {
        let (dsts, times) = g.neighbor_slices(curr);
        let lo = suffix_start(times, cfg, curr_time, first_hop);
        if lo >= dsts.len() {
            break;
        }
        let (dsts, times) = (&dsts[lo..], &times[lo..]);
        let pick = match cfg.sampler {
            TransitionSampler::Uniform => rng.next_bounded(dsts.len()),
            TransitionSampler::Softmax => direct_softmax(times, span, rng, false, curr_time),
            TransitionSampler::SoftmaxRecency => direct_softmax(times, span, rng, true, curr_time),
            TransitionSampler::LinearTime => direct_linear(dsts.len(), rng),
        };

        curr = dsts[pick];
        curr_time = times[pick];
        out[len] = curr;
        len += 1;
        first_hop = false;
    }
    len
}

#[cfg(test)]
mod tests {
    use super::*;
    use tgraph::{GraphBuilder, TemporalEdge};

    fn chain() -> TemporalGraph {
        GraphBuilder::new()
            .add_edge(TemporalEdge::new(0, 1, 0.1))
            .add_edge(TemporalEdge::new(1, 2, 0.2))
            .add_edge(TemporalEdge::new(2, 3, 0.3))
            .add_edge(TemporalEdge::new(3, 4, 0.4))
            .build()
    }

    #[test]
    fn walk_follows_chain_until_length_cap() {
        let g = chain();
        let mut rng = WalkRng::new(0);
        let w = walk_from(&g, &WalkConfig::new(1, 3), 0, &mut rng);
        assert_eq!(w, vec![0, 1, 2]);
        let w = walk_from(&g, &WalkConfig::new(1, 10), 0, &mut rng);
        assert_eq!(w, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn walk_stops_at_temporal_dead_end() {
        // Edge times decrease: 1 -> 2 happens *before* 0 -> 1, so the walk
        // cannot continue past vertex 1.
        let g = GraphBuilder::new()
            .add_edge(TemporalEdge::new(0, 1, 0.9))
            .add_edge(TemporalEdge::new(1, 2, 0.1))
            .build();
        let mut rng = WalkRng::new(0);
        let w = walk_from(&g, &WalkConfig::new(1, 10), 0, &mut rng);
        assert_eq!(w, vec![0, 1]);
    }

    #[test]
    fn equal_timestamps_do_not_chain() {
        // Strictly-increasing requirement: t2 must be > t1.
        let g = GraphBuilder::new()
            .add_edge(TemporalEdge::new(0, 1, 0.5))
            .add_edge(TemporalEdge::new(1, 2, 0.5))
            .build();
        let mut rng = WalkRng::new(0);
        let w = walk_from(&g, &WalkConfig::new(1, 10), 0, &mut rng);
        assert_eq!(w, vec![0, 1]);
    }

    #[test]
    fn start_time_filters_first_hop() {
        let g = chain();
        let mut rng = WalkRng::new(0);
        let cfg = WalkConfig::new(1, 10).start_time(0.2);
        // First hop from vertex 0 requires t >= 0.2; the only 0-edge has
        // t = 0.1, so the walk is stuck at the start.
        let w = walk_from(&g, &cfg, 0, &mut rng);
        assert_eq!(w, vec![0]);
        // From vertex 1 the t = 0.2 edge is admissible (inclusive).
        let w = walk_from(&g, &cfg, 1, &mut rng);
        assert_eq!(w, vec![1, 2, 3, 4]);
    }

    #[test]
    fn all_walks_are_temporally_valid() {
        let g = tgraph::gen::preferential_attachment(400, 2, 3).undirected(true).build();
        for sampler in [
            TransitionSampler::Uniform,
            TransitionSampler::Softmax,
            TransitionSampler::SoftmaxRecency,
            TransitionSampler::LinearTime,
        ] {
            let cfg = WalkConfig::new(3, 8).sampler(sampler).seed(5);
            let walks = generate_walks_serial(&g, &cfg);
            for w in walks.iter() {
                // Re-derive edge times along the walk and check strict
                // monotonicity; each consecutive pair must be a real edge.
                let mut last_t = f64::NEG_INFINITY;
                for pair in w.windows(2) {
                    let (dsts, times) = g.neighbor_slices(pair[0]);
                    let t = dsts
                        .iter()
                        .zip(times)
                        .filter(|&(&d, &t)| d == pair[1] && t > last_t)
                        .map(|(_, &t)| t)
                        .next()
                        .expect("walk uses a real, temporally-valid edge");
                    last_t = t;
                }
            }
        }
    }

    #[test]
    fn parallel_matches_serial_exactly() {
        let g = tgraph::gen::erdos_renyi(200, 2_000, 7).build();
        let cfg = WalkConfig::new(5, 6).seed(11);
        let serial = generate_walks_serial(&g, &cfg);
        let parallel = generate_walks(&g, &cfg, &ParConfig::with_threads(8).chunk_size(13));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn prepared_sampler_is_reusable_across_runs() {
        let g = tgraph::gen::erdos_renyi(150, 1_500, 4).build();
        for sampler in [
            TransitionSampler::Uniform,
            TransitionSampler::Softmax,
            TransitionSampler::SoftmaxRecency,
            TransitionSampler::LinearTime,
        ] {
            let cfg = WalkConfig::new(3, 6).sampler(sampler).seed(2);
            let prepared = sampler.prepare(&g);
            let one_shot = generate_walks(&g, &cfg, &ParConfig::with_threads(2));
            let reused_a =
                generate_walks_prepared(&g, &cfg, &prepared, &ParConfig::with_threads(4));
            let reused_b =
                generate_walks_prepared(&g, &cfg, &prepared, &ParConfig::with_threads(1));
            assert_eq!(one_shot, reused_a);
            assert_eq!(reused_a, reused_b);
        }
    }

    #[test]
    fn prepared_walks_match_direct_reference_for_table_free_samplers() {
        // Uniform and LinearTime consume the RNG identically on both
        // paths, so bulk rows equal single direct walks bit-for-bit.
        let g = tgraph::gen::preferential_attachment(300, 3, 9).undirected(true).build();
        let n = g.num_nodes();
        for sampler in [TransitionSampler::Uniform, TransitionSampler::LinearTime] {
            let cfg = WalkConfig::new(2, 7).sampler(sampler).seed(13);
            let bulk = generate_walks_serial(&g, &cfg);
            for w in 0..cfg.walks_per_node {
                for v in 0..n {
                    let mut rng = WalkRng::from_stream(cfg.seed, w as u64, v as u64);
                    let direct = walk_from(&g, &cfg, v as NodeId, &mut rng);
                    assert_eq!(bulk.walk(w * n + v), direct.as_slice());
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "prepared for a different graph")]
    fn mismatched_prepared_sampler_is_rejected() {
        let a = tgraph::gen::erdos_renyi(50, 400, 1).build();
        let b = tgraph::gen::erdos_renyi(60, 500, 2).build();
        let prepared = TransitionSampler::Softmax.prepare(&a);
        let _ =
            generate_walks_prepared(&b, &WalkConfig::new(1, 4), &prepared, &ParConfig::default());
    }

    #[test]
    fn every_vertex_gets_k_walks() {
        let g = chain();
        let walks = generate_walks_serial(&g, &WalkConfig::new(3, 4));
        assert_eq!(walks.num_walks(), 3 * g.num_nodes());
        // Walk for (w, v) starts at v.
        let n = g.num_nodes();
        for w in 0..3 {
            for v in 0..n {
                assert_eq!(walks.walk(w * n + v)[0], v as NodeId);
            }
        }
    }

    #[test]
    fn softmax_prefers_late_edges_and_recency_prefers_early() {
        // Vertex 0 has two candidate edges at t = 0.1 and t = 0.9 with a
        // wide span; Eq. (1) softmax should mostly take the late edge, the
        // recency variant the early edge.
        let g = GraphBuilder::new()
            .add_edge(TemporalEdge::new(0, 1, 0.001))
            .add_edge(TemporalEdge::new(0, 2, 0.999))
            // Far-apart anchor edges stretch the span so the exponent gap
            // stays meaningful after normalization.
            .add_edge(TemporalEdge::new(3, 4, 0.0))
            .add_edge(TemporalEdge::new(4, 3, 1.0))
            .build();
        let count_late = |sampler: TransitionSampler| -> usize {
            let mut late = 0;
            for seed in 0..400 {
                let mut rng = WalkRng::new(seed);
                let cfg = WalkConfig::new(1, 2).sampler(sampler);
                let w = walk_from(&g, &cfg, 0, &mut rng);
                if w[1] == 2 {
                    late += 1;
                }
            }
            late
        };
        let softmax_late = count_late(TransitionSampler::Softmax);
        let recency_late = count_late(TransitionSampler::SoftmaxRecency);
        assert!(softmax_late > 240, "softmax picked late only {softmax_late}/400");
        assert!(recency_late < 160, "recency picked late {recency_late}/400");
    }

    #[test]
    fn walks_from_sources_match_full_run_rows() {
        let g = tgraph::gen::erdos_renyi(100, 1_000, 5).build();
        let cfg = WalkConfig::new(3, 6).seed(9);
        let full = generate_walks_serial(&g, &cfg);
        let sources = [7u32, 42, 99];
        let partial = generate_walks_from(&g, &cfg, &sources, &ParConfig::with_threads(2));
        assert_eq!(partial.num_walks(), 9);
        let n = g.num_nodes();
        for w in 0..3 {
            for (i, &v) in sources.iter().enumerate() {
                assert_eq!(
                    partial.walk(w * sources.len() + i),
                    full.walk(w * n + v as usize),
                    "walk {w} from source {v} diverged"
                );
            }
        }
    }

    #[test]
    fn refresh_rows_match_full_run_for_every_sampler() {
        let g = tgraph::gen::preferential_attachment(200, 3, 6).undirected(true).build();
        let sources = [0u32, 17, 65, 130, 199];
        for sampler in [
            TransitionSampler::Uniform,
            TransitionSampler::Softmax,
            TransitionSampler::SoftmaxRecency,
            TransitionSampler::LinearTime,
        ] {
            let cfg = WalkConfig::new(2, 6).sampler(sampler).seed(21);
            let prepared = sampler.prepare(&g);
            let full = generate_walks_prepared(&g, &cfg, &prepared, &ParConfig::with_threads(3));
            let partial = generate_walks_from_prepared(
                &g,
                &cfg,
                &prepared,
                &sources,
                &ParConfig::with_threads(2),
            );
            let n = g.num_nodes();
            for w in 0..cfg.walks_per_node {
                for (i, &v) in sources.iter().enumerate() {
                    assert_eq!(partial.walk(w * sources.len() + i), full.walk(w * n + v as usize));
                }
            }
        }
    }

    #[test]
    fn walks_from_empty_sources_is_empty() {
        let g = tgraph::gen::erdos_renyi(10, 50, 1).build();
        let w = generate_walks_from(&g, &WalkConfig::new(2, 4), &[], &ParConfig::default());
        assert_eq!(w.num_walks(), 0);
    }

    #[test]
    fn isolated_vertex_yields_singleton_walk() {
        let g = GraphBuilder::new().add_edge(TemporalEdge::new(0, 1, 0.5)).num_nodes(5).build();
        let walks = generate_walks_serial(&g, &WalkConfig::new(1, 4));
        assert_eq!(walks.walk(4), &[4]);
    }

    #[test]
    fn generated_walksets_carry_build_stats() {
        let g = tgraph::gen::erdos_renyi(50, 500, 2).build();
        let cfg = WalkConfig::new(1, 4).sampler(TransitionSampler::Softmax);
        let walks = generate_walks_serial(&g, &cfg);
        let stats = walks.sampler_stats().expect("bulk runs record stats");
        assert!(stats.table_bytes > 0);
    }
}
