//! Step-synchronous, locality-grouped walk engine.
//!
//! The per-walk engine runs Algorithm 1's inner loop to completion one
//! walk at a time, so every step is a *dependent* random load: the next
//! segment address is unknown until the current sample resolves, and on
//! graphs larger than the cache the core stalls on memory for most of the
//! kernel (the paper's §VI finding that RW-P1 is memory-latency-bound).
//!
//! This engine restructures execution the way ThunderRW's step-interleaved
//! mode does, adapted to temporal walks. A worker claims a *block* of walk
//! slots and advances every active walk in the block by **one hop per
//! round**:
//!
//! 1. **Group** the active walks by current vertex with a counting sort
//!    into a reusable scratch arena (`O(active + touched)` — a touched-
//!    vertex list resets the counts array, so cost never scales with
//!    `|V|`). Walks sitting on the same vertex become adjacent, so one
//!    segment's cache lines (timestamps, destinations, CDF slice) serve
//!    all of them back-to-back — on degree-skewed graphs the frontier
//!    concentrates onto hubs, which is exactly where the reuse lands.
//! 2. **Step** each grouped walk, software-prefetching ahead: the CSR
//!    offsets entry [`OFFSET_PREFETCH_DIST`] slots ahead (a prefetch
//!    cannot chase a pointer, so the offsets load is warmed one stage
//!    earlier than the segment it unlocks) and the segment data plus CDF
//!    slice [`SEGMENT_PREFETCH_DIST`] slots ahead. Within a round the
//!    walks are independent, which turns the per-walk dependent chain
//!    into memory-level parallelism.
//!
//! Output is **bit-identical** to the per-walk engine: each
//! `(walk, vertex)` pair owns its own `WalkRng::from_stream` RNG, and a
//! walk's draws still happen in hop order (one per round), so reordering
//! *across* walks cannot change what any single walk samples. The
//! equivalence suite in `tests/engine_equivalence.rs` asserts this for
//! every sampler.
//!
//! Blocks are claimed from a [`par::ChunkQueue`] so a block that drains
//! early (short walks) never idles its worker while another worker grinds
//! a hub-heavy block — the dynamic-scheduling analog of the per-walk
//! engine's chunked loop, but with per-worker scratch arenas that persist
//! across blocks.

use obs::{CounterHandle, HistogramHandle};
use par::{parallel_workers, ParConfig};
use tgraph::{NodeId, TemporalGraph, Time};

use super::{suffix_start, Output, StartSet};
use crate::sampler::PreparedSampler;
use crate::{WalkConfig, WalkRng};

/// How many frontier slots ahead the CSR offsets entry is prefetched.
/// First stage of the two-stage pipeline; must exceed
/// [`SEGMENT_PREFETCH_DIST`] so segment bounds are warm by the time the
/// second stage dereferences them.
pub const OFFSET_PREFETCH_DIST: usize = 16;

/// How many frontier slots ahead segment data (timestamps, destinations,
/// CDF slice) is prefetched — far enough to cover DRAM latency at a few
/// tens of nanoseconds per step, near enough that lines are rarely
/// evicted before use.
pub const SEGMENT_PREFETCH_DIST: usize = 4;

/// Minimum walks per block. Chunk sizes tuned for the per-walk engine
/// (tens to hundreds of walks) are too small for grouping to find
/// co-located walks, so blocks are clamped up to this floor; the scratch
/// arena stays ~100 KiB per worker, comfortably inside L2. Purely a
/// scheduling knob — output is block-size-independent.
pub const MIN_BLOCK: usize = 1024;

/// Per-worker scratch arena, reused across every block a worker claims.
/// All vectors are indexed by block-local walk slot except `counts`
/// (indexed by vertex, zero outside [`group_frontier`]) and `touched`
/// (the list of vertices whose counts are nonzero, used to reset them).
struct Scratch {
    /// Current vertex of each walk in the block.
    curr: Vec<NodeId>,
    /// Timestamp of the edge each walk last traversed.
    curr_time: Vec<Time>,
    /// Vertices written so far to each walk's output row.
    written: Vec<u32>,
    /// Per-walk RNG streams (identical to the per-walk engine's).
    rng: Vec<WalkRng>,
    /// Slots still walking, in last round's grouped order.
    frontier: Vec<u32>,
    /// Frontier counting-sorted by current vertex.
    grouped: Vec<u32>,
    /// Per-vertex occurrence counts / placement cursors.
    counts: Vec<u32>,
    /// Vertices with nonzero `counts`, in first-touch order.
    touched: Vec<NodeId>,
}

impl Scratch {
    fn new(num_nodes: usize) -> Self {
        Self {
            curr: Vec::new(),
            curr_time: Vec::new(),
            written: Vec::new(),
            rng: Vec::new(),
            frontier: Vec::new(),
            grouped: Vec::new(),
            counts: vec![0; num_nodes],
            touched: Vec::new(),
        }
    }
}

/// Runs the batched engine over `total` walk slots, writing the same
/// walks the per-walk engine would produce to `out`.
///
/// Blocks are disjoint slot ranges, so each output row is written by
/// exactly one worker (same aliasing argument as the per-walk engine's
/// chunks); in sink mode each block is emitted whole once it drains.
pub(super) fn run(
    g: &TemporalGraph,
    cfg: &WalkConfig,
    sampler: &PreparedSampler,
    par: &ParConfig,
    starts: StartSet<'_>,
    total: usize,
    out: &Output<'_>,
) {
    let par = par.chunk_size(par.chunk().max(MIN_BLOCK));
    let stats = RoundStats::from_global();
    parallel_workers(&par, total, |queue| {
        let mut scratch = Scratch::new(g.num_nodes());
        while let Some(block) = queue.next_chunk() {
            out.with_block(block, cfg.max_length, |nodes_ptr, lengths_ptr, base| {
                run_block(
                    g,
                    cfg,
                    sampler,
                    starts,
                    block,
                    &mut scratch,
                    nodes_ptr,
                    lengths_ptr,
                    base,
                    &stats,
                );
            });
        }
    });
}

/// Handles for the per-round locality metrics, resolved once per bulk
/// run (all `None` — inlined no-ops — when the global recorder is off).
/// Frontier sizes go to a histogram one relaxed add per *round*; rounds,
/// distinct-vertex group counts, and block counts accumulate in worker
/// locals and flush once per *block*, so the per-hop path records
/// nothing at all.
struct RoundStats {
    frontier: HistogramHandle,
    rounds: CounterHandle,
    groups: CounterHandle,
    blocks: CounterHandle,
}

impl RoundStats {
    fn from_global() -> Self {
        let rec = obs::Recorder::global();
        Self {
            frontier: rec.histogram("twalk_frontier_size"),
            rounds: rec.counter("twalk_rounds_total"),
            groups: rec.counter("twalk_frontier_groups_total"),
            blocks: rec.counter("twalk_blocks_total"),
        }
    }
}

/// Advances every walk in `block` from seed to termination, one hop per
/// round. Output rows are addressed at `slot index − base` (the
/// [`Output::with_block`] contract).
#[allow(clippy::too_many_arguments)]
fn run_block(
    g: &TemporalGraph,
    cfg: &WalkConfig,
    sampler: &PreparedSampler,
    starts: StartSet<'_>,
    (start, end): (usize, usize),
    s: &mut Scratch,
    nodes_ptr: usize,
    lengths_ptr: usize,
    base: usize,
    stats: &RoundStats,
) {
    let nodes = nodes_ptr as *mut NodeId;
    let lengths = lengths_ptr as *mut u32;
    let nl = cfg.max_length;
    let block_len = end - start;
    let stride = starts.stride();
    // First output row of this block: 0 in sink mode (base == start),
    // `start` against the full matrix (base == 0).
    let row0 = start - base;

    s.curr.clear();
    s.curr_time.clear();
    s.written.clear();
    s.rng.clear();
    s.frontier.clear();

    // Seed the block: slot j holds global walk index start + j, whose
    // (walk, start) pair is carried as counters (one division per block).
    let mut w = start / stride;
    let mut i = start % stride;
    for j in 0..block_len {
        let v = starts.vertex(i);
        s.rng.push(WalkRng::from_stream(cfg.seed, w as u64, v as u64));
        s.curr.push(v);
        s.curr_time.push(cfg.start_time);
        s.written.push(1);
        // SAFETY: slot start + j lies in this worker's disjoint block.
        unsafe { *nodes.add((row0 + j) * nl) = v };
        s.frontier.push(j as u32);
        i += 1;
        if i == stride {
            i = 0;
            w += 1;
        }
    }

    // All walks in a block are in lockstep, so "is this the first hop"
    // is a property of the round, not of the walk.
    let mut first_hop = true;
    let mut rounds_local = 0u64;
    let mut groups_local = 0u64;
    for _round in 1..nl {
        if s.frontier.is_empty() {
            break;
        }
        let groups = group_frontier(s);
        if stats.frontier.is_enabled() {
            stats.frontier.record(s.frontier.len() as u64);
            rounds_local += 1;
            groups_local += groups as u64;
        }
        s.frontier.clear();
        let grouped = &s.grouped;
        for pos in 0..grouped.len() {
            if pos + OFFSET_PREFETCH_DIST < grouped.len() {
                g.prefetch_offsets(s.curr[grouped[pos + OFFSET_PREFETCH_DIST] as usize]);
            }
            if pos + SEGMENT_PREFETCH_DIST < grouped.len() {
                let v = s.curr[grouped[pos + SEGMENT_PREFETCH_DIST] as usize];
                g.prefetch_segment(v);
                sampler.prefetch(v);
            }
            let slot = grouped[pos] as usize;
            let v = s.curr[slot];
            let now = s.curr_time[slot];
            let (dsts, times) = g.neighbor_slices(v);
            let lo = suffix_start(times, cfg, now, first_hop);
            if lo >= dsts.len() {
                continue; // Algorithm 1 line 9: dead end — drop from frontier.
            }
            let pick = sampler.sample(v, times, lo, now, &mut s.rng[slot]);
            let next = dsts[pick];
            s.curr[slot] = next;
            s.curr_time[slot] = times[pick];
            let len = s.written[slot] as usize;
            // SAFETY: slot start + slot is in this worker's block and
            // len < nl (walks leave the frontier at nl vertices).
            unsafe { *nodes.add((row0 + slot) * nl + len) = next };
            s.written[slot] = (len + 1) as u32;
            s.frontier.push(slot as u32);
        }
        first_hop = false;
    }

    for j in 0..block_len {
        // SAFETY: disjoint block, as above.
        unsafe { *lengths.add(row0 + j) = s.written[j] };
    }
    stats.rounds.add(rounds_local);
    stats.groups.add(groups_local);
    stats.blocks.inc();
}

/// Counting-sorts `s.frontier` by current vertex into `s.grouped`.
///
/// Three passes over the frontier plus one over the touched-vertex list:
/// count occurrences (recording each vertex on first touch), turn counts
/// into placement cursors by a running prefix over the touched list in
/// discovery order, place slots, then zero the touched counts so the
/// arena is clean for the next round. Grouping order is irrelevant for
/// output (per-walk RNG streams); only the *within-walk* hop order
/// matters, and that is preserved by the round structure. Returns the
/// number of distinct vertices the frontier grouped onto — the
/// "batching efficiency" numerator (frontier / groups = mean walks
/// sharing one hot segment fetch).
fn group_frontier(s: &mut Scratch) -> usize {
    for &slot in &s.frontier {
        let v = s.curr[slot as usize] as usize;
        if s.counts[v] == 0 {
            s.touched.push(v as NodeId);
        }
        s.counts[v] += 1;
    }
    let mut offset = 0u32;
    for &v in &s.touched {
        let c = s.counts[v as usize];
        s.counts[v as usize] = offset;
        offset += c;
    }
    s.grouped.clear();
    s.grouped.resize(s.frontier.len(), 0);
    for &slot in &s.frontier {
        let v = s.curr[slot as usize] as usize;
        s.grouped[s.counts[v] as usize] = slot;
        s.counts[v] += 1;
    }
    for &v in &s.touched {
        s.counts[v as usize] = 0;
    }
    let groups = s.touched.len();
    s.touched.clear();
    groups
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_walks, TransitionSampler, WalkEngine};

    fn engines(cfg: WalkConfig) -> (crate::WalkSet, crate::WalkSet) {
        let g = tgraph::gen::preferential_attachment(500, 3, 17).undirected(true).build();
        let par = ParConfig::with_threads(4).chunk_size(64);
        let a = generate_walks(&g, &cfg.engine(WalkEngine::PerWalk), &par);
        let b = generate_walks(&g, &cfg.engine(WalkEngine::Batched), &par);
        (a, b)
    }

    #[test]
    fn batched_matches_per_walk_on_skewed_graph() {
        for sampler in [
            TransitionSampler::Uniform,
            TransitionSampler::Softmax,
            TransitionSampler::SoftmaxRecency,
            TransitionSampler::LinearTime,
        ] {
            let (a, b) = engines(WalkConfig::new(4, 8).sampler(sampler).seed(3));
            assert_eq!(a, b, "engines diverged for {sampler}");
        }
    }

    #[test]
    fn batched_handles_walk_length_one() {
        let (a, b) = engines(WalkConfig::new(2, 1).seed(9));
        assert_eq!(a, b);
        assert!(b.iter().all(|w| w.len() == 1));
    }

    #[test]
    fn grouping_is_a_permutation_of_the_frontier() {
        let mut s = Scratch::new(5);
        s.curr = vec![3, 1, 3, 0, 1, 3];
        s.frontier = (0..6).collect();
        let groups = group_frontier(&mut s);
        assert_eq!(groups, 3, "three distinct vertices in the frontier");
        // First-touch order: vertex 3 (slots 0, 2, 5), 1 (slots 1, 4),
        // then 0 (slot 3).
        assert_eq!(s.grouped, vec![0, 2, 5, 1, 4, 3]);
        assert!(s.counts.iter().all(|&c| c == 0), "arena left dirty");
        assert!(s.touched.is_empty());
    }
}
