//! Temporal random walk engine (paper §V-A, Algorithm 1).
//!
//! Given a temporal graph, this crate generates `K` temporally-valid random
//! walks of maximum length `N` from every vertex. A walk
//! `{(u, u1, t1), (u1, u2, t2), …}` is temporally valid when its edge
//! timestamps strictly increase (Definition III.2). Walks terminate early
//! when a vertex has no temporally-admissible out-edge, which is why real
//! (power-law) graphs produce the short-walk-dominated length distribution
//! of the paper's Fig. 4.
//!
//! Transition probabilities (paper §IV-A):
//!
//! * [`TransitionSampler::Uniform`] — `p(v|u) = 1 / |N_u|` over the
//!   temporally-valid neighbor set;
//! * [`TransitionSampler::Softmax`] — Eq. (1),
//!   `Pr[v|u] ∝ exp(τ(u, v) / r)` with `r` the timestamp span;
//! * [`TransitionSampler::SoftmaxRecency`] — the temporal-continuity variant
//!   motivated by the paper's Fig. 2 discussion, weighting candidates by
//!   `exp(-(τ(u, v) - t_curr) / r)` so interactions nearer in time are
//!   preferred;
//! * [`TransitionSampler::LinearTime`] — CTDNE's linear rank bias.
//!
//! Sampling runs through a prepare-then-sample API: a [`SamplerBuilder`]
//! (or the [`prepare`](TransitionSampler::prepare) shorthand) turns the
//! configuration enum into a [`PreparedSampler`]. For the softmax variants
//! the builder chooses a [`SamplingMethod`] per vertex — `O(log d)`
//! inverse-CDF tables by default, `O(1)` alias tables for high-degree
//! static hubs, bounded rejection for vertices churning under ingest —
//! all drawing from the same analytic distribution; see the [`sampler`]
//! module. The prepared sampler is built once per graph, shared read-only
//! across worker threads, and reusable across bulk and incremental-refresh
//! runs. Custom bias functions plug in via the [`TransitionBias`] trait.
//!
//! The middle loop over vertices is parallelized with work stealing, exactly
//! as the paper found optimal, and results are deterministic in the seed
//! regardless of thread count (per-walk RNG streams).
//!
//! Three execution strategies run the kernel ([`WalkEngine`]): the classic
//! per-walk loop nest; the step-synchronous batched engine
//! ([`engine::batched`]) that advances blocks of walks one hop per round,
//! grouping active walks by current vertex and software-prefetching
//! upcoming segments; and the step-interleaved engine
//! ([`engine::interleaved`]) that keeps a per-worker ring of in-flight
//! walks and switches between them at explicit fetch/advance stage
//! boundaries so prefetches overlap with useful work. All produce
//! bit-identical output; [`WalkEngine::Auto`] (the default) picks per run
//! from the graph's [`estimated_working_set`].
//!
//! For call sites that would otherwise thread knobs through several of
//! these types, [`WalkOptions`] bundles the whole surface (kernel shape,
//! bias, method policy, engine) behind one validated builder.
//!
//! # Examples
//!
//! ```
//! use twalk::{generate_walks, WalkConfig};
//! use par::ParConfig;
//!
//! let g = tgraph::gen::preferential_attachment(300, 2, 1).undirected(true).build();
//! let cfg = WalkConfig::new(10, 6).seed(7);
//! let walks = generate_walks(&g, &cfg, &ParConfig::with_threads(2));
//! assert_eq!(walks.num_walks(), 10 * g.num_nodes());
//! // Every walk starts at its designated vertex.
//! assert!(walks.iter().all(|w| !w.is_empty()));
//! ```

mod config;
pub mod engine;
mod options;
mod rng;
pub mod sampler;
mod sink;
pub mod stats;
mod walkset;

pub use config::{
    TransitionSampler, WalkConfig, WalkEngine, DEFAULT_AUTO_LLC_BYTES, DEFAULT_WALK_RING,
};
pub use engine::{
    estimated_working_set, generate_walks, generate_walks_from, generate_walks_from_prepared,
    generate_walks_prepared, generate_walks_prepared_to_sink, generate_walks_serial,
    generate_walks_to_sink, resolved_engine, walk_from, INTERLEAVE_MAX_MEAN_DEGREE,
};
pub use options::WalkOptions;
pub use rng::WalkRng;
pub use sampler::{
    PreparedSampler, SamplerBuildStats, SamplerBuilder, SamplerTables, SamplingMethod,
    TransitionBias, VertexSampler, WeightedTables, DEFAULT_ALIAS_DEGREE,
};
pub use sink::{ChannelSink, CollectSink, WalkChunk, WalkSink};
pub use walkset::{WalkIter, WalkSet, WalkSetBuilder};
