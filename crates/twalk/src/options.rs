//! One bundle for every walk knob: [`WalkOptions`].
//!
//! The knobs used to sprawl — `WalkConfig` for the kernel,
//! `TransitionSampler::prepare` for the tables, engine and threshold
//! setters on downstream `Hyperparams` — and adding per-vertex sampling
//! methods would have scattered three more. `WalkOptions` gathers the
//! whole surface (kernel shape × sampler bias × method policy × engine
//! choice) behind one builder with a single [`WalkOptions::validate`]
//! authority for cross-knob rules, and projects it back out as the
//! narrow types each layer consumes: [`WalkOptions::config`] for the
//! kernel, [`WalkOptions::sampler_builder`] for table construction, or
//! the one-call [`WalkOptions::generate`].

use par::ParConfig;
use tgraph::{NodeId, TemporalGraph, Time};

use crate::sampler::{PreparedSampler, SamplerBuilder, SamplingMethod, DEFAULT_ALIAS_DEGREE};
use crate::sink::WalkSink;
use crate::{
    generate_walks_from_prepared, generate_walks_prepared, generate_walks_prepared_to_sink,
    TransitionSampler, WalkConfig, WalkEngine, WalkSet,
};

/// Every knob of a bulk walk run, in one place.
///
/// Construction mirrors [`WalkConfig`] (chainable setters over public
/// fields) and adds the sampler-method surface the plain config cannot
/// express. [`WalkOptions::validate`] is the single authority on invalid
/// combinations — the CLI calls it at parse time, and
/// [`WalkOptions::prepare`] enforces it for library users.
///
/// # Examples
///
/// ```
/// use twalk::{SamplingMethod, TransitionSampler, WalkEngine, WalkOptions};
///
/// let g = tgraph::gen::preferential_attachment(400, 3, 7).undirected(true).build();
/// let opts = WalkOptions::new(4, 6)
///     .sampler(TransitionSampler::Softmax)
///     .sampler_method(SamplingMethod::Auto)
///     .engine(WalkEngine::Interleaved)
///     .seed(11);
/// let walks = opts.generate(&g, &par::ParConfig::with_threads(2));
/// assert_eq!(walks.num_walks(), 4 * g.num_nodes());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WalkOptions {
    /// Number of walks started from each vertex (`K`).
    pub walks_per_node: usize,
    /// Maximum number of vertices per walk (`N`).
    pub max_length: usize,
    /// Transition probability model.
    pub sampler: TransitionSampler,
    /// Per-vertex sampling method policy for the weighted biases.
    pub sampler_method: SamplingMethod,
    /// Execution strategy for the bulk kernels.
    pub engine: WalkEngine,
    /// In-flight walks per worker for [`WalkEngine::Interleaved`].
    pub ring: usize,
    /// [`WalkEngine::Auto`] working-set threshold (bytes).
    pub auto_llc_bytes: usize,
    /// RNG seed; walks are deterministic in this seed.
    pub seed: u64,
    /// Earliest admissible first-hop timestamp.
    pub start_time: Time,
    /// `false` turns the kernel into a static DeepWalk walker.
    pub respect_time: bool,
    /// Degree at or above which [`SamplingMethod::Auto`] promotes a
    /// static vertex to an alias table.
    pub alias_degree_threshold: usize,
    /// Optional cap on alias-table payload bytes (hub-first admission).
    pub alias_budget_bytes: Option<usize>,
}

impl WalkOptions {
    /// Creates options with the given `K` and `N` and every other knob
    /// at its default (uniform bias, `Auto` method, `Auto` engine).
    ///
    /// # Panics
    ///
    /// Panics if `walks_per_node == 0` or `max_length == 0`, like
    /// [`WalkConfig::new`].
    pub fn new(walks_per_node: usize, max_length: usize) -> Self {
        let cfg = WalkConfig::new(walks_per_node, max_length);
        Self {
            walks_per_node,
            max_length,
            sampler: cfg.sampler,
            sampler_method: SamplingMethod::default(),
            engine: cfg.engine,
            ring: cfg.ring,
            auto_llc_bytes: cfg.auto_llc_bytes,
            seed: cfg.seed,
            start_time: cfg.start_time,
            respect_time: cfg.respect_time,
            alias_degree_threshold: DEFAULT_ALIAS_DEGREE,
            alias_budget_bytes: None,
        }
    }

    /// Paper-optimal kernel shape: `K = 10`, `N = 6` (§VII-A).
    pub fn paper_optimal() -> Self {
        Self::new(10, 6)
    }

    /// Sets `K`. Panics if zero.
    #[must_use]
    pub fn walks_per_node(mut self, k: usize) -> Self {
        assert!(k >= 1, "need at least one walk per node");
        self.walks_per_node = k;
        self
    }

    /// Sets `N`. Panics if zero.
    #[must_use]
    pub fn max_length(mut self, n: usize) -> Self {
        assert!(n >= 1, "walks must hold at least the start vertex");
        self.max_length = n;
        self
    }

    /// Sets the transition sampler.
    #[must_use]
    pub fn sampler(mut self, sampler: TransitionSampler) -> Self {
        self.sampler = sampler;
        self
    }

    /// Sets the per-vertex sampling method policy.
    #[must_use]
    pub fn sampler_method(mut self, method: SamplingMethod) -> Self {
        self.sampler_method = method;
        self
    }

    /// Sets the execution strategy.
    #[must_use]
    pub fn engine(mut self, engine: WalkEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the interleaved engine's ring size. Panics if zero.
    #[must_use]
    pub fn ring(mut self, ring: usize) -> Self {
        assert!(ring >= 1, "the walk ring needs at least one slot");
        self.ring = ring;
        self
    }

    /// Overrides the [`WalkEngine::Auto`] working-set threshold (bytes).
    #[must_use]
    pub fn auto_llc_bytes(mut self, bytes: usize) -> Self {
        self.auto_llc_bytes = bytes;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the earliest admissible first-hop timestamp.
    #[must_use]
    pub fn start_time(mut self, t: Time) -> Self {
        self.start_time = t;
        self
    }

    /// Disables (or re-enables) temporal validity.
    #[must_use]
    pub fn respect_time(mut self, yes: bool) -> Self {
        self.respect_time = yes;
        self
    }

    /// Sets the alias promotion degree threshold.
    #[must_use]
    pub fn alias_degree_threshold(mut self, degree: usize) -> Self {
        self.alias_degree_threshold = degree;
        self
    }

    /// Caps the alias tables' payload bytes.
    #[must_use]
    pub fn alias_budget_bytes(mut self, bytes: usize) -> Self {
        self.alias_budget_bytes = Some(bytes);
        self
    }

    /// Rejects invalid knob combinations with a message fit for CLI
    /// errors. Currently: a forced table method
    /// ([`SamplingMethod::Cdf`] excepted, since it degrades gracefully
    /// to "no tables needed") on a closed-form bias, and an empty ring.
    pub fn validate(&self) -> Result<(), String> {
        if self.ring == 0 {
            return Err("walk ring must have at least one slot".into());
        }
        match (self.sampler_method, self.sampler) {
            (SamplingMethod::Auto | SamplingMethod::Cdf, _) => Ok(()),
            (_, TransitionSampler::Softmax | TransitionSampler::SoftmaxRecency) => Ok(()),
            (m, s) => Err(format!(
                "sampler method \"{m}\" requires a weighted sampler (softmax or recency): \
                 \"{s}\" samples in closed form and builds no tables"
            )),
        }
    }

    /// Projects the kernel-facing knobs into a [`WalkConfig`].
    pub fn config(&self) -> WalkConfig {
        WalkConfig::new(self.walks_per_node, self.max_length)
            .sampler(self.sampler)
            .seed(self.seed)
            .start_time(self.start_time)
            .respect_time(self.respect_time)
            .engine(self.engine)
            .auto_llc_bytes(self.auto_llc_bytes)
            .ring(self.ring)
    }

    /// Projects the sampler-facing knobs into a [`SamplerBuilder`];
    /// callers with churn information chain
    /// [`SamplerBuilder::churned`] before building.
    pub fn sampler_builder(&self) -> SamplerBuilder {
        let b = SamplerBuilder::new(self.sampler)
            .method(self.sampler_method)
            .alias_degree_threshold(self.alias_degree_threshold);
        match self.alias_budget_bytes {
            Some(bytes) => b.alias_budget_bytes(bytes),
            None => b,
        }
    }

    /// Builds the prepared sampler for `g`.
    ///
    /// # Panics
    ///
    /// Panics if [`WalkOptions::validate`] rejects the options.
    pub fn prepare(&self, g: &TemporalGraph) -> PreparedSampler {
        if let Err(e) = self.validate() {
            panic!("invalid walk options: {e}");
        }
        self.sampler_builder().build(g)
    }

    /// Prepares and runs a full bulk walk generation.
    ///
    /// # Panics
    ///
    /// Panics if [`WalkOptions::validate`] rejects the options.
    pub fn generate(&self, g: &TemporalGraph, par: &ParConfig) -> WalkSet {
        let prepared = self.prepare(g);
        generate_walks_prepared(g, &self.config(), &prepared, par)
    }

    /// Prepares and runs a full bulk generation streamed to `sink`
    /// (chunked emission, [`crate::WalkChunk`]) instead of materializing
    /// a [`WalkSet`].
    ///
    /// # Panics
    ///
    /// Panics if [`WalkOptions::validate`] rejects the options.
    pub fn generate_to_sink(&self, g: &TemporalGraph, par: &ParConfig, sink: &dyn WalkSink) {
        let prepared = self.prepare(g);
        generate_walks_prepared_to_sink(g, &self.config(), &prepared, par, sink);
    }

    /// Prepares and runs an incremental refresh from `sources` only.
    ///
    /// # Panics
    ///
    /// Panics if [`WalkOptions::validate`] rejects the options or any
    /// source id is out of range.
    pub fn generate_from(&self, g: &TemporalGraph, sources: &[NodeId], par: &ParConfig) -> WalkSet {
        let prepared = self.prepare(g);
        generate_walks_from_prepared(g, &self.config(), &prepared, sources, par)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_knob_flows_into_the_projections() {
        let opts = WalkOptions::new(3, 7)
            .sampler(TransitionSampler::SoftmaxRecency)
            .sampler_method(SamplingMethod::Alias)
            .engine(WalkEngine::Interleaved)
            .ring(8)
            .auto_llc_bytes(123)
            .seed(99)
            .start_time(0.25)
            .respect_time(false)
            .alias_degree_threshold(5)
            .alias_budget_bytes(4096);
        let cfg = opts.config();
        assert_eq!(cfg.walks_per_node, 3);
        assert_eq!(cfg.max_length, 7);
        assert_eq!(cfg.sampler, TransitionSampler::SoftmaxRecency);
        assert_eq!(cfg.engine, WalkEngine::Interleaved);
        assert_eq!(cfg.ring, 8);
        assert_eq!(cfg.auto_llc_bytes, 123);
        assert_eq!(cfg.seed, 99);
        assert_eq!(cfg.start_time, 0.25);
        assert!(!cfg.respect_time);
        // The builder projection carries the method policy: a tiny graph
        // with a degree-5 hub gets an alias table under threshold 5.
        let g = tgraph::gen::preferential_attachment(50, 5, 3).undirected(true).build();
        let prepared = opts.prepare(&g);
        assert!(prepared.stats().alias_vertices > 0);
    }

    #[test]
    fn closed_form_biases_reject_forced_table_methods() {
        for sampler in [TransitionSampler::Uniform, TransitionSampler::LinearTime] {
            for method in [SamplingMethod::Alias, SamplingMethod::Rejection] {
                let err = WalkOptions::new(1, 2)
                    .sampler(sampler)
                    .sampler_method(method)
                    .validate()
                    .unwrap_err();
                assert!(err.contains(&method.to_string()), "{err:?}");
                assert!(err.contains(&sampler.to_string()), "{err:?}");
            }
            // Auto and Cdf degrade gracefully on closed-form biases.
            for method in [SamplingMethod::Auto, SamplingMethod::Cdf] {
                assert!(WalkOptions::new(1, 2)
                    .sampler(sampler)
                    .sampler_method(method)
                    .validate()
                    .is_ok());
            }
        }
    }

    #[test]
    #[should_panic(expected = "invalid walk options")]
    fn prepare_enforces_validation() {
        let g = tgraph::gen::erdos_renyi(10, 40, 1).build();
        let _ = WalkOptions::new(1, 2)
            .sampler(TransitionSampler::Uniform)
            .sampler_method(SamplingMethod::Rejection)
            .prepare(&g);
    }

    #[test]
    fn generate_matches_the_unbundled_path() {
        let g = tgraph::gen::preferential_attachment(200, 3, 5).undirected(true).build();
        let opts = WalkOptions::new(2, 6).sampler(TransitionSampler::Softmax).seed(41);
        let par = ParConfig::with_threads(2);
        let bundled = opts.generate(&g, &par);
        let prepared = opts.sampler_builder().build(&g);
        let unbundled = generate_walks_prepared(&g, &opts.config(), &prepared, &par);
        assert_eq!(bundled, unbundled);
        // Refresh rows match full-run rows, same as the raw entry points.
        let sources = [0u32, 9, 42];
        let partial = opts.generate_from(&g, &sources, &par);
        for w in 0..2 {
            for (i, &v) in sources.iter().enumerate() {
                assert_eq!(
                    partial.walk(w * sources.len() + i),
                    bundled.walk(w * g.num_nodes() + v as usize)
                );
            }
        }
    }
}
