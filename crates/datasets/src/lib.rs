//! The paper's evaluation datasets (Table II) as loaders + synthetic
//! stand-ins.
//!
//! The real datasets (network repository / SNAP / DBLP dumps) cannot be
//! fetched in an offline environment, so each is replaced by a generator
//! that reproduces the property the paper's experiments depend on:
//!
//! * link prediction datasets (`ia-email`, `wiki-talk`, `stackoverflow`) →
//!   temporal preferential attachment: power-law degrees and bursty repeat
//!   interactions, which drive the Fig. 4 walk-length distribution;
//! * node classification datasets (`dblp3`, `dblp5`, `brain`) → temporal
//!   stochastic block models with 3 / 5 / 10 planted classes, giving
//!   structure-correlated labels like DBLP research areas;
//!
//! Every stand-in is scaled down from the paper's sizes by a default factor
//! so experiments finish on a laptop; pass a larger `scale` to approach the
//! paper's sizes. Real data in the artifact's `.wel` / label formats can be
//! loaded with [`load_wel`] and [`load_labeled`], so dropping in the
//! original files exercises the identical pipeline.
//!
//! # Examples
//!
//! ```
//! let d = datasets::ia_email(1.0);
//! assert!(d.graph.num_edges() > 10_000);
//! assert!(d.labels.is_none());
//! let b = datasets::dblp3(1.0);
//! assert_eq!(b.num_classes(), 3);
//! ```

use std::path::Path;

use tgraph::{TGraphError, TemporalGraph};

/// A named dataset: graph, optional labels, and the paper's original size
/// for Table II comparison.
#[derive(Debug, Clone)]
pub struct NamedDataset {
    /// Dataset name as used in the paper.
    pub name: String,
    /// What the stand-in models and how.
    pub description: String,
    /// The temporal graph.
    pub graph: TemporalGraph,
    /// Class label per vertex for node-classification datasets.
    pub labels: Option<Vec<u16>>,
    /// Node count reported in the paper's Table II.
    pub paper_nodes: usize,
    /// Temporal edge count reported in the paper's Table II.
    pub paper_edges: usize,
}

impl NamedDataset {
    /// Number of distinct classes (0 for unlabeled datasets).
    pub fn num_classes(&self) -> usize {
        self.labels
            .as_ref()
            .map(|l| l.iter().map(|&c| c as usize + 1).max().unwrap_or(0))
            .unwrap_or(0)
    }

    /// The task this dataset serves in the paper.
    pub fn task(&self) -> &'static str {
        if self.labels.is_some() {
            "node classification"
        } else {
            "link prediction"
        }
    }
}

fn scaled(base: usize, scale: f64) -> usize {
    ((base as f64 * scale).round() as usize).max(32)
}

/// `ia-email` stand-in (paper: Enron email network, 87,274 nodes /
/// 1,148,072 temporal edges). Default scale yields ≈ 4k nodes.
pub fn ia_email(scale: f64) -> NamedDataset {
    let n = scaled(4_000, scale);
    let graph = tgraph::gen::preferential_attachment(n, 4, 0xEA11)
        .undirected(true)
        .normalize_times(true)
        .build();
    NamedDataset {
        name: "ia-email".into(),
        description: "temporal preferential-attachment stand-in for the Enron email network".into(),
        graph,
        labels: None,
        paper_nodes: 87_274,
        paper_edges: 1_148_072,
    }
}

/// `wiki-talk` stand-in (paper: Wikipedia Talk edits, 1,140,149 nodes /
/// 7,833,140 edges). Default scale yields ≈ 8k nodes.
pub fn wiki_talk(scale: f64) -> NamedDataset {
    let n = scaled(8_000, scale);
    let graph = tgraph::gen::preferential_attachment(n, 3, 0x3177)
        .undirected(true)
        .normalize_times(true)
        .build();
    NamedDataset {
        name: "wiki-talk".into(),
        description: "temporal preferential-attachment stand-in for the Wikipedia Talk network"
            .into(),
        graph,
        labels: None,
        paper_nodes: 1_140_149,
        paper_edges: 7_833_140,
    }
}

/// `stackoverflow` stand-in (paper: Stack Overflow interactions,
/// 6,024,271 nodes / 63,497,050 edges). Default scale yields ≈ 20k nodes —
/// the largest link prediction stand-in, used by the scaling studies.
pub fn stackoverflow(scale: f64) -> NamedDataset {
    let n = scaled(20_000, scale);
    let graph = tgraph::gen::preferential_attachment(n, 5, 0x50F1)
        .undirected(true)
        .normalize_times(true)
        .build();
    NamedDataset {
        name: "stackoverflow".into(),
        description: "temporal preferential-attachment stand-in for Stack Overflow interactions"
            .into(),
        graph,
        labels: None,
        paper_nodes: 6_024_271,
        paper_edges: 63_497_050,
    }
}

#[allow(clippy::too_many_arguments)] // plain data plumbing, not an API
fn sbm_dataset(
    name: &str,
    paper_nodes: usize,
    paper_edges: usize,
    n: usize,
    classes: u16,
    edges: usize,
    p_in: f64,
    seed: u64,
) -> NamedDataset {
    let gen = tgraph::gen::temporal_sbm(n, classes, edges, p_in, seed);
    let graph = gen.builder.undirected(true).normalize_times(true).build();
    NamedDataset {
        name: name.into(),
        description: format!(
            "temporal SBM stand-in with {classes} planted classes (p_in = {p_in})"
        ),
        graph,
        labels: Some(gen.labels),
        paper_nodes,
        paper_edges,
    }
}

/// `dblp3` stand-in (paper: DBLP co-authorship, 3 research areas,
/// 4,257 nodes / 23,540 edges).
pub fn dblp3(scale: f64) -> NamedDataset {
    let n = scaled(1_500, scale);
    sbm_dataset("dblp3", 4_257, 23_540, n, 3, n * 6, 0.9, 0xDB13)
}

/// `dblp5` stand-in (paper: DBLP co-authorship, 5 research areas,
/// 6,606 nodes / 42,815 edges).
pub fn dblp5(scale: f64) -> NamedDataset {
    let n = scaled(2_000, scale);
    sbm_dataset("dblp5", 6_606, 42_815, n, 5, n * 6, 0.9, 0xDB15)
}

/// `brain` stand-in (paper: brain tissue connectivity, 5,000 nodes /
/// 1,955,488 edges — dense). Ten planted functional regions.
pub fn brain(scale: f64) -> NamedDataset {
    let n = scaled(1_200, scale);
    sbm_dataset("brain", 5_000, 1_955_488, n, 10, n * 40, 0.85, 0xB7A1)
}

/// All six stand-ins at the given scale, in the paper's Table II order.
pub fn all(scale: f64) -> Vec<NamedDataset> {
    vec![
        ia_email(scale),
        wiki_talk(scale),
        stackoverflow(scale),
        dblp5(scale),
        dblp3(scale),
        brain(scale),
    ]
}

/// Formats datasets as the paper's Table II (plus the stand-in sizes
/// actually generated).
pub fn table2(datasets: &[NamedDataset]) -> String {
    let mut out = String::from(
        "| Task | Dataset | Paper #Nodes | Paper #Edges | Stand-in #Nodes | Stand-in #Edges |\n\
         |---|---|---|---|---|---|\n",
    );
    for d in datasets {
        out.push_str(&format!(
            "| {} | {} | {} | {} | {} | {} |\n",
            d.task(),
            d.name,
            d.paper_nodes,
            d.paper_edges,
            d.graph.num_nodes(),
            d.graph.num_edges(),
        ));
    }
    out
}

/// Loads a real `.wel` temporal graph as a link prediction dataset.
///
/// # Errors
///
/// Propagates IO/parse failures from [`tgraph::io::read_wel_file`].
pub fn load_wel<P: AsRef<Path>>(path: P, name: &str) -> Result<NamedDataset, TGraphError> {
    let graph = tgraph::io::read_wel_file(&path)?.undirected(true).normalize_times(true).build();
    Ok(NamedDataset {
        name: name.into(),
        description: format!("loaded from {}", path.as_ref().display()),
        paper_nodes: graph.num_nodes(),
        paper_edges: graph.num_edges(),
        graph,
        labels: None,
    })
}

/// Loads a real labeled dataset: a `.wel` graph plus a whitespace-separated
/// `node label` file (the artifact's `train/valid/test.tsv` concatenation).
///
/// Unlabeled vertices default to class 0.
///
/// # Errors
///
/// Propagates IO/parse failures; malformed label rows report their line.
pub fn load_labeled<P: AsRef<Path>, Q: AsRef<Path>>(
    graph_path: P,
    labels_path: Q,
    name: &str,
) -> Result<NamedDataset, TGraphError> {
    let mut ds = load_wel(graph_path, name)?;
    let text = std::fs::read_to_string(&labels_path)?;
    let mut labels = vec![0u16; ds.graph.num_nodes()];
    for (lineno, line) in text.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        let parsed = (|| -> Option<(usize, u16)> {
            let node: usize = fields.next()?.parse().ok()?;
            let label: u16 = fields.next()?.parse().ok()?;
            Some((node, label))
        })()
        .ok_or_else(|| TGraphError::Parse {
            line: lineno + 1,
            message: format!("expected `node label`, got {trimmed:?}"),
        })?;
        if parsed.0 < labels.len() {
            labels[parsed.0] = parsed.1;
        }
    }
    ds.labels = Some(labels);
    Ok(ds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stand_ins_have_expected_tasks_and_classes() {
        assert_eq!(ia_email(0.1).task(), "link prediction");
        assert_eq!(dblp3(0.2).num_classes(), 3);
        assert_eq!(dblp5(0.2).num_classes(), 5);
        assert_eq!(brain(0.2).num_classes(), 10);
    }

    #[test]
    fn scaling_changes_size_monotonically() {
        let small = wiki_talk(0.05);
        let big = wiki_talk(0.2);
        assert!(big.graph.num_nodes() > small.graph.num_nodes());
        assert!(big.graph.num_edges() > small.graph.num_edges());
    }

    #[test]
    fn table2_lists_all_datasets() {
        let ds = all(0.05);
        let t = table2(&ds);
        for name in ["ia-email", "wiki-talk", "stackoverflow", "dblp3", "dblp5", "brain"] {
            assert!(t.contains(name), "{name} missing from Table II");
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = dblp3(0.1);
        let b = dblp3(0.1);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn label_vectors_cover_every_vertex() {
        let d = brain(0.1);
        assert_eq!(d.labels.as_ref().unwrap().len(), d.graph.num_nodes());
    }

    #[test]
    fn wel_and_label_loading_round_trip() {
        let dir = std::env::temp_dir().join(format!("rwalk_ds_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let gpath = dir.join("g.wel");
        let lpath = dir.join("labels.tsv");
        std::fs::write(&gpath, "0 1 10\n1 2 20\n2 0 30\n").unwrap();
        std::fs::write(&lpath, "0 0\n1 1\n2 1\n").unwrap();
        let d = load_labeled(&gpath, &lpath, "tiny").unwrap();
        assert_eq!(d.graph.num_nodes(), 3);
        assert_eq!(d.graph.num_edges(), 6); // undirected doubling
        assert_eq!(d.labels.as_ref().unwrap(), &vec![0, 1, 1]);
        assert_eq!(d.graph.time_range(), Some((0.0, 1.0))); // normalized
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn malformed_label_file_errors() {
        let dir = std::env::temp_dir().join(format!("rwalk_ds_bad_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let gpath = dir.join("g.wel");
        let lpath = dir.join("labels.tsv");
        std::fs::write(&gpath, "0 1 10\n").unwrap();
        std::fs::write(&lpath, "not-a-node x\n").unwrap();
        let err = load_labeled(&gpath, &lpath, "bad").unwrap_err();
        assert!(matches!(err, TGraphError::Parse { line: 1, .. }));
        std::fs::remove_dir_all(&dir).ok();
    }
}
