//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the API subset its benches use: [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: after one warm-up iteration, each
//! benchmark runs `sample_size` timed iterations and reports min / mean /
//! max wall-clock time. Two CLI conventions of the real harness are
//! honored so CI scripts work unchanged:
//!
//! * `--test` runs every benchmark exactly once (smoke mode);
//! * a positional argument filters benchmarks by substring.
//!
//! Additionally, when the `BENCH_JSON` environment variable names a file,
//! every completed benchmark appends one machine-readable JSON line
//! (`{"bench":…,"samples":…,"min_ns":…,"mean_ns":…,"max_ns":…}`) to it —
//! the hook CI uses to archive the repo's perf trajectory (e.g.
//! `BENCH_w2v.json`). The file is append-only so multi-group runs and
//! multiple bench binaries can share one artifact; delete it up front for
//! a fresh capture.

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self { id: format!("{function_name}/{parameter}") }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        Self { id }
    }
}

/// Per-iteration timing hook handed to benchmark closures.
pub struct Bencher {
    samples: usize,
    /// Collected per-iteration durations.
    times: Vec<Duration>,
}

impl Bencher {
    /// Times `routine` over the configured number of samples (one warm-up
    /// iteration first).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine());
        self.times.reserve(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(routine());
            self.times.push(t0.elapsed());
        }
    }
}

/// Benchmark registry and CLI-driven runner.
pub struct Criterion {
    filter: Option<String>,
    test_mode: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { filter: None, test_mode: false, sample_size: 20 }
    }
}

impl Criterion {
    /// Applies the harness CLI conventions (`--test`, positional filter);
    /// unknown flags are ignored for compatibility with cargo-bench
    /// plumbing.
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => self.test_mode = true,
                s if s.starts_with('-') => {}
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: None }
    }

    fn run(&self, full_name: &str, sample_size: usize, f: impl FnOnce(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !full_name.contains(filter.as_str()) {
                return;
            }
        }
        let samples = if self.test_mode { 1 } else { sample_size };
        let mut b = Bencher { samples, times: Vec::new() };
        f(&mut b);
        if b.times.is_empty() {
            println!("{full_name:<48} (no samples)");
            return;
        }
        let min = b.times.iter().min().copied().unwrap_or_default();
        let max = b.times.iter().max().copied().unwrap_or_default();
        let mean = b.times.iter().sum::<Duration>() / b.times.len() as u32;
        println!(
            "{full_name:<48} time: [{} {} {}] ({} samples)",
            fmt_duration(min),
            fmt_duration(mean),
            fmt_duration(max),
            b.times.len(),
        );
        if let Some(path) = std::env::var_os("BENCH_JSON").filter(|p| !p.is_empty()) {
            append_json_line(std::path::Path::new(&path), full_name, b.times.len(), min, mean, max);
        }
    }
}

/// Appends one benchmark result as a JSON line to `path` (best-effort; a
/// failing perf log must never fail the bench run itself).
fn append_json_line(
    path: &std::path::Path,
    name: &str,
    samples: usize,
    min: Duration,
    mean: Duration,
    max: Duration,
) {
    use std::io::Write;
    let escaped: String = name
        .chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c => vec![c],
        })
        .collect();
    let line = format!(
        "{{\"bench\":\"{escaped}\",\"samples\":{samples},\"min_ns\":{},\"mean_ns\":{},\"max_ns\":{}}}\n",
        min.as_nanos(),
        mean.as_nanos(),
        max.as_nanos(),
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = written {
        eprintln!("BENCH_JSON: could not append to {}: {e}", path.display());
    }
}

fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.4} s")
    } else if s >= 1e-3 {
        format!("{:.4} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.4} µs", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Registers and immediately runs a benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        let samples = self.sample_size.unwrap_or(self.criterion.sample_size);
        self.criterion.run(&full, samples, f);
        self
    }

    /// Registers and immediately runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API compatibility; no cleanup needed).
    pub fn finish(&mut self) {}
}

/// Declares a runner function executing the given benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary from [`criterion_group!`] runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let c = Criterion { filter: None, test_mode: false, sample_size: 4 };
        let mut ran = 0usize;
        c.run("t/inc", 4, |b| {
            b.iter(|| ran += 1);
        });
        // One warm-up plus four timed iterations.
        assert_eq!(ran, 5);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let c = Criterion { filter: Some("other".into()), test_mode: false, sample_size: 4 };
        c.run("t/skipped", 4, |_| panic!("must not run"));
    }

    #[test]
    fn ids_format_like_criterion() {
        assert_eq!(BenchmarkId::new("f", 3).id, "f/3");
        assert_eq!(BenchmarkId::from_parameter(8).id, "8");
    }

    #[test]
    fn json_lines_are_appended_and_escaped() {
        let path =
            std::env::temp_dir().join(format!("bench_json_test_{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let d = Duration::from_nanos(1500);
        append_json_line(&path, "g/\"q\"", 3, d, d, d);
        append_json_line(&path, "g/plain", 1, d, d, d);
        let content = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = content.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"bench\":\"g/\\\"q\\\"\",\"samples\":3,\"min_ns\":1500,\"mean_ns\":1500,\"max_ns\":1500}"
        );
        assert!(lines[1].contains("\"bench\":\"g/plain\""));
        let _ = std::fs::remove_file(&path);
    }
}
