//! Property tests: the dispatched kernels agree with the scalar reference
//! within 1e-4 relative tolerance, across every remainder-lane case
//! (lengths 0..=67 cover all residues mod 8 and mod 16 plus the blocked
//! GEMM's 1×4 column remainders) and across unaligned slice offsets
//! (0..=3 elements, shifting 16-/32-byte alignment).
//!
//! On SIMD hardware these exercise the intrinsics paths; under
//! `SIMD_FORCE_SCALAR=1` or Miri they degenerate to scalar-vs-scalar,
//! which must then agree exactly.

/// Deterministic splitmix64 stream → f32 in [-1, 1).
struct Stream(u64);

impl Stream {
    fn next_f32(&mut self) -> f32 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        ((z >> 11) as f32 / (1u64 << 53) as f32) * 2.0 - 1.0
    }

    fn vec(&mut self, n: usize) -> Vec<f32> {
        (0..n).map(|_| self.next_f32()).collect()
    }
}

const REL_TOL: f32 = 1e-4;

fn assert_close(got: f32, want: f32, ctx: &str) {
    let scale = 1.0f32.max(want.abs());
    assert!((got - want).abs() <= REL_TOL * scale, "{ctx}: dispatched {got} vs scalar {want}");
}

fn assert_all_close(got: &[f32], want: &[f32], ctx: &str) {
    assert_eq!(got.len(), want.len());
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_close(*g, *w, &format!("{ctx}[{i}]"));
    }
}

/// Lengths covering every SIMD remainder case: the AVX2 dot unrolls by 16
/// with an 8-wide step and scalar tail, so 0..=67 hits all residues.
const LENS: std::ops::RangeInclusive<usize> = 0..=67;

/// Element offsets used to de-align slices from their allocation start.
const OFFSETS: [usize; 4] = [0, 1, 2, 3];

#[test]
fn dot_matches_scalar_reference() {
    let mut s = Stream(1);
    for len in LENS {
        for off in OFFSETS {
            let a = s.vec(len + off);
            let b = s.vec(len + off);
            let (a, b) = (&a[off..], &b[off..]);
            assert_close(
                simd::dot(a, b),
                simd::scalar::dot(a, b),
                &format!("dot len={len} off={off}"),
            );
        }
    }
}

#[test]
fn axpy_matches_scalar_reference() {
    let mut s = Stream(2);
    for len in LENS {
        for off in OFFSETS {
            let x = s.vec(len + off);
            let y0 = s.vec(len + off);
            let alpha = s.next_f32() * 3.0;
            let mut got = y0.clone();
            let mut want = y0;
            simd::axpy(alpha, &x[off..], &mut got[off..]);
            simd::scalar::axpy(alpha, &x[off..], &mut want[off..]);
            assert_all_close(&got, &want, &format!("axpy len={len} off={off}"));
        }
    }
}

#[test]
fn scale_accum_matches_scalar_reference() {
    let mut s = Stream(3);
    for len in LENS {
        for off in OFFSETS {
            let x = s.vec(len + off);
            let y0 = s.vec(len + off);
            let (a, b) = (s.next_f32(), s.next_f32() * 2.0);
            let mut got = y0.clone();
            let mut want = y0;
            simd::scale_accum(&mut got[off..], a, b, &x[off..]);
            simd::scalar::scale_accum(&mut want[off..], a, b, &x[off..]);
            assert_all_close(&got, &want, &format!("scale_accum len={len} off={off}"));
        }
    }
}

#[test]
fn fused_sigmoid_grad_matches_scalar_reference() {
    let mut s = Stream(4);
    for len in LENS {
        for off in OFFSETS {
            let h = s.vec(len + off);
            let t0 = s.vec(len + off);
            let e0 = s.vec(len + off);
            let g = s.next_f32() * 0.5;
            let (mut tg, mut eg) = (t0.clone(), e0.clone());
            let (mut tw, mut ew) = (t0, e0);
            simd::fused_sigmoid_grad(g, &h[off..], &mut tg[off..], &mut eg[off..]);
            simd::scalar::fused_sigmoid_grad(g, &h[off..], &mut tw[off..], &mut ew[off..]);
            assert_all_close(&tg, &tw, &format!("fused t len={len} off={off}"));
            assert_all_close(&eg, &ew, &format!("fused e len={len} off={off}"));
        }
    }
}

#[test]
fn gemm_matches_scalar_reference() {
    let mut s = Stream(5);
    // Shapes hitting the 1×4 column blocking, its remainders, and k-tails.
    for (m, n, k) in [
        (0, 0, 0),
        (1, 1, 1),
        (1, 4, 8),
        (2, 5, 3),
        (3, 4, 16),
        (4, 7, 9),
        (5, 3, 67),
        (7, 13, 33),
        (8, 8, 64),
        (16, 17, 24),
    ] {
        let a = s.vec(m * k);
        let bt = s.vec(n * k);
        let mut got = vec![f32::NAN; m * n];
        let mut want = vec![f32::NAN; m * n];
        simd::gemm_transb(m, n, k, &a, &bt, &mut got);
        simd::scalar::gemm_transb(m, n, k, &a, &bt, &mut want);
        assert_all_close(&got, &want, &format!("gemm {m}x{n}x{k}"));
    }
}

#[test]
fn gemm_overwrites_stale_output() {
    // C must be fully overwritten, never accumulated into.
    let (m, n, k) = (3, 5, 6);
    let mut s = Stream(6);
    let a = s.vec(m * k);
    let bt = s.vec(n * k);
    let mut fresh = vec![0.0f32; m * n];
    let mut stale = vec![123.0f32; m * n];
    simd::gemm_transb(m, n, k, &a, &bt, &mut fresh);
    simd::gemm_transb(m, n, k, &a, &bt, &mut stale);
    assert_eq!(fresh, stale);
}
