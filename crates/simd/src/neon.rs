//! NEON kernels for aarch64.
//!
//! # Safety
//!
//! Mirrors `x86.rs`: every function is `#[target_feature(enable =
//! "neon")]` and only reachable through the dispatch table after
//! `is_aarch64_feature_detected!("neon")` succeeded (NEON is mandatory on
//! aarch64, but the check keeps the selection logic uniform). All pointer
//! arithmetic is bounded by the source slice lengths; NEON `vld1q/vst1q`
//! have no alignment requirement beyond element alignment.

#![allow(unsafe_op_in_unsafe_fn)]

use core::arch::aarch64::*;

/// Dot product with two 4-lane FMA accumulators.
#[target_feature(enable = "neon")]
pub unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let mut acc0 = vdupq_n_f32(0.0);
    let mut acc1 = vdupq_n_f32(0.0);
    let mut i = 0;
    while i + 8 <= n {
        acc0 = vfmaq_f32(acc0, vld1q_f32(ap.add(i)), vld1q_f32(bp.add(i)));
        acc1 = vfmaq_f32(acc1, vld1q_f32(ap.add(i + 4)), vld1q_f32(bp.add(i + 4)));
        i += 8;
    }
    if i + 4 <= n {
        acc0 = vfmaq_f32(acc0, vld1q_f32(ap.add(i)), vld1q_f32(bp.add(i)));
        i += 4;
    }
    let mut total = vaddvq_f32(vaddq_f32(acc0, acc1));
    while i < n {
        total += *ap.add(i) * *bp.add(i);
        i += 1;
    }
    total
}

/// `y += a · x`.
#[target_feature(enable = "neon")]
pub unsafe fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    let n = x.len();
    let va = vdupq_n_f32(a);
    let xp = x.as_ptr();
    let yp = y.as_mut_ptr();
    let mut i = 0;
    while i + 4 <= n {
        let r = vfmaq_f32(vld1q_f32(yp.add(i)), va, vld1q_f32(xp.add(i)));
        vst1q_f32(yp.add(i), r);
        i += 4;
    }
    while i < n {
        *yp.add(i) += a * *xp.add(i);
        i += 1;
    }
}

/// `y = a·y + b·x`.
#[target_feature(enable = "neon")]
pub unsafe fn scale_accum(y: &mut [f32], a: f32, b: f32, x: &[f32]) {
    debug_assert_eq!(x.len(), y.len());
    let n = x.len();
    let va = vdupq_n_f32(a);
    let vb = vdupq_n_f32(b);
    let xp = x.as_ptr();
    let yp = y.as_mut_ptr();
    let mut i = 0;
    while i + 4 <= n {
        let scaled = vmulq_f32(va, vld1q_f32(yp.add(i)));
        let r = vfmaq_f32(scaled, vb, vld1q_f32(xp.add(i)));
        vst1q_f32(yp.add(i), r);
        i += 4;
    }
    while i < n {
        *yp.add(i) = a * *yp.add(i) + b * *xp.add(i);
        i += 1;
    }
}

/// Fused SGNS step: `e += g·t; t += g·h`, loading `t` once.
#[target_feature(enable = "neon")]
pub unsafe fn fused_sigmoid_grad(g: f32, h: &[f32], t: &mut [f32], e: &mut [f32]) {
    debug_assert_eq!(h.len(), t.len());
    debug_assert_eq!(h.len(), e.len());
    let n = h.len();
    let vg = vdupq_n_f32(g);
    let hp = h.as_ptr();
    let tp = t.as_mut_ptr();
    let ep = e.as_mut_ptr();
    let mut i = 0;
    while i + 4 <= n {
        let tv = vld1q_f32(tp.add(i));
        let hv = vld1q_f32(hp.add(i));
        let ev = vld1q_f32(ep.add(i));
        vst1q_f32(ep.add(i), vfmaq_f32(ev, vg, tv));
        vst1q_f32(tp.add(i), vfmaq_f32(tv, vg, hv));
        i += 4;
    }
    while i < n {
        let tv = *tp.add(i);
        *ep.add(i) += g * tv;
        *tp.add(i) = tv + g * *hp.add(i);
        i += 1;
    }
}

/// Register-blocked `C = A · Bᵀ` with 1×4 column blocking (see `x86.rs`).
#[target_feature(enable = "neon")]
pub unsafe fn gemm_transb(m: usize, n: usize, k: usize, a: &[f32], bt: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(bt.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    let ap = a.as_ptr();
    let bp = bt.as_ptr();
    let cp = c.as_mut_ptr();
    for i in 0..m {
        let ar = ap.add(i * k);
        let cr = cp.add(i * n);
        let mut j = 0;
        while j + 4 <= n {
            let b0 = bp.add(j * k);
            let b1 = bp.add((j + 1) * k);
            let b2 = bp.add((j + 2) * k);
            let b3 = bp.add((j + 3) * k);
            let mut acc0 = vdupq_n_f32(0.0);
            let mut acc1 = vdupq_n_f32(0.0);
            let mut acc2 = vdupq_n_f32(0.0);
            let mut acc3 = vdupq_n_f32(0.0);
            let mut p = 0;
            while p + 4 <= k {
                let av = vld1q_f32(ar.add(p));
                acc0 = vfmaq_f32(acc0, av, vld1q_f32(b0.add(p)));
                acc1 = vfmaq_f32(acc1, av, vld1q_f32(b1.add(p)));
                acc2 = vfmaq_f32(acc2, av, vld1q_f32(b2.add(p)));
                acc3 = vfmaq_f32(acc3, av, vld1q_f32(b3.add(p)));
                p += 4;
            }
            let mut s0 = vaddvq_f32(acc0);
            let mut s1 = vaddvq_f32(acc1);
            let mut s2 = vaddvq_f32(acc2);
            let mut s3 = vaddvq_f32(acc3);
            while p < k {
                let av = *ar.add(p);
                s0 += av * *b0.add(p);
                s1 += av * *b1.add(p);
                s2 += av * *b2.add(p);
                s3 += av * *b3.add(p);
                p += 1;
            }
            *cr.add(j) = s0;
            *cr.add(j + 1) = s1;
            *cr.add(j + 2) = s2;
            *cr.add(j + 3) = s3;
            j += 4;
        }
        while j < n {
            *cr.add(j) = dot(
                core::slice::from_raw_parts(ar, k),
                core::slice::from_raw_parts(bp.add(j * k), k),
            );
            j += 1;
        }
    }
}
