//! AVX2 + FMA kernels for x86-64.
//!
//! # Safety
//!
//! Every function here is `#[target_feature(enable = "avx2", enable =
//! "fma")]` and therefore `unsafe` to call: the caller must guarantee the
//! CPU supports both features. The only caller is the dispatch table in
//! `lib.rs`, which selects this module strictly after
//! `is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")`
//! returns true, so the contract holds for the process lifetime (CPU
//! features cannot disappear at runtime).
//!
//! Memory safety inside the kernels is bounds-driven, not type-driven: all
//! pointer arithmetic stays within `slice.len()` elements of the slice the
//! pointer was derived from (`while i + W <= n` main loops, scalar
//! remainder loops for the tail), and unaligned loads/stores
//! (`loadu`/`storeu`) are used throughout so no alignment precondition
//! exists. See DESIGN.md §10 for the full argument.

#![allow(unsafe_op_in_unsafe_fn)]

#[cfg(target_arch = "x86")]
use core::arch::x86::*;
#[cfg(target_arch = "x86_64")]
use core::arch::x86_64::*;

/// Horizontal sum of the 8 lanes of `v`.
#[inline]
#[target_feature(enable = "avx2")]
unsafe fn hsum256(v: __m256) -> f32 {
    let lo = _mm256_castps256_ps128(v);
    let hi = _mm256_extractf128_ps(v, 1);
    let s = _mm_add_ps(lo, hi);
    let shuf = _mm_movehdup_ps(s);
    let sums = _mm_add_ps(s, shuf);
    let shuf2 = _mm_movehl_ps(shuf, sums);
    _mm_cvtss_f32(_mm_add_ss(sums, shuf2))
}

/// Dot product with two 8-lane FMA accumulators.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len();
    let ap = a.as_ptr();
    let bp = b.as_ptr();
    let mut acc0 = _mm256_setzero_ps();
    let mut acc1 = _mm256_setzero_ps();
    let mut i = 0;
    while i + 16 <= n {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)), acc0);
        acc1 =
            _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(i + 8)), _mm256_loadu_ps(bp.add(i + 8)), acc1);
        i += 16;
    }
    if i + 8 <= n {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(ap.add(i)), _mm256_loadu_ps(bp.add(i)), acc0);
        i += 8;
    }
    let mut total = hsum256(_mm256_add_ps(acc0, acc1));
    while i < n {
        total += *ap.add(i) * *bp.add(i);
        i += 1;
    }
    total
}

/// `y += a · x` with 8-lane FMA.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    let n = x.len();
    let va = _mm256_set1_ps(a);
    let xp = x.as_ptr();
    let yp = y.as_mut_ptr();
    let mut i = 0;
    // 2×8 unroll: the two FMAs are independent, halving loop-control
    // overhead on this store-bound kernel.
    while i + 16 <= n {
        let r0 = _mm256_fmadd_ps(va, _mm256_loadu_ps(xp.add(i)), _mm256_loadu_ps(yp.add(i)));
        let r1 =
            _mm256_fmadd_ps(va, _mm256_loadu_ps(xp.add(i + 8)), _mm256_loadu_ps(yp.add(i + 8)));
        _mm256_storeu_ps(yp.add(i), r0);
        _mm256_storeu_ps(yp.add(i + 8), r1);
        i += 16;
    }
    if i + 8 <= n {
        let r = _mm256_fmadd_ps(va, _mm256_loadu_ps(xp.add(i)), _mm256_loadu_ps(yp.add(i)));
        _mm256_storeu_ps(yp.add(i), r);
        i += 8;
    }
    while i < n {
        *yp.add(i) += a * *xp.add(i);
        i += 1;
    }
}

/// `y = a·y + b·x` with 8-lane FMA.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn scale_accum(y: &mut [f32], a: f32, b: f32, x: &[f32]) {
    debug_assert_eq!(x.len(), y.len());
    let n = x.len();
    let va = _mm256_set1_ps(a);
    let vb = _mm256_set1_ps(b);
    let xp = x.as_ptr();
    let yp = y.as_mut_ptr();
    let mut i = 0;
    while i + 8 <= n {
        let scaled = _mm256_mul_ps(va, _mm256_loadu_ps(yp.add(i)));
        let r = _mm256_fmadd_ps(vb, _mm256_loadu_ps(xp.add(i)), scaled);
        _mm256_storeu_ps(yp.add(i), r);
        i += 8;
    }
    while i < n {
        *yp.add(i) = a * *yp.add(i) + b * *xp.add(i);
        i += 1;
    }
}

/// Fused SGNS step: `e += g·t; t += g·h`, loading `t` once.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn fused_sigmoid_grad(g: f32, h: &[f32], t: &mut [f32], e: &mut [f32]) {
    debug_assert_eq!(h.len(), t.len());
    debug_assert_eq!(h.len(), e.len());
    let n = h.len();
    let vg = _mm256_set1_ps(g);
    let hp = h.as_ptr();
    let tp = t.as_mut_ptr();
    let ep = e.as_mut_ptr();
    let mut i = 0;
    while i + 8 <= n {
        let tv = _mm256_loadu_ps(tp.add(i));
        let hv = _mm256_loadu_ps(hp.add(i));
        let ev = _mm256_loadu_ps(ep.add(i));
        _mm256_storeu_ps(ep.add(i), _mm256_fmadd_ps(vg, tv, ev));
        _mm256_storeu_ps(tp.add(i), _mm256_fmadd_ps(vg, hv, tv));
        i += 8;
    }
    while i < n {
        let tv = *tp.add(i);
        *ep.add(i) += g * tv;
        *tp.add(i) = tv + g * *hp.add(i);
        i += 1;
    }
}

/// Register-blocked `C = A · Bᵀ` microkernel: each step keeps one 8-lane
/// panel of the `A` row in registers and FMAs it against four `Bᵀ` rows at
/// once (1×4 blocking), so every `A` load feeds four accumulators. Column
/// and `k` remainders fall back to the single-row dot.
#[target_feature(enable = "avx2", enable = "fma")]
pub unsafe fn gemm_transb(m: usize, n: usize, k: usize, a: &[f32], bt: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(bt.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    let ap = a.as_ptr();
    let bp = bt.as_ptr();
    let cp = c.as_mut_ptr();
    for i in 0..m {
        let ar = ap.add(i * k);
        let cr = cp.add(i * n);
        let mut j = 0;
        while j + 4 <= n {
            let b0 = bp.add(j * k);
            let b1 = bp.add((j + 1) * k);
            let b2 = bp.add((j + 2) * k);
            let b3 = bp.add((j + 3) * k);
            let mut acc0 = _mm256_setzero_ps();
            let mut acc1 = _mm256_setzero_ps();
            let mut acc2 = _mm256_setzero_ps();
            let mut acc3 = _mm256_setzero_ps();
            let mut p = 0;
            while p + 8 <= k {
                let av = _mm256_loadu_ps(ar.add(p));
                acc0 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b0.add(p)), acc0);
                acc1 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b1.add(p)), acc1);
                acc2 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b2.add(p)), acc2);
                acc3 = _mm256_fmadd_ps(av, _mm256_loadu_ps(b3.add(p)), acc3);
                p += 8;
            }
            let mut s0 = hsum256(acc0);
            let mut s1 = hsum256(acc1);
            let mut s2 = hsum256(acc2);
            let mut s3 = hsum256(acc3);
            while p < k {
                let av = *ar.add(p);
                s0 += av * *b0.add(p);
                s1 += av * *b1.add(p);
                s2 += av * *b2.add(p);
                s3 += av * *b3.add(p);
                p += 1;
            }
            *cr.add(j) = s0;
            *cr.add(j + 1) = s1;
            *cr.add(j + 2) = s2;
            *cr.add(j + 3) = s3;
            j += 4;
        }
        while j < n {
            *cr.add(j) = dot(
                core::slice::from_raw_parts(ar, k),
                core::slice::from_raw_parts(bp.add(j * k), k),
            );
            j += 1;
        }
    }
}
