//! Runtime-dispatched f32 slice kernels for the workspace's compute hot
//! paths (SGNS training, GEMM, serving scans).
//!
//! The paper's §V-B GPU optimizations are all about maximizing
//! per-dimension arithmetic throughput; this crate is the CPU counterpart.
//! Each public function (`dot`, `axpy`, `scale_accum`,
//! `fused_sigmoid_grad`, `gemm_transb`) has three implementations:
//!
//! * **AVX2 + FMA** (`x86`/`x86_64`) — 8-lane fused multiply-add kernels;
//! * **NEON** (`aarch64`) — 4-lane equivalents;
//! * **scalar** — portable unrolled loops, the semantic reference.
//!
//! Selection happens **once**, on first use, via
//! `is_x86_feature_detected!` (resp. `is_aarch64_feature_detected!`) into
//! a function-pointer table ([`KernelTable`]) held in a
//! [`std::sync::LazyLock`] — there is no per-call feature probing. Setting
//! the environment variable **`SIMD_FORCE_SCALAR`** (to anything but `0`
//! or the empty string) before first use pins the scalar path, which CI
//! uses to prove the fallback stays green; Miri always runs the scalar
//! path (`cfg(miri)`).
//!
//! # Numerical contract
//!
//! Vector backends reassociate sums (8 or 4 partial accumulators) and
//! contract multiply-add pairs into FMAs, so results may differ from the
//! scalar reference by a small relative error. The property tests in
//! `tests/equivalence.rs` pin this to `1e-4` relative tolerance across all
//! remainder-lane cases (lengths 0..=67) and unaligned slice offsets;
//! callers must not rely on bit-equality between backends.
//!
//! # Examples
//!
//! ```
//! let a = [1.0f32, 2.0, 3.0];
//! let b = [4.0f32, 5.0, 6.0];
//! assert_eq!(simd::dot(&a, &b), 32.0);
//!
//! let mut y = [1.0f32; 3];
//! simd::axpy(2.0, &a, &mut y);
//! assert_eq!(y, [3.0, 5.0, 7.0]);
//! ```

use std::sync::LazyLock;

pub mod scalar;

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
mod x86;

#[cfg(target_arch = "aarch64")]
mod neon;

/// Which kernel implementation the process-wide dispatch selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Portable unrolled loops (also the Miri / `SIMD_FORCE_SCALAR` path).
    Scalar,
    /// AVX2 + FMA intrinsics (x86 / x86-64).
    Avx2Fma,
    /// NEON intrinsics (aarch64).
    Neon,
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::Scalar => write!(f, "scalar"),
            Backend::Avx2Fma => write!(f, "avx2+fma"),
            Backend::Neon => write!(f, "neon"),
        }
    }
}

/// The one-time-selected implementation set. Function pointers keep the
/// per-call cost to an indirect call — no feature detection, no branching
/// on the hot path.
#[allow(clippy::type_complexity)]
struct KernelTable {
    backend: Backend,
    dot: fn(&[f32], &[f32]) -> f32,
    axpy: fn(f32, &[f32], &mut [f32]),
    scale_accum: fn(&mut [f32], f32, f32, &[f32]),
    fused_sigmoid_grad: fn(f32, &[f32], &mut [f32], &mut [f32]),
    gemm_transb: fn(usize, usize, usize, &[f32], &[f32], &mut [f32]),
}

fn scalar_table() -> KernelTable {
    KernelTable {
        backend: Backend::Scalar,
        dot: scalar::dot,
        axpy: scalar::axpy,
        scale_accum: scalar::scale_accum,
        fused_sigmoid_grad: scalar::fused_sigmoid_grad,
        gemm_transb: scalar::gemm_transb,
    }
}

/// Safe entry points into the AVX2 kernels. These wrappers are only ever
/// referenced by `avx2_table()`, which `select()` calls strictly after
/// both `avx2` and `fma` were detected, so the `unsafe` target-feature
/// calls are sound for the process lifetime.
#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
mod x86_entry {
    use super::x86;

    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: only reachable via the post-detection dispatch table.
        unsafe { x86::dot(a, b) }
    }
    pub fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
        // SAFETY: as above.
        unsafe { x86::axpy(a, x, y) }
    }
    pub fn scale_accum(y: &mut [f32], a: f32, b: f32, x: &[f32]) {
        // SAFETY: as above.
        unsafe { x86::scale_accum(y, a, b, x) }
    }
    pub fn fused_sigmoid_grad(g: f32, h: &[f32], t: &mut [f32], e: &mut [f32]) {
        // SAFETY: as above.
        unsafe { x86::fused_sigmoid_grad(g, h, t, e) }
    }
    pub fn gemm_transb(m: usize, n: usize, k: usize, a: &[f32], bt: &[f32], c: &mut [f32]) {
        // SAFETY: as above.
        unsafe { x86::gemm_transb(m, n, k, a, bt, c) }
    }
}

#[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
fn avx2_table() -> KernelTable {
    KernelTable {
        backend: Backend::Avx2Fma,
        dot: x86_entry::dot,
        axpy: x86_entry::axpy,
        scale_accum: x86_entry::scale_accum,
        fused_sigmoid_grad: x86_entry::fused_sigmoid_grad,
        gemm_transb: x86_entry::gemm_transb,
    }
}

/// Safe entry points into the NEON kernels; same argument as `x86_entry`.
#[cfg(target_arch = "aarch64")]
mod neon_entry {
    use super::neon;

    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        // SAFETY: only reachable via the post-detection dispatch table.
        unsafe { neon::dot(a, b) }
    }
    pub fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
        // SAFETY: as above.
        unsafe { neon::axpy(a, x, y) }
    }
    pub fn scale_accum(y: &mut [f32], a: f32, b: f32, x: &[f32]) {
        // SAFETY: as above.
        unsafe { neon::scale_accum(y, a, b, x) }
    }
    pub fn fused_sigmoid_grad(g: f32, h: &[f32], t: &mut [f32], e: &mut [f32]) {
        // SAFETY: as above.
        unsafe { neon::fused_sigmoid_grad(g, h, t, e) }
    }
    pub fn gemm_transb(m: usize, n: usize, k: usize, a: &[f32], bt: &[f32], c: &mut [f32]) {
        // SAFETY: as above.
        unsafe { neon::gemm_transb(m, n, k, a, bt, c) }
    }
}

#[cfg(target_arch = "aarch64")]
fn neon_table() -> KernelTable {
    KernelTable {
        backend: Backend::Neon,
        dot: neon_entry::dot,
        axpy: neon_entry::axpy,
        scale_accum: neon_entry::scale_accum,
        fused_sigmoid_grad: neon_entry::fused_sigmoid_grad,
        gemm_transb: neon_entry::gemm_transb,
    }
}

/// Whether `val` (the `SIMD_FORCE_SCALAR` value) requests the scalar path.
fn force_scalar_requested(val: Option<&std::ffi::OsStr>) -> bool {
    val.is_some_and(|v| !v.is_empty() && v != "0")
}

fn select() -> KernelTable {
    if force_scalar_requested(std::env::var_os("SIMD_FORCE_SCALAR").as_deref()) {
        return scalar_table();
    }
    #[cfg(miri)]
    {
        scalar_table()
    }
    #[cfg(not(miri))]
    {
        #[cfg(any(target_arch = "x86", target_arch = "x86_64"))]
        if is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma") {
            return avx2_table();
        }
        #[cfg(target_arch = "aarch64")]
        if std::arch::is_aarch64_feature_detected!("neon") {
            return neon_table();
        }
        scalar_table()
    }
}

static KERNELS: LazyLock<KernelTable> = LazyLock::new(select);

/// The backend the dispatch selected for this process.
pub fn active_backend() -> Backend {
    KERNELS.backend
}

/// Dot product `Σ a[i]·b[i]`.
///
/// # Panics
///
/// Panics if `a.len() != b.len()`.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot operand length mismatch");
    (KERNELS.dot)(a, b)
}

/// `y += a · x`.
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy operand length mismatch");
    (KERNELS.axpy)(a, x, y)
}

/// `y = a·y + b·x` (fused scale-then-accumulate; SGD momentum's
/// `v ← μv − lr·g` is `scale_accum(v, μ, −lr, g)`).
///
/// # Panics
///
/// Panics if `x.len() != y.len()`.
#[inline]
pub fn scale_accum(y: &mut [f32], a: f32, b: f32, x: &[f32]) {
    assert_eq!(x.len(), y.len(), "scale_accum operand length mismatch");
    (KERNELS.scale_accum)(y, a, b, x)
}

/// The fused SGNS gradient step: given `g = (label − σ(f)) · lr`,
/// performs `e += g·t` and `t += g·h` in one pass over the three vectors
/// (`t` is loaded once and no pre-update copy is needed).
///
/// # Panics
///
/// Panics if the three slices differ in length.
#[inline]
pub fn fused_sigmoid_grad(g: f32, h: &[f32], t: &mut [f32], e: &mut [f32]) {
    assert_eq!(h.len(), t.len(), "fused_sigmoid_grad operand length mismatch");
    assert_eq!(h.len(), e.len(), "fused_sigmoid_grad operand length mismatch");
    (KERNELS.fused_sigmoid_grad)(g, h, t, e)
}

/// `C = A · Bᵀ` where `a` is `m × k`, `bt` is `n × k` (`B` already
/// transposed) and `c` is `m × n`, all row-major and packed; `c` is
/// overwritten. This is the register-blocked GEMM microkernel the `nn`
/// crate's `matmul*` functions sit on.
///
/// # Panics
///
/// Panics if any buffer length does not match its shape.
#[inline]
pub fn gemm_transb(m: usize, n: usize, k: usize, a: &[f32], bt: &[f32], c: &mut [f32]) {
    assert_eq!(a.len(), m * k, "A buffer does not match m × k");
    assert_eq!(bt.len(), n * k, "Bᵀ buffer does not match n × k");
    assert_eq!(c.len(), m * n, "C buffer does not match m × n");
    (KERNELS.gemm_transb)(m, n, k, a, bt, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispatch_selects_a_backend_once() {
        let b = active_backend();
        assert_eq!(b, active_backend());
        // Whatever was selected must produce correct results.
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn force_scalar_parsing() {
        use std::ffi::OsStr;
        assert!(!force_scalar_requested(None));
        assert!(!force_scalar_requested(Some(OsStr::new(""))));
        assert!(!force_scalar_requested(Some(OsStr::new("0"))));
        assert!(force_scalar_requested(Some(OsStr::new("1"))));
        assert!(force_scalar_requested(Some(OsStr::new("true"))));
    }

    #[test]
    fn axpy_and_scale_accum_compose() {
        let x = [1.0f32, 2.0, 3.0, 4.0, 5.0];
        let mut y = [1.0f32; 5];
        axpy(2.0, &x, &mut y);
        assert_eq!(y, [3.0, 5.0, 7.0, 9.0, 11.0]);
        scale_accum(&mut y, 0.5, -1.0, &x);
        assert_eq!(y, [0.5, 0.5, 0.5, 0.5, 0.5]);
    }

    #[test]
    fn fused_sigmoid_grad_matches_two_axpys() {
        let h: Vec<f32> = (0..19).map(|i| i as f32 * 0.25 - 2.0).collect();
        let t0: Vec<f32> = (0..19).map(|i| (i as f32).sin()).collect();
        let e0: Vec<f32> = vec![0.125; 19];
        let g = 0.375f32;

        let mut t = t0.clone();
        let mut e = e0.clone();
        fused_sigmoid_grad(g, &h, &mut t, &mut e);

        let mut t_ref = t0.clone();
        let mut e_ref = e0;
        scalar::axpy(g, &t0, &mut e_ref);
        scalar::axpy(g, &h, &mut t_ref);
        for i in 0..19 {
            assert!((t[i] - t_ref[i]).abs() < 1e-5, "t[{i}]");
            assert!((e[i] - e_ref[i]).abs() < 1e-5, "e[{i}]");
        }
    }

    #[test]
    fn gemm_matches_naive() {
        let (m, n, k) = (5, 7, 13);
        let a: Vec<f32> = (0..m * k).map(|i| (i as f32 * 0.7).cos()).collect();
        let bt: Vec<f32> = (0..n * k).map(|i| (i as f32 * 0.3).sin()).collect();
        let mut c = vec![0.0f32; m * n];
        gemm_transb(m, n, k, &a, &bt, &mut c);
        for i in 0..m {
            for j in 0..n {
                let expect: f32 = (0..k).map(|p| a[i * k + p] * bt[j * k + p]).sum();
                let got = c[i * n + j];
                assert!((got - expect).abs() < 1e-4, "c[{i}][{j}]: {got} vs {expect}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_rejects_mismatched_lengths() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn empty_slices_are_fine() {
        assert_eq!(dot(&[], &[]), 0.0);
        let mut y: [f32; 0] = [];
        axpy(1.0, &[], &mut y);
        let mut c: [f32; 0] = [];
        gemm_transb(0, 0, 0, &[], &[], &mut c);
    }
}
