//! Portable scalar reference kernels.
//!
//! These are the semantic ground truth for every vector backend: the
//! property tests in `tests/equivalence.rs` assert that the AVX2 and NEON
//! paths agree with these loops within f32 reassociation tolerance. They
//! are also the dispatch fallback on hardware without SIMD support, under
//! Miri (`cfg(miri)`), and when `SIMD_FORCE_SCALAR` is set.
//!
//! The loops are written in the 4-lane unrolled style the rest of the
//! workspace already used, so LLVM auto-vectorizes them where profitable —
//! "scalar" here means "no explicit intrinsics", not "no vector units".

/// Dot product `Σ a[i]·b[i]` with 4-way unrolled accumulation.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let base = i * 4;
        for lane in 0..4 {
            acc[lane] += a[base + lane] * b[base + lane];
        }
    }
    let mut total = (acc[0] + acc[1]) + (acc[2] + acc[3]);
    for i in chunks * 4..a.len() {
        total += a[i] * b[i];
    }
    total
}

/// `y[i] += a · x[i]`.
pub fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// `y[i] = a · y[i] + b · x[i]` — the fused scale-then-accumulate step
/// (SGD momentum `v ← μv − lr·g` is `scale_accum(v, μ, −lr, g)`).
pub fn scale_accum(y: &mut [f32], a: f32, b: f32, x: &[f32]) {
    debug_assert_eq!(x.len(), y.len());
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi = a * *yi + b * xi;
    }
}

/// The fused SGNS gradient step for one (context, target) pair *after* the
/// sigmoid: given `g = (label − σ(f)) · lr`, performs
///
/// ```text
/// e[i] += g · t[i]      (accumulate the input-side error)
/// t[i] += g · h[i]      (update the output-side row)
/// ```
///
/// in one pass, so `t` is loaded once instead of twice and no `tmp` copy
/// of the pre-update row is needed.
pub fn fused_sigmoid_grad(g: f32, h: &[f32], t: &mut [f32], e: &mut [f32]) {
    debug_assert_eq!(h.len(), t.len());
    debug_assert_eq!(h.len(), e.len());
    for i in 0..h.len() {
        let tv = t[i];
        e[i] += g * tv;
        t[i] = tv + g * h[i];
    }
}

/// `C = A · Bᵀ` where `a` is `m × k`, `bt` is `n × k` (i.e. `B`
/// pre-transposed) and `c` is `m × n`, all row-major and packed. `c` is
/// overwritten, not accumulated into.
pub fn gemm_transb(m: usize, n: usize, k: usize, a: &[f32], bt: &[f32], c: &mut [f32]) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(bt.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let crow = &mut c[i * n..(i + 1) * n];
        for (j, cj) in crow.iter_mut().enumerate() {
            *cj = dot(arow, &bt[j * k..(j + 1) * k]);
        }
    }
}
