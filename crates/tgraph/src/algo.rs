//! Temporal graph algorithms: reachability along time-respecting paths.
//!
//! A temporal walk (Definition III.2) requires strictly increasing edge
//! timestamps, so plain BFS over-approximates what a walker can reach.
//! This module computes the exact ground truth the walk kernel samples
//! from: *earliest-arrival* times along time-respecting paths (Wu et al.'s
//! foremost-path semantics), plus the derived temporal reachability set.
//!
//! These are used by tests as an oracle for the walk engine and are
//! generally useful for temporal network analysis.

use crate::{NodeId, TemporalGraph, Time};

/// Earliest arrival time at every vertex over time-respecting paths from
/// `source`, departing no earlier than `start` (first hop inclusive,
/// subsequent hops strictly increasing — the walk engine's rule).
///
/// Returns `f64::INFINITY` for temporally unreachable vertices; the source
/// itself gets `start`.
///
/// Runs a label-correcting search in time order: edges are relaxed in
/// global timestamp order, so each temporal edge is examined once —
/// `O(|E| log |E|)` including the initial sort (amortized away because the
/// CSR already stores segments time-sorted; the global order is produced
/// by merging on demand here with a simple collect-and-sort).
///
/// # Panics
///
/// Panics if `source` is out of range.
///
/// # Examples
///
/// ```
/// use tgraph::{GraphBuilder, TemporalEdge};
///
/// // 0 -(t=0.5)-> 1 -(t=0.2)-> 2 : vertex 2 unreachable in time order.
/// let g = GraphBuilder::new()
///     .add_edge(TemporalEdge::new(0, 1, 0.5))
///     .add_edge(TemporalEdge::new(1, 2, 0.2))
///     .build();
/// let arrival = tgraph::algo::earliest_arrival(&g, 0, f64::NEG_INFINITY);
/// assert_eq!(arrival[1], 0.5);
/// assert!(arrival[2].is_infinite());
/// ```
pub fn earliest_arrival(g: &TemporalGraph, source: NodeId, start: Time) -> Vec<Time> {
    let n = g.num_nodes();
    assert!((source as usize) < n, "source out of range");
    let mut arrival = vec![f64::INFINITY; n];
    arrival[source as usize] = if start.is_finite() { start } else { f64::NEG_INFINITY };

    // Collect edges sorted by time; a single pass relaxes every temporal
    // edge exactly once because arrivals only decrease toward earlier
    // times as we scan forward.
    let mut edges: Vec<(Time, NodeId, NodeId)> =
        g.edges().map(|e| (e.time, e.src, e.dst)).collect();
    edges.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));

    for (t, u, v) in edges {
        let au = arrival[u as usize];
        if au.is_infinite() && au > 0.0 {
            continue; // +inf: not yet reached
        }
        // First hop from the source is inclusive (t >= start); later hops
        // strictly increase. Both conditions collapse to t > au except at
        // the source where t >= start suffices.
        let admissible = if u == source { t >= au } else { t > au };
        if admissible && t < arrival[v as usize] {
            arrival[v as usize] = t;
        }
    }
    arrival[source as usize] = if start.is_finite() { start } else { f64::NEG_INFINITY };
    arrival
}

/// The set of vertices temporally reachable from `source` (including it).
pub fn temporal_reachable_set(g: &TemporalGraph, source: NodeId, start: Time) -> Vec<NodeId> {
    earliest_arrival(g, source, start)
        .into_iter()
        .enumerate()
        .filter(|(_, t)| !(t.is_infinite() && *t > 0.0))
        .map(|(v, _)| v as NodeId)
        .collect()
}

/// Fraction of vertex pairs `(s, v)` with `v` temporally reachable from
/// `s`, estimated from `samples` random sources — the temporal analog of
/// a connectivity ratio, useful for characterizing how "walkable" a
/// dataset is (short Fig. 4 walks come from low temporal reachability).
///
/// # Panics
///
/// Panics if the graph is empty or `samples == 0`.
pub fn temporal_connectivity(g: &TemporalGraph, samples: usize, seed: u64) -> f64 {
    assert!(g.num_nodes() > 0, "empty graph");
    assert!(samples > 0, "need at least one sample");
    let n = g.num_nodes();
    let mut state = seed;
    let mut total = 0usize;
    for _ in 0..samples {
        // splitmix64 step for a cheap deterministic source choice.
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let source = ((z ^ (z >> 31)) % n as u64) as NodeId;
        total += temporal_reachable_set(g, source, f64::NEG_INFINITY).len();
    }
    total as f64 / (samples * n) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, TemporalEdge};

    #[test]
    fn chain_arrival_times() {
        let g = GraphBuilder::new()
            .add_edge(TemporalEdge::new(0, 1, 0.1))
            .add_edge(TemporalEdge::new(1, 2, 0.2))
            .add_edge(TemporalEdge::new(2, 3, 0.3))
            .build();
        let a = earliest_arrival(&g, 0, f64::NEG_INFINITY);
        assert_eq!(a[1], 0.1);
        assert_eq!(a[2], 0.2);
        assert_eq!(a[3], 0.3);
    }

    #[test]
    fn equal_timestamps_do_not_chain() {
        let g = GraphBuilder::new()
            .add_edge(TemporalEdge::new(0, 1, 0.5))
            .add_edge(TemporalEdge::new(1, 2, 0.5))
            .build();
        let a = earliest_arrival(&g, 0, f64::NEG_INFINITY);
        assert_eq!(a[1], 0.5);
        assert!(a[2].is_infinite());
    }

    #[test]
    fn earliest_of_multiple_paths_wins() {
        // Two routes to 3: via 1 (arrives 0.3) and via 2 (arrives 0.6).
        let g = GraphBuilder::new()
            .add_edge(TemporalEdge::new(0, 1, 0.1))
            .add_edge(TemporalEdge::new(1, 3, 0.3))
            .add_edge(TemporalEdge::new(0, 2, 0.2))
            .add_edge(TemporalEdge::new(2, 3, 0.6))
            .build();
        let a = earliest_arrival(&g, 0, f64::NEG_INFINITY);
        assert_eq!(a[3], 0.3);
    }

    #[test]
    fn start_time_gates_first_hop_inclusively() {
        let g = GraphBuilder::new()
            .add_edge(TemporalEdge::new(0, 1, 0.5))
            .add_edge(TemporalEdge::new(1, 2, 0.7))
            .build();
        let a = earliest_arrival(&g, 0, 0.5);
        assert_eq!(a[1], 0.5); // inclusive first hop
        let a = earliest_arrival(&g, 0, 0.6);
        assert!(a[1].is_infinite());
    }

    #[test]
    fn reachable_set_is_walk_oracle() {
        // Every vertex a temporal walk visits must be in the reachable set.
        let g = crate::gen::preferential_attachment(300, 2, 5).undirected(true).build();
        for source in [0u32, 10, 100] {
            let set: std::collections::HashSet<NodeId> =
                temporal_reachable_set(&g, source, f64::NEG_INFINITY).into_iter().collect();
            assert!(set.contains(&source));
            // Walks are bounded-length samples of the reachability
            // structure; run a few and check containment.
            for seed in 0..5 {
                let mut rng = twalk_oracle::rng(seed);
                let walk = twalk_oracle::walk(&g, source, 8, &mut rng);
                for v in walk {
                    assert!(set.contains(&v), "walk visited unreachable {v}");
                }
            }
        }
    }

    /// Minimal local re-implementation of a temporal walk for the oracle
    /// test (avoiding a dev-dependency cycle on `twalk`).
    mod twalk_oracle {
        use crate::{NodeId, TemporalGraph};

        pub struct Rng(u64);
        pub fn rng(seed: u64) -> Rng {
            Rng(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1))
        }
        impl Rng {
            fn next(&mut self, bound: usize) -> usize {
                self.0 ^= self.0 << 13;
                self.0 ^= self.0 >> 7;
                self.0 ^= self.0 << 17;
                (self.0 % bound as u64) as usize
            }
        }

        pub fn walk(g: &TemporalGraph, start: NodeId, len: usize, rng: &mut Rng) -> Vec<NodeId> {
            let mut out = vec![start];
            let mut curr = start;
            let mut t = f64::NEG_INFINITY;
            for _ in 1..len {
                let (dsts, times) = if t.is_finite() {
                    g.neighbors_after(curr, t)
                } else {
                    g.neighbor_slices(curr)
                };
                if dsts.is_empty() {
                    break;
                }
                let i = rng.next(dsts.len());
                curr = dsts[i];
                t = times[i];
                out.push(curr);
            }
            out
        }
    }

    #[test]
    fn connectivity_of_time_forward_chain_is_partial() {
        // Chain 0 -> 1 -> 2 -> 3 with increasing times: vertex i reaches
        // vertices i..4, so mean reachability = (4+3+2+1)/16.
        let g = GraphBuilder::new()
            .add_edge(TemporalEdge::new(0, 1, 0.1))
            .add_edge(TemporalEdge::new(1, 2, 0.2))
            .add_edge(TemporalEdge::new(2, 3, 0.3))
            .build();
        let c = temporal_connectivity(&g, 64, 7);
        assert!(c > 0.2 && c < 0.9, "connectivity {c}");
    }
}
