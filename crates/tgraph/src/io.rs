//! `.wel` weighted-edge-list IO.
//!
//! The paper's artifact stores temporal graphs as whitespace-separated
//! `src dst timestamp` rows (one edge per line), optionally preceded by
//! `#` comment lines, with timestamps normalized to `[0, 1]` by a
//! preprocessing script. [`read_wel`] accepts exactly that format (comments
//! tolerated) and [`write_wel`] emits it.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::{GraphBuilder, TGraphError, TemporalEdge};

/// Parses `.wel` rows from any reader into a [`GraphBuilder`].
///
/// Blank lines and lines starting with `#` or `%` are skipped.
///
/// # Errors
///
/// Returns [`TGraphError::Parse`] with a 1-based line number when a row
/// does not contain `src dst time` with integer ids and a float time, and
/// [`TGraphError::Io`] on read failure.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), tgraph::TGraphError> {
/// let data = "# comment\n0 1 0.25\n1 2 0.75\n";
/// let g = tgraph::io::read_wel(data.as_bytes())?.build();
/// assert_eq!(g.num_edges(), 2);
/// # Ok(())
/// # }
/// ```
pub fn read_wel<R: Read>(reader: R) -> Result<GraphBuilder, TGraphError> {
    let mut builder = GraphBuilder::new();
    let buf = BufReader::new(reader);
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut fields = trimmed.split_whitespace();
        let edge = (|| -> Option<TemporalEdge> {
            let src = fields.next()?.parse().ok()?;
            let dst = fields.next()?.parse().ok()?;
            let time = fields.next()?.parse().ok()?;
            Some(TemporalEdge::new(src, dst, time))
        })()
        .ok_or_else(|| TGraphError::Parse {
            line: lineno + 1,
            message: format!("expected `src dst time`, got {trimmed:?}"),
        })?;
        builder = builder.add_edge(edge);
    }
    Ok(builder)
}

/// Reads a `.wel` file from disk.
///
/// # Errors
///
/// Same conditions as [`read_wel`], plus file-open failures.
pub fn read_wel_file<P: AsRef<Path>>(path: P) -> Result<GraphBuilder, TGraphError> {
    read_wel(std::fs::File::open(path)?)
}

/// Writes edges as `.wel` rows to any writer.
///
/// # Errors
///
/// Returns [`TGraphError::Io`] on write failure.
pub fn write_wel<W: Write, I: IntoIterator<Item = TemporalEdge>>(
    writer: W,
    edges: I,
) -> Result<(), TGraphError> {
    let mut out = BufWriter::new(writer);
    for e in edges {
        writeln!(out, "{} {} {}", e.src, e.dst, e.time)?;
    }
    out.flush()?;
    Ok(())
}

/// Writes a `.wel` file to disk.
///
/// # Errors
///
/// Same conditions as [`write_wel`], plus file-create failures.
pub fn write_wel_file<P: AsRef<Path>, I: IntoIterator<Item = TemporalEdge>>(
    path: P,
    edges: I,
) -> Result<(), TGraphError> {
    write_wel(std::fs::File::create(path)?, edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_through_bytes() {
        let edges = vec![
            TemporalEdge::new(0, 1, 0.25),
            TemporalEdge::new(1, 2, 0.5),
            TemporalEdge::new(2, 0, 1.0),
        ];
        let mut buf = Vec::new();
        write_wel(&mut buf, edges.clone()).unwrap();
        let g = read_wel(buf.as_slice()).unwrap().build();
        let g2 = GraphBuilder::new().extend_edges(edges).build();
        assert_eq!(g, g2);
    }

    #[test]
    fn comments_and_blanks_are_skipped() {
        let data = "# header\n\n% another comment\n0 1 0.5\n";
        let g = read_wel(data.as_bytes()).unwrap().build();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn malformed_row_reports_line_number() {
        let data = "0 1 0.5\nnot an edge\n";
        let err = read_wel(data.as_bytes()).unwrap_err();
        match err {
            TGraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn missing_field_is_parse_error() {
        let err = read_wel("3 4\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TGraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn integer_timestamps_parse_as_float() {
        let g = read_wel("0 1 12345\n".as_bytes()).unwrap().build();
        assert_eq!(g.time_range(), Some((12345.0, 12345.0)));
    }
}
