//! Incremental construction of [`TemporalGraph`]s.

use crate::{NodeId, TemporalEdge, TemporalGraph, Time};

/// Builder assembling a [`TemporalGraph`] from a temporal edge list.
///
/// The builder performs the counting-sort CSR construction used by GAPBS,
/// then sorts each vertex's segment by timestamp. Options:
///
/// * [`undirected`](Self::undirected) — insert the reverse of every edge
///   (the paper treats its interaction networks as undirected for walking);
/// * [`normalize_times`](Self::normalize_times) — rescale timestamps into
///   `[0, 1]` like the artifact's `preprocess_dataset.py`;
/// * [`num_nodes`](Self::num_nodes) — force a vertex-count larger than the
///   max id seen (for graphs with isolated tail vertices).
///
/// # Examples
///
/// ```
/// use tgraph::{GraphBuilder, TemporalEdge};
///
/// let g = GraphBuilder::new()
///     .add_edge(TemporalEdge::new(0, 1, 100.0))
///     .add_edge(TemporalEdge::new(1, 2, 300.0))
///     .undirected(true)
///     .normalize_times(true)
///     .build();
/// assert_eq!(g.num_edges(), 4);
/// assert_eq!(g.time_range(), Some((0.0, 1.0)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    edges: Vec<TemporalEdge>,
    undirected: bool,
    normalize: bool,
    forced_nodes: Option<usize>,
}

impl GraphBuilder {
    /// Creates an empty builder (directed, no normalization).
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one edge.
    #[must_use]
    pub fn add_edge(mut self, e: TemporalEdge) -> Self {
        self.edges.push(e);
        self
    }

    /// Appends every edge from an iterator.
    #[must_use]
    pub fn extend_edges<I: IntoIterator<Item = TemporalEdge>>(mut self, iter: I) -> Self {
        self.edges.extend(iter);
        self
    }

    /// When `true`, every edge is mirrored so walks can traverse both
    /// directions of an interaction.
    #[must_use]
    pub fn undirected(mut self, yes: bool) -> Self {
        self.undirected = yes;
        self
    }

    /// When `true`, timestamps are affinely rescaled to `[0, 1]`
    /// (a single distinct timestamp maps to `0.0`).
    #[must_use]
    pub fn normalize_times(mut self, yes: bool) -> Self {
        self.normalize = yes;
        self
    }

    /// Forces the vertex count; ignored if smaller than `max_id + 1`.
    #[must_use]
    pub fn num_nodes(mut self, n: usize) -> Self {
        self.forced_nodes = Some(n);
        self
    }

    /// Number of edges currently staged (before undirected doubling).
    pub fn staged_edges(&self) -> usize {
        self.edges.len()
    }

    /// Builds the CSR graph.
    ///
    /// # Panics
    ///
    /// Panics if any timestamp is non-finite; use
    /// [`try_build`](Self::try_build) for fallible construction.
    pub fn build(self) -> TemporalGraph {
        self.try_build().expect("invalid temporal edge list")
    }

    /// Fallible version of [`build`](Self::build).
    ///
    /// # Errors
    ///
    /// Returns [`crate::TGraphError::NonFiniteTime`] if any timestamp is NaN
    /// or infinite.
    pub fn try_build(mut self) -> Result<TemporalGraph, crate::TGraphError> {
        for (i, e) in self.edges.iter().enumerate() {
            if !e.time.is_finite() {
                return Err(crate::TGraphError::NonFiniteTime { edge_index: i });
            }
        }
        if self.undirected {
            let rev: Vec<_> = self.edges.iter().map(TemporalEdge::reversed).collect();
            self.edges.extend(rev);
        }
        if self.normalize && !self.edges.is_empty() {
            let lo = self.edges.iter().map(|e| e.time).fold(f64::INFINITY, f64::min);
            let hi = self.edges.iter().map(|e| e.time).fold(f64::NEG_INFINITY, f64::max);
            let span = hi - lo;
            for e in &mut self.edges {
                e.time = if span > 0.0 { (e.time - lo) / span } else { 0.0 };
            }
        }

        let max_id = self.edges.iter().map(|e| e.src.max(e.dst) as usize + 1).max().unwrap_or(0);
        let n = self.forced_nodes.unwrap_or(0).max(max_id);

        // Counting-sort CSR construction.
        let mut counts = vec![0usize; n + 1];
        for e in &self.edges {
            counts[e.src as usize + 1] += 1;
        }
        let mut offsets = counts;
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let m = self.edges.len();
        let mut dsts = vec![0 as NodeId; m];
        let mut times = vec![0.0 as Time; m];
        let mut cursor = offsets.clone();
        for e in &self.edges {
            let slot = cursor[e.src as usize];
            dsts[slot] = e.dst;
            times[slot] = e.time;
            cursor[e.src as usize] += 1;
        }

        // Sort each vertex segment by (time, dst) for determinism.
        for v in 0..n {
            let (a, b) = (offsets[v], offsets[v + 1]);
            let seg = &mut dsts[a..b];
            let tseg = &mut times[a..b];
            let mut idx: Vec<usize> = (0..seg.len()).collect();
            idx.sort_by(|&i, &j| {
                tseg[i]
                    .partial_cmp(&tseg[j])
                    .expect("timestamps are finite")
                    .then(seg[i].cmp(&seg[j]))
            });
            let sorted_d: Vec<NodeId> = idx.iter().map(|&i| seg[i]).collect();
            let sorted_t: Vec<Time> = idx.iter().map(|&i| tseg[i]).collect();
            seg.copy_from_slice(&sorted_d);
            tseg.copy_from_slice(&sorted_t);
        }

        Ok(TemporalGraph::from_csr(offsets, dsts, times))
    }
}

impl FromIterator<TemporalEdge> for GraphBuilder {
    fn from_iter<I: IntoIterator<Item = TemporalEdge>>(iter: I) -> Self {
        GraphBuilder::new().extend_edges(iter)
    }
}

impl Extend<TemporalEdge> for GraphBuilder {
    fn extend<I: IntoIterator<Item = TemporalEdge>>(&mut self, iter: I) {
        self.edges.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn undirected_doubles_edges() {
        let g = GraphBuilder::new().add_edge(TemporalEdge::new(0, 1, 1.0)).undirected(true).build();
        assert_eq!(g.num_edges(), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
    }

    #[test]
    fn normalization_maps_to_unit_interval() {
        let g = GraphBuilder::new()
            .add_edge(TemporalEdge::new(0, 1, 50.0))
            .add_edge(TemporalEdge::new(0, 2, 150.0))
            .add_edge(TemporalEdge::new(0, 3, 100.0))
            .normalize_times(true)
            .build();
        assert_eq!(g.time_range(), Some((0.0, 1.0)));
        let times: Vec<f64> = g.neighbors(0).map(|(_, t)| t).collect();
        assert_eq!(times, vec![0.0, 0.5, 1.0]);
    }

    #[test]
    fn constant_timestamps_normalize_to_zero() {
        let g = GraphBuilder::new()
            .add_edge(TemporalEdge::new(0, 1, 7.0))
            .add_edge(TemporalEdge::new(1, 0, 7.0))
            .normalize_times(true)
            .build();
        assert_eq!(g.time_range(), Some((0.0, 0.0)));
    }

    #[test]
    fn forced_node_count() {
        let g = GraphBuilder::new().add_edge(TemporalEdge::new(0, 1, 0.0)).num_nodes(10).build();
        assert_eq!(g.num_nodes(), 10);
        assert_eq!(g.out_degree(9), 0);
    }

    #[test]
    fn non_finite_time_is_rejected() {
        let r = GraphBuilder::new().add_edge(TemporalEdge::new(0, 1, f64::NAN)).try_build();
        assert!(matches!(r, Err(crate::TGraphError::NonFiniteTime { edge_index: 0 })));
    }

    #[test]
    fn segments_sorted_by_time_then_dst() {
        let g = GraphBuilder::new()
            .add_edge(TemporalEdge::new(0, 5, 1.0))
            .add_edge(TemporalEdge::new(0, 2, 1.0))
            .add_edge(TemporalEdge::new(0, 9, 0.5))
            .build();
        let order: Vec<_> = g.neighbors(0).collect();
        assert_eq!(order, vec![(9, 0.5), (2, 1.0), (5, 1.0)]);
    }

    #[test]
    fn from_iterator_collects() {
        let edges = vec![TemporalEdge::new(0, 1, 0.1), TemporalEdge::new(1, 2, 0.2)];
        let b: GraphBuilder = edges.into_iter().collect();
        assert_eq!(b.staged_edges(), 2);
    }
}
