//! Synthetic temporal graph generators.
//!
//! The paper evaluates on (a) real temporal networks and (b) synthetic
//! Erdős–Rényi graphs produced with networkx plus synthetic timestamps
//! (§VI-C). This module provides that generator and two stand-ins for the
//! real data, which cannot be downloaded in an offline environment:
//!
//! * [`preferential_attachment`] — power-law degree distribution with
//!   bursty, arrival-ordered timestamps, standing in for the paper's email /
//!   wiki-talk / stackoverflow interaction networks. Power-law structure is
//!   what produces the short-walk-dominated length distribution of Fig. 4
//!   and the accuracy saturation of Fig. 8b.
//! * [`temporal_sbm`] — a temporal stochastic block model with planted
//!   community labels, standing in for the DBLP/brain node-classification
//!   datasets: labels correlate with connectivity so a classifier can learn
//!   them from structure alone.
//!
//! All generators are deterministic in their seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{GraphBuilder, NodeId, TemporalEdge};

/// Erdős–Rényi `G(n, m)` temporal graph: `m` directed edges with uniformly
/// random endpoints and i.i.d. uniform timestamps in `[0, 1]`.
///
/// Self-loops are excluded; duplicate endpoint pairs may occur (they model
/// repeated interactions and are preserved as multi-edges).
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// # Examples
///
/// ```
/// let g = tgraph::gen::erdos_renyi(1_000, 5_000, 42).build();
/// assert_eq!(g.num_edges(), 5_000);
/// assert!(g.num_nodes() <= 1_000);
/// ```
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> GraphBuilder {
    assert!(n >= 2, "erdos_renyi requires at least two vertices");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let src = rng.gen_range(0..n as NodeId);
        let mut dst = rng.gen_range(0..n as NodeId - 1);
        if dst >= src {
            dst += 1;
        }
        edges.push(TemporalEdge::new(src, dst, rng.gen::<f64>()));
    }
    GraphBuilder::new().extend_edges(edges).num_nodes(n)
}

/// Temporal preferential attachment (Barabási–Albert flavor).
///
/// Vertices arrive one at a time; each newcomer issues `m_per_node` edges to
/// existing vertices chosen proportionally to their current degree, with the
/// timestamp equal to the (jittered, normalized) arrival time. A fraction of
/// additional *repeat* interactions between already-connected pairs is
/// injected at later timestamps, reproducing the multi-edge burstiness of
/// real interaction networks.
///
/// Produces the heavy-tailed degree distribution responsible for the paper's
/// Fig. 4 walk-length power law.
///
/// # Panics
///
/// Panics if `n <= m_per_node` or `m_per_node == 0`.
pub fn preferential_attachment(n: usize, m_per_node: usize, seed: u64) -> GraphBuilder {
    assert!(m_per_node >= 1, "need at least one edge per arriving vertex");
    assert!(n > m_per_node, "need more vertices than edges per vertex");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges: Vec<TemporalEdge> = Vec::with_capacity(n * m_per_node * 2);
    // Flat endpoint list: sampling an index uniformly samples a vertex
    // proportionally to its degree.
    let mut endpoints: Vec<NodeId> = Vec::with_capacity(n * m_per_node * 2);

    // Seed clique over the first m_per_node + 1 vertices.
    for v in 1..=(m_per_node as NodeId) {
        edges.push(TemporalEdge::new(v, v - 1, 0.0));
        endpoints.push(v);
        endpoints.push(v - 1);
    }

    let total_arrivals = (n - m_per_node - 1).max(1) as f64;
    for (step, v) in ((m_per_node + 1)..n).enumerate() {
        let v = v as NodeId;
        let base_t = step as f64 / total_arrivals;
        let mut chosen: Vec<NodeId> = Vec::with_capacity(m_per_node);
        let mut guard = 0;
        while chosen.len() < m_per_node && guard < 100 * m_per_node {
            let cand = endpoints[rng.gen_range(0..endpoints.len())];
            guard += 1;
            if cand != v && !chosen.contains(&cand) {
                chosen.push(cand);
            }
        }
        for &dst in &chosen {
            let t = (base_t + rng.gen::<f64>() * 0.5 / total_arrivals).min(1.0);
            edges.push(TemporalEdge::new(v, dst, t));
            endpoints.push(v);
            endpoints.push(dst);
        }
    }

    // Repeat interactions: ~30% extra edges re-activating old pairs later.
    let repeats = edges.len() * 3 / 10;
    let existing = edges.len();
    for _ in 0..repeats {
        let e = edges[rng.gen_range(0..existing)];
        let t = (e.time + rng.gen::<f64>() * (1.0 - e.time)).min(1.0);
        edges.push(TemporalEdge::new(e.src, e.dst, t));
    }

    GraphBuilder::new().extend_edges(edges).num_nodes(n)
}

/// R-MAT (recursive matrix) temporal graph with Graph500-style skew
/// parameters `(a, b, c)` (and implicit `d = 1 - a - b - c`).
///
/// Each edge picks its endpoints by recursively descending a 2×2
/// partition of the adjacency matrix, producing the heavy-tailed,
/// community-free structure common in architecture benchmarks (the
/// Rodinia/Graph500 generators the paper's Fig. 3 BFS input comes from).
/// Timestamps are i.i.d. uniform in `[0, 1]`.
///
/// # Panics
///
/// Panics if `n` is not a power of two ≥ 2, or the probabilities are
/// invalid (`a + b + c >= 1` or any negative).
///
/// # Examples
///
/// ```
/// let g = tgraph::gen::rmat(1 << 10, 8_000, 0.57, 0.19, 0.19, 1).build();
/// assert_eq!(g.num_edges(), 8_000);
/// ```
pub fn rmat(n: usize, m: usize, a: f64, b: f64, c: f64, seed: u64) -> GraphBuilder {
    assert!(n >= 2 && n.is_power_of_two(), "n must be a power of two >= 2");
    assert!(a >= 0.0 && b >= 0.0 && c >= 0.0 && a + b + c < 1.0, "invalid rmat skew");
    let levels = n.trailing_zeros();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m);
    while edges.len() < m {
        let (mut src, mut dst) = (0usize, 0usize);
        for _ in 0..levels {
            src <<= 1;
            dst <<= 1;
            let r: f64 = rng.gen();
            if r < a {
                // top-left quadrant: no bits set
            } else if r < a + b {
                dst |= 1;
            } else if r < a + b + c {
                src |= 1;
            } else {
                src |= 1;
                dst |= 1;
            }
        }
        if src != dst {
            edges.push(TemporalEdge::new(src as NodeId, dst as NodeId, rng.gen::<f64>()));
        }
    }
    GraphBuilder::new().extend_edges(edges).num_nodes(n)
}

/// A temporal graph with planted node labels, produced by
/// [`temporal_sbm`].
#[derive(Debug, Clone)]
pub struct LabeledGraphGen {
    /// Builder holding the generated edges.
    pub builder: GraphBuilder,
    /// Planted community label per vertex (`0..num_classes`).
    pub labels: Vec<u16>,
}

/// Temporal stochastic block model with `classes` planted communities.
///
/// Vertices are assigned round-robin to communities. `m` directed edges are
/// drawn; each picks a uniform source and, with probability `p_in`, a
/// destination inside the source's community (otherwise a uniformly random
/// outside destination). Timestamps are i.i.d. uniform in `[0, 1]`.
///
/// With `p_in` well above the inter-community rate, embeddings learned from
/// temporal walks cluster by community, so the planted labels are learnable
/// exactly like the paper's DBLP research-area labels.
///
/// # Panics
///
/// Panics if `classes == 0`, `n < 2 * classes`, or `p_in` is outside
/// `[0, 1]`.
pub fn temporal_sbm(n: usize, classes: u16, m: usize, p_in: f64, seed: u64) -> LabeledGraphGen {
    assert!(classes >= 1, "need at least one class");
    assert!(n >= 2 * classes as usize, "need at least two vertices per class");
    assert!((0.0..=1.0).contains(&p_in), "p_in must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let labels: Vec<u16> = (0..n).map(|v| (v % classes as usize) as u16).collect();

    // Community member lists for O(1) in-community sampling.
    let mut members: Vec<Vec<NodeId>> = vec![Vec::new(); classes as usize];
    for (v, &c) in labels.iter().enumerate() {
        members[c as usize].push(v as NodeId);
    }

    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let src = rng.gen_range(0..n as NodeId);
        let c = labels[src as usize] as usize;
        let dst = if rng.gen::<f64>() < p_in {
            // In-community destination != src.
            loop {
                let d = members[c][rng.gen_range(0..members[c].len())];
                if d != src {
                    break d;
                }
            }
        } else {
            loop {
                let d = rng.gen_range(0..n as NodeId);
                if d != src && labels[d as usize] as usize != c {
                    break d;
                }
            }
        };
        edges.push(TemporalEdge::new(src, dst, rng.gen::<f64>()));
    }

    LabeledGraphGen { builder: GraphBuilder::new().extend_edges(edges).num_nodes(n), labels }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_is_deterministic_in_seed() {
        let a = erdos_renyi(100, 500, 7).build();
        let b = erdos_renyi(100, 500, 7).build();
        let c = erdos_renyi(100, 500, 8).build();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn erdos_renyi_has_no_self_loops() {
        let g = erdos_renyi(50, 2_000, 3).build();
        for e in g.edges() {
            assert_ne!(e.src, e.dst);
        }
    }

    #[test]
    fn pa_degree_distribution_is_heavy_tailed() {
        let g = preferential_attachment(2_000, 2, 11).undirected(true).build();
        let n = g.num_nodes();
        let mut degrees: Vec<usize> = (0..n).map(|v| g.out_degree(v as NodeId)).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let mean = degrees.iter().sum::<usize>() as f64 / n as f64;
        // Heavy tail: the max degree dwarfs the mean.
        assert!(degrees[0] as f64 > 8.0 * mean, "max degree {} not >> mean {mean}", degrees[0]);
    }

    #[test]
    fn pa_timestamps_are_in_unit_interval() {
        let g = preferential_attachment(500, 3, 5).build();
        let (lo, hi) = g.time_range().unwrap();
        assert!(lo >= 0.0 && hi <= 1.0);
    }

    #[test]
    fn sbm_labels_cover_all_classes() {
        let gen = temporal_sbm(90, 3, 1_000, 0.9, 1);
        assert_eq!(gen.labels.len(), 90);
        for c in 0..3u16 {
            assert!(gen.labels.contains(&c));
        }
    }

    #[test]
    fn sbm_edges_are_mostly_intra_community() {
        let gen = temporal_sbm(300, 3, 10_000, 0.9, 2);
        let labels = gen.labels.clone();
        let g = gen.builder.build();
        let intra = g.edges().filter(|e| labels[e.src as usize] == labels[e.dst as usize]).count();
        let frac = intra as f64 / g.num_edges() as f64;
        assert!(frac > 0.85, "intra-community fraction too low: {frac}");
    }

    #[test]
    #[should_panic(expected = "at least two vertices")]
    fn erdos_renyi_rejects_tiny_n() {
        let _ = erdos_renyi(1, 10, 0);
    }

    #[test]
    fn rmat_is_skewed_and_exact_sized() {
        let g = rmat(1 << 11, 20_000, 0.57, 0.19, 0.19, 3).build();
        assert_eq!(g.num_edges(), 20_000);
        let stats = crate::stats::degree_stats(&g);
        // Graph500 skew: max degree far above the mean.
        assert!(stats.max as f64 > 10.0 * stats.mean, "max {} vs mean {}", stats.max, stats.mean);
        for e in g.edges() {
            assert_ne!(e.src, e.dst);
        }
    }

    #[test]
    fn symmetric_rmat_approximates_erdos_renyi() {
        // With a = b = c = 0.25 every quadrant is equally likely, i.e.
        // uniform endpoints; degree skew should be mild.
        let g = rmat(1 << 10, 10_000, 0.25, 0.25, 0.25, 4).build();
        let stats = crate::stats::degree_stats(&g);
        assert!((stats.max as f64) < 5.0 * stats.mean.max(1.0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rmat_rejects_non_power_of_two() {
        let _ = rmat(1000, 10, 0.5, 0.2, 0.2, 0);
    }
}
