//! Core temporal edge types (paper Definition III.1).

/// Vertex identifier. The paper's pipeline deliberately uses a
/// single-integer vertex id as the only node feature (§IV-C).
pub type NodeId = u32;

/// Edge timestamp. The paper's data preparation normalizes timestamps into
/// `[0, 1]` (artifact §A.5); any finite value is accepted here.
pub type Time = f64;

/// A directed temporal edge `(src, dst, time)`.
///
/// A collection of these forms a continuous-time dynamic graph; multiple
/// edges between the same endpoints at different timestamps are meaningful
/// and preserved throughout the workspace.
///
/// # Examples
///
/// ```
/// use tgraph::TemporalEdge;
///
/// let e = TemporalEdge::new(3, 7, 0.25);
/// assert_eq!(e.src, 3);
/// assert_eq!(e.dst, 7);
/// assert_eq!(e.time, 0.25);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TemporalEdge {
    /// Source vertex.
    pub src: NodeId,
    /// Destination vertex.
    pub dst: NodeId,
    /// Interaction timestamp.
    pub time: Time,
}

impl TemporalEdge {
    /// Creates a temporal edge.
    pub fn new(src: NodeId, dst: NodeId, time: Time) -> Self {
        Self { src, dst, time }
    }

    /// Returns the same interaction in the opposite direction (used when
    /// symmetrizing a graph).
    #[must_use]
    pub fn reversed(&self) -> Self {
        Self { src: self.dst, dst: self.src, time: self.time }
    }

    /// Endpoint pair ignoring time, useful as a set key for negative
    /// sampling.
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        (self.src, self.dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reversed_swaps_endpoints_only() {
        let e = TemporalEdge::new(1, 2, 0.5);
        let r = e.reversed();
        assert_eq!(r, TemporalEdge::new(2, 1, 0.5));
        assert_eq!(r.reversed(), e);
    }

    #[test]
    fn endpoints_drop_time() {
        assert_eq!(TemporalEdge::new(9, 4, 0.99).endpoints(), (9, 4));
    }
}
