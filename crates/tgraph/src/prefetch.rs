//! Best-effort software prefetch hints.
//!
//! The walk kernel's dominant cost on large graphs is the dependent random
//! load into each step's neighbor segment (the paper's §VI stall
//! analysis). The batched walk engine hides that latency by issuing
//! prefetches for segments it will touch a few iterations ahead; this
//! module provides the single primitive it needs.
//!
//! Unlike the f32 kernels in `crates/simd`, no runtime dispatch table is
//! required here: the prefetch instruction is part of the *baseline* ISA
//! on both supported 64-bit targets (`PREFETCHT0` is SSE, guaranteed on
//! x86-64; `PRFM` is base A64), so a compile-time `cfg` selects the
//! instruction once and other targets compile to a no-op. Prefetches are
//! pure hints: they never fault, even on dangling or null addresses, which
//! is why [`prefetch_read`] is safe to call on any pointer.

/// Hints the CPU to pull the cache line containing `p` into L1 for a
/// future read. A no-op on targets without a baseline prefetch
/// instruction. Never faults, regardless of where `p` points.
#[inline(always)]
pub fn prefetch_read<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: PREFETCHT0 is architecturally defined to ignore faults; it
    // performs no architectural memory access, so any pointer value is
    // acceptable.
    unsafe {
        core::arch::x86_64::_mm_prefetch(p as *const i8, core::arch::x86_64::_MM_HINT_T0)
    };
    #[cfg(target_arch = "aarch64")]
    // SAFETY: PRFM is a hint instruction; it cannot fault or write memory.
    unsafe {
        core::arch::asm!("prfm pldl1keep, [{0}]", in(reg) p, options(nostack, preserves_flags, readonly))
    };
    #[cfg(not(any(target_arch = "x86_64", target_arch = "aarch64")))]
    let _ = p;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefetch_is_a_pure_hint() {
        // Valid, dangling, and null pointers must all be accepted without
        // faulting — the accessor contract the walk engine relies on when
        // prefetching ahead of bounds checks.
        let data = [1u64, 2, 3];
        prefetch_read(data.as_ptr());
        prefetch_read(unsafe { data.as_ptr().add(1000) });
        prefetch_read(std::ptr::null::<u64>());
    }
}
