//! CSR temporal graph (the paper's `WGraph` analog).

use crate::{NodeId, Storage, TemporalEdge, Time};

/// A directed temporal graph in CSR form with timestamp-sorted adjacency.
///
/// Storage is structure-of-arrays: for vertex `v`, the half-open range
/// `offsets[v]..offsets[v + 1]` indexes into parallel `dsts`/`times`
/// arrays. Within a vertex's segment edges are sorted by ascending
/// timestamp, which lets the walk kernel find the temporally-valid suffix
/// with one `partition_point` (binary search) instead of scanning every
/// neighbor (paper Algorithm 1's `sampleLatest`).
///
/// Multi-edges (same endpoints, different timestamps) are preserved, as the
/// paper requires for modeling repeated interactions.
///
/// Construct via [`crate::GraphBuilder`], or — for arrays borrowed from
/// a mapped store file — via [`TemporalGraph::from_csr_parts`].
#[derive(Debug, Clone, PartialEq)]
pub struct TemporalGraph {
    offsets: Storage<usize>,
    dsts: Storage<NodeId>,
    times: Storage<Time>,
}

impl TemporalGraph {
    pub(crate) fn from_csr(offsets: Vec<usize>, dsts: Vec<NodeId>, times: Vec<Time>) -> Self {
        debug_assert_eq!(*offsets.last().unwrap_or(&0), dsts.len());
        debug_assert_eq!(dsts.len(), times.len());
        Self { offsets: offsets.into(), dsts: dsts.into(), times: times.into() }
    }

    /// Builds a graph directly from CSR arrays — the entry point for the
    /// persistent storage layer, which hands in [`Storage::Mapped`] views
    /// borrowed from an opened store file instead of rebuilding from an
    /// edge list.
    ///
    /// Unlike [`crate::GraphBuilder`] (which constructs the invariants),
    /// this *checks* them, because the arrays come from outside the
    /// builder: `offsets` must be non-empty, start at 0, be
    /// nondecreasing, and end at `dsts.len()`; `dsts` and `times` must be
    /// parallel; every destination must be `< num_nodes`; every timestamp
    /// must be finite; and each vertex segment must be time-sorted
    /// ascending. Any violation is a [`TGraphError::InvalidCsr`] — never
    /// a panic later in the walk kernel.
    pub fn from_csr_parts(
        offsets: Storage<usize>,
        dsts: Storage<NodeId>,
        times: Storage<Time>,
    ) -> Result<Self, crate::TGraphError> {
        let invalid = |message: String| crate::TGraphError::InvalidCsr { message };
        if offsets.is_empty() {
            return Err(invalid("offsets array is empty".into()));
        }
        if offsets[0] != 0 {
            return Err(invalid(format!("offsets[0] is {}, expected 0", offsets[0])));
        }
        if dsts.len() != times.len() {
            return Err(invalid(format!(
                "dsts/times length mismatch: {} vs {}",
                dsts.len(),
                times.len()
            )));
        }
        let n = offsets.len() - 1;
        let m = dsts.len();
        if offsets[n] != m {
            return Err(invalid(format!("offsets end at {}, expected {m} edges", offsets[n])));
        }
        // The remaining invariants are all per-vertex-segment, so they
        // fuse into one pass over the edge arrays instead of four. The
        // pass parallelizes across vertex ranges for large graphs — this
        // sits on the store layer's warm-restart critical path, where a
        // serial scan of a hundred-MB CSR would rival the cost of the
        // checksums — and stays serial for small inputs (and under test
        // interpreters where spawning threads dwarfs the scan).
        let scan_range = |v0: usize, v1: usize| -> Option<(usize, String)> {
            for v in v0..v1 {
                let (s, e) = (offsets[v], offsets[v + 1]);
                if s > e {
                    return Some((v, format!("offsets decrease at vertex {v}")));
                }
                if e > m {
                    // offsets[n] == m was checked, so an in-range pair
                    // overshooting the edge count implies a decrease at
                    // some later vertex; report it structurally here.
                    return Some((v, format!("offsets exceed the {m} edges at vertex {v}")));
                }
                for i in s..e {
                    if dsts[i] as usize >= n {
                        return Some((
                            v,
                            format!(
                                "edge {i} points at vertex {} but the graph has {n} vertices",
                                dsts[i]
                            ),
                        ));
                    }
                    if !times[i].is_finite() {
                        return Some((v, format!("non-finite timestamp on edge {i}")));
                    }
                    if i > s && times[i - 1] > times[i] {
                        return Some((v, format!("vertex {v} segment is not time-sorted")));
                    }
                }
            }
            None
        };
        const PARALLEL_MIN_EDGES: usize = 1 << 20;
        let first_bad = if m >= PARALLEL_MIN_EDGES {
            let bad = std::sync::Mutex::new(None::<(usize, String)>);
            par::parallel_chunks(&par::ParConfig::default(), n, |v0, v1| {
                if let Some(found) = scan_range(v0, v1) {
                    let mut slot = bad.lock().expect("csr validation lock");
                    // Keep the lowest-vertex violation so the reported
                    // error is deterministic regardless of scheduling.
                    if slot.as_ref().is_none_or(|(v, _)| found.0 < *v) {
                        *slot = Some(found);
                    }
                }
            });
            bad.into_inner().expect("csr validation lock")
        } else {
            scan_range(0, n)
        };
        if let Some((_, message)) = first_bad {
            return Err(invalid(message));
        }
        Ok(Self { offsets, dsts, times })
    }

    /// Raw CSR views `(offsets, dsts, times)` — what the storage layer
    /// serializes. `offsets.len() == num_nodes() + 1`; `dsts`/`times` are
    /// parallel and time-sorted within each vertex segment.
    pub fn csr_parts(&self) -> (&[usize], &[NodeId], &[Time]) {
        (&self.offsets, &self.dsts, &self.times)
    }

    /// Whether the CSR arrays are borrowed from a mapped store file
    /// rather than heap-owned.
    pub fn is_mapped(&self) -> bool {
        self.offsets.is_mapped()
    }

    /// Number of vertices (including isolated ones up to the max id seen).
    pub fn num_nodes(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Number of directed temporal edges (multi-edges counted).
    pub fn num_edges(&self) -> usize {
        self.dsts.len()
    }

    /// Out-degree of `v` (temporal multi-edges counted).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn out_degree(&self, v: NodeId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Maximum out-degree across all vertices (the `M` in the paper's
    /// `O(K·N·|V|·M)` walk complexity).
    pub fn max_degree(&self) -> usize {
        (0..self.num_nodes()).map(|v| self.out_degree(v as NodeId)).max().unwrap_or(0)
    }

    /// Timestamp-sorted neighbor segment of `v` as parallel slices
    /// `(destinations, timestamps)`.
    pub fn neighbor_slices(&self, v: NodeId) -> (&[NodeId], &[Time]) {
        let v = v as usize;
        let (a, b) = (self.offsets[v], self.offsets[v + 1]);
        (&self.dsts[a..b], &self.times[a..b])
    }

    /// CSR edge-index range of `v`'s neighbor segment — positions into
    /// edge-parallel side tables (per-edge weights, cumulative sums) built
    /// in the graph's edge order.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn segment_range(&self, v: NodeId) -> std::ops::Range<usize> {
        let v = v as usize;
        self.offsets[v]..self.offsets[v + 1]
    }

    /// Hints the CPU to pull `v`'s CSR offsets entry toward L1.
    ///
    /// First stage of the walk engine's two-stage prefetch pipeline: the
    /// segment bounds themselves live behind a random load into `offsets`,
    /// so they are prefetched further ahead than the segment data they
    /// unlock (see [`Self::prefetch_segment`]). Pure hint — never faults,
    /// even for out-of-range ids.
    #[inline(always)]
    pub fn prefetch_offsets(&self, v: NodeId) {
        crate::prefetch::prefetch_read(self.offsets.as_ptr().wrapping_add(v as usize));
    }

    /// Hints the CPU to pull `v`'s neighbor segment toward L1: the
    /// timestamp slice's first, middle, and last cache lines (the probe
    /// points of the upcoming `partition_point` binary searches) plus the
    /// head of the destination slice.
    ///
    /// Reads `offsets[v]` to locate the segment, so call
    /// [`Self::prefetch_offsets`] a few iterations earlier to keep that
    /// load itself from stalling.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn prefetch_segment(&self, v: NodeId) {
        let v = v as usize;
        let (a, b) = (self.offsets[v], self.offsets[v + 1]);
        if a == b {
            return;
        }
        // Probe indices deduplicated at cache-line granularity (8 × f64
        // per line): low-degree segments span a single line, and issuing
        // one hint instead of three matters in the sparse regime where
        // the interleaved engine lives.
        let (mid, last) = ((a + b) / 2, b - 1);
        let times = self.times.as_ptr();
        crate::prefetch::prefetch_read(times.wrapping_add(a));
        if mid >> 3 != a >> 3 {
            crate::prefetch::prefetch_read(times.wrapping_add(mid));
        }
        if last >> 3 != mid >> 3 {
            crate::prefetch::prefetch_read(times.wrapping_add(last));
        }
        crate::prefetch::prefetch_read(self.dsts.as_ptr().wrapping_add(a));
    }

    /// Iterator over `(dst, time)` pairs of `v` in ascending-time order.
    ///
    /// # Examples
    ///
    /// ```
    /// use tgraph::{GraphBuilder, TemporalEdge};
    ///
    /// let g = GraphBuilder::new()
    ///     .add_edge(TemporalEdge::new(0, 1, 0.3))
    ///     .add_edge(TemporalEdge::new(0, 2, 0.1))
    ///     .build();
    /// let order: Vec<u32> = g.neighbors(0).map(|(d, _)| d).collect();
    /// assert_eq!(order, vec![2, 1]);
    /// ```
    pub fn neighbors(&self, v: NodeId) -> Neighbors<'_> {
        let (dsts, times) = self.neighbor_slices(v);
        Neighbors { dsts, times, pos: 0 }
    }

    /// The temporally-valid suffix of `v`'s adjacency: neighbors reachable
    /// at a time strictly greater than `after` (Definition III.2 requires
    /// strictly increasing timestamps along a walk).
    ///
    /// Returns parallel `(destinations, timestamps)` slices; both are empty
    /// when no temporally-valid neighbor exists.
    pub fn neighbors_after(&self, v: NodeId, after: Time) -> (&[NodeId], &[Time]) {
        let (dsts, times) = self.neighbor_slices(v);
        let cut = times.partition_point(|&t| t <= after);
        (&dsts[cut..], &times[cut..])
    }

    /// Like [`Self::neighbors_after`] but inclusive (`t >= after`), used for
    /// the first hop of a walk where the start time itself is admissible.
    pub fn neighbors_from(&self, v: NodeId, from: Time) -> (&[NodeId], &[Time]) {
        let (dsts, times) = self.neighbor_slices(v);
        let cut = times.partition_point(|&t| t < from);
        (&dsts[cut..], &times[cut..])
    }

    /// Linear-scan equivalent of [`Self::neighbors_after`] — the `O(M)`
    /// per-step cost of the paper's Algorithm 1 `sampleLatest`, kept as an
    /// ablation baseline for the binary-search lookup (see the
    /// `bench_rwalk` `neighbor_lookup` group).
    pub fn neighbors_after_linear(&self, v: NodeId, after: Time) -> (&[NodeId], &[Time]) {
        let (dsts, times) = self.neighbor_slices(v);
        let mut cut = 0;
        while cut < times.len() && times[cut] <= after {
            cut += 1;
        }
        (&dsts[cut..], &times[cut..])
    }

    /// Iterator over every temporal edge in the graph, grouped by source
    /// vertex and time-sorted within each group.
    pub fn edges(&self) -> impl Iterator<Item = TemporalEdge> + '_ {
        (0..self.num_nodes() as NodeId)
            .flat_map(move |v| self.neighbors(v).map(move |(d, t)| TemporalEdge::new(v, d, t)))
    }

    /// Whether at least one `u -> v` edge exists at any timestamp.
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if (u as usize) >= self.num_nodes() {
            return false;
        }
        self.neighbor_slices(u).0.contains(&v)
    }

    /// Smallest and largest timestamps, or `None` for an edgeless graph.
    pub fn time_range(&self) -> Option<(Time, Time)> {
        if self.times.is_empty() {
            return None;
        }
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for &t in self.times.iter() {
            lo = lo.min(t);
            hi = hi.max(t);
        }
        Some((lo, hi))
    }

    /// The span `t_max - t_min` used as the softmax normalization term `r`
    /// in the paper's Eq. (1); zero for graphs with a single timestamp.
    pub fn time_span(&self) -> Time {
        self.time_range().map(|(lo, hi)| hi - lo).unwrap_or(0.0)
    }

    /// Snapshot `G_t`: the subgraph containing only edges with
    /// `time <= t` (Definition of graph snapshots, Table I).
    pub fn snapshot_until(&self, t: Time) -> TemporalGraph {
        let n = self.num_nodes();
        let mut offsets = Vec::with_capacity(n + 1);
        let mut dsts = Vec::new();
        let mut times = Vec::new();
        offsets.push(0);
        for v in 0..n as NodeId {
            let (d, tt) = self.neighbor_slices(v);
            let cut = tt.partition_point(|&x| x <= t);
            dsts.extend_from_slice(&d[..cut]);
            times.extend_from_slice(&tt[..cut]);
            offsets.push(dsts.len());
        }
        TemporalGraph::from_csr(offsets, dsts, times)
    }

    /// Approximate resident size in bytes of the CSR arrays.
    pub fn memory_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.dsts.len() * std::mem::size_of::<NodeId>()
            + self.times.len() * std::mem::size_of::<Time>()
    }
}

/// Iterator over a vertex's `(dst, time)` pairs produced by
/// [`TemporalGraph::neighbors`].
#[derive(Debug, Clone)]
pub struct Neighbors<'a> {
    dsts: &'a [NodeId],
    times: &'a [Time],
    pos: usize,
}

impl<'a> Iterator for Neighbors<'a> {
    type Item = (NodeId, Time);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos < self.dsts.len() {
            let item = (self.dsts[self.pos], self.times[self.pos]);
            self.pos += 1;
            Some(item)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.dsts.len() - self.pos;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for Neighbors<'_> {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn toy() -> TemporalGraph {
        // Fig. 2-style toy graph: u=0, v=1, x=2, y=3.
        GraphBuilder::new()
            .add_edge(TemporalEdge::new(0, 1, 1.0))
            .add_edge(TemporalEdge::new(1, 2, 2.0))
            .add_edge(TemporalEdge::new(1, 3, 5.0))
            .add_edge(TemporalEdge::new(1, 0, 0.5))
            .build()
    }

    #[test]
    fn degrees_and_counts() {
        let g = toy();
        assert_eq!(g.num_nodes(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.out_degree(1), 3);
        assert_eq!(g.out_degree(2), 0);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn segment_ranges_tile_the_edge_array() {
        let g = toy();
        let mut next = 0;
        for v in 0..g.num_nodes() as NodeId {
            let r = g.segment_range(v);
            assert_eq!(r.start, next);
            assert_eq!(r.len(), g.out_degree(v));
            next = r.end;
        }
        assert_eq!(next, g.num_edges());
    }

    #[test]
    fn neighbors_after_is_strict() {
        let g = toy();
        let (d, t) = g.neighbors_after(1, 2.0);
        assert_eq!(d, &[3]);
        assert_eq!(t, &[5.0]);
        // Inclusive variant keeps the t == 2.0 edge.
        let (d, _) = g.neighbors_from(1, 2.0);
        assert_eq!(d, &[2, 3]);
    }

    #[test]
    fn linear_and_binary_lookup_agree() {
        let g = crate::gen::erdos_renyi(60, 600, 8).build();
        for v in 0..g.num_nodes() as NodeId {
            for t in [-0.1, 0.0, 0.25, 0.5, 0.9, 1.1] {
                assert_eq!(g.neighbors_after(v, t), g.neighbors_after_linear(v, t));
            }
        }
    }

    #[test]
    fn neighbors_after_all_and_none() {
        let g = toy();
        let (d, _) = g.neighbors_after(1, -1.0);
        assert_eq!(d.len(), 3);
        let (d, _) = g.neighbors_after(1, 10.0);
        assert!(d.is_empty());
    }

    #[test]
    fn prefetch_accessors_accept_every_vertex() {
        // Hints must be callable for any vertex, including zero-degree
        // ones, without touching out-of-bounds memory.
        let g = toy();
        for v in 0..g.num_nodes() as NodeId {
            g.prefetch_offsets(v);
            g.prefetch_segment(v);
        }
    }

    #[test]
    fn multi_edges_are_preserved() {
        let g = GraphBuilder::new()
            .add_edge(TemporalEdge::new(0, 1, 1.0))
            .add_edge(TemporalEdge::new(0, 1, 2.0))
            .add_edge(TemporalEdge::new(0, 1, 3.0))
            .build();
        assert_eq!(g.out_degree(0), 3);
        assert!(g.has_edge(0, 1));
        assert!(!g.has_edge(1, 0));
    }

    #[test]
    fn snapshot_filters_by_time() {
        let g = toy();
        let s = g.snapshot_until(1.0);
        assert_eq!(s.num_edges(), 2); // t=0.5 and t=1.0 edges
        assert_eq!(s.num_nodes(), g.num_nodes());
        assert_eq!(s.out_degree(1), 1);
    }

    #[test]
    fn time_range_and_span() {
        let g = toy();
        assert_eq!(g.time_range(), Some((0.5, 5.0)));
        assert!((g.time_span() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn edges_iterator_round_trips() {
        let g = toy();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges.len(), 4);
        let g2 = GraphBuilder::new().extend_edges(edges).build();
        assert_eq!(g, g2);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_nodes(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.time_range(), None);
        assert_eq!(g.max_degree(), 0);
    }
}
