//! Incrementally updatable temporal graph.
//!
//! The paper motivates its end-to-end time study with deployment reality:
//! "the graph evolves over time. With this evolution, an entire pipeline
//! needs to run to account for new nodes/connections" (§VII-B). This
//! module provides the substrate for the cheaper alternative: a mutable
//! adjacency structure that absorbs edge streams, tracks which vertices
//! changed, and snapshots to the immutable CSR [`TemporalGraph`] the walk
//! kernel wants.
//!
//! # Examples
//!
//! ```
//! use tgraph::dynamic::DynamicGraph;
//! use tgraph::TemporalEdge;
//!
//! let mut g = DynamicGraph::new();
//! g.add_edge(TemporalEdge::new(0, 1, 0.1));
//! g.add_edge(TemporalEdge::new(1, 2, 0.2));
//! let snapshot = g.to_csr();
//! assert_eq!(snapshot.num_edges(), 2);
//! assert_eq!(g.take_dirty(), vec![0, 1, 2]); // every touched endpoint
//! assert!(g.take_dirty().is_empty()); // drained
//! ```

use crate::{GraphBuilder, NodeId, TemporalEdge, TemporalGraph, Time};

/// A growable temporal graph with per-vertex time-sorted adjacency and
/// dirty-vertex tracking.
#[derive(Debug, Clone, Default)]
pub struct DynamicGraph {
    adj: Vec<Vec<(NodeId, Time)>>,
    dirty: Vec<NodeId>,
    dirty_flags: Vec<bool>,
    num_edges: usize,
}

impl DynamicGraph {
    /// Creates an empty dynamic graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Seeds the dynamic graph from an existing CSR snapshot (no vertices
    /// marked dirty).
    pub fn from_graph(g: &TemporalGraph) -> Self {
        let n = g.num_nodes();
        let mut adj = vec![Vec::new(); n];
        for e in g.edges() {
            adj[e.src as usize].push((e.dst, e.time));
        }
        Self { adj, dirty: Vec::new(), dirty_flags: vec![false; n], num_edges: g.num_edges() }
    }

    /// Number of vertices (grows automatically with edge ids).
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of directed temporal edges.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Appends one edge, keeping the source's adjacency time-sorted and
    /// marking both endpoints dirty.
    ///
    /// # Panics
    ///
    /// Panics if the timestamp is not finite.
    pub fn add_edge(&mut self, e: TemporalEdge) {
        assert!(e.time.is_finite(), "non-finite timestamp");
        let needed = e.src.max(e.dst) as usize + 1;
        if needed > self.adj.len() {
            self.adj.resize_with(needed, Vec::new);
            self.dirty_flags.resize(needed, false);
        }
        let seg = &mut self.adj[e.src as usize];
        // Streams mostly arrive in time order, so the common case is an
        // O(1) push; otherwise insert at the sorted position.
        let pos = if seg.last().is_none_or(|&(_, t)| t <= e.time) {
            seg.len()
        } else {
            seg.partition_point(|&(_, t)| t <= e.time)
        };
        seg.insert(pos, (e.dst, e.time));
        self.num_edges += 1;
        self.mark_dirty(e.src);
        self.mark_dirty(e.dst);
    }

    /// Appends many edges.
    pub fn add_edges<I: IntoIterator<Item = TemporalEdge>>(&mut self, edges: I) {
        for e in edges {
            self.add_edge(e);
        }
    }

    fn mark_dirty(&mut self, v: NodeId) {
        let i = v as usize;
        if !self.dirty_flags[i] {
            self.dirty_flags[i] = true;
            self.dirty.push(v);
        }
    }

    /// Drains the set of vertices touched since the last call — the
    /// re-walk frontier for incremental embedding refresh.
    pub fn take_dirty(&mut self) -> Vec<NodeId> {
        let mut out = std::mem::take(&mut self.dirty);
        out.sort_unstable();
        for &v in &out {
            self.dirty_flags[v as usize] = false;
        }
        out
    }

    /// Vertices currently marked dirty (without draining).
    pub fn dirty_count(&self) -> usize {
        self.dirty.len()
    }

    /// Snapshots to the immutable CSR representation.
    pub fn to_csr(&self) -> TemporalGraph {
        let mut b = GraphBuilder::new().num_nodes(self.adj.len());
        for (src, seg) in self.adj.iter().enumerate() {
            b.extend(seg.iter().map(|&(dst, t)| TemporalEdge::new(src as NodeId, dst, t)));
        }
        b.build()
    }
}

impl Extend<TemporalEdge> for DynamicGraph {
    fn extend<I: IntoIterator<Item = TemporalEdge>>(&mut self, iter: I) {
        self.add_edges(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csr_snapshot_matches_builder() {
        let edges = vec![
            TemporalEdge::new(0, 1, 0.5),
            TemporalEdge::new(0, 2, 0.1),
            TemporalEdge::new(2, 0, 0.9),
        ];
        let mut dynamic = DynamicGraph::new();
        dynamic.add_edges(edges.clone());
        let from_builder = GraphBuilder::new().extend_edges(edges).build();
        assert_eq!(dynamic.to_csr(), from_builder);
    }

    #[test]
    fn out_of_order_inserts_stay_sorted() {
        let mut g = DynamicGraph::new();
        g.add_edge(TemporalEdge::new(0, 1, 0.9));
        g.add_edge(TemporalEdge::new(0, 2, 0.1));
        g.add_edge(TemporalEdge::new(0, 3, 0.5));
        let csr = g.to_csr();
        let times: Vec<f64> = csr.neighbors(0).map(|(_, t)| t).collect();
        assert_eq!(times, vec![0.1, 0.5, 0.9]);
    }

    #[test]
    fn dirty_tracking_marks_both_endpoints_once() {
        let mut g = DynamicGraph::new();
        g.add_edge(TemporalEdge::new(3, 7, 0.1));
        g.add_edge(TemporalEdge::new(3, 7, 0.2));
        assert_eq!(g.take_dirty(), vec![3, 7]);
        assert_eq!(g.dirty_count(), 0);
        g.add_edge(TemporalEdge::new(1, 3, 0.3));
        assert_eq!(g.take_dirty(), vec![1, 3]);
    }

    #[test]
    fn from_graph_round_trip() {
        let base = crate::gen::erdos_renyi(50, 300, 4).build();
        let mut dynamic = DynamicGraph::from_graph(&base);
        assert_eq!(dynamic.to_csr(), base);
        assert_eq!(dynamic.dirty_count(), 0);
        dynamic.add_edge(TemporalEdge::new(0, 1, 2.0));
        assert_eq!(dynamic.num_edges(), 301);
    }

    #[test]
    fn vertex_space_grows_with_ids() {
        let mut g = DynamicGraph::new();
        g.add_edge(TemporalEdge::new(100, 5, 0.0));
        assert_eq!(g.num_nodes(), 101);
        assert_eq!(g.to_csr().num_nodes(), 101);
    }

    #[test]
    #[should_panic(expected = "non-finite timestamp")]
    fn nan_time_rejected() {
        DynamicGraph::new().add_edge(TemporalEdge::new(0, 1, f64::NAN));
    }
}
