//! Temporal graph substrate.
//!
//! This crate is the analog of the paper's GAPBS-derived `WGraph`: a CSR
//! (compressed sparse row) graph whose per-edge weight slot stores a
//! timestamp, preserving multiple temporally-distinct edges between the same
//! endpoint pair (paper §V-A). Adjacency segments are sorted by timestamp so
//! the walk kernel can locate temporally-valid neighbors with a binary
//! search.
//!
//! It also provides:
//!
//! * [`GraphBuilder`] — incremental construction from temporal edge lists,
//!   with optional undirected doubling and timestamp normalization;
//! * [`io`] — the `.wel` (`src dst time`) edge-list format used by the
//!   paper's artifact;
//! * [`gen`] — synthetic generators: Erdős–Rényi (hardware study), temporal
//!   preferential attachment (power-law stand-ins for the real link
//!   prediction datasets), and a temporal stochastic block model (planted
//!   labels for node classification);
//! * [`stats`] — degree and timestamp statistics used by the
//!   characterization experiments.
//!
//! # Examples
//!
//! ```
//! use tgraph::{GraphBuilder, TemporalEdge};
//!
//! let g = GraphBuilder::new()
//!     .add_edge(TemporalEdge::new(0, 1, 0.1))
//!     .add_edge(TemporalEdge::new(1, 2, 0.5))
//!     .add_edge(TemporalEdge::new(1, 3, 0.2))
//!     .build();
//! assert_eq!(g.num_nodes(), 4);
//! assert_eq!(g.out_degree(1), 2);
//! // Neighbors are timestamp-sorted:
//! let times: Vec<f64> = g.neighbors(1).map(|(_, t)| t).collect();
//! assert_eq!(times, vec![0.2, 0.5]);
//! ```

pub mod algo;
mod builder;
pub mod dynamic;
mod edge;
mod error;
pub mod gen;
mod graph;
pub mod io;
pub mod prefetch;
pub mod stats;
mod storage;

pub use builder::GraphBuilder;
pub use edge::{NodeId, TemporalEdge, Time};
pub use error::TGraphError;
pub use graph::{Neighbors, TemporalGraph};
pub use storage::Storage;
