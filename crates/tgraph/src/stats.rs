//! Degree and timestamp statistics used by the characterization study.

use crate::{NodeId, TemporalGraph};

/// Summary statistics of a graph's out-degree distribution.
///
/// # Examples
///
/// ```
/// let g = tgraph::gen::erdos_renyi(100, 1_000, 0).build();
/// let s = tgraph::stats::degree_stats(&g);
/// assert_eq!(s.total_edges, 1_000);
/// assert!(s.max >= s.mean as usize);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Maximum out-degree (`M` in the paper's walk complexity).
    pub max: usize,
    /// Minimum out-degree.
    pub min: usize,
    /// Mean out-degree.
    pub mean: f64,
    /// Number of vertices with zero out-degree (walk dead-ends).
    pub sinks: usize,
    /// Total directed edge count.
    pub total_edges: usize,
}

/// Computes [`DegreeStats`] for a graph.
pub fn degree_stats(g: &TemporalGraph) -> DegreeStats {
    let n = g.num_nodes();
    if n == 0 {
        return DegreeStats { max: 0, min: 0, mean: 0.0, sinks: 0, total_edges: 0 };
    }
    let mut max = 0usize;
    let mut min = usize::MAX;
    let mut sinks = 0usize;
    for v in 0..n as NodeId {
        let d = g.out_degree(v);
        max = max.max(d);
        min = min.min(d);
        if d == 0 {
            sinks += 1;
        }
    }
    DegreeStats {
        max,
        min,
        mean: g.num_edges() as f64 / n as f64,
        sinks,
        total_edges: g.num_edges(),
    }
}

/// Histogram of out-degrees with geometrically growing buckets
/// `[1, 2), [2, 4), [4, 8), …` — bucket 0 counts isolated vertices.
///
/// Heavy-tailed graphs show slowly decaying counts across many buckets;
/// Erdős–Rényi graphs concentrate in a few buckets around the mean.
pub fn degree_histogram(g: &TemporalGraph) -> Vec<(usize, usize)> {
    let mut buckets: Vec<usize> = Vec::new();
    for v in 0..g.num_nodes() as NodeId {
        let d = g.out_degree(v);
        let b = if d == 0 { 0 } else { (usize::BITS - (d.leading_zeros())) as usize };
        if b >= buckets.len() {
            buckets.resize(b + 1, 0);
        }
        buckets[b] += 1;
    }
    buckets
        .into_iter()
        .enumerate()
        .map(|(b, c)| (if b == 0 { 0 } else { 1usize << (b - 1) }, c))
        .collect()
}

/// Fraction of edges whose timestamp lies in each of `buckets` equal-width
/// bins over the graph's time range. Uniform-timestamp graphs are flat;
/// growth processes (preferential attachment) skew late.
pub fn timestamp_profile(g: &TemporalGraph, buckets: usize) -> Vec<f64> {
    assert!(buckets >= 1, "need at least one bucket");
    let mut counts = vec![0usize; buckets];
    let Some((lo, hi)) = g.time_range() else {
        return vec![0.0; buckets];
    };
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    for e in g.edges() {
        let b = (((e.time - lo) / span) * buckets as f64) as usize;
        counts[b.min(buckets - 1)] += 1;
    }
    let total = g.num_edges().max(1) as f64;
    counts.into_iter().map(|c| c as f64 / total).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GraphBuilder, TemporalEdge};

    #[test]
    fn stats_on_star_graph() {
        let mut b = GraphBuilder::new();
        for i in 1..=10 {
            b = b.add_edge(TemporalEdge::new(0, i, i as f64 / 10.0));
        }
        let g = b.build();
        let s = degree_stats(&g);
        assert_eq!(s.max, 10);
        assert_eq!(s.min, 0);
        assert_eq!(s.sinks, 10);
        assert_eq!(s.total_edges, 10);
    }

    #[test]
    fn histogram_buckets_sum_to_node_count() {
        let g = crate::gen::preferential_attachment(500, 2, 1).build();
        let total: usize = degree_histogram(&g).iter().map(|&(_, c)| c).sum();
        assert_eq!(total, g.num_nodes());
    }

    #[test]
    fn timestamp_profile_sums_to_one() {
        let g = crate::gen::erdos_renyi(100, 2_000, 9).build();
        let profile = timestamp_profile(&g, 10);
        let sum: f64 = profile.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_graph_profiles() {
        let g = GraphBuilder::new().build();
        assert_eq!(degree_stats(&g).total_edges, 0);
        assert_eq!(timestamp_profile(&g, 4), vec![0.0; 4]);
    }
}
