//! Owned-or-mapped slice backing for the zero-copy storage layer.
//!
//! Every large array in the hot path — the CSR offsets/destinations/
//! timestamps here, the embedding table in `embed`, the sampler CDF and
//! alias tables in `twalk` — is either built in memory (`Owned`) or
//! borrowed out of a memory-mapped store file (`Mapped`). [`Storage`]
//! abstracts over the two so the consuming structs keep plain-slice
//! semantics (`Deref<Target = [T]>`) while an opened store file hands
//! out views into its mapping without copying a byte.
//!
//! The mapped variant pins the mapping's owner (an `Arc` to the open
//! store file) for as long as any `Storage` borrowed from it is alive,
//! so the pointer can never dangle: dropping the last `Storage` drops
//! the owner, which unmaps.

use std::any::Any;
use std::ops::Deref;
use std::sync::Arc;

/// A contiguous immutable `[T]` that is either heap-owned or borrowed
/// from a reference-counted mapping (e.g. an mmapped store file).
///
/// Semantically this *is* a `[T]`: it derefs to a slice, compares and
/// hashes like one, and clones cheaply in the mapped case (one `Arc`
/// bump). Construction of the mapped variant is `unsafe` — the store
/// layer is responsible for alignment/bounds/lifetime; everything
/// downstream stays safe Rust.
///
/// # Examples
///
/// ```
/// use tgraph::Storage;
///
/// let s = Storage::owned(vec![1u32, 2, 3]);
/// assert_eq!(&s[..], &[1, 2, 3]);
/// assert_eq!(s.len(), 3);
/// ```
pub enum Storage<T> {
    /// Plain heap-owned data (the in-memory build path).
    Owned(Vec<T>),
    /// A borrowed view into an immutable buffer kept alive by `owner`.
    Mapped {
        /// First element. Aligned to `align_of::<T>()`; valid for `len`
        /// reads for as long as `owner` is alive.
        ptr: *const T,
        /// Element count.
        len: usize,
        /// Keep-alive handle for the backing buffer (the open store
        /// file). Dropped when the last clone of this storage drops.
        owner: Arc<dyn Any + Send + Sync>,
    },
}

impl<T> Storage<T> {
    /// Wraps an owned vector.
    pub fn owned(v: Vec<T>) -> Self {
        Storage::Owned(v)
    }

    /// Borrows `len` elements at `ptr` out of a buffer kept alive by
    /// `owner`.
    ///
    /// # Safety
    ///
    /// The caller must guarantee that `ptr` is aligned to
    /// `align_of::<T>()`, valid for reads of `len * size_of::<T>()`
    /// bytes containing initialized values of `T`, that the memory is
    /// never mutated or unmapped while `owner` (or any clone of it) is
    /// alive, and that every bit pattern in the buffer is a valid `T`
    /// (use only plain-old-data element types).
    pub unsafe fn mapped(ptr: *const T, len: usize, owner: Arc<dyn Any + Send + Sync>) -> Self {
        Storage::Mapped { ptr, len, owner }
    }

    /// The elements as a plain slice.
    pub fn as_slice(&self) -> &[T] {
        match self {
            Storage::Owned(v) => v.as_slice(),
            // SAFETY: upheld by the `mapped` constructor contract; the
            // owner Arc keeps the buffer alive for `&self`'s lifetime.
            Storage::Mapped { ptr, len, .. } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
        }
    }

    /// Whether this storage borrows from a mapping (no heap copy).
    pub fn is_mapped(&self) -> bool {
        matches!(self, Storage::Mapped { .. })
    }

    /// Heap bytes owned by this storage (0 for the mapped variant — the
    /// bytes belong to the mapping, not to us).
    pub fn owned_bytes(&self) -> usize {
        match self {
            Storage::Owned(v) => v.capacity() * std::mem::size_of::<T>(),
            Storage::Mapped { .. } => 0,
        }
    }
}

// SAFETY: the mapped variant is an immutable view whose backing buffer
// is owned by an `Arc<dyn Any + Send + Sync>`; with `T: Send + Sync`
// sharing or moving the view across threads is sound because no thread
// can mutate or free the buffer while the Arc is held.
unsafe impl<T: Send + Sync> Send for Storage<T> {}
unsafe impl<T: Send + Sync> Sync for Storage<T> {}

impl<T> Deref for Storage<T> {
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T> AsRef<[T]> for Storage<T> {
    fn as_ref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Clone> Clone for Storage<T> {
    fn clone(&self) -> Self {
        match self {
            Storage::Owned(v) => Storage::Owned(v.clone()),
            Storage::Mapped { ptr, len, owner } => {
                Storage::Mapped { ptr: *ptr, len: *len, owner: Arc::clone(owner) }
            }
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Storage<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Render as the slice either way; whether it is mapped is a
        // storage detail, not part of the value.
        std::fmt::Debug::fmt(self.as_slice(), f)
    }
}

impl<T: PartialEq> PartialEq for Storage<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Eq> Eq for Storage<T> {}

impl<T> From<Vec<T>> for Storage<T> {
    fn from(v: Vec<T>) -> Self {
        Storage::Owned(v)
    }
}

impl<T> Default for Storage<T> {
    fn default() -> Self {
        Storage::Owned(Vec::new())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owned_storage_behaves_like_a_slice() {
        let s = Storage::owned(vec![3u64, 1, 4, 1, 5]);
        assert_eq!(s.len(), 5);
        assert_eq!(s[2], 4);
        assert_eq!(&s[1..3], &[1, 4]);
        assert!(!s.is_mapped());
        assert_eq!(s.clone(), s);
    }

    #[test]
    fn mapped_storage_views_its_owner_and_pins_it() {
        let buf: Arc<Vec<u32>> = Arc::new(vec![10, 20, 30]);
        let view = {
            let owner: Arc<dyn Any + Send + Sync> = Arc::clone(&buf) as _;
            // SAFETY: buf is immutable, lives as long as `owner`, and
            // u32 is plain old data.
            unsafe { Storage::mapped(buf.as_ptr(), buf.len(), owner) }
        };
        assert!(view.is_mapped());
        assert_eq!(view.owned_bytes(), 0);
        assert_eq!(&view[..], &[10, 20, 30]);
        // Two strong refs: ours and the view's owner.
        assert_eq!(Arc::strong_count(&buf), 2);
        let clone = view.clone();
        assert_eq!(Arc::strong_count(&buf), 3);
        drop(view);
        drop(clone);
        assert_eq!(Arc::strong_count(&buf), 1);
    }

    #[test]
    fn owned_and_mapped_compare_by_contents() {
        let buf: Arc<Vec<f64>> = Arc::new(vec![0.5, -1.0]);
        let owner: Arc<dyn Any + Send + Sync> = Arc::clone(&buf) as _;
        let mapped = unsafe { Storage::mapped(buf.as_ptr(), buf.len(), owner) };
        assert_eq!(Storage::owned(vec![0.5, -1.0]), mapped);
    }
}
