//! Error type for temporal graph construction and IO.

use std::fmt;

/// Errors produced while building, reading, or writing temporal graphs.
#[derive(Debug)]
pub enum TGraphError {
    /// Underlying IO failure while reading or writing an edge list.
    Io(std::io::Error),
    /// A line of an edge-list file could not be parsed.
    Parse {
        /// 1-based line number in the input.
        line: usize,
        /// Description of what failed to parse.
        message: String,
    },
    /// A timestamp was not a finite number.
    NonFiniteTime {
        /// The offending edge index in construction order.
        edge_index: usize,
    },
    /// The graph was empty where a non-empty graph is required.
    EmptyGraph,
    /// Externally supplied CSR arrays (e.g. from a store file) violate a
    /// structural invariant of [`crate::TemporalGraph`].
    InvalidCsr {
        /// Which invariant failed, with positions attached.
        message: String,
    },
}

impl fmt::Display for TGraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TGraphError::Io(e) => write!(f, "io error: {e}"),
            TGraphError::Parse { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
            TGraphError::NonFiniteTime { edge_index } => {
                write!(f, "non-finite timestamp on edge {edge_index}")
            }
            TGraphError::EmptyGraph => write!(f, "graph has no edges"),
            TGraphError::InvalidCsr { message } => write!(f, "invalid CSR arrays: {message}"),
        }
    }
}

impl std::error::Error for TGraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TGraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TGraphError {
    fn from(e: std::io::Error) -> Self {
        TGraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let e = TGraphError::Parse { line: 3, message: "bad field".into() };
        let s = e.to_string();
        assert!(s.contains("line 3"));
        assert!(!s.is_empty());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TGraphError>();
    }
}
