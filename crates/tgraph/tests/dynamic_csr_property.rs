//! Property test: `DynamicGraph::to_csr` must yield time-sorted CSR
//! segments regardless of edge arrival order.
//!
//! The temporal walk kernels binary-search each vertex's time slice
//! (`neighbors_after` and the prepared CDF tables both assume sorted
//! segments), so an out-of-order ingest that left a segment unsorted
//! would silently corrupt every downstream walk. This test drives many
//! seeded random streams — shuffled arrival, duplicate edges, equal
//! timestamps, id gaps — and checks the invariant plus multiset
//! equivalence with a batch-built graph.

use tgraph::dynamic::DynamicGraph;
use tgraph::{GraphBuilder, TemporalEdge, TemporalGraph};

/// splitmix64 — deterministic stream source for the property runs.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

/// Generates an edge stream with adversarial temporal structure:
/// timestamps drawn out of order, repeated endpoints, exact ties, and
/// a few far-out node ids to force growth.
fn random_edges(rng: &mut Rng, nodes: u64, count: usize) -> Vec<TemporalEdge> {
    (0..count)
        .map(|_| {
            let src = rng.below(nodes) as u32;
            let dst = if rng.below(20) == 0 {
                (nodes + rng.below(8)) as u32 // id gap: implicit vertices
            } else {
                rng.below(nodes) as u32
            };
            // Quantized timestamps produce plenty of exact ties.
            let time = rng.below(50) as f64 / 10.0;
            TemporalEdge::new(src, dst, time)
        })
        .collect()
}

fn shuffled(rng: &mut Rng, mut edges: Vec<TemporalEdge>) -> Vec<TemporalEdge> {
    for i in (1..edges.len()).rev() {
        let j = rng.below(i as u64 + 1) as usize;
        edges.swap(i, j);
    }
    edges
}

/// Every vertex's time slice must be nondecreasing.
fn assert_time_sorted(g: &TemporalGraph, context: &str) {
    for v in 0..g.num_nodes() as u32 {
        let (_nbrs, times) = g.neighbor_slices(v);
        for w in times.windows(2) {
            assert!(
                w[0] <= w[1],
                "{context}: vertex {v} has out-of-order times {} > {}",
                w[0],
                w[1]
            );
        }
    }
}

/// Edge multiset of a graph as a sortable list.
fn edge_multiset(g: &TemporalGraph) -> Vec<(u32, u32, u64)> {
    let mut all: Vec<(u32, u32, u64)> =
        g.edges().map(|e| (e.src, e.dst, e.time.to_bits())).collect();
    all.sort_unstable();
    all
}

#[test]
fn out_of_order_ingestion_yields_time_sorted_csr() {
    for seed in 0..20u64 {
        let mut rng = Rng(seed.wrapping_mul(0x2545_F491_4F6C_DD1D).wrapping_add(1));
        let edges = random_edges(&mut rng, 40, 400);
        let stream = shuffled(&mut rng, edges.clone());

        // Path A: everything known up front (the builder sorts).
        let batch = GraphBuilder::new().extend_edges(edges.iter().copied()).build();

        // Path B: one-at-a-time ingestion in shuffled order.
        let mut dynamic = DynamicGraph::new();
        for &e in &stream {
            dynamic.add_edge(e);
        }
        let csr = dynamic.to_csr();

        assert_time_sorted(&csr, &format!("seed {seed} (shuffled singles)"));
        assert_eq!(
            edge_multiset(&csr),
            edge_multiset(&batch),
            "seed {seed}: ingestion order changed the edge multiset"
        );
        assert_eq!(csr.num_nodes(), batch.num_nodes(), "seed {seed}: node count diverged");
    }
}

#[test]
fn chunked_ingestion_matches_batch_build() {
    for seed in 100..110u64 {
        let mut rng = Rng(seed);
        let edges = random_edges(&mut rng, 30, 300);
        let stream = shuffled(&mut rng, edges.clone());
        let batch = GraphBuilder::new().extend_edges(edges.iter().copied()).build();

        // Ingest in random-sized chunks with interleaved to_csr calls —
        // snapshots mid-stream must also be sorted.
        let mut dynamic = DynamicGraph::new();
        let mut rest: &[TemporalEdge] = &stream;
        while !rest.is_empty() {
            let take = (rng.below(40) as usize + 1).min(rest.len());
            dynamic.add_edges(rest[..take].iter().copied());
            rest = &rest[take..];
            assert_time_sorted(&dynamic.to_csr(), &format!("seed {seed} (mid-stream)"));
        }
        let csr = dynamic.to_csr();
        assert_eq!(edge_multiset(&csr), edge_multiset(&batch), "seed {seed}");
    }
}

#[test]
fn growth_from_existing_graph_stays_sorted() {
    let mut rng = Rng(7);
    let base_edges = random_edges(&mut rng, 25, 200);
    let base = GraphBuilder::new().extend_edges(base_edges.iter().copied()).build();
    let mut dynamic = DynamicGraph::from_graph(&base);

    // Late edges with timestamps *earlier* than existing ones must be
    // inserted into position, not appended.
    let late_edges = random_edges(&mut rng, 25, 150);
    let late = shuffled(&mut rng, late_edges);
    dynamic.add_edges(late.iter().copied());
    let csr = dynamic.to_csr();
    assert_time_sorted(&csr, "from_graph + out-of-order additions");
    assert_eq!(csr.num_edges(), base.num_edges() + late.len());
}
