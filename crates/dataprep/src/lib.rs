//! Classifier data preparation (paper §V-C, Fig. 7).
//!
//! For **link prediction** the paper sorts edges by timestamp, reserves the
//! most recent 20% as the test set (train on the past, predict the future),
//! randomly samples 60% / 20% of the total for training / validation from
//! the remainder, then pairs every positive edge with a *negative* edge —
//! an endpoint-corrupted pair absent from the input graph. Edge features
//! are the concatenation of the endpoint embeddings.
//!
//! For **node classification** the labeled vertex set is split 60/20/20
//! (stratified by class, so every class appears in every split) and the
//! features are the node embeddings themselves; no negative sampling is
//! needed (§V-C).
//!
//! # Examples
//!
//! ```
//! use dataprep::{temporal_edge_split, SplitRatios};
//!
//! let g = tgraph::gen::erdos_renyi(100, 2_000, 1).build();
//! let split = temporal_edge_split(&g, SplitRatios::default(), 7);
//! assert_eq!(split.train_pos.len() + split.valid_pos.len() + split.test_pos.len(), 2_000);
//! // Test edges come strictly after the temporal cut:
//! let max_train = split.train_pos.iter().map(|e| e.time).fold(f64::MIN, f64::max);
//! let min_test = split.test_pos.iter().map(|e| e.time).fold(f64::MAX, f64::min);
//! assert!(max_train <= min_test);
//! ```

use std::collections::HashSet;

use embed::EmbeddingMatrix;
use nn::Tensor2;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use tgraph::{NodeId, TemporalEdge, TemporalGraph};

/// Train/validation/test fractions (of the *total*), paper default
/// 60/20/20.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitRatios {
    /// Training fraction.
    pub train: f64,
    /// Validation fraction.
    pub valid: f64,
    /// Test fraction (taken from the temporal tail for link prediction).
    pub test: f64,
}

impl SplitRatios {
    /// Creates ratios, validating they are positive and sum to 1.
    ///
    /// # Panics
    ///
    /// Panics if any ratio is non-positive or the sum differs from 1 by
    /// more than 1e-6.
    pub fn new(train: f64, valid: f64, test: f64) -> Self {
        assert!(train > 0.0 && valid > 0.0 && test > 0.0, "ratios must be positive");
        assert!(((train + valid + test) - 1.0).abs() < 1e-6, "ratios must sum to 1");
        Self { train, valid, test }
    }
}

impl Default for SplitRatios {
    fn default() -> Self {
        Self { train: 0.6, valid: 0.2, test: 0.2 }
    }
}

/// Positive and negative edge sets for the three splits.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeSplit {
    /// Training positives (randomly drawn from the temporal head).
    pub train_pos: Vec<TemporalEdge>,
    /// Validation positives.
    pub valid_pos: Vec<TemporalEdge>,
    /// Test positives — the temporally latest edges.
    pub test_pos: Vec<TemporalEdge>,
    /// Training negatives (endpoint pairs absent from the graph).
    pub train_neg: Vec<(NodeId, NodeId)>,
    /// Validation negatives.
    pub valid_neg: Vec<(NodeId, NodeId)>,
    /// Test negatives.
    pub test_neg: Vec<(NodeId, NodeId)>,
}

/// Splits a graph's edges per Fig. 7: timestamp sort, temporal-tail test
/// set, random train/valid partition of the head, then negative sampling
/// matching each positive set's size.
///
/// # Panics
///
/// Panics if the graph has fewer than 5 edges, fewer than 3 vertices, or
/// is too dense for negative sampling: the number of *distinct* endpoint
/// pairs must leave at least as many absent pairs as positives, since
/// every positive needs a unique graph-absent negative.
pub fn temporal_edge_split(g: &TemporalGraph, ratios: SplitRatios, seed: u64) -> EdgeSplit {
    let mut edges: Vec<TemporalEdge> = g.edges().collect();
    assert!(edges.len() >= 5, "too few edges to split");
    assert!(g.num_nodes() >= 3, "too few vertices for negative sampling");
    {
        let n = g.num_nodes();
        let distinct_pairs: usize = g.edges().map(|e| e.endpoints()).collect::<HashSet<_>>().len();
        let capacity = n * (n - 1) - distinct_pairs;
        assert!(
            capacity >= edges.len(),
            "graph too dense for negative sampling: {} positives need unique absent pairs \
             but only {capacity} non-edges exist",
            edges.len()
        );
    }
    let mut rng = StdRng::seed_from_u64(seed);

    // (1) Sort by timestamp; (2) temporal tail becomes the test set.
    edges.sort_by(|a, b| a.time.partial_cmp(&b.time).expect("finite times"));
    let test_count =
        ((edges.len() as f64 * ratios.test).round() as usize).clamp(1, edges.len() - 2);
    let head_count = edges.len() - test_count;
    let test_pos = edges.split_off(head_count);

    // (3) Random train/valid partition of the head, sized as fractions of
    // the total edge count.
    edges.shuffle(&mut rng);
    let train_count =
        ((g.num_edges() as f64 * ratios.train).round() as usize).clamp(1, edges.len() - 1);
    let valid_pos = edges.split_off(train_count);
    let train_pos = edges;

    // (4) Negative sampling — corrupt endpoints until the pair is absent
    // from the *input graph* (any timestamp) and unseen among negatives.
    let existing: HashSet<(NodeId, NodeId)> = g.edges().map(|e| (e.src, e.dst)).collect();
    let mut used: HashSet<(NodeId, NodeId)> = HashSet::new();
    let n = g.num_nodes() as NodeId;
    let mut sample_negatives = |count: usize, rng: &mut StdRng| -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::with_capacity(count);
        while out.len() < count {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u == v {
                continue;
            }
            if existing.contains(&(u, v)) || used.contains(&(u, v)) {
                continue;
            }
            used.insert((u, v));
            out.push((u, v));
        }
        out
    };
    let train_neg = sample_negatives(train_pos.len(), &mut rng);
    let valid_neg = sample_negatives(valid_pos.len(), &mut rng);
    let test_neg = sample_negatives(test_pos.len(), &mut rng);

    EdgeSplit { train_pos, valid_pos, test_pos, train_neg, valid_neg, test_neg }
}

/// Feature matrices and labels for one classification task, ready for
/// [`nn::Trainer`].
#[derive(Debug, Clone, PartialEq)]
pub struct LinkPredData {
    /// Training features (concatenated endpoint embeddings).
    pub x_train: Tensor2,
    /// Training labels (1 = real edge, 0 = negative).
    pub y_train: Vec<f32>,
    /// Validation features.
    pub x_valid: Tensor2,
    /// Validation labels.
    pub y_valid: Vec<f32>,
    /// Test features.
    pub x_test: Tensor2,
    /// Test labels.
    pub y_test: Vec<f32>,
}

/// Assembles link prediction datasets from an edge split and embeddings
/// (step 4 of Fig. 7: edge feature = `[f(u), f(v)]`).
pub fn link_prediction_data(split: &EdgeSplit, emb: &EmbeddingMatrix) -> LinkPredData {
    let pack = |pos: &[TemporalEdge], neg: &[(NodeId, NodeId)]| -> (Tensor2, Vec<f32>) {
        let rows = pos.len() + neg.len();
        let dim = emb.dim() * 2;
        let mut x = Tensor2::zeros(rows, dim);
        let mut y = Vec::with_capacity(rows);
        for (i, e) in pos.iter().enumerate() {
            x.row_mut(i).copy_from_slice(&emb.edge_feature(e.src, e.dst));
            y.push(1.0);
        }
        for (i, &(u, v)) in neg.iter().enumerate() {
            x.row_mut(pos.len() + i).copy_from_slice(&emb.edge_feature(u, v));
            y.push(0.0);
        }
        (x, y)
    };
    let (x_train, y_train) = pack(&split.train_pos, &split.train_neg);
    let (x_valid, y_valid) = pack(&split.valid_pos, &split.valid_neg);
    let (x_test, y_test) = pack(&split.test_pos, &split.test_neg);
    LinkPredData { x_train, y_train, x_valid, y_valid, x_test, y_test }
}

/// Node classification datasets (features = node embeddings).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeClassData {
    /// Training features.
    pub x_train: Tensor2,
    /// Training class labels.
    pub y_train: Vec<usize>,
    /// Validation features.
    pub x_valid: Tensor2,
    /// Validation class labels.
    pub y_valid: Vec<usize>,
    /// Test features.
    pub x_test: Tensor2,
    /// Test class labels.
    pub y_test: Vec<usize>,
    /// Number of distinct classes (`|C|`, the output layer width).
    pub num_classes: usize,
}

/// Splits labeled vertices 60/20/20 stratified by class and gathers their
/// embeddings as features.
///
/// # Panics
///
/// Panics if `labels.len() != emb.num_nodes()`, or any class has fewer
/// than 3 members (stratification needs one per split).
pub fn node_classification_data(
    emb: &EmbeddingMatrix,
    labels: &[u16],
    ratios: SplitRatios,
    seed: u64,
) -> NodeClassData {
    assert_eq!(labels.len(), emb.num_nodes(), "label count mismatch");
    let num_classes = labels.iter().map(|&l| l as usize + 1).max().unwrap_or(0);
    let mut rng = StdRng::seed_from_u64(seed);

    let mut train_idx = Vec::new();
    let mut valid_idx = Vec::new();
    let mut test_idx = Vec::new();
    for c in 0..num_classes as u16 {
        let mut members: Vec<usize> =
            labels.iter().enumerate().filter(|&(_, &l)| l == c).map(|(i, _)| i).collect();
        assert!(members.len() >= 3, "class {c} has fewer than 3 members");
        members.shuffle(&mut rng);
        let n_test =
            ((members.len() as f64 * ratios.test).round() as usize).clamp(1, members.len() - 2);
        let n_valid = ((members.len() as f64 * ratios.valid).round() as usize)
            .clamp(1, members.len() - n_test - 1);
        test_idx.extend(members.drain(..n_test));
        valid_idx.extend(members.drain(..n_valid));
        train_idx.extend(members);
    }

    let gather = |idx: &[usize]| -> (Tensor2, Vec<usize>) {
        let mut x = Tensor2::zeros(idx.len(), emb.dim());
        let mut y = Vec::with_capacity(idx.len());
        for (r, &i) in idx.iter().enumerate() {
            x.row_mut(r).copy_from_slice(emb.get(i as NodeId));
            y.push(labels[i] as usize);
        }
        (x, y)
    };
    let (x_train, y_train) = gather(&train_idx);
    let (x_valid, y_valid) = gather(&valid_idx);
    let (x_test, y_test) = gather(&test_idx);
    NodeClassData { x_train, y_train, x_valid, y_valid, x_test, y_test, num_classes }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn embedding_for(n: usize) -> EmbeddingMatrix {
        // Arbitrary deterministic embedding: e(v) = [v, v^2 mod 7] scaled.
        let data: Vec<f32> =
            (0..n).flat_map(|v| [v as f32 / n as f32, ((v * v) % 7) as f32 / 7.0]).collect();
        EmbeddingMatrix::from_vec(n, 2, data)
    }

    #[test]
    fn split_counts_respect_ratios() {
        let g = tgraph::gen::erdos_renyi(200, 5_000, 2).build();
        let s = temporal_edge_split(&g, SplitRatios::default(), 1);
        let total = 5_000f64;
        assert!((s.test_pos.len() as f64 - total * 0.2).abs() <= 1.0);
        assert!((s.train_pos.len() as f64 - total * 0.6).abs() <= 1.0);
        assert_eq!(s.train_neg.len(), s.train_pos.len());
        assert_eq!(s.valid_neg.len(), s.valid_pos.len());
        assert_eq!(s.test_neg.len(), s.test_pos.len());
    }

    #[test]
    fn test_set_is_temporal_tail() {
        let g = tgraph::gen::erdos_renyi(100, 1_000, 3).build();
        let s = temporal_edge_split(&g, SplitRatios::default(), 2);
        let head_max =
            s.train_pos.iter().chain(&s.valid_pos).map(|e| e.time).fold(f64::MIN, f64::max);
        let tail_min = s.test_pos.iter().map(|e| e.time).fold(f64::MAX, f64::min);
        assert!(head_max <= tail_min, "head {head_max} > tail {tail_min}");
    }

    #[test]
    fn negatives_are_absent_from_graph_and_unique() {
        let g = tgraph::gen::erdos_renyi(50, 500, 4).build();
        let s = temporal_edge_split(&g, SplitRatios::default(), 3);
        let mut seen = HashSet::new();
        for &(u, v) in s.train_neg.iter().chain(&s.valid_neg).chain(&s.test_neg) {
            assert!(!g.has_edge(u, v), "negative ({u}, {v}) exists in graph");
            assert_ne!(u, v);
            assert!(seen.insert((u, v)), "duplicate negative ({u}, {v})");
        }
    }

    #[test]
    fn splits_are_disjoint_and_complete() {
        let g = tgraph::gen::erdos_renyi(80, 900, 5).build();
        let s = temporal_edge_split(&g, SplitRatios::default(), 4);
        assert_eq!(s.train_pos.len() + s.valid_pos.len() + s.test_pos.len(), g.num_edges());
    }

    #[test]
    fn link_pred_features_concatenate_embeddings() {
        let g = tgraph::gen::erdos_renyi(30, 200, 6).build();
        let s = temporal_edge_split(&g, SplitRatios::default(), 5);
        let emb = embedding_for(30);
        let data = link_prediction_data(&s, &emb);
        assert_eq!(data.x_train.cols(), 4); // 2 * dim
        assert_eq!(data.x_train.rows(), data.y_train.len());
        // First training row is the first positive edge's concatenated
        // embedding with label 1.
        let e = &s.train_pos[0];
        assert_eq!(data.x_train.row(0), emb.edge_feature(e.src, e.dst).as_slice());
        assert_eq!(data.y_train[0], 1.0);
        // Positives and negatives are balanced.
        let pos = data.y_train.iter().filter(|&&y| y == 1.0).count();
        assert_eq!(pos * 2, data.y_train.len());
    }

    #[test]
    fn node_class_split_is_stratified() {
        let n = 90;
        let labels: Vec<u16> = (0..n).map(|i| (i % 3) as u16).collect();
        let emb = embedding_for(n);
        let d = node_classification_data(&emb, &labels, SplitRatios::default(), 6);
        assert_eq!(d.num_classes, 3);
        for split in [&d.y_train, &d.y_valid, &d.y_test] {
            for c in 0..3usize {
                assert!(split.contains(&c), "class {c} missing from a split");
            }
        }
        assert_eq!(d.y_train.len() + d.y_valid.len() + d.y_test.len(), n);
    }

    #[test]
    #[should_panic(expected = "fewer than 3 members")]
    fn tiny_class_panics() {
        let labels = vec![0u16, 0, 0, 1];
        let emb = embedding_for(4);
        let _ = node_classification_data(&emb, &labels, SplitRatios::default(), 0);
    }

    #[test]
    #[should_panic(expected = "ratios must sum to 1")]
    fn bad_ratios_panic() {
        let _ = SplitRatios::new(0.5, 0.2, 0.2);
    }
}
