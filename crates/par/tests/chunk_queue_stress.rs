//! Stress tests for [`par::ChunkQueue`] under thread churn.
//!
//! The contract under test: concurrently claimed chunks are pairwise
//! disjoint and together partition `0..len` exactly — no index is ever
//! dealt twice, none is skipped — regardless of how many threads join or
//! leave mid-drain.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Arc;
use std::thread;

use par::{parallel_workers, ChunkQueue, ParConfig};

/// Waves of 1–64 short-lived threads, each draining an uneven share of a
/// fresh queue; every index must be claimed exactly once per wave.
#[test]
fn thread_churn_waves_claim_each_index_exactly_once() {
    for (wave, &threads) in [1usize, 3, 8, 17, 64].iter().enumerate() {
        let len = 10_007; // prime, so chunks never divide evenly
        let chunk = 1 + wave * 13;
        let queue = Arc::new(ChunkQueue::new(len, chunk));
        let claims: Arc<Vec<AtomicU8>> = Arc::new((0..len).map(|_| AtomicU8::new(0)).collect());

        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let queue = Arc::clone(&queue);
                let claims = Arc::clone(&claims);
                thread::spawn(move || {
                    let mut claimed = 0usize;
                    while let Some((start, end)) = queue.next_chunk() {
                        assert!(start < end && end <= len, "bad chunk ({start}, {end})");
                        for i in start..end {
                            claims[i].fetch_add(1, Ordering::Relaxed);
                        }
                        claimed += end - start;
                        // Churn: some threads exit early, leaving their
                        // share to whoever is still draining.
                        if t % 3 == 0 && claimed > len / (threads + 1) {
                            break;
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        // Early-exiting threads may leave a tail; drain it on this thread
        // the way a late-joining worker would.
        while let Some((start, end)) = queue.next_chunk() {
            for i in start..end {
                claims[i].fetch_add(1, Ordering::Relaxed);
            }
        }

        for (i, c) in claims.iter().enumerate() {
            assert_eq!(
                c.load(Ordering::Relaxed),
                1,
                "index {i} claimed {} times in wave {wave} ({threads} threads, chunk {chunk})",
                c.load(Ordering::Relaxed)
            );
        }
        assert_eq!(queue.next_chunk(), None, "drained queue must stay drained");
    }
}

/// The same exact-cover contract through the public `parallel_workers`
/// entry point, across repeated pool setups and teardowns.
#[test]
fn parallel_workers_cover_is_exact_across_repeated_pools() {
    for round in 0..20usize {
        let len = 4_001 + round * 37;
        let threads = 1 + round % 8;
        let claims: Vec<AtomicU8> = (0..len).map(|_| AtomicU8::new(0)).collect();
        let cfg = ParConfig::with_threads(threads).chunk_size(1 + round % 11);
        parallel_workers(&cfg, len, |queue| {
            while let Some((start, end)) = queue.next_chunk() {
                for c in &claims[start..end] {
                    c.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        for (i, c) in claims.iter().enumerate() {
            assert_eq!(c.load(Ordering::Relaxed), 1, "round {round}: index {i} not covered once");
        }
    }
}
