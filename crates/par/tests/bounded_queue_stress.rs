//! Stress tests for [`par::BoundedQueue`] under producer/consumer churn.
//!
//! The contract under test: every item pushed before end-of-stream is
//! popped exactly once — no loss, no duplication — regardless of how many
//! producers or consumers join or leave mid-stream, and the multi-epoch
//! replay shape used by the fused pipeline (fresh producer wave per epoch
//! over one long-lived consumer pool per epoch) never deadlocks.

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;

use par::BoundedQueue;

/// Waves of 1–64 producers and 1–64 consumers over tiny capacities; every
/// pushed item must be claimed exactly once even when some consumers exit
/// early and leave the tail to whoever is still draining.
#[test]
fn churn_waves_deliver_each_item_exactly_once() {
    let waves: [(usize, usize, usize); 6] =
        [(1, 1, 1), (1, 8, 2), (8, 1, 2), (3, 17, 4), (17, 3, 4), (64, 64, 8)];
    for (wave, &(producers, consumers, capacity)) in waves.iter().enumerate() {
        let per_producer = 1_009; // prime, so shares never divide evenly
        let total = producers * per_producer;
        let queue = Arc::new(BoundedQueue::<usize>::new(capacity));
        let claims: Arc<Vec<AtomicU8>> = Arc::new((0..total).map(|_| AtomicU8::new(0)).collect());

        // Register every producer before any thread starts, so a fast
        // consumer can never observe a spuriously empty stream.
        let guards: Vec<_> = (0..producers).map(|_| queue.register_producer()).collect();

        thread::scope(|s| {
            for (p, guard) in guards.into_iter().enumerate() {
                let queue = Arc::clone(&queue);
                s.spawn(move || {
                    let _guard = guard;
                    for i in 0..per_producer {
                        queue.push(p * per_producer + i).unwrap();
                    }
                });
            }
            for c in 0..consumers {
                let queue = Arc::clone(&queue);
                let claims = Arc::clone(&claims);
                s.spawn(move || {
                    let mut claimed = 0usize;
                    while let Some(item) = queue.pop() {
                        claims[item].fetch_add(1, Ordering::Relaxed);
                        claimed += 1;
                        // Churn: some consumers exit early, leaving their
                        // share to whoever is still draining.
                        if c % 3 == 0 && claimed > total / (consumers * 2 + 1) {
                            break;
                        }
                    }
                });
            }
            // A sweeper that never exits early drains whatever the churned
            // consumers abandon. It must run *concurrently* with the
            // producers: with every regular consumer gone, producers would
            // block forever on the full queue and the scope would never
            // join them.
            {
                let queue = Arc::clone(&queue);
                let claims = Arc::clone(&claims);
                s.spawn(move || {
                    while let Some(item) = queue.pop() {
                        claims[item].fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });

        for (i, c) in claims.iter().enumerate() {
            assert_eq!(
                c.load(Ordering::Relaxed),
                1,
                "item {i} delivered {} times in wave {wave} ({producers}p/{consumers}c, cap {capacity})",
                c.load(Ordering::Relaxed)
            );
        }
        assert_eq!(queue.pop(), None, "drained stream must stay ended");
    }
}

/// Depth never exceeds capacity while producers race consumers: the
/// channel is a backpressure device, not an elastic buffer.
#[test]
fn depth_never_exceeds_capacity_under_race() {
    let capacity = 3;
    let queue = Arc::new(BoundedQueue::<u64>::new(capacity));
    let max_seen = AtomicUsize::new(0);
    let guard = queue.register_producer();
    thread::scope(|s| {
        {
            let queue = Arc::clone(&queue);
            s.spawn(move || {
                let _guard = guard;
                for i in 0..20_000u64 {
                    queue.push(i).unwrap();
                }
            });
        }
        s.spawn(|| {
            while let Some(_item) = queue.pop() {
                max_seen.fetch_max(queue.len(), Ordering::Relaxed);
            }
        });
    });
    assert!(
        max_seen.load(Ordering::Relaxed) <= capacity,
        "observed depth {} above capacity {capacity}",
        max_seen.load(Ordering::Relaxed)
    );
}

/// The epochs>1 replay shape from the fused pipeline: each epoch spins up
/// a fresh channel, a fresh producer wave re-walking the same stream, and
/// a consumer pool; a stall in any epoch would hang this test. Mirrors
/// `core::Pipeline`'s fused driver, which re-generates walks per epoch
/// instead of spilling the corpus.
#[test]
fn multi_epoch_replay_is_deadlock_free() {
    let producers = 4;
    let consumers = 4;
    let per_producer = 2_003;
    for epoch in 0..5usize {
        let queue = Arc::new(BoundedQueue::<usize>::new(2));
        let popped = AtomicUsize::new(0);
        let guards: Vec<_> = (0..producers).map(|_| queue.register_producer()).collect();
        thread::scope(|s| {
            for guard in guards {
                let queue = Arc::clone(&queue);
                s.spawn(move || {
                    let _guard = guard;
                    // Replay is deterministic: the same items re-walked
                    // every epoch.
                    for i in 0..per_producer {
                        queue.push(i).unwrap();
                    }
                });
            }
            for _ in 0..consumers {
                let queue = Arc::clone(&queue);
                let popped = &popped;
                s.spawn(move || {
                    while queue.pop().is_some() {
                        popped.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(
            popped.load(Ordering::Relaxed),
            producers * per_producer,
            "epoch {epoch} lost items"
        );
    }
}

/// Closing mid-stream releases every blocked producer and consumer; no
/// thread is left waiting on a condvar that will never signal.
#[test]
fn close_releases_all_blocked_threads() {
    let queue = Arc::new(BoundedQueue::<usize>::new(1));
    let guard = queue.register_producer();
    queue.push(0).unwrap(); // fill to capacity so producers block
    thread::scope(|s| {
        let _guard = guard; // keep the stream open so consumers block
        for i in 0..8 {
            let queue = Arc::clone(&queue);
            s.spawn(move || {
                // Half block in push (queue full), half block in pop
                // (queue drained by the first popper).
                if i % 2 == 0 {
                    let _ = queue.push(i);
                } else {
                    let _ = queue.pop();
                }
            });
        }
        thread::sleep(std::time::Duration::from_millis(20));
        queue.close();
    });
    assert_eq!(queue.pop(), None);
}
