//! Bounded MPMC channel with producer-count-based completion.
//!
//! The fused walk→train pipeline (DESIGN.md §16) needs a handoff between
//! walk workers (producers) and hogwild trainer workers (consumers) that
//! applies *backpressure* instead of queueing an unbounded corpus: when the
//! trainer falls behind, walk workers block in `push` rather than growing
//! the heap by the full corpus size. The queue is a `Mutex<VecDeque>` with
//! two condvars — contention is negligible because items are coarse
//! (multi-kilobyte walk chunks), so a lock-free ring would buy nothing
//! while costing the clean close/drain semantics below.
//!
//! Completion is tracked by *producer registration*, not a separate close
//! flag: each producer holds a [`ProducerGuard`]; when the last guard
//! drops, blocked consumers wake and [`BoundedQueue::pop`] returns `None`
//! once the queue drains. This makes the common shutdown path panic-safe
//! (a panicking producer still drops its guard) and leaves [`close`] as an
//! abort-only escape hatch that discards queued items and unblocks both
//! sides.
//!
//! [`close`]: BoundedQueue::close

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Error from [`BoundedQueue::try_push`], returning the rejected item.
#[derive(Debug, PartialEq, Eq)]
pub enum TryPushError<T> {
    /// The queue is at capacity; retry or fall back to the blocking push.
    Full(T),
    /// The queue was closed (aborted); the item will never be accepted.
    Closed(T),
}

impl<T> TryPushError<T> {
    /// Recovers the item that was not enqueued.
    pub fn into_inner(self) -> T {
        match self {
            TryPushError::Full(item) | TryPushError::Closed(item) => item,
        }
    }
}

struct Inner<T> {
    queue: VecDeque<T>,
    producers: usize,
    closed: bool,
}

/// Bounded multi-producer multi-consumer queue with blocking push/pop.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    not_full: Condvar,
    not_empty: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue holding at most `capacity` items (clamped to ≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        BoundedQueue {
            inner: Mutex::new(Inner {
                queue: VecDeque::with_capacity(capacity),
                producers: 0,
                closed: false,
            }),
            not_full: Condvar::new(),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// Maximum number of queued items before `push` blocks.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth (racy snapshot; for metrics only).
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().queue.len()
    }

    /// Whether the queue is currently empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Registers a producer; completion is signalled by dropping the guard.
    ///
    /// `pop` only reports end-of-stream after every registered guard has
    /// dropped, so register *before* spawning the producer's work and let
    /// the guard travel into the worker thread.
    pub fn register_producer(&self) -> ProducerGuard<'_, T> {
        self.inner.lock().unwrap().producers += 1;
        ProducerGuard { queue: self }
    }

    /// Non-blocking push; fails with the item if full or closed.
    pub fn try_push(&self, item: T) -> Result<(), TryPushError<T>> {
        let mut inner = self.inner.lock().unwrap();
        if inner.closed {
            return Err(TryPushError::Closed(item));
        }
        if inner.queue.len() >= self.capacity {
            return Err(TryPushError::Full(item));
        }
        inner.queue.push_back(item);
        drop(inner);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Blocking push; waits while full, fails with the item once closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if inner.closed {
                return Err(item);
            }
            if inner.queue.len() < self.capacity {
                inner.queue.push_back(item);
                drop(inner);
                self.not_empty.notify_one();
                return Ok(());
            }
            inner = self.not_full.wait(inner).unwrap();
        }
    }

    /// Non-blocking pop; `None` means "nothing available right now", not
    /// end-of-stream — use [`pop`](Self::pop) to distinguish.
    pub fn try_pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        let item = inner.queue.pop_front();
        drop(inner);
        if item.is_some() {
            self.not_full.notify_one();
        }
        item
    }

    /// Blocking pop; `None` means the stream ended (all producers dropped
    /// their guards and the queue drained, or the queue was closed).
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.inner.lock().unwrap();
        loop {
            if let Some(item) = inner.queue.pop_front() {
                drop(inner);
                self.not_full.notify_one();
                return Some(item);
            }
            if inner.closed || inner.producers == 0 {
                return None;
            }
            inner = self.not_empty.wait(inner).unwrap();
        }
    }

    /// Aborts the stream: discards queued items, rejects future pushes,
    /// and wakes every blocked producer and consumer.
    pub fn close(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.closed = true;
        inner.queue.clear();
        drop(inner);
        self.not_full.notify_all();
        self.not_empty.notify_all();
    }
}

/// RAII registration for one producer of a [`BoundedQueue`].
///
/// Dropping the guard (normally or via unwind) decrements the live-producer
/// count; when it reaches zero, blocked consumers wake and drain.
pub struct ProducerGuard<'a, T> {
    queue: &'a BoundedQueue<T>,
}

impl<T> Drop for ProducerGuard<'_, T> {
    fn drop(&mut self) {
        let mut inner = self.queue.inner.lock().unwrap();
        inner.producers -= 1;
        let last = inner.producers == 0;
        drop(inner);
        if last {
            self.queue.not_empty.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::thread;

    #[test]
    fn fifo_order_single_thread() {
        let q = BoundedQueue::new(8);
        let guard = q.register_producer();
        for i in 0..5 {
            q.push(i).unwrap();
        }
        drop(guard);
        for i in 0..5 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn try_push_reports_full_then_accepts_after_pop() {
        let q = BoundedQueue::new(2);
        let _guard = q.register_producer();
        q.push(1).unwrap();
        q.push(2).unwrap();
        assert_eq!(q.try_push(3), Err(TryPushError::Full(3)));
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(q.try_push(3), Ok(()));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn pop_blocks_until_producer_guard_drops() {
        let q = BoundedQueue::<u32>::new(4);
        let guard = q.register_producer();
        thread::scope(|s| {
            let consumer = s.spawn(|| q.pop());
            // The consumer must see end-of-stream only after the guard drops.
            thread::sleep(std::time::Duration::from_millis(10));
            drop(guard);
            assert_eq!(consumer.join().unwrap(), None);
        });
    }

    #[test]
    fn push_blocks_on_full_until_consumer_drains() {
        let q = BoundedQueue::new(1);
        let _guard = q.register_producer();
        q.push(0u32).unwrap();
        let pushed = AtomicUsize::new(0);
        thread::scope(|s| {
            s.spawn(|| {
                q.push(1).unwrap();
                pushed.fetch_add(1, Ordering::SeqCst);
            });
            thread::sleep(std::time::Duration::from_millis(10));
            assert_eq!(pushed.load(Ordering::SeqCst), 0, "push must backpressure");
            assert_eq!(q.pop(), Some(0));
            assert_eq!(q.pop(), Some(1));
        });
        assert_eq!(pushed.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn close_discards_items_and_unblocks_both_sides() {
        let q = BoundedQueue::new(1);
        let _guard = q.register_producer();
        q.push(7u32).unwrap();
        thread::scope(|s| {
            let blocked_producer = s.spawn(|| q.push(8));
            thread::sleep(std::time::Duration::from_millis(10));
            q.close();
            assert_eq!(blocked_producer.join().unwrap(), Err(8));
        });
        assert_eq!(q.pop(), None, "close discards queued items");
        assert_eq!(q.try_push(9), Err(TryPushError::Closed(9)));
    }

    #[test]
    fn panicking_producer_releases_consumers() {
        let q = BoundedQueue::<u32>::new(4);
        thread::scope(|s| {
            let consumer = s.spawn(|| q.pop());
            let producer = s.spawn(|| {
                let _guard = q.register_producer();
                panic!("worker died");
            });
            assert!(producer.join().is_err());
            assert_eq!(consumer.join().unwrap(), None);
        });
    }
}
