//! Work-stealing parallel-for substrate.
//!
//! The paper parallelizes the temporal random walk's middle loop (over all
//! vertices) with *dynamically scheduled OpenMP threads*, i.e. work stealing,
//! because per-vertex work is highly skewed (it depends on out-degree and
//! timestamp distribution). This crate provides the equivalent building
//! block for the rest of the workspace: a chunked, dynamically scheduled
//! `parallel_for` built on [`std::thread::scope`] and a shared work
//! queue, plus helpers for parallel map/reduce with per-thread state.
//!
//! # Examples
//!
//! ```
//! use par::{parallel_for, ParConfig};
//!
//! let mut squares = vec![0u64; 1000];
//! parallel_for(&ParConfig::default(), &mut squares, |i, slot| {
//!     *slot = (i as u64) * (i as u64);
//! });
//! assert_eq!(squares[31], 961);
//! ```

mod bounded;
mod config;
mod pool;
mod reduce;

pub use bounded::{BoundedQueue, ProducerGuard, TryPushError};
pub use config::ParConfig;
pub use pool::{
    parallel_chunks, parallel_chunks_shared, parallel_for, parallel_for_index, parallel_workers,
    ChunkQueue, TaskPool,
};
pub use reduce::{parallel_map_reduce, parallel_reduce_with};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_for_touches_every_slot() {
        let mut v = vec![0usize; 4097];
        parallel_for(&ParConfig::with_threads(4), &mut v, |i, slot| *slot = i + 1);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i + 1);
        }
    }

    #[test]
    fn single_thread_matches_multi_thread() {
        let mut a = vec![0u64; 1000];
        let mut b = vec![0u64; 1000];
        parallel_for(&ParConfig::with_threads(1), &mut a, |i, s| *s = (i as u64).pow(2));
        parallel_for(&ParConfig::with_threads(8), &mut b, |i, s| *s = (i as u64).pow(2));
        assert_eq!(a, b);
    }
}
