//! Dynamically scheduled parallel loops over index ranges and slices.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::ParConfig;

/// Runs `body(start..end)` over disjoint chunks of `0..len` on the
/// configured number of threads, handing out chunks dynamically.
///
/// This is the direct analog of `#pragma omp parallel for schedule(dynamic)`
/// used by the paper's random-walk kernel: an atomic cursor acts as the
/// shared work queue and idle threads grab ("steal") the next chunk.
///
/// The chunk bounds passed to `body` partition `0..len` exactly; `body` may
/// run concurrently on different chunks.
pub fn parallel_chunks<F>(cfg: &ParConfig, len: usize, body: F)
where
    F: Fn(usize, usize) + Sync,
{
    if len == 0 {
        return;
    }
    let threads = cfg.threads().min(len.div_ceil(cfg.chunk())).max(1);
    if threads == 1 {
        let mut start = 0;
        while start < len {
            let end = (start + cfg.chunk()).min(len);
            body(start, end);
            start = end;
        }
        return;
    }
    let cursor = AtomicUsize::new(0);
    let chunk = cfg.chunk();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let start = cursor.fetch_add(chunk, Ordering::Relaxed);
                if start >= len {
                    break;
                }
                let end = (start + chunk).min(len);
                body(start, end);
            });
        }
    });
}

/// [`parallel_chunks`] with an explicit piece of read-only shared state
/// passed to every chunk invocation.
///
/// Functionally equivalent to capturing `shared` in the closure, but the
/// signature makes the sharing contract explicit: `shared` must be [`Sync`]
/// and workers receive it immutably, so precomputed tables (e.g. a
/// prepared transition sampler) are provably read-only across threads.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use par::{parallel_chunks_shared, ParConfig};
///
/// let weights = vec![2usize; 100];
/// let sum = AtomicUsize::new(0);
/// parallel_chunks_shared(&ParConfig::default(), &weights, 100, |w, start, end| {
///     sum.fetch_add(w[start..end].iter().sum(), Ordering::Relaxed);
/// });
/// assert_eq!(sum.into_inner(), 200);
/// ```
pub fn parallel_chunks_shared<S, F>(cfg: &ParConfig, shared: &S, len: usize, body: F)
where
    S: Sync + ?Sized,
    F: Fn(&S, usize, usize) + Sync,
{
    parallel_chunks(cfg, len, |start, end| body(shared, start, end));
}

/// Runs `body(i)` for every `i` in `0..len` using dynamic scheduling.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use par::{parallel_for_index, ParConfig};
///
/// let sum = AtomicU64::new(0);
/// parallel_for_index(&ParConfig::default(), 100, |i| {
///     sum.fetch_add(i as u64, Ordering::Relaxed);
/// });
/// assert_eq!(sum.into_inner(), 4950);
/// ```
pub fn parallel_for_index<F>(cfg: &ParConfig, len: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    parallel_chunks(cfg, len, |start, end| {
        for i in start..end {
            body(i);
        }
    });
}

/// Runs `body(i, &mut out[i])` for every element of `out` in parallel.
///
/// Each invocation receives exclusive access to its own slot, so `body`
/// needs no synchronization to write results.
pub fn parallel_for<T, F>(cfg: &ParConfig, out: &mut [T], body: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let len = out.len();
    let base = out.as_mut_ptr() as usize;
    parallel_chunks(cfg, len, |start, end| {
        // SAFETY: chunks returned by `parallel_chunks` are disjoint
        // subranges of 0..len, so each slot is mutated by exactly one
        // worker; the slice outlives the scoped threads.
        let ptr = base as *mut T;
        for i in start..end {
            let slot = unsafe { &mut *ptr.add(i) };
            body(i, slot);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn chunks_partition_range_exactly() {
        let seen = AtomicUsize::new(0);
        parallel_chunks(&ParConfig::with_threads(7).chunk_size(13), 1000, |s, e| {
            assert!(s < e && e <= 1000);
            seen.fetch_add(e - s, Ordering::SeqCst);
        });
        assert_eq!(seen.into_inner(), 1000);
    }

    #[test]
    fn empty_range_is_a_noop() {
        parallel_chunks(&ParConfig::default(), 0, |_, _| panic!("must not run"));
    }

    #[test]
    fn chunk_larger_than_len() {
        let seen = AtomicUsize::new(0);
        parallel_chunks(&ParConfig::with_threads(4).chunk_size(10_000), 37, |s, e| {
            seen.fetch_add(e - s, Ordering::SeqCst);
        });
        assert_eq!(seen.into_inner(), 37);
    }

    #[test]
    fn skewed_work_is_balanced() {
        // Emulate the walk kernel's skew: item i does O(i) work.
        let mut out = vec![0u64; 2048];
        parallel_for(&ParConfig::with_threads(8).chunk_size(8), &mut out, |i, slot| {
            let mut acc = 0u64;
            for k in 0..i {
                acc = acc.wrapping_add(k as u64);
            }
            *slot = acc;
        });
        assert_eq!(out[3], 3);
        assert_eq!(out[100], (0..100).sum::<u64>());
    }
}
