//! Dynamically scheduled parallel loops over index ranges and slices,
//! plus a persistent [`TaskPool`] for long-lived services.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::ParConfig;

/// A dynamic work queue handing out disjoint chunk ranges of `0..len`.
///
/// This is the atomic-cursor "work-stealing" heart of every parallel loop
/// in this crate, exposed so callers can drive the worker loop themselves:
/// a worker that pulls chunks via [`ChunkQueue::next_chunk`] keeps its own
/// per-thread scratch state alive *across* chunks, which per-chunk closure
/// APIs like [`parallel_chunks`] cannot express. The batched walk engine
/// relies on this to reuse its frontier-grouping arenas between blocks.
///
/// A chunk size of zero is clamped to one, mirroring
/// [`ParConfig::chunk_size`]'s documented policy.
///
/// # Examples
///
/// ```
/// use par::ChunkQueue;
///
/// let q = ChunkQueue::new(10, 4);
/// assert_eq!(q.next_chunk(), Some((0, 4)));
/// assert_eq!(q.next_chunk(), Some((4, 8)));
/// assert_eq!(q.next_chunk(), Some((8, 10)));
/// assert_eq!(q.next_chunk(), None);
/// ```
#[derive(Debug)]
pub struct ChunkQueue {
    cursor: AtomicUsize,
    len: usize,
    chunk: usize,
}

impl ChunkQueue {
    /// Creates a queue over `0..len` dealing chunks of `chunk` items
    /// (clamped to at least 1).
    pub fn new(len: usize, chunk: usize) -> Self {
        Self { cursor: AtomicUsize::new(0), len, chunk: chunk.max(1) }
    }

    /// Claims the next unclaimed chunk as a half-open `(start, end)` range,
    /// or `None` once the queue is drained. Safe to call from any number of
    /// threads; claimed chunks are disjoint and together partition `0..len`
    /// exactly.
    pub fn next_chunk(&self) -> Option<(usize, usize)> {
        let start = self.cursor.fetch_add(self.chunk, Ordering::Relaxed);
        if start >= self.len {
            None
        } else {
            Some((start, (start + self.chunk).min(self.len)))
        }
    }

    /// Total number of items the queue deals out.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue covers an empty range.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Items per claimed chunk (except possibly the last).
    pub fn chunk(&self) -> usize {
        self.chunk
    }
}

/// Spawns the configured number of workers and hands each the shared
/// [`ChunkQueue`] over `0..len`; each worker invocation drains chunks with
/// [`ChunkQueue::next_chunk`] until the queue is empty.
///
/// Unlike [`parallel_chunks`], the worker closure is entered *once per
/// thread*, so scratch buffers allocated at the top of `worker` persist
/// across all chunks that thread processes — the pattern the batched walk
/// engine uses for its grouping arenas.
///
/// With one effective thread the worker runs inline on the caller's
/// thread (no spawn).
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use par::{parallel_workers, ParConfig};
///
/// let sum = AtomicUsize::new(0);
/// parallel_workers(&ParConfig::with_threads(4).chunk_size(8), 100, |queue| {
///     let mut local = 0; // per-worker state, lives across chunks
///     while let Some((start, end)) = queue.next_chunk() {
///         local += end - start;
///     }
///     sum.fetch_add(local, Ordering::Relaxed);
/// });
/// assert_eq!(sum.into_inner(), 100);
/// ```
pub fn parallel_workers<F>(cfg: &ParConfig, len: usize, worker: F)
where
    F: Fn(&ChunkQueue) + Sync,
{
    if len == 0 {
        return;
    }
    let queue = ChunkQueue::new(len, cfg.chunk());
    let threads = cfg.threads().min(len.div_ceil(queue.chunk())).max(1);
    if threads == 1 {
        worker(&queue);
        return;
    }
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| worker(&queue));
        }
    });
}

/// Runs `body(start..end)` over disjoint chunks of `0..len` on the
/// configured number of threads, handing out chunks dynamically.
///
/// This is the direct analog of `#pragma omp parallel for schedule(dynamic)`
/// used by the paper's random-walk kernel: an atomic cursor (a
/// [`ChunkQueue`]) acts as the shared work queue and idle threads grab
/// ("steal") the next chunk.
///
/// The chunk bounds passed to `body` partition `0..len` exactly; `body` may
/// run concurrently on different chunks.
pub fn parallel_chunks<F>(cfg: &ParConfig, len: usize, body: F)
where
    F: Fn(usize, usize) + Sync,
{
    parallel_workers(cfg, len, |queue| {
        while let Some((start, end)) = queue.next_chunk() {
            body(start, end);
        }
    });
}

/// [`parallel_chunks`] with an explicit piece of read-only shared state
/// passed to every chunk invocation.
///
/// Functionally equivalent to capturing `shared` in the closure, but the
/// signature makes the sharing contract explicit: `shared` must be [`Sync`]
/// and workers receive it immutably, so precomputed tables (e.g. a
/// prepared transition sampler) are provably read-only across threads.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use par::{parallel_chunks_shared, ParConfig};
///
/// let weights = vec![2usize; 100];
/// let sum = AtomicUsize::new(0);
/// parallel_chunks_shared(&ParConfig::default(), &weights, 100, |w, start, end| {
///     sum.fetch_add(w[start..end].iter().sum(), Ordering::Relaxed);
/// });
/// assert_eq!(sum.into_inner(), 200);
/// ```
pub fn parallel_chunks_shared<S, F>(cfg: &ParConfig, shared: &S, len: usize, body: F)
where
    S: Sync + ?Sized,
    F: Fn(&S, usize, usize) + Sync,
{
    parallel_chunks(cfg, len, |start, end| body(shared, start, end));
}

/// Runs `body(i)` for every `i` in `0..len` using dynamic scheduling.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicU64, Ordering};
/// use par::{parallel_for_index, ParConfig};
///
/// let sum = AtomicU64::new(0);
/// parallel_for_index(&ParConfig::default(), 100, |i| {
///     sum.fetch_add(i as u64, Ordering::Relaxed);
/// });
/// assert_eq!(sum.into_inner(), 4950);
/// ```
pub fn parallel_for_index<F>(cfg: &ParConfig, len: usize, body: F)
where
    F: Fn(usize) + Sync,
{
    parallel_chunks(cfg, len, |start, end| {
        for i in start..end {
            body(i);
        }
    });
}

/// Runs `body(i, &mut out[i])` for every element of `out` in parallel.
///
/// Each invocation receives exclusive access to its own slot, so `body`
/// needs no synchronization to write results.
pub fn parallel_for<T, F>(cfg: &ParConfig, out: &mut [T], body: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let len = out.len();
    let base = out.as_mut_ptr() as usize;
    parallel_chunks(cfg, len, |start, end| {
        // SAFETY: chunks returned by `parallel_chunks` are disjoint
        // subranges of 0..len, so each slot is mutated by exactly one
        // worker; the slice outlives the scoped threads.
        let ptr = base as *mut T;
        for i in start..end {
            let slot = unsafe { &mut *ptr.add(i) };
            body(i, slot);
        }
    });
}

type Job = Box<dyn FnOnce() + Send + 'static>;

#[derive(Default)]
struct PoolState {
    queue: VecDeque<Job>,
    shutdown: bool,
}

struct PoolShared {
    state: Mutex<PoolState>,
    available: Condvar,
    active: AtomicUsize,
}

/// A persistent fixed-size worker pool for services that outlive a single
/// parallel loop.
///
/// The scoped loops above ([`parallel_chunks`] and friends) spawn and join
/// threads per call, which is right for batch kernels but wrong for a
/// long-lived server that handles a stream of independent jobs (e.g. one
/// per client connection). `TaskPool` keeps `threads` workers alive and
/// feeds them closures through a shared queue; dropping the pool finishes
/// queued jobs and joins every worker.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
/// use par::TaskPool;
///
/// let pool = TaskPool::new(4);
/// let hits = Arc::new(AtomicUsize::new(0));
/// for _ in 0..100 {
///     let hits = Arc::clone(&hits);
///     pool.execute(move || {
///         hits.fetch_add(1, Ordering::Relaxed);
///     });
/// }
/// drop(pool); // joins workers, so all jobs have run
/// assert_eq!(hits.load(Ordering::Relaxed), 100);
/// ```
pub struct TaskPool {
    shared: Arc<PoolShared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for TaskPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskPool")
            .field("threads", &self.workers.len())
            .field("active", &self.active())
            .finish()
    }
}

impl TaskPool {
    /// Spawns a pool with `threads` workers (at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            state: Mutex::new(PoolState::default()),
            available: Condvar::new(),
            active: AtomicUsize::new(0),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("taskpool-{i}"))
                    .spawn(move || Self::worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Self { shared, workers }
    }

    fn worker_loop(shared: &PoolShared) {
        loop {
            let job = {
                let mut state = shared.state.lock().expect("pool lock poisoned");
                loop {
                    if let Some(job) = state.queue.pop_front() {
                        break job;
                    }
                    if state.shutdown {
                        return;
                    }
                    state = shared.available.wait(state).expect("pool lock poisoned");
                }
            };
            shared.active.fetch_add(1, Ordering::SeqCst);
            job();
            shared.active.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Jobs currently executing (not queued).
    pub fn active(&self) -> usize {
        self.shared.active.load(Ordering::SeqCst)
    }

    /// Enqueues a job; an idle worker picks it up in FIFO order.
    ///
    /// # Panics
    ///
    /// Panics if called after the pool started shutting down (impossible
    /// through the public API, which consumes the pool on drop).
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        let mut state = self.shared.state.lock().expect("pool lock poisoned");
        assert!(!state.shutdown, "execute on a shut-down pool");
        state.queue.push_back(Box::new(job));
        drop(state);
        self.shared.available.notify_one();
    }
}

impl Drop for TaskPool {
    fn drop(&mut self) {
        self.shared.state.lock().expect("pool lock poisoned").shutdown = true;
        self.shared.available.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn task_pool_runs_queued_jobs_across_workers() {
        let pool = TaskPool::new(3);
        let sum = Arc::new(AtomicUsize::new(0));
        for i in 0..200 {
            let sum = Arc::clone(&sum);
            pool.execute(move || {
                sum.fetch_add(i, Ordering::Relaxed);
            });
        }
        drop(pool);
        assert_eq!(sum.load(Ordering::Relaxed), (0..200).sum());
    }

    #[test]
    fn task_pool_zero_threads_clamps_to_one() {
        let pool = TaskPool::new(0);
        assert_eq!(pool.threads(), 1);
        let ran = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran);
        pool.execute(move || {
            r.fetch_add(1, Ordering::Relaxed);
        });
        drop(pool);
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn task_pool_jobs_can_block_independently() {
        // Two jobs that rendezvous with each other require >= 2 live
        // workers; this deadlocks if the pool serializes jobs.
        let pool = TaskPool::new(2);
        let gate = Arc::new((Mutex::new(0usize), Condvar::new()));
        for _ in 0..2 {
            let gate = Arc::clone(&gate);
            pool.execute(move || {
                let (lock, cv) = &*gate;
                let mut n = lock.lock().unwrap();
                *n += 1;
                cv.notify_all();
                while *n < 2 {
                    let (guard, timeout) =
                        cv.wait_timeout(n, std::time::Duration::from_secs(5)).unwrap();
                    n = guard;
                    assert!(!timeout.timed_out(), "partner job never ran");
                }
            });
        }
        drop(pool);
        assert_eq!(*gate.0.lock().unwrap(), 2);
    }

    #[test]
    fn chunks_partition_range_exactly() {
        let seen = AtomicUsize::new(0);
        parallel_chunks(&ParConfig::with_threads(7).chunk_size(13), 1000, |s, e| {
            assert!(s < e && e <= 1000);
            seen.fetch_add(e - s, Ordering::SeqCst);
        });
        assert_eq!(seen.into_inner(), 1000);
    }

    #[test]
    fn empty_range_is_a_noop() {
        parallel_chunks(&ParConfig::default(), 0, |_, _| panic!("must not run"));
    }

    #[test]
    fn chunk_larger_than_len() {
        let seen = AtomicUsize::new(0);
        parallel_chunks(&ParConfig::with_threads(4).chunk_size(10_000), 37, |s, e| {
            seen.fetch_add(e - s, Ordering::SeqCst);
        });
        assert_eq!(seen.into_inner(), 37);
    }

    #[test]
    fn chunk_queue_zero_chunk_clamps_to_one() {
        // Documented policy: a zero chunk size degenerates to single-item
        // chunks rather than an infinite loop or a panic.
        let q = ChunkQueue::new(3, 0);
        assert_eq!(q.chunk(), 1);
        assert_eq!(q.next_chunk(), Some((0, 1)));
        assert_eq!(q.next_chunk(), Some((1, 2)));
        assert_eq!(q.next_chunk(), Some((2, 3)));
        assert_eq!(q.next_chunk(), None);
    }

    #[test]
    fn chunk_queue_is_exhausted_exactly_once_across_threads() {
        let q = ChunkQueue::new(10_000, 7);
        let claimed = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    while let Some((s, e)) = q.next_chunk() {
                        assert!(s < e && e <= 10_000);
                        claimed.fetch_add(e - s, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(claimed.into_inner(), 10_000);
        assert_eq!(q.next_chunk(), None);
    }

    #[test]
    fn workers_keep_state_across_chunks() {
        // Each worker counts how many chunks it drained; the per-worker
        // totals must sum to the chunk count of the whole range, proving
        // one closure invocation spans many chunks.
        let total_chunks = AtomicUsize::new(0);
        parallel_workers(&ParConfig::with_threads(3).chunk_size(10), 95, |queue| {
            let mut mine = 0usize;
            while queue.next_chunk().is_some() {
                mine += 1;
            }
            total_chunks.fetch_add(mine, Ordering::Relaxed);
        });
        assert_eq!(total_chunks.into_inner(), 95usize.div_ceil(10));
    }

    #[test]
    fn skewed_work_is_balanced() {
        // Emulate the walk kernel's skew: item i does O(i) work.
        let mut out = vec![0u64; 2048];
        parallel_for(&ParConfig::with_threads(8).chunk_size(8), &mut out, |i, slot| {
            let mut acc = 0u64;
            for k in 0..i {
                acc = acc.wrapping_add(k as u64);
            }
            *slot = acc;
        });
        assert_eq!(out[3], 3);
        assert_eq!(out[100], (0..100).sum::<u64>());
    }
}
