//! Parallel execution configuration.

/// Configuration for dynamically scheduled parallel loops.
///
/// Mirrors the knobs the paper exposes for its CPU kernels: the number of
/// OpenMP threads and the dynamic-scheduling chunk size.
///
/// # Examples
///
/// ```
/// use par::ParConfig;
///
/// let cfg = ParConfig::with_threads(8).chunk_size(64);
/// assert_eq!(cfg.threads(), 8);
/// assert_eq!(cfg.chunk(), 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParConfig {
    threads: usize,
    chunk: usize,
}

impl ParConfig {
    /// Creates a configuration using all available hardware parallelism and
    /// a default chunk size of 256 items.
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self { threads, chunk: 256 }
    }

    /// Creates a configuration with an explicit thread count.
    ///
    /// A thread count of zero is clamped to one.
    pub fn with_threads(threads: usize) -> Self {
        Self { threads: threads.max(1), chunk: 256 }
    }

    /// Sets the dynamic-scheduling chunk size.
    ///
    /// Policy: a chunk size of zero is *clamped to one*, not rejected — a
    /// degenerate chunk request means "schedule as finely as possible",
    /// and single-item chunks are that limit. The same clamp is applied by
    /// [`crate::ChunkQueue::new`], so a zero chunk can never reach a
    /// scheduling loop and stall it (a zero-stride atomic cursor would
    /// hand every worker the same empty range forever).
    #[must_use]
    pub fn chunk_size(mut self, chunk: usize) -> Self {
        self.chunk = chunk.max(1);
        self
    }

    /// Number of worker threads used by parallel loops.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Items handed to a worker per scheduling decision.
    pub fn chunk(&self) -> usize {
        self.chunk
    }
}

impl Default for ParConfig {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_size_zero_clamps_to_one() {
        let cfg = ParConfig::with_threads(2).chunk_size(0);
        assert_eq!(cfg.chunk(), 1);
    }

    #[test]
    fn zero_chunk_config_still_covers_whole_range() {
        // End-to-end guard for the clamp policy: a zero chunk request must
        // not stall or skip items in the scheduling loop.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let seen = AtomicUsize::new(0);
        crate::parallel_chunks(&ParConfig::with_threads(3).chunk_size(0), 100, |s, e| {
            assert_eq!(e, s + 1, "zero chunk degenerates to single-item chunks");
            seen.fetch_add(e - s, Ordering::Relaxed);
        });
        assert_eq!(seen.into_inner(), 100);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(ParConfig::with_threads(0).threads(), 1);
    }
}
