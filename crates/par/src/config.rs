//! Parallel execution configuration.

/// Configuration for dynamically scheduled parallel loops.
///
/// Mirrors the knobs the paper exposes for its CPU kernels: the number of
/// OpenMP threads and the dynamic-scheduling chunk size.
///
/// # Examples
///
/// ```
/// use par::ParConfig;
///
/// let cfg = ParConfig::with_threads(8).chunk_size(64);
/// assert_eq!(cfg.threads(), 8);
/// assert_eq!(cfg.chunk(), 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ParConfig {
    threads: usize,
    chunk: usize,
}

impl ParConfig {
    /// Creates a configuration using all available hardware parallelism and
    /// a default chunk size of 256 items.
    pub fn new() -> Self {
        let threads = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        Self { threads, chunk: 256 }
    }

    /// Creates a configuration with an explicit thread count.
    ///
    /// A thread count of zero is clamped to one.
    pub fn with_threads(threads: usize) -> Self {
        Self { threads: threads.max(1), chunk: 256 }
    }

    /// Sets the dynamic-scheduling chunk size (clamped to at least 1).
    #[must_use]
    pub fn chunk_size(mut self, chunk: usize) -> Self {
        self.chunk = chunk.max(1);
        self
    }

    /// Number of worker threads used by parallel loops.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Items handed to a worker per scheduling decision.
    pub fn chunk(&self) -> usize {
        self.chunk
    }
}

impl Default for ParConfig {
    fn default() -> Self {
        Self::new()
    }
}
