//! Parallel map-reduce with per-chunk accumulators.

use std::sync::Mutex;

use crate::{parallel_chunks, ParConfig};

/// Maps `map(i)` over `0..len` and folds the results with `reduce`,
/// starting from `identity`.
///
/// The reduction order is nondeterministic, so `reduce` should be
/// associative and commutative for deterministic results.
///
/// # Examples
///
/// ```
/// use par::{parallel_map_reduce, ParConfig};
///
/// let total = parallel_map_reduce(
///     &ParConfig::default(),
///     1_000,
///     0u64,
///     |i| i as u64,
///     |a, b| a + b,
/// );
/// assert_eq!(total, 499_500);
/// ```
pub fn parallel_map_reduce<T, M, R>(
    cfg: &ParConfig,
    len: usize,
    identity: T,
    map: M,
    reduce: R,
) -> T
where
    T: Clone + Send + Sync,
    M: Fn(usize) -> T + Sync,
    R: Fn(T, T) -> T + Sync,
{
    parallel_reduce_with(
        cfg,
        len,
        identity,
        |mut acc, start, end| {
            for i in start..end {
                acc = reduce(acc, map(i));
            }
            acc
        },
        &reduce,
    )
}

/// Folds chunk ranges of `0..len` into per-chunk accumulators with
/// `fold(acc, start, end)` and combines the partials with `merge`.
///
/// `merge` must be associative and commutative, and `identity` must be a
/// true identity for it, because partials arrive in scheduling order.
///
/// # Examples
///
/// ```
/// use par::{parallel_reduce_with, ParConfig};
///
/// let hist = parallel_reduce_with(
///     &ParConfig::default(),
///     100,
///     vec![0u32; 4],
///     |mut acc, start, end| {
///         for i in start..end { acc[i % 4] += 1; }
///         acc
///     },
///     |mut a, b| {
///         for (x, y) in a.iter_mut().zip(b) { *x += y; }
///         a
///     },
/// );
/// assert_eq!(hist, vec![25u32; 4]);
/// ```
pub fn parallel_reduce_with<T, F, R>(
    cfg: &ParConfig,
    len: usize,
    identity: T,
    fold: F,
    merge: R,
) -> T
where
    T: Clone + Send + Sync,
    F: Fn(T, usize, usize) -> T + Sync,
    R: Fn(T, T) -> T,
{
    let partials: Mutex<Vec<T>> = Mutex::new(Vec::new());
    parallel_chunks(cfg, len, |start, end| {
        let part = fold(identity.clone(), start, end);
        partials.lock().expect("reduce worker panicked").push(part);
    });
    partials.into_inner().expect("reduce worker panicked").into_iter().fold(identity, merge)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_reduce_sum_matches_serial() {
        let total = parallel_map_reduce(
            &ParConfig::with_threads(8).chunk_size(7),
            12_345,
            0u64,
            |i| (i as u64) % 97,
            |a, b| a + b,
        );
        let serial: u64 = (0..12_345u64).map(|i| i % 97).sum();
        assert_eq!(total, serial);
    }

    #[test]
    fn histogram_merge() {
        let hist = parallel_reduce_with(
            &ParConfig::with_threads(4).chunk_size(64),
            1_000,
            vec![0u64; 10],
            |mut acc, start, end| {
                for i in start..end {
                    acc[i % 10] += 1;
                }
                acc
            },
            |mut a, b| {
                for (x, y) in a.iter_mut().zip(b) {
                    *x += y;
                }
                a
            },
        );
        assert_eq!(hist, vec![100u64; 10]);
    }

    #[test]
    fn empty_reduce_returns_identity() {
        let v = parallel_map_reduce(&ParConfig::default(), 0, 42u64, |_| 0, |a, b| a + b);
        assert_eq!(v, 42);
    }

    #[test]
    fn max_reduce() {
        let m = parallel_map_reduce(
            &ParConfig::with_threads(3).chunk_size(11),
            500,
            0u64,
            |i| ((i * 7919) % 1009) as u64,
            |a, b| a.max(b),
        );
        let serial = (0..500u64).map(|i| (i * 7919) % 1009).max().unwrap();
        assert_eq!(m, serial);
    }
}
