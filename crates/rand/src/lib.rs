//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the small API subset it actually uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen`] / [`Rng::gen_range`], and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256** seeded via
//! splitmix64 — statistically solid for sampling and shuffling, though the
//! exact streams differ from upstream `rand` (all workspace tests assert
//! behavior, not specific sequences).

/// Seedable generator construction.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of
    /// `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Core random-value interface (the subset of `rand::Rng` in use).
pub trait Rng {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Uniform value of a supported type (`f32`/`f64` in `[0, 1)`,
    /// integers over their full range, `bool` fair).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform value in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }
}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types usable with [`Rng::gen_range`].
pub trait SampleUniform: Sized {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                // Lemire's nearly-divisionless bounded sampling.
                loop {
                    let x = rng.next_u64();
                    let m = (x as u128) * (span as u128);
                    let low = m as u64;
                    if low >= span || low >= low.wrapping_neg() % span {
                        return lo.wrapping_add((m >> 64) as u64 as Self);
                    }
                }
            }
        }
    )*};
}

impl_uniform_int!(usize, u64, u32, u16, u8);

macro_rules! impl_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                let off = <u64 as SampleUniform>::sample_range(rng, 0, span);
                (lo as i64).wrapping_add(off as i64) as Self
            }
        }
    )*};
}

impl_uniform_signed!(i64 => u64, i32 => u32, i16 => u16, i8 => u8);

impl SampleUniform for f64 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let u: f64 = Standard::sample(rng);
        lo + u * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: Rng + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range: empty range");
        let u: f32 = Standard::sample(rng);
        lo + u * (hi - lo)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// The workspace's standard generator: xoshiro256** seeded with
    /// splitmix64 (upstream `StdRng` is a ChaCha block cipher; for offline
    /// reproduction a fast non-cryptographic generator is sufficient).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice utilities (the subset of `rand::seq` in use).
pub mod seq {
    use super::Rng;

    /// Random slice operations.
    pub trait SliceRandom {
        /// Uniformly shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let f: f64 = rng.gen_range(-2.0..0.5);
            assert!((-2.0..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0..8usize)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn unit_floats_are_well_spread() {
        let mut rng = StdRng::seed_from_u64(3);
        let mean: f64 = (0..10_000).map(|_| rng.gen::<f64>()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left slice in order");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let _ = StdRng::seed_from_u64(0).gen_range(5..5usize);
    }
}
