//! Fixed-bucket log2 [`Histogram`] with interpolated quantile estimation.
//!
//! Values land in power-of-two buckets: bucket 0 holds exactly the value
//! `0`, bucket `b` (for `1 ≤ b ≤ 63`) holds `[2^(b-1), 2^b)`, and bucket
//! 64 — the overflow bucket — holds `[2^63, u64::MAX]`. Recording is
//! three relaxed atomic adds (bucket, count, sum); there is no lock and
//! no allocation, so the hot path stays wait-free. Quantiles are
//! estimated from a [`HistogramSnapshot`] by linear interpolation inside
//! the bucket containing the target rank, which is *exact* for
//! distributions uniform within a bucket and bounded by the 2× bucket
//! width otherwise.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of buckets: one for zero, one per bit position, one overflow.
pub const NUM_BUCKETS: usize = 65;

/// Index of the bucket a value falls into.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// `[lo, hi)` value range of bucket `i` (bucket 64's `hi` saturates to
/// `u64::MAX`, making it inclusive there).
fn bucket_bounds(i: usize) -> (u64, u64) {
    match i {
        0 => (0, 0),
        64 => (1 << 63, u64::MAX),
        b => (1 << (b - 1), 1 << b),
    }
}

/// Lock-free log2-bucketed histogram of `u64` samples (typically
/// nanoseconds or sizes).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample. Three relaxed atomic adds; the running `sum`
    /// wraps if aggregate magnitude exceeds `u64::MAX` (only reachable by
    /// deliberately recording near-`u64::MAX` values — see the overflow
    /// tests).
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX`, i.e.
    /// after ~580 years).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Adds every sample of `other` into `self`. Bucket counts are
    /// integers, so merging is exact: `merge` of two histograms equals
    /// recording the union of their samples.
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n != 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count.load(Ordering::Relaxed), Ordering::Relaxed);
        self.sum.fetch_add(other.sum.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Copies the current state into a plain-data snapshot. Individual
    /// bucket loads are relaxed, so a snapshot taken concurrently with
    /// writers may straddle an in-flight `record` (count and bucket sums
    /// can differ transiently by the number of in-flight writers); each
    /// loaded word is itself consistent.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of a [`Histogram`]; all quantile math runs here so a
/// single consistent view is interrogated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see module docs for bucket bounds).
    pub buckets: [u64; NUM_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded values (wrapping, see [`Histogram::record`]).
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Estimates the `q`-quantile (`q` in `[0, 1]`) by rank: finds the
    /// bucket containing the `⌈q·count⌉`-th sample and interpolates
    /// linearly inside it. Returns 0.0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.count as f64;
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let next = cum + c;
            if next as f64 >= rank {
                let (lo, hi) = bucket_bounds(i);
                let frac = ((rank - cum as f64) / c as f64).clamp(0.0, 1.0);
                return lo as f64 + frac * (hi - lo) as f64;
            }
            cum = next;
        }
        bucket_bounds(NUM_BUCKETS - 1).1 as f64
    }

    /// Median estimate.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }

    /// Arithmetic mean of recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the highest non-empty bucket (0 when empty) — a
    /// cheap "max is at most" witness.
    pub fn max_bound(&self) -> u64 {
        self.buckets
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &c)| c != 0)
            .map(|(i, _)| bucket_bounds(i).1)
            .unwrap_or(0)
    }

    /// Iterates `(upper_bound, cumulative_count)` over non-empty buckets,
    /// the shape Prometheus `_bucket{le=…}` lines want.
    pub fn cumulative(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let mut cum = 0u64;
        self.buckets.iter().enumerate().filter(|(_, &c)| c != 0).map(move |(i, &c)| {
            cum += c;
            (bucket_bounds(i).1, cum)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1 << 62), 63);
        assert_eq!(bucket_index(1 << 63), 64);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.quantile(0.5), 0.0);
        assert_eq!(snap.mean(), 0.0);
        assert_eq!(snap.max_bound(), 0);
    }

    // ---- Golden tests against exact quantiles of known distributions ----

    /// Uniform over [0, 2^k): the density is flat, so linear interpolation
    /// inside log2 buckets is *exact* and the estimates must match the
    /// true quantiles almost perfectly.
    #[test]
    fn golden_uniform_quantiles() {
        let h = Histogram::new();
        let n: u64 = if cfg!(miri) { 1 << 10 } else { 1 << 16 };
        for v in 0..n {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, n);
        for q in [0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99] {
            let exact = q * n as f64;
            let est = snap.quantile(q);
            let rel = (est - exact).abs() / exact;
            assert!(rel < 0.01, "uniform q={q}: est {est} vs exact {exact} (rel {rel})");
        }
    }

    /// Exponential with mean 10_000 (inverse-CDF sampling): the density
    /// bends within a bucket, so the estimate is only bucket-resolution
    /// accurate — assert against the analytical quantile with a tolerance
    /// well inside the 2× bucket-width bound.
    #[test]
    fn golden_exponential_quantiles() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let h = Histogram::new();
        let n = if cfg!(miri) { 2_000 } else { 200_000 };
        let mean = 10_000.0f64;
        for _ in 0..n {
            let u: f64 = rng.gen::<f64>().max(1e-12);
            h.record((-u.ln() * mean) as u64);
        }
        let snap = h.snapshot();
        for q in [0.50f64, 0.95, 0.99] {
            let exact = -(1.0 - q).ln() * mean;
            let est = snap.quantile(q);
            let rel = (est - exact).abs() / exact;
            assert!(rel < 0.30, "exp q={q}: est {est} vs exact {exact} (rel {rel})");
        }
    }

    /// Point mass: every sample is the same value, so every quantile must
    /// land inside that value's bucket.
    #[test]
    fn golden_point_mass_quantiles() {
        let h = Histogram::new();
        let v = 12_345u64;
        for _ in 0..1000 {
            h.record(v);
        }
        let snap = h.snapshot();
        let (lo, hi) = bucket_bounds(bucket_index(v));
        for q in [0.0, 0.01, 0.50, 0.95, 0.99, 1.0] {
            let est = snap.quantile(q);
            assert!(
                est >= lo as f64 && est <= hi as f64,
                "point-mass q={q}: est {est} outside bucket [{lo}, {hi}]"
            );
        }
        assert_eq!(snap.mean(), v as f64);
    }

    // ---- Merge properties ----

    /// merge(a, b) must equal recording the union of the samples, and the
    /// operation must be associative: (a∪b)∪c = a∪(b∪c).
    #[test]
    fn merge_equals_union_and_is_associative() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(11);
        let samples: Vec<Vec<u64>> =
            (0..3).map(|_| (0..500).map(|_| rng.gen_range(0..1_000_000u64)).collect()).collect();

        let record_all = |sets: &[&[u64]]| {
            let h = Histogram::new();
            for s in sets {
                for &v in *s {
                    h.record(v);
                }
            }
            h.snapshot()
        };
        let hist_of = |s: &[u64]| {
            let h = Histogram::new();
            for &v in s {
                h.record(v);
            }
            h
        };

        // merge(a, b) == record(a ∪ b)
        let ab = hist_of(&samples[0]);
        ab.merge_from(&hist_of(&samples[1]));
        assert_eq!(ab.snapshot(), record_all(&[&samples[0], &samples[1]]));

        // ((a ∪ b) ∪ c) == (a ∪ (b ∪ c))
        let left = hist_of(&samples[0]);
        left.merge_from(&hist_of(&samples[1]));
        left.merge_from(&hist_of(&samples[2]));
        let bc = hist_of(&samples[1]);
        bc.merge_from(&hist_of(&samples[2]));
        let right = hist_of(&samples[0]);
        right.merge_from(&bc);
        assert_eq!(left.snapshot(), right.snapshot());
        assert_eq!(left.snapshot(), record_all(&[&samples[0], &samples[1], &samples[2]]));
    }

    // ---- Overflow bucket at u64::MAX-scale values ----

    #[test]
    fn overflow_bucket_captures_u64_max_scale() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        h.record(1 << 63);
        h.record((1 << 63) - 1); // top of bucket 63, NOT overflow
        let snap = h.snapshot();
        assert_eq!(snap.buckets[64], 3, "three samples belong to the overflow bucket");
        assert_eq!(snap.buckets[63], 1);
        assert_eq!(snap.count, 4);
        assert_eq!(snap.max_bound(), u64::MAX);
        // Quantiles stay finite and within-range even at the extreme.
        let p99 = snap.p99();
        assert!(p99.is_finite() && p99 <= u64::MAX as f64);
        assert!(snap.quantile(1.0) <= u64::MAX as f64);
    }

    #[test]
    fn duration_recording_uses_nanoseconds() {
        let h = Histogram::new();
        h.record_duration(Duration::from_micros(3));
        let snap = h.snapshot();
        assert_eq!(snap.sum, 3_000);
        assert_eq!(snap.buckets[bucket_index(3_000)], 1);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads = 4;
        let per_thread: u64 = if cfg!(miri) { 200 } else { 20_000 };
        std::thread::scope(|scope| {
            for t in 0..threads {
                let h = std::sync::Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        h.record(t * per_thread + i);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, threads * per_thread);
        assert_eq!(snap.buckets.iter().sum::<u64>(), threads * per_thread);
    }
}
