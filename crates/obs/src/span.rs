//! Named [`Span`] timers: scope guards that record elapsed wall time into
//! a histogram when stopped (or dropped).
//!
//! The pipeline uses one span per paper phase — `rw_p1_walk`,
//! `rw_p2_word2vec`, `rw_p3_train`, `rw_p4_test` (Fig. 7's breakdown) —
//! but spans are general: any `Recorder::span(name)` yields one. A
//! disabled span holds no histogram and never even reads the clock.

use std::sync::Arc;
use std::time::Instant;

use crate::histogram::Histogram;

/// A running timer tied to a histogram; records nanoseconds on
/// [`Span::stop`] or on drop, whichever comes first.
#[derive(Debug, Default)]
pub struct Span {
    armed: Option<(Arc<Histogram>, Instant)>,
}

impl Span {
    /// A span that records nowhere and does not read the clock.
    pub fn disabled() -> Self {
        Self { armed: None }
    }

    /// Starts a span recording into `hist`.
    pub fn started(hist: Arc<Histogram>) -> Self {
        Self { armed: Some((hist, Instant::now())) }
    }

    /// Whether this span will record anything.
    pub fn is_enabled(&self) -> bool {
        self.armed.is_some()
    }

    /// Stops the timer now and records the elapsed nanoseconds. Consumes
    /// the span; dropping without calling `stop` records at drop time
    /// instead.
    pub fn stop(mut self) {
        self.finish();
    }

    fn finish(&mut self) {
        if let Some((hist, start)) = self.armed.take() {
            hist.record_duration(start.elapsed());
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(all(test, not(miri)))] // Instant::now is unsupported under Miri isolation
mod tests {
    use super::*;

    #[test]
    fn stop_records_once() {
        let h = Arc::new(Histogram::new());
        let span = Span::started(Arc::clone(&h));
        std::thread::sleep(std::time::Duration::from_millis(2));
        span.stop();
        let snap = h.snapshot();
        assert_eq!(snap.count, 1);
        assert!(snap.sum >= 2_000_000, "slept 2ms, recorded {}ns", snap.sum);
    }

    #[test]
    fn drop_records_once() {
        let h = Arc::new(Histogram::new());
        {
            let _span = Span::started(Arc::clone(&h));
        }
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    fn disabled_span_records_nothing() {
        let span = Span::disabled();
        assert!(!span.is_enabled());
        span.stop();
    }
}
