//! Scalar metrics: monotone [`Counter`] and up/down [`Gauge`].
//!
//! Both are single atomics updated with `Ordering::Relaxed`: an increment
//! is one uncontended RMW instruction, and a reader that loads mid-update
//! simply sees the value before or after — there is no multi-word state
//! to tear. Relaxed suffices because metric values carry no
//! happens-before obligations; they are statistical, not synchronizing
//! (DESIGN.md §12).

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// A monotonically increasing event count (Prometheus `counter`).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (wrapping at `u64::MAX`, which at one event per
    /// nanosecond takes ~580 years to reach).
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A value that can go up and down (Prometheus `gauge`), e.g. a queue
/// depth. Signed so that a decrement racing ahead of its logical
/// increment is representable rather than wrapping to `u64::MAX`.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: i64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.value.fetch_sub(n, Ordering::Relaxed);
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_tracks_up_and_down() {
        let g = Gauge::new();
        g.add(10);
        g.sub(3);
        assert_eq!(g.get(), 7);
        g.sub(9);
        assert_eq!(g.get(), -2, "gauge must represent transient negatives");
        g.set(0);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn counter_is_exact_under_concurrent_increments() {
        let c = Arc::new(Counter::new());
        let threads = 4;
        let per_thread: u64 = if cfg!(miri) { 100 } else { 10_000 };
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let c = Arc::clone(&c);
                scope.spawn(move || {
                    for _ in 0..per_thread {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), threads * per_thread);
    }
}
