//! Sharded metric [`Registry`] with snapshot-on-read semantics.
//!
//! Registration (name → metric) is the only operation that takes a lock,
//! and the lock is sharded by name hash so concurrent registrations from
//! different subsystems rarely collide. The metrics themselves live in
//! `Arc`s handed out to callers: once a handle is resolved, recording
//! never touches the registry again — a hot path pays exactly its relaxed
//! atomic increments and nothing else, and a reader taking a
//! [`Snapshot`] never blocks a writer (it briefly locks each shard to
//! clone the `Arc` list, then reads the atomics outside the lock).

use std::sync::{Arc, Mutex};

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::metric::{Counter, Gauge};

const NUM_SHARDS: usize = 8;

/// One registered metric (shared handle).
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Value of one metric at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotone event count.
    Counter(u64),
    /// Instantaneous level.
    Gauge(i64),
    /// Distribution snapshot. Boxed: the 65-bucket array dwarfs the
    /// scalar variants and would bloat every entry in a [`Snapshot`].
    Histogram(Box<HistogramSnapshot>),
}

/// Named collection of metrics. See the module docs for the locking
/// story; metric names may carry embedded Prometheus labels, e.g.
/// `pipeline_phase_ns{phase="rw_p1_walk"}` — the exporter splits them.
#[derive(Debug, Default)]
pub struct Registry {
    shards: [Mutex<Vec<(String, Metric)>>; NUM_SHARDS],
}

fn shard_of(name: &str) -> usize {
    // FNV-1a: tiny, deterministic, no std Hasher state needed.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    (h as usize) % NUM_SHARDS
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        let mut shard = self.shards[shard_of(name)].lock().expect("registry shard poisoned");
        if let Some((_, m)) = shard.iter().find(|(n, _)| n == name) {
            return m.clone();
        }
        let m = make();
        shard.push((name.to_string(), m.clone()));
        m
    }

    /// Resolves (registering on first use) the counter called `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind —
    /// that is a programming error, not a runtime condition.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.get_or_insert(name, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} already registered as {}", kind_name(&other)),
        }
    }

    /// Resolves (registering on first use) the gauge called `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.get_or_insert(name, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} already registered as {}", kind_name(&other)),
        }
    }

    /// Resolves (registering on first use) the histogram called `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.get_or_insert(name, || Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} already registered as {}", kind_name(&other)),
        }
    }

    /// Copies every metric's current value into a sorted plain-data
    /// [`Snapshot`]. Shard locks are held only long enough to clone the
    /// `Arc` handles; the atomic loads happen outside any lock, so
    /// writers are never blocked by a reader.
    pub fn snapshot(&self) -> Snapshot {
        let mut handles: Vec<(String, Metric)> = Vec::new();
        for shard in &self.shards {
            let guard = shard.lock().expect("registry shard poisoned");
            handles.extend(guard.iter().cloned());
        }
        let mut entries: Vec<(String, MetricValue)> = handles
            .into_iter()
            .map(|(name, m)| {
                let v = match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
                };
                (name, v)
            })
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Snapshot { entries }
    }
}

fn kind_name(m: &Metric) -> &'static str {
    match m {
        Metric::Counter(_) => "a counter",
        Metric::Gauge(_) => "a gauge",
        Metric::Histogram(_) => "a histogram",
    }
}

/// Point-in-time copy of a [`Registry`], sorted by metric name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// `(name, value)` pairs, ascending by name.
    pub entries: Vec<(String, MetricValue)>,
}

impl Snapshot {
    /// Looks up a counter's value by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.entries.iter().find(|(n, _)| n == name).and_then(|(_, v)| match v {
            MetricValue::Counter(c) => Some(*c),
            _ => None,
        })
    }

    /// Looks up a gauge's value by exact name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.entries.iter().find(|(n, _)| n == name).and_then(|(_, v)| match v {
            MetricValue::Gauge(g) => Some(*g),
            _ => None,
        })
    }

    /// Looks up a histogram snapshot by exact name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.entries.iter().find(|(n, _)| n == name).and_then(|(_, v)| match v {
            MetricValue::Histogram(h) => Some(h.as_ref()),
            _ => None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let r = Registry::new();
        let a = r.counter("x_total");
        let b = r.counter("x_total");
        a.add(2);
        b.add(3);
        assert_eq!(r.snapshot().counter("x_total"), Some(5));
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("m");
        let _ = r.gauge("m");
    }

    #[test]
    fn snapshot_is_sorted_and_complete() {
        let r = Registry::new();
        r.counter("z_total").inc();
        r.gauge("a_depth").set(4);
        r.histogram("m_ns").record(100);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.entries.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["a_depth", "m_ns", "z_total"]);
        assert_eq!(snap.gauge("a_depth"), Some(4));
        assert_eq!(snap.histogram("m_ns").unwrap().count, 1);
        assert_eq!(snap.counter("missing"), None);
        assert_eq!(snap.counter("a_depth"), None, "kind-checked lookup");
    }

    /// The Miri-checked heart of the design: concurrent writers recording
    /// through pre-resolved handles while a reader snapshots must be
    /// data-race-free, and a final quiescent snapshot must be exact.
    #[test]
    fn concurrent_writers_and_snapshot_readers() {
        let r = std::sync::Arc::new(Registry::new());
        let threads = 4;
        let per_thread: u64 = if cfg!(miri) { 50 } else { 5_000 };
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let r = std::sync::Arc::clone(&r);
                scope.spawn(move || {
                    let c = r.counter("events_total");
                    let h = r.histogram("lat_ns");
                    for i in 0..per_thread {
                        c.inc();
                        h.record(i);
                    }
                });
            }
            // Reader racing the writers: values observed must never
            // exceed the final totals.
            let r2 = std::sync::Arc::clone(&r);
            scope.spawn(move || {
                for _ in 0..10 {
                    let snap = r2.snapshot();
                    if let Some(c) = snap.counter("events_total") {
                        assert!(c <= threads * per_thread);
                    }
                }
            });
        });
        let snap = r.snapshot();
        assert_eq!(snap.counter("events_total"), Some(threads * per_thread));
        assert_eq!(snap.histogram("lat_ns").unwrap().count, threads * per_thread);
    }

    #[test]
    fn labeled_names_are_distinct_metrics() {
        let r = Registry::new();
        r.counter("op_total{op=\"a\"}").add(1);
        r.counter("op_total{op=\"b\"}").add(2);
        let snap = r.snapshot();
        assert_eq!(snap.counter("op_total{op=\"a\"}"), Some(1));
        assert_eq!(snap.counter("op_total{op=\"b\"}"), Some(2));
    }
}
