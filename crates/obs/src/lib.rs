//! Pipeline-wide observability substrate (DESIGN.md §12).
//!
//! The paper's contribution is workload *characterization* — per-phase
//! time breakdowns (Fig. 7), thread scaling (Fig. 10) — so the
//! reproduction needs first-class instrumentation, not ad-hoc timers.
//! This crate provides, with zero dependencies:
//!
//! * lock-free [`Counter`] / [`Gauge`] scalars (single relaxed atomics),
//! * a fixed-bucket log2 [`Histogram`] with p50/p95/p99 estimation,
//! * named [`Span`] timers for the pipeline phases,
//! * a sharded [`Registry`] with snapshot-on-read semantics, and
//! * Prometheus-text and JSON exporters over [`Snapshot`].
//!
//! # The `Recorder` contract
//!
//! Every instrumentation point in the workspace goes through a
//! [`Recorder`] handle. A recorder is either *disabled* — every
//! operation is an inlined no-op on a `None`, so the zero-metrics path
//! stays measurably free — or bound to a registry, in which case
//! resolving a metric takes a brief sharded lock **once** and the
//! returned handle records with nothing but relaxed atomic increments.
//! Long-lived subsystems (the serve stack) own their own
//! `Arc<Registry>`; batch runs use the process-global registry, switched
//! on by [`set_global_enabled`] (the CLI's `--metrics-out` does this) and
//! reached via [`Recorder::global`], whose cost when disabled is one
//! relaxed bool load.

mod export;
mod histogram;
mod metric;
mod registry;
mod span;

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, LazyLock};
use std::time::Duration;

pub use histogram::{Histogram, HistogramSnapshot, NUM_BUCKETS};
pub use metric::{Counter, Gauge};
pub use registry::{MetricValue, Registry, Snapshot};
pub use span::Span;

static GLOBAL_ENABLED: AtomicBool = AtomicBool::new(false);
static GLOBAL_REGISTRY: LazyLock<Arc<Registry>> = LazyLock::new(|| Arc::new(Registry::new()));

/// Turns the process-global recorder on or off. Off by default; the CLI
/// enables it when `--metrics-out` is given, before the run starts.
pub fn set_global_enabled(on: bool) {
    GLOBAL_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether [`Recorder::global`] currently records (one relaxed load).
#[inline]
pub fn global_enabled() -> bool {
    GLOBAL_ENABLED.load(Ordering::Relaxed)
}

/// The process-global registry ([`Recorder::global`] records here).
/// Always accessible for snapshotting, even while recording is disabled.
pub fn global_registry() -> Arc<Registry> {
    Arc::clone(&GLOBAL_REGISTRY)
}

/// This process's peak resident set size (`VmHWM`) in bytes, read from
/// `/proc/self/status`. `None` off Linux or when the field is missing.
///
/// The high-water mark is monotone over the process lifetime — it can
/// only tell *which earlier allocation was largest*, so comparative
/// measurements (e.g. fused vs sequential pipeline) must run the
/// lower-memory candidate first.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    // Format: "VmHWM:   123456 kB".
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib * 1024)
}

/// Entry point for instrumentation: either a no-op or a binding to one
/// [`Registry`]. Cheap to clone (an `Option<Arc>`).
#[derive(Debug, Clone, Default)]
pub struct Recorder {
    registry: Option<Arc<Registry>>,
}

impl Recorder {
    /// A recorder whose every operation is a no-op.
    pub fn disabled() -> Self {
        Self { registry: None }
    }

    /// A recorder bound to `registry`.
    pub fn with_registry(registry: Arc<Registry>) -> Self {
        Self { registry: Some(registry) }
    }

    /// The process-global recorder: bound to [`global_registry`] when
    /// [`global_enabled`] is set, disabled otherwise.
    #[inline]
    pub fn global() -> Self {
        if global_enabled() {
            Self::with_registry(global_registry())
        } else {
            Self::disabled()
        }
    }

    /// Whether any metric recorded through this handle goes anywhere.
    /// Guards for instrumentation that must pay setup cost (clock reads,
    /// scratch) only when someone is listening.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.registry.is_some()
    }

    /// The bound registry, if any.
    pub fn registry(&self) -> Option<&Arc<Registry>> {
        self.registry.as_ref()
    }

    /// Resolves a counter handle (no-op handle when disabled).
    pub fn counter(&self, name: &str) -> CounterHandle {
        CounterHandle(self.registry.as_ref().map(|r| r.counter(name)))
    }

    /// Resolves a gauge handle (no-op handle when disabled).
    pub fn gauge(&self, name: &str) -> GaugeHandle {
        GaugeHandle(self.registry.as_ref().map(|r| r.gauge(name)))
    }

    /// Resolves a histogram handle (no-op handle when disabled).
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        HistogramHandle(self.registry.as_ref().map(|r| r.histogram(name)))
    }

    /// Starts a [`Span`] recording into histogram `name` (a disabled
    /// recorder yields a span that never reads the clock).
    pub fn span(&self, name: &str) -> Span {
        match &self.registry {
            Some(r) => Span::started(r.histogram(name)),
            None => Span::disabled(),
        }
    }

    /// Records `d` (as nanoseconds) into histogram `name`; convenience
    /// for call sites that already hold an elapsed duration.
    pub fn record_duration(&self, name: &str, d: Duration) {
        if let Some(r) = &self.registry {
            r.histogram(name).record_duration(d);
        }
    }
}

/// Pre-resolved counter; `inc`/`add` are a single relaxed atomic add, or
/// nothing at all when the handle came from a disabled recorder.
#[derive(Debug, Clone, Default)]
pub struct CounterHandle(Option<Arc<Counter>>);

impl CounterHandle {
    /// A handle that records nowhere.
    pub fn disabled() -> Self {
        Self(None)
    }

    /// Whether this handle records anywhere.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        if let Some(c) = &self.0 {
            c.inc();
        }
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.add(n);
        }
    }
}

/// Pre-resolved gauge handle (see [`CounterHandle`]).
#[derive(Debug, Clone, Default)]
pub struct GaugeHandle(Option<Arc<Gauge>>);

impl GaugeHandle {
    /// A handle that records nowhere.
    pub fn disabled() -> Self {
        Self(None)
    }

    /// Whether this handle records anywhere.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: i64) {
        if let Some(g) = &self.0 {
            g.add(n);
        }
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        if let Some(g) = &self.0 {
            g.sub(n);
        }
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.set(v);
        }
    }

    /// Current value (0 when disabled).
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |g| g.get())
    }
}

/// Pre-resolved histogram handle (see [`CounterHandle`]).
#[derive(Debug, Clone, Default)]
pub struct HistogramHandle(Option<Arc<Histogram>>);

impl HistogramHandle {
    /// A handle that records nowhere.
    pub fn disabled() -> Self {
        Self(None)
    }

    /// Whether this handle records anywhere.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.record(v);
        }
    }

    /// Records a duration in nanoseconds.
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        if let Some(h) = &self.0 {
            h.record_duration(d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        rec.counter("c").inc();
        rec.gauge("g").add(1);
        rec.histogram("h").record(1);
        rec.span("s").stop();
        rec.record_duration("d", Duration::from_nanos(1));
        assert!(rec.registry().is_none());
    }

    #[test]
    fn bound_recorder_routes_to_registry() {
        let reg = Arc::new(Registry::new());
        let rec = Recorder::with_registry(Arc::clone(&reg));
        rec.counter("c_total").add(2);
        rec.gauge("g").set(5);
        rec.histogram("h_ns").record(999);
        rec.record_duration("d_ns", Duration::from_micros(1));
        let snap = reg.snapshot();
        assert_eq!(snap.counter("c_total"), Some(2));
        assert_eq!(snap.gauge("g"), Some(5));
        assert_eq!(snap.histogram("h_ns").unwrap().count, 1);
        assert_eq!(snap.histogram("d_ns").unwrap().sum, 1_000);
    }

    #[cfg(not(miri))] // Span reads the wall clock
    #[test]
    fn span_routes_to_registry() {
        let reg = Arc::new(Registry::new());
        let rec = Recorder::with_registry(Arc::clone(&reg));
        rec.span("phase_ns{phase=\"x\"}").stop();
        assert_eq!(reg.snapshot().histogram("phase_ns{phase=\"x\"}").unwrap().count, 1);
    }

    #[cfg(not(miri))] // reads /proc
    #[test]
    fn peak_rss_reports_on_linux() {
        if cfg!(target_os = "linux") {
            let hwm = peak_rss_bytes().expect("Linux exposes VmHWM");
            // A running test binary occupies at least a megabyte and the
            // value is kB-granular.
            assert!(hwm >= 1 << 20, "implausible VmHWM {hwm}");
            assert_eq!(hwm % 1024, 0);
        }
    }

    #[test]
    fn global_recorder_follows_enable_flag() {
        // Serialized against nothing: the global flag defaults to off and
        // only this test (in-crate) flips it, so restore it when done.
        assert!(!global_enabled());
        assert!(!Recorder::global().is_enabled());
        set_global_enabled(true);
        let rec = Recorder::global();
        assert!(rec.is_enabled());
        rec.counter("obs_selftest_total").inc();
        set_global_enabled(false);
        assert!(!Recorder::global().is_enabled());
        // The registry outlives the flag: snapshots still see the data.
        assert_eq!(global_registry().snapshot().counter("obs_selftest_total"), Some(1));
    }
}
