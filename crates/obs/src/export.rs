//! Exporters: Prometheus text exposition format and a JSON snapshot.
//!
//! Metric names may embed a static label set in Prometheus syntax
//! (`pipeline_phase_ns{phase="rw_p1_walk"}`); the exporter splits the
//! base name from the label block so `# TYPE` lines and histogram
//! suffixes (`_bucket`/`_sum`/`_count`) land on the base name as the
//! exposition format requires. The JSON writer is self-contained —
//! `obs` sits below every other crate and cannot borrow a JSON
//! implementation from above.

use std::fmt::Write as _;

use crate::registry::{MetricValue, Snapshot};

/// `name{label="x"}` → (`name`, `label="x"`); plain names yield an empty
/// label block.
fn split_labels(name: &str) -> (&str, &str) {
    match name.find('{') {
        Some(i) => (&name[..i], name[i + 1..].trim_end_matches('}')),
        None => (name, ""),
    }
}

/// Joins a label block with an extra label (for `le=`).
fn labels_with(base_labels: &str, extra: &str) -> String {
    if base_labels.is_empty() {
        format!("{{{extra}}}")
    } else {
        format!("{{{base_labels},{extra}}}")
    }
}

fn braced(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    }
}

impl Snapshot {
    /// Renders the snapshot in the Prometheus text exposition format
    /// (version 0.0.4): `# TYPE` headers, one sample line per scalar,
    /// and cumulative `_bucket{le=…}` / `_sum` / `_count` lines per
    /// histogram.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_typed = "";
        for (name, value) in &self.entries {
            let (base, labels) = split_labels(name);
            match value {
                MetricValue::Counter(v) => {
                    if last_typed != base {
                        let _ = writeln!(out, "# TYPE {base} counter");
                        last_typed = base;
                    }
                    let _ = writeln!(out, "{base}{} {v}", braced(labels));
                }
                MetricValue::Gauge(v) => {
                    if last_typed != base {
                        let _ = writeln!(out, "# TYPE {base} gauge");
                        last_typed = base;
                    }
                    let _ = writeln!(out, "{base}{} {v}", braced(labels));
                }
                MetricValue::Histogram(h) => {
                    if last_typed != base {
                        let _ = writeln!(out, "# TYPE {base} histogram");
                        last_typed = base;
                    }
                    for (le, cum) in h.cumulative() {
                        let _ = writeln!(
                            out,
                            "{base}_bucket{} {cum}",
                            labels_with(labels, &format!("le=\"{le}\""))
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{base}_bucket{} {}",
                        labels_with(labels, "le=\"+Inf\""),
                        h.count
                    );
                    let _ = writeln!(out, "{base}_sum{} {}", braced(labels), h.sum);
                    let _ = writeln!(out, "{base}_count{} {}", braced(labels), h.count);
                }
            }
        }
        out
    }

    /// Renders the snapshot as a JSON object:
    /// `{"counters": {…}, "gauges": {…}, "histograms": {name: {"count",
    /// "sum", "mean", "p50", "p95", "p99"}}}`. Quantiles are finite by
    /// construction, so the output is always valid JSON.
    pub fn to_json(&self) -> String {
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut histograms = String::new();
        for (name, value) in &self.entries {
            match value {
                MetricValue::Counter(v) => {
                    if !counters.is_empty() {
                        counters.push(',');
                    }
                    let _ = write!(counters, "{}:{v}", json_string(name));
                }
                MetricValue::Gauge(v) => {
                    if !gauges.is_empty() {
                        gauges.push(',');
                    }
                    let _ = write!(gauges, "{}:{v}", json_string(name));
                }
                MetricValue::Histogram(h) => {
                    if !histograms.is_empty() {
                        histograms.push(',');
                    }
                    let _ = write!(
                        histograms,
                        "{}:{{\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                        json_string(name),
                        h.count,
                        h.sum,
                        json_f64(h.mean()),
                        json_f64(h.p50()),
                        json_f64(h.p95()),
                        json_f64(h.p99()),
                    );
                }
            }
        }
        format!("{{\"counters\":{{{counters}}},\"gauges\":{{{gauges}}},\"histograms\":{{{histograms}}}}}")
    }
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a finite f64 as a JSON number (quantiles/means are finite by
/// construction; guard anyway so the emitter can never produce `NaN`).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use crate::registry::Registry;

    #[test]
    fn prometheus_renders_all_kinds() {
        let r = Registry::new();
        r.counter("req_total{op=\"link_score\"}").add(3);
        r.counter("req_total{op=\"topk\"}").add(1);
        r.gauge("queue_depth").set(2);
        let h = r.histogram("lat_ns");
        h.record(100);
        h.record(5_000);
        let text = r.snapshot().to_prometheus();

        assert!(text.contains("# TYPE req_total counter"), "{text}");
        assert!(text.contains("req_total{op=\"link_score\"} 3"), "{text}");
        assert!(text.contains("req_total{op=\"topk\"} 1"), "{text}");
        // One TYPE line per base name even with multiple label sets.
        assert_eq!(text.matches("# TYPE req_total counter").count(), 1);
        assert!(text.contains("# TYPE queue_depth gauge"), "{text}");
        assert!(text.contains("queue_depth 2"), "{text}");
        assert!(text.contains("# TYPE lat_ns histogram"), "{text}");
        assert!(text.contains("lat_ns_bucket{le=\"128\"} 1"), "{text}");
        assert!(text.contains("lat_ns_bucket{le=\"8192\"} 2"), "{text}");
        assert!(text.contains("lat_ns_bucket{le=\"+Inf\"} 2"), "{text}");
        assert!(text.contains("lat_ns_sum 5100"), "{text}");
        assert!(text.contains("lat_ns_count 2"), "{text}");
    }

    #[test]
    fn prometheus_histogram_with_labels_places_le_inside() {
        let r = Registry::new();
        r.histogram("phase_ns{phase=\"rw_p1_walk\"}").record(1);
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("phase_ns_bucket{phase=\"rw_p1_walk\",le=\"2\"} 1"), "{text}");
        assert!(text.contains("phase_ns_sum{phase=\"rw_p1_walk\"} 1"), "{text}");
        assert!(text.contains("phase_ns_count{phase=\"rw_p1_walk\"} 1"), "{text}");
    }

    #[test]
    fn json_snapshot_shape() {
        let r = Registry::new();
        r.counter("hops_total").add(7);
        r.gauge("depth").set(-1);
        r.histogram("lat_ns").record(1000);
        let json = r.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"hops_total\":7"), "{json}");
        assert!(json.contains("\"depth\":-1"), "{json}");
        assert!(json.contains("\"lat_ns\":{\"count\":1,\"sum\":1000"), "{json}");
        assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
    }

    #[test]
    fn empty_snapshot_is_valid() {
        let r = Registry::new();
        assert_eq!(r.snapshot().to_prometheus(), "");
        assert_eq!(r.snapshot().to_json(), "{\"counters\":{},\"gauges\":{},\"histograms\":{}}");
    }
}
