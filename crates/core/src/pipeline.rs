//! The end-to-end pipeline driver.

use std::time::{Duration, Instant};

use dataprep::{link_prediction_data, node_classification_data, temporal_edge_split, SplitRatios};
use embed::EmbeddingMatrix;
use nn::{metrics, Mlp, OutputHead, Trainer};
use perfmodel::profile::{
    profile_testing, profile_training, profile_walk, profile_word2vec, ProfileOptions,
};
use perfmodel::GpuModel;
use tgraph::TemporalGraph;
use twalk::WalkSet;

use crate::{Hyperparams, PhaseTimes, PipelineError, TaskKind, TaskMetrics, TaskReport};

/// Execution backend for reported phase times.
///
/// The classifier math always runs on the CPU (accuracy is identical by
/// construction — the paper found batching/staleness does not change
/// accuracy); the backend only selects whether [`PhaseTimes`] holds
/// *measured CPU wall-clock* or the [`GpuModel`]'s estimates for the same
/// workload.
#[derive(Debug, Clone)]
pub enum Backend {
    /// Measure wall-clock time on this machine.
    Cpu,
    /// Report modeled GPU phase times (Table III's GPU columns).
    GpuModel(GpuModel),
}

/// Everything the training half of a deployment hands to the serving
/// half: trained node embeddings, the trained link-prediction FNN, and the
/// run's [`TaskReport`].
#[derive(Debug, Clone)]
pub struct LinkModel {
    /// Trained node embeddings `f : V → R^d`.
    pub emb: EmbeddingMatrix,
    /// Trained 2-layer link-FNN over concatenated edge features (input
    /// width `2d`, binary head).
    pub mlp: Mlp,
    /// Metrics and phase times of the training run.
    pub report: TaskReport,
}

/// The four-phase pipeline of paper Fig. 1.
///
/// # Examples
///
/// ```
/// use rwalk_core::{Hyperparams, Pipeline};
///
/// let gen = tgraph::gen::temporal_sbm(150, 3, 3_000, 0.9, 5);
/// let g = gen.builder.undirected(true).build();
/// let report = Pipeline::new(Hyperparams::paper_optimal().quick_test())
///     .run_node_classification(&g, &gen.labels)
///     .unwrap();
/// assert!(report.metrics.accuracy > 1.0 / 3.0); // beats random guessing
/// ```
#[derive(Debug, Clone)]
pub struct Pipeline {
    hp: Hyperparams,
    backend: Backend,
}

impl Pipeline {
    /// Creates a CPU-backed pipeline.
    pub fn new(hp: Hyperparams) -> Self {
        Self { hp, backend: Backend::Cpu }
    }

    /// Selects the backend.
    #[must_use]
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// The hyperparameters this pipeline runs with.
    pub fn hyperparams(&self) -> &Hyperparams {
        &self.hp
    }

    /// Phase 1 only: generate the walk corpus, according to the
    /// configured [`crate::EmbeddingStrategy`] — temporal walks (the
    /// paper's method), static DeepWalk, or snapshot DeepWalk baselines.
    pub fn walks(&self, g: &TemporalGraph) -> WalkSet {
        let par = self.hp.par_config();
        match self.hp.strategy {
            crate::EmbeddingStrategy::TemporalWalks => self.hp.walk_options().generate(g, &par),
            crate::EmbeddingStrategy::StaticDeepWalk => {
                self.hp.walk_options().respect_time(false).generate(g, &par)
            }
            crate::EmbeddingStrategy::SnapshotDeepWalk { snapshots } => {
                let snapshots = snapshots.max(1);
                let (lo, hi) = g.time_range().unwrap_or((0.0, 1.0));
                let k = (self.hp.walks_per_node / snapshots).max(1);
                let mut all: Vec<Vec<tgraph::NodeId>> = Vec::new();
                for s in 1..=snapshots {
                    let t = lo + (hi - lo) * s as f64 / snapshots as f64;
                    let snap = g.snapshot_until(t);
                    // Each snapshot is its own graph, so `generate` builds
                    // each one its own prepared sampler.
                    let walks = self
                        .hp
                        .walk_options()
                        .walks_per_node(k)
                        .seed(self.hp.seed.wrapping_add(s as u64))
                        .respect_time(false)
                        .generate(&snap, &par);
                    all.extend(walks.iter().map(<[tgraph::NodeId]>::to_vec));
                }
                WalkSet::from_walks(&all, self.hp.walk_length)
            }
        }
    }

    /// Phases 1–2: generate walks and train node embeddings.
    pub fn embeddings(&self, g: &TemporalGraph) -> EmbeddingMatrix {
        let walks = self.walks(g);
        embed::train(&walks, g.num_nodes(), &self.hp.w2v_config(), &self.hp.par_config())
    }

    /// Runs the full link prediction task (paper §IV-B).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::GraphTooSmall`] when the graph cannot be
    /// split into train/valid/test with negative sampling.
    pub fn run_link_prediction(&self, g: &TemporalGraph) -> Result<TaskReport, PipelineError> {
        self.link_pipeline(g).map(|m| m.report)
    }

    /// Runs the link prediction pipeline and keeps the artifacts a serving
    /// layer needs: the trained embeddings and the trained link-FNN, plus
    /// the usual [`TaskReport`]. This is the training half of an online
    /// deployment — hand the result to `rwserve` to answer queries.
    ///
    /// # Errors
    ///
    /// Same conditions as [`run_link_prediction`](Self::run_link_prediction).
    pub fn train_link_model(&self, g: &TemporalGraph) -> Result<LinkModel, PipelineError> {
        self.link_pipeline(g)
    }

    fn link_pipeline(&self, g: &TemporalGraph) -> Result<LinkModel, PipelineError> {
        if g.num_edges() < 25 || g.num_nodes() < 10 {
            return Err(PipelineError::GraphTooSmall {
                nodes: g.num_nodes(),
                edges: g.num_edges(),
            });
        }
        let par = self.hp.par_config();

        // Phase 1: temporal random walks.
        let t0 = Instant::now();
        let walks = self.walks(g);
        let rwalk_time = t0.elapsed();
        let walk_stats = twalk::stats::length_stats(&walks);

        // Phase 2: word2vec.
        let t0 = Instant::now();
        let emb = embed::train(&walks, g.num_nodes(), &self.hp.w2v_config(), &par);
        let w2v_time = t0.elapsed();

        // Phase 3: data preparation (Fig. 7).
        let t0 = Instant::now();
        let split = temporal_edge_split(g, SplitRatios::default(), self.hp.seed ^ 0x5E1);
        let data = link_prediction_data(&split, &emb);
        let prep_time = t0.elapsed();

        // Phase 4: 2-layer FNN, BCE loss (paper Eq. 4); extra hidden
        // layers deepen it when configured.
        let mut dims = vec![2 * self.hp.dim];
        dims.extend(std::iter::repeat_n(self.hp.hidden, 1 + self.hp.extra_hidden_layers));
        dims.push(1);
        let mut mlp =
            Mlp::new(&dims, OutputHead::Binary, self.hp.seed).with_residual(self.hp.residual);
        let trainer = Trainer::new(self.hp.train_options());
        let train_report = trainer.fit_binary(
            &mut mlp,
            &data.x_train,
            &data.y_train,
            &data.x_valid,
            &data.y_valid,
        );

        let t0 = Instant::now();
        let scores = mlp.predict_proba(&data.x_test);
        let test_time = t0.elapsed();

        let accuracy = metrics::binary_accuracy(&scores, &data.y_test);
        let auc = metrics::roc_auc(&scores, &data.y_test);
        let final_train_loss = train_report.epochs.last().map_or(f64::NAN, |e| e.train_loss);
        let epochs_run = train_report.epochs.len();

        let mut phase_times = PhaseTimes {
            rwalk: rwalk_time,
            word2vec: w2v_time,
            data_prep: prep_time,
            train_total: train_report.total_time,
            train_per_epoch: train_report.mean_epoch_time(),
            test: test_time,
        };
        record_phase_spans(g, &phase_times);
        let backend = match &self.backend {
            Backend::Cpu => "cpu",
            Backend::GpuModel(gpu) => {
                phase_times = self.gpu_phase_times(
                    gpu,
                    g,
                    &walks,
                    &dims,
                    data.x_train.rows(),
                    data.x_test.rows(),
                    epochs_run,
                );
                "gpu-model"
            }
        };

        let report = TaskReport {
            task: TaskKind::LinkPrediction,
            metrics: TaskMetrics { accuracy, auc: Some(auc), macro_f1: None, final_train_loss },
            phase_times,
            walk_stats,
            sampler_build: walks.sampler_stats(),
            epochs_run,
            backend,
        };
        Ok(LinkModel { emb, mlp, report })
    }

    /// Runs the full multi-class node classification task (paper §IV-B).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::LabelMismatch`] when `labels` does not
    /// cover every vertex, [`PipelineError::ClassTooSmall`] when a class
    /// cannot be stratified, and [`PipelineError::GraphTooSmall`] for
    /// degenerate graphs.
    pub fn run_node_classification(
        &self,
        g: &TemporalGraph,
        labels: &[u16],
    ) -> Result<TaskReport, PipelineError> {
        if g.num_edges() < 25 || g.num_nodes() < 10 {
            return Err(PipelineError::GraphTooSmall {
                nodes: g.num_nodes(),
                edges: g.num_edges(),
            });
        }
        if labels.len() != g.num_nodes() {
            return Err(PipelineError::LabelMismatch {
                labels: labels.len(),
                nodes: g.num_nodes(),
            });
        }
        let num_classes = labels.iter().map(|&l| l as usize + 1).max().unwrap_or(0);
        for c in 0..num_classes as u16 {
            let members = labels.iter().filter(|&&l| l == c).count();
            if members < 3 {
                return Err(PipelineError::ClassTooSmall { class: c, members });
            }
        }
        let par = self.hp.par_config();

        let t0 = Instant::now();
        let walks = self.walks(g);
        let rwalk_time = t0.elapsed();
        let walk_stats = twalk::stats::length_stats(&walks);

        let t0 = Instant::now();
        let emb = embed::train(&walks, g.num_nodes(), &self.hp.w2v_config(), &par);
        let w2v_time = t0.elapsed();

        let t0 = Instant::now();
        let data =
            node_classification_data(&emb, labels, SplitRatios::default(), self.hp.seed ^ 0x5E1);
        let prep_time = t0.elapsed();

        // 3-layer FNN, NLL loss over |C| outputs; extra hidden layers
        // deepen it when configured.
        let mut dims = vec![self.hp.dim];
        dims.extend(std::iter::repeat_n(self.hp.hidden, 2 + self.hp.extra_hidden_layers));
        dims.push(data.num_classes);
        let mut mlp =
            Mlp::new(&dims, OutputHead::MultiClass, self.hp.seed).with_residual(self.hp.residual);
        let trainer = Trainer::new(self.hp.train_options());
        let train_report = trainer.fit_multiclass(
            &mut mlp,
            &data.x_train,
            &data.y_train,
            &data.x_valid,
            &data.y_valid,
        );

        let t0 = Instant::now();
        let pred = mlp.predict_class(&data.x_test);
        let test_time = t0.elapsed();

        let accuracy = metrics::accuracy(&pred, &data.y_test);
        let macro_f1 = metrics::macro_f1(&pred, &data.y_test, data.num_classes);
        let final_train_loss = train_report.epochs.last().map_or(f64::NAN, |e| e.train_loss);
        let epochs_run = train_report.epochs.len();

        let mut phase_times = PhaseTimes {
            rwalk: rwalk_time,
            word2vec: w2v_time,
            data_prep: prep_time,
            train_total: train_report.total_time,
            train_per_epoch: train_report.mean_epoch_time(),
            test: test_time,
        };
        record_phase_spans(g, &phase_times);
        let backend = match &self.backend {
            Backend::Cpu => "cpu",
            Backend::GpuModel(gpu) => {
                phase_times = self.gpu_phase_times(
                    gpu,
                    g,
                    &walks,
                    &dims,
                    data.x_train.rows(),
                    data.x_test.rows(),
                    epochs_run,
                );
                "gpu-model"
            }
        };

        Ok(TaskReport {
            task: TaskKind::NodeClassification,
            metrics: TaskMetrics {
                accuracy,
                auc: None,
                macro_f1: Some(macro_f1),
                final_train_loss,
            },
            phase_times,
            walk_stats,
            sampler_build: walks.sampler_stats(),
            epochs_run,
            backend,
        })
    }

    /// Replaces measured phase times with the GPU model's estimates for
    /// the same workload (instrumented replicas provide op counts, the
    /// analytic model turns them into time).
    #[allow(clippy::too_many_arguments)]
    fn gpu_phase_times(
        &self,
        gpu: &GpuModel,
        g: &TemporalGraph,
        walks: &WalkSet,
        dims: &[usize],
        train_rows: usize,
        test_rows: usize,
        epochs_run: usize,
    ) -> PhaseTimes {
        let opts = ProfileOptions::default();
        let bytes_graph = g.memory_bytes() as f64;

        // RW-P1: one launch, per-vertex parallelism, graph upload.
        let wp = profile_walk(g, &self.hp.walk_config(), &opts);
        let walk_est =
            gpu.estimate_profile(&wp, wp.work_scale(), g.num_nodes() as f64, 1.0, bytes_graph);

        // RW-P2: batched word2vec — one launch per 16k-sentence batch
        // (the paper's optimal batch size), corpus upload.
        let w2p = profile_word2vec(
            walks,
            self.hp.dim,
            self.hp.window,
            self.hp.negatives,
            g.num_nodes(),
            &opts,
        );
        let batches = (walks.num_walks().div_ceil(16_384) * self.hp.w2v_epochs) as f64;
        let w2v_est = gpu.estimate_profile(
            &w2p,
            w2p.work_scale(),
            (16_384 * self.hp.dim) as f64,
            batches,
            (walks.total_vertices() * 4) as f64,
        );

        // RW-P3/P4: one launch per layer per mini-batch; features upload.
        let n_batches = train_rows.div_ceil(self.hp.batch_size).max(1);
        let tp = profile_training(dims, self.hp.batch_size, n_batches, &opts);
        let feat_bytes = (train_rows * dims[0] * 4) as f64;
        let train_epoch_est = gpu.estimate_profile(
            &tp,
            tp.work_scale(),
            (self.hp.batch_size * dims[1]) as f64,
            (n_batches * dims.len()) as f64,
            feat_bytes,
        );

        let sp = profile_testing(dims, test_rows.max(1), 1, &opts);
        let test_est = gpu.estimate_profile(
            &sp,
            sp.work_scale(),
            (test_rows.max(1) * dims[1]) as f64,
            dims.len() as f64,
            (test_rows * dims[0] * 4) as f64,
        );

        let per_epoch = Duration::from_secs_f64(train_epoch_est.total_secs());
        PhaseTimes {
            rwalk: Duration::from_secs_f64(walk_est.total_secs()),
            word2vec: Duration::from_secs_f64(w2v_est.total_secs()),
            data_prep: Duration::ZERO, // prep runs host-side in both backends
            train_total: per_epoch * epochs_run.max(1) as u32,
            train_per_epoch: per_epoch,
            test: Duration::from_secs_f64(test_est.total_secs()),
        }
    }
}

/// Records the measured wall-clock phase breakdown (paper Fig. 7) into the
/// global metrics registry. Always records the CPU-measured times, even when
/// the report is later rewritten by the GPU model: the registry reflects what
/// this process actually spent.
fn record_phase_spans(g: &TemporalGraph, times: &PhaseTimes) {
    let rec = obs::Recorder::global();
    if !rec.is_enabled() {
        return;
    }
    rec.gauge("tgraph_nodes").set(g.num_nodes() as i64);
    rec.gauge("tgraph_edges").set(g.num_edges() as i64);
    for (phase, d) in [
        ("rw_p1_walk", times.rwalk),
        ("rw_p2_word2vec", times.word2vec),
        ("data_prep", times.data_prep),
        ("rw_p3_train", times.train_total),
        ("rw_p4_test", times.test),
    ] {
        rec.record_duration(&format!("pipeline_phase_ns{{phase=\"{phase}\"}}"), d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lp_graph() -> TemporalGraph {
        tgraph::gen::preferential_attachment(500, 3, 2).undirected(true).build()
    }

    #[test]
    fn link_prediction_beats_random() {
        let report = Pipeline::new(Hyperparams::paper_optimal().quick_test())
            .run_link_prediction(&lp_graph())
            .unwrap();
        assert!(report.metrics.accuracy > 0.55, "accuracy {}", report.metrics.accuracy);
        assert!(report.metrics.auc.unwrap() > 0.55, "auc {:?}", report.metrics.auc);
        assert_eq!(report.backend, "cpu");
        assert!(report.phase_times.total() > Duration::ZERO);
    }

    #[test]
    fn node_classification_learns_planted_communities() {
        let gen = tgraph::gen::temporal_sbm(300, 3, 9_000, 0.92, 3);
        let g = gen.builder.undirected(true).build();
        let report = Pipeline::new(Hyperparams::paper_optimal().quick_test())
            .run_node_classification(&g, &gen.labels)
            .unwrap();
        assert!(report.metrics.accuracy > 0.6, "accuracy {}", report.metrics.accuracy);
        assert!(report.metrics.macro_f1.unwrap() > 0.5);
    }

    #[test]
    fn train_link_model_exposes_serving_artifacts() {
        let g = lp_graph();
        let hp = Hyperparams::paper_optimal().quick_test();
        let model = Pipeline::new(hp.clone()).train_link_model(&g).unwrap();
        assert_eq!(model.emb.num_nodes(), g.num_nodes());
        assert_eq!(model.emb.dim(), hp.dim);
        assert_eq!(model.mlp.input_dim(), 2 * hp.dim);
        assert_eq!(model.mlp.output_dim(), 1);
        assert_eq!(model.report.task, TaskKind::LinkPrediction);
        // The kept artifacts are the ones the report was computed from:
        // scoring a known-positive test edge must work end-to-end.
        let feat = model.emb.edge_feature(0, 1);
        let x = nn::Tensor2::from_rows(&[&feat]);
        let p = model.mlp.predict_proba(&x);
        assert!(p[0].is_finite() && (0.0..=1.0).contains(&p[0]));
    }

    #[test]
    fn gpu_backend_reports_modeled_times() {
        let g = lp_graph();
        let report = Pipeline::new(Hyperparams::paper_optimal().quick_test())
            .with_backend(Backend::GpuModel(GpuModel::ampere()))
            .run_link_prediction(&g)
            .unwrap();
        assert_eq!(report.backend, "gpu-model");
        assert!(report.phase_times.rwalk > Duration::ZERO);
        assert!(report.phase_times.word2vec > Duration::ZERO);
    }

    #[test]
    fn tiny_graph_is_rejected() {
        let g = tgraph::GraphBuilder::new().add_edge(tgraph::TemporalEdge::new(0, 1, 0.5)).build();
        let err = Pipeline::new(Hyperparams::paper_optimal()).run_link_prediction(&g).unwrap_err();
        assert!(matches!(err, PipelineError::GraphTooSmall { .. }));
    }

    #[test]
    fn label_mismatch_is_rejected() {
        let g = lp_graph();
        let err = Pipeline::new(Hyperparams::paper_optimal())
            .run_node_classification(&g, &[0, 1, 2])
            .unwrap_err();
        assert!(matches!(err, PipelineError::LabelMismatch { .. }));
    }

    #[test]
    fn sparse_class_is_rejected() {
        let g = lp_graph();
        let mut labels = vec![0u16; g.num_nodes()];
        labels[0] = 1; // class 1 has a single member
        let err = Pipeline::new(Hyperparams::paper_optimal())
            .run_node_classification(&g, &labels)
            .unwrap_err();
        assert!(matches!(err, PipelineError::ClassTooSmall { class: 1, members: 1 }));
    }

    #[test]
    fn summary_mentions_phases() {
        let report = Pipeline::new(Hyperparams::paper_optimal().quick_test())
            .run_link_prediction(&lp_graph())
            .unwrap();
        let s = report.summary();
        assert!(s.contains("rwalk"));
        assert!(s.contains("word2vec"));
        assert!(s.contains("accuracy"));
    }
}
