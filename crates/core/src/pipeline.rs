//! The end-to-end pipeline driver.

use std::time::{Duration, Instant};

use dataprep::{link_prediction_data, node_classification_data, temporal_edge_split, SplitRatios};
use embed::{EmbeddingMatrix, StreamTrainer};
use nn::{metrics, Mlp, OutputHead, Trainer};
use par::{BoundedQueue, ParConfig};
use perfmodel::profile::{
    profile_testing, profile_training, profile_walk, profile_word2vec, ProfileOptions,
};
use perfmodel::GpuModel;
use tgraph::TemporalGraph;
use twalk::{ChannelSink, WalkOptions, WalkSet, WalkSetBuilder};

use crate::{
    FusedMode, FusedPhases, Hyperparams, PhaseTimes, PipelineError, TaskKind, TaskMetrics,
    TaskReport,
};

/// Corpus-size floor (in upper-bound tokens, `K · |V| · N`) below which
/// [`FusedMode::Auto`] keeps the sequential path: small corpora fit
/// comfortably in memory and channel/rebuild overhead would outweigh the
/// overlap win.
pub const FUSED_AUTO_MIN_TOKENS: usize = 2_000_000;

/// Execution backend for reported phase times.
///
/// The classifier math always runs on the CPU (accuracy is identical by
/// construction — the paper found batching/staleness does not change
/// accuracy); the backend only selects whether [`PhaseTimes`] holds
/// *measured CPU wall-clock* or the [`GpuModel`]'s estimates for the same
/// workload.
#[derive(Debug, Clone)]
pub enum Backend {
    /// Measure wall-clock time on this machine.
    Cpu,
    /// Report modeled GPU phase times (Table III's GPU columns).
    GpuModel(GpuModel),
}

/// Everything the training half of a deployment hands to the serving
/// half: trained node embeddings, the trained link-prediction FNN, and the
/// run's [`TaskReport`].
#[derive(Debug, Clone)]
pub struct LinkModel {
    /// Trained node embeddings `f : V → R^d`.
    pub emb: EmbeddingMatrix,
    /// Trained 2-layer link-FNN over concatenated edge features (input
    /// width `2d`, binary head).
    pub mlp: Mlp,
    /// Metrics and phase times of the training run.
    pub report: TaskReport,
}

/// Everything phases 1–2 hand to the classifier phases, on either the
/// fused or the sequential path.
struct EmbedPhase {
    emb: EmbeddingMatrix,
    /// The materialized corpus — present on the sequential path only (the
    /// GPU model profiles it; the fused path never builds it).
    walks: Option<WalkSet>,
    /// Sequential: walk-generation wall-clock. Fused: the serial
    /// sampler-preparation prologue.
    rwalk_time: Duration,
    /// Sequential: training wall-clock. Fused: the overlapped span.
    w2v_time: Duration,
    walk_stats: twalk::stats::WalkLengthStats,
    sampler_build: Option<twalk::SamplerBuildStats>,
    fused: Option<FusedPhases>,
}

/// The four-phase pipeline of paper Fig. 1.
///
/// # Examples
///
/// ```
/// use rwalk_core::{Hyperparams, Pipeline};
///
/// let gen = tgraph::gen::temporal_sbm(150, 3, 3_000, 0.9, 5);
/// let g = gen.builder.undirected(true).build();
/// let report = Pipeline::new(Hyperparams::paper_optimal().quick_test())
///     .run_node_classification(&g, &gen.labels)
///     .unwrap();
/// assert!(report.metrics.accuracy > 1.0 / 3.0); // beats random guessing
/// ```
#[derive(Debug, Clone)]
pub struct Pipeline {
    hp: Hyperparams,
    backend: Backend,
}

impl Pipeline {
    /// Creates a CPU-backed pipeline.
    pub fn new(hp: Hyperparams) -> Self {
        Self { hp, backend: Backend::Cpu }
    }

    /// Selects the backend.
    #[must_use]
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// The hyperparameters this pipeline runs with.
    pub fn hyperparams(&self) -> &Hyperparams {
        &self.hp
    }

    /// Phase 1 only: generate the walk corpus, according to the
    /// configured [`crate::EmbeddingStrategy`] — temporal walks (the
    /// paper's method), static DeepWalk, or snapshot DeepWalk baselines.
    pub fn walks(&self, g: &TemporalGraph) -> WalkSet {
        let par = self.hp.par_config();
        match self.hp.strategy {
            crate::EmbeddingStrategy::TemporalWalks => self.hp.walk_options().generate(g, &par),
            crate::EmbeddingStrategy::StaticDeepWalk => {
                self.hp.walk_options().respect_time(false).generate(g, &par)
            }
            crate::EmbeddingStrategy::SnapshotDeepWalk { snapshots } => {
                let snapshots = snapshots.max(1);
                let (lo, hi) = g.time_range().unwrap_or((0.0, 1.0));
                let k = (self.hp.walks_per_node / snapshots).max(1);
                // Append each snapshot's matrix straight into one
                // accumulating walk set: same row stride, so every append
                // is a single copy (no per-walk `Vec` round trip).
                let mut all = WalkSetBuilder::new(self.hp.walk_length);
                for s in 1..=snapshots {
                    let t = lo + (hi - lo) * s as f64 / snapshots as f64;
                    let snap = g.snapshot_until(t);
                    // Each snapshot is its own graph, so `generate` builds
                    // each one its own prepared sampler.
                    let walks = self
                        .hp
                        .walk_options()
                        .walks_per_node(k)
                        .seed(self.hp.seed.wrapping_add(s as u64))
                        .respect_time(false)
                        .generate(&snap, &par);
                    all.append_set(&walks);
                }
                all.build()
            }
        }
    }

    /// Phases 1–2: generate walks and train node embeddings (fused or
    /// sequential per the [`FusedMode`] knob).
    pub fn embeddings(&self, g: &TemporalGraph) -> EmbeddingMatrix {
        self.embed_phase(g).emb
    }

    /// Whether this run takes the fused streaming path: the strategy must
    /// stream (snapshot baselines concatenate per-snapshot corpora), the
    /// backend must be CPU (the GPU model profiles the materialized
    /// corpus), and under [`FusedMode::Auto`] the corpus must clear
    /// [`FUSED_AUTO_MIN_TOKENS`].
    pub fn fuses_for(&self, g: &TemporalGraph) -> bool {
        let streamable = matches!(
            self.hp.strategy,
            crate::EmbeddingStrategy::TemporalWalks | crate::EmbeddingStrategy::StaticDeepWalk
        );
        let cpu = matches!(self.backend, Backend::Cpu);
        match self.hp.fused {
            FusedMode::Off => false,
            FusedMode::On => streamable && cpu,
            FusedMode::Auto => {
                streamable
                    && cpu
                    && self.hp.walks_per_node * g.num_nodes() * self.hp.walk_length
                        >= FUSED_AUTO_MIN_TOKENS
            }
        }
    }

    /// Runs phases 1–2, fused or sequential, with phase attribution.
    fn embed_phase(&self, g: &TemporalGraph) -> EmbedPhase {
        if self.fuses_for(g) {
            let opts = match self.hp.strategy {
                crate::EmbeddingStrategy::StaticDeepWalk => {
                    self.hp.walk_options().respect_time(false)
                }
                _ => self.hp.walk_options(),
            };
            return self.fused_embed(g, &opts);
        }
        let par = self.hp.par_config();
        let t0 = Instant::now();
        let walks = self.walks(g);
        let rwalk_time = t0.elapsed();
        let walk_stats = twalk::stats::length_stats(&walks);
        let t0 = Instant::now();
        let emb = embed::train(&walks, g.num_nodes(), &self.hp.w2v_config(), &par);
        let w2v_time = t0.elapsed();
        EmbedPhase {
            emb,
            sampler_build: walks.sampler_stats(),
            walks: Some(walks),
            rwalk_time,
            w2v_time,
            walk_stats,
            fused: None,
        }
    }

    /// The fused driver: per epoch, walk workers stream the walk
    /// kernel's chunks into a bounded channel while hogwild trainer
    /// workers consume them, the two sides splitting the configured
    /// thread budget between them. Walks are bit-exact per `(walk, vertex)` RNG
    /// stream, so later epochs *re-walk* the graph instead of replaying a
    /// buffered corpus — that is what keeps peak memory free of the
    /// corpus. The prepared sampler is built once and amortized across
    /// epochs (attributed to the `rwalk` phase, the only serial part
    /// left).
    fn fused_embed(&self, g: &TemporalGraph, opts: &WalkOptions) -> EmbedPhase {
        // Split the configured thread budget between the two overlapped
        // sides instead of giving each side the full pool: producer and
        // trainer run concurrently, and 2× oversubscription on a
        // saturated host costs more in context switching than it buys in
        // work conservation. The trainer is typically the longer side,
        // so it gets the larger half; each side keeps at least one
        // thread — the minimum that overlaps at all. The stall split in
        // [`FusedPhases`] says which side was starved if this ratio ever
        // needs revisiting.
        let threads = self.hp.par_config().threads().max(1);
        let producer_threads = (threads / 2).max(1);
        let par = ParConfig::with_threads((threads - producer_threads).max(1));
        // Chunky producer blocks: channel traffic per chunk is O(1), and
        // ≥1k-walk chunks keep trainer pop rates far below contention.
        let producer_par = ParConfig::with_threads(producer_threads).chunk_size(1024);
        let t0 = Instant::now();
        let prepared = opts.prepare(g);
        let prepare_time = t0.elapsed();
        let cfg = opts.config();
        let w2v = self.hp.w2v_config();
        let total_walks = self.hp.walks_per_node * g.num_nodes();
        let trainer = StreamTrainer::new(g.num_nodes(), &w2v, total_walks, self.hp.walk_length);
        let mut producer = Duration::ZERO;
        let mut producer_stall = Duration::ZERO;
        let t_overlap = Instant::now();
        for epoch in 0..w2v.epochs {
            let queue = BoundedQueue::new((par.threads() * 2).max(4));
            let sink = ChannelSink::new(&queue);
            std::thread::scope(|s| {
                let guard = queue.register_producer();
                let walker = s.spawn(|| {
                    let _guard = guard;
                    let t = Instant::now();
                    twalk::generate_walks_prepared_to_sink(
                        g,
                        &cfg,
                        &prepared,
                        &producer_par,
                        &sink,
                    );
                    t.elapsed()
                });
                trainer.run_epoch(&queue, epoch, &par);
                producer += walker.join().expect("walk producer panicked");
            });
            producer_stall += sink.stalled();
        }
        let wall = t_overlap.elapsed();
        let consumer_stall = trainer.stalled();
        let histogram = trainer.length_histogram();
        let total: u64 = histogram.iter().sum();
        let weighted: u64 = histogram.iter().enumerate().map(|(l, &c)| l as u64 * c).sum();
        let short: u64 = histogram.iter().take(6).sum();
        let walk_stats = twalk::stats::WalkLengthStats {
            log_log_slope: twalk::stats::log_log_slope(&histogram),
            mean: if total > 0 { weighted as f64 / total as f64 } else { 0.0 },
            short_fraction: if total > 0 { short as f64 / total as f64 } else { 0.0 },
            histogram,
        };
        EmbedPhase {
            emb: trainer.finish(),
            walks: None,
            rwalk_time: prepare_time,
            w2v_time: wall,
            walk_stats,
            sampler_build: Some(prepared.stats()),
            fused: Some(FusedPhases { wall, producer, producer_stall, consumer_stall }),
        }
    }

    /// Runs the full link prediction task (paper §IV-B).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::GraphTooSmall`] when the graph cannot be
    /// split into train/valid/test with negative sampling.
    pub fn run_link_prediction(&self, g: &TemporalGraph) -> Result<TaskReport, PipelineError> {
        self.link_pipeline(g).map(|m| m.report)
    }

    /// Runs the link prediction pipeline and keeps the artifacts a serving
    /// layer needs: the trained embeddings and the trained link-FNN, plus
    /// the usual [`TaskReport`]. This is the training half of an online
    /// deployment — hand the result to `rwserve` to answer queries.
    ///
    /// # Errors
    ///
    /// Same conditions as [`run_link_prediction`](Self::run_link_prediction).
    pub fn train_link_model(&self, g: &TemporalGraph) -> Result<LinkModel, PipelineError> {
        self.link_pipeline(g)
    }

    fn link_pipeline(&self, g: &TemporalGraph) -> Result<LinkModel, PipelineError> {
        if g.num_edges() < 25 || g.num_nodes() < 10 {
            return Err(PipelineError::GraphTooSmall {
                nodes: g.num_nodes(),
                edges: g.num_edges(),
            });
        }
        // Phases 1–2: walks and word2vec, fused or sequential.
        let ep = self.embed_phase(g);
        let emb = ep.emb;

        // Phase 3: data preparation (Fig. 7).
        let t0 = Instant::now();
        let split = temporal_edge_split(g, SplitRatios::default(), self.hp.seed ^ 0x5E1);
        let data = link_prediction_data(&split, &emb);
        let prep_time = t0.elapsed();

        // Phase 4: 2-layer FNN, BCE loss (paper Eq. 4); extra hidden
        // layers deepen it when configured.
        let mut dims = vec![2 * self.hp.dim];
        dims.extend(std::iter::repeat_n(self.hp.hidden, 1 + self.hp.extra_hidden_layers));
        dims.push(1);
        let mut mlp =
            Mlp::new(&dims, OutputHead::Binary, self.hp.seed).with_residual(self.hp.residual);
        let trainer = Trainer::new(self.hp.train_options());
        let train_report = trainer.fit_binary(
            &mut mlp,
            &data.x_train,
            &data.y_train,
            &data.x_valid,
            &data.y_valid,
        );

        let t0 = Instant::now();
        let scores = mlp.predict_proba(&data.x_test);
        let test_time = t0.elapsed();

        let accuracy = metrics::binary_accuracy(&scores, &data.y_test);
        let auc = metrics::roc_auc(&scores, &data.y_test);
        let final_train_loss = train_report.epochs.last().map_or(f64::NAN, |e| e.train_loss);
        let epochs_run = train_report.epochs.len();

        let mut phase_times = PhaseTimes {
            rwalk: ep.rwalk_time,
            word2vec: ep.w2v_time,
            data_prep: prep_time,
            train_total: train_report.total_time,
            train_per_epoch: train_report.mean_epoch_time(),
            test: test_time,
            fused: ep.fused,
        };
        record_phase_spans(g, &phase_times);
        let backend = match &self.backend {
            Backend::Cpu => "cpu",
            Backend::GpuModel(gpu) => {
                let walks = ep.walks.as_ref().expect("the GPU model runs the sequential path");
                phase_times = self.gpu_phase_times(
                    gpu,
                    g,
                    walks,
                    &dims,
                    data.x_train.rows(),
                    data.x_test.rows(),
                    epochs_run,
                );
                "gpu-model"
            }
        };

        let report = TaskReport {
            task: TaskKind::LinkPrediction,
            metrics: TaskMetrics { accuracy, auc: Some(auc), macro_f1: None, final_train_loss },
            phase_times,
            walk_stats: ep.walk_stats,
            sampler_build: ep.sampler_build,
            epochs_run,
            backend,
        };
        Ok(LinkModel { emb, mlp, report })
    }

    /// Runs the full multi-class node classification task (paper §IV-B).
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::LabelMismatch`] when `labels` does not
    /// cover every vertex, [`PipelineError::ClassTooSmall`] when a class
    /// cannot be stratified, and [`PipelineError::GraphTooSmall`] for
    /// degenerate graphs.
    pub fn run_node_classification(
        &self,
        g: &TemporalGraph,
        labels: &[u16],
    ) -> Result<TaskReport, PipelineError> {
        if g.num_edges() < 25 || g.num_nodes() < 10 {
            return Err(PipelineError::GraphTooSmall {
                nodes: g.num_nodes(),
                edges: g.num_edges(),
            });
        }
        if labels.len() != g.num_nodes() {
            return Err(PipelineError::LabelMismatch {
                labels: labels.len(),
                nodes: g.num_nodes(),
            });
        }
        let num_classes = labels.iter().map(|&l| l as usize + 1).max().unwrap_or(0);
        for c in 0..num_classes as u16 {
            let members = labels.iter().filter(|&&l| l == c).count();
            if members < 3 {
                return Err(PipelineError::ClassTooSmall { class: c, members });
            }
        }
        let ep = self.embed_phase(g);
        let emb = ep.emb;

        let t0 = Instant::now();
        let data =
            node_classification_data(&emb, labels, SplitRatios::default(), self.hp.seed ^ 0x5E1);
        let prep_time = t0.elapsed();

        // 3-layer FNN, NLL loss over |C| outputs; extra hidden layers
        // deepen it when configured.
        let mut dims = vec![self.hp.dim];
        dims.extend(std::iter::repeat_n(self.hp.hidden, 2 + self.hp.extra_hidden_layers));
        dims.push(data.num_classes);
        let mut mlp =
            Mlp::new(&dims, OutputHead::MultiClass, self.hp.seed).with_residual(self.hp.residual);
        let trainer = Trainer::new(self.hp.train_options());
        let train_report = trainer.fit_multiclass(
            &mut mlp,
            &data.x_train,
            &data.y_train,
            &data.x_valid,
            &data.y_valid,
        );

        let t0 = Instant::now();
        let pred = mlp.predict_class(&data.x_test);
        let test_time = t0.elapsed();

        let accuracy = metrics::accuracy(&pred, &data.y_test);
        let macro_f1 = metrics::macro_f1(&pred, &data.y_test, data.num_classes);
        let final_train_loss = train_report.epochs.last().map_or(f64::NAN, |e| e.train_loss);
        let epochs_run = train_report.epochs.len();

        let mut phase_times = PhaseTimes {
            rwalk: ep.rwalk_time,
            word2vec: ep.w2v_time,
            data_prep: prep_time,
            train_total: train_report.total_time,
            train_per_epoch: train_report.mean_epoch_time(),
            test: test_time,
            fused: ep.fused,
        };
        record_phase_spans(g, &phase_times);
        let backend = match &self.backend {
            Backend::Cpu => "cpu",
            Backend::GpuModel(gpu) => {
                let walks = ep.walks.as_ref().expect("the GPU model runs the sequential path");
                phase_times = self.gpu_phase_times(
                    gpu,
                    g,
                    walks,
                    &dims,
                    data.x_train.rows(),
                    data.x_test.rows(),
                    epochs_run,
                );
                "gpu-model"
            }
        };

        Ok(TaskReport {
            task: TaskKind::NodeClassification,
            metrics: TaskMetrics {
                accuracy,
                auc: None,
                macro_f1: Some(macro_f1),
                final_train_loss,
            },
            phase_times,
            walk_stats: ep.walk_stats,
            sampler_build: ep.sampler_build,
            epochs_run,
            backend,
        })
    }

    /// Replaces measured phase times with the GPU model's estimates for
    /// the same workload (instrumented replicas provide op counts, the
    /// analytic model turns them into time).
    #[allow(clippy::too_many_arguments)]
    fn gpu_phase_times(
        &self,
        gpu: &GpuModel,
        g: &TemporalGraph,
        walks: &WalkSet,
        dims: &[usize],
        train_rows: usize,
        test_rows: usize,
        epochs_run: usize,
    ) -> PhaseTimes {
        let opts = ProfileOptions::default();
        let bytes_graph = g.memory_bytes() as f64;

        // RW-P1: one launch, per-vertex parallelism, graph upload.
        let wp = profile_walk(g, &self.hp.walk_config(), &opts);
        let walk_est =
            gpu.estimate_profile(&wp, wp.work_scale(), g.num_nodes() as f64, 1.0, bytes_graph);

        // RW-P2: batched word2vec — one launch per 16k-sentence batch
        // (the paper's optimal batch size), corpus upload.
        let w2p = profile_word2vec(
            walks,
            self.hp.dim,
            self.hp.window,
            self.hp.negatives,
            g.num_nodes(),
            &opts,
        );
        let batches = (walks.num_walks().div_ceil(16_384) * self.hp.w2v_epochs) as f64;
        let w2v_est = gpu.estimate_profile(
            &w2p,
            w2p.work_scale(),
            (16_384 * self.hp.dim) as f64,
            batches,
            (walks.total_vertices() * 4) as f64,
        );

        // RW-P3/P4: one launch per layer per mini-batch; features upload.
        let n_batches = train_rows.div_ceil(self.hp.batch_size).max(1);
        let tp = profile_training(dims, self.hp.batch_size, n_batches, &opts);
        let feat_bytes = (train_rows * dims[0] * 4) as f64;
        let train_epoch_est = gpu.estimate_profile(
            &tp,
            tp.work_scale(),
            (self.hp.batch_size * dims[1]) as f64,
            (n_batches * dims.len()) as f64,
            feat_bytes,
        );

        let sp = profile_testing(dims, test_rows.max(1), 1, &opts);
        let test_est = gpu.estimate_profile(
            &sp,
            sp.work_scale(),
            (test_rows.max(1) * dims[1]) as f64,
            dims.len() as f64,
            (test_rows * dims[0] * 4) as f64,
        );

        let per_epoch = Duration::from_secs_f64(train_epoch_est.total_secs());
        PhaseTimes {
            rwalk: Duration::from_secs_f64(walk_est.total_secs()),
            word2vec: Duration::from_secs_f64(w2v_est.total_secs()),
            data_prep: Duration::ZERO, // prep runs host-side in both backends
            train_total: per_epoch * epochs_run.max(1) as u32,
            train_per_epoch: per_epoch,
            test: Duration::from_secs_f64(test_est.total_secs()),
            fused: None, // the model describes the sequential launches
        }
    }
}

/// Records the measured wall-clock phase breakdown (paper Fig. 7) into the
/// global metrics registry. Always records the CPU-measured times, even when
/// the report is later rewritten by the GPU model: the registry reflects what
/// this process actually spent.
fn record_phase_spans(g: &TemporalGraph, times: &PhaseTimes) {
    let rec = obs::Recorder::global();
    if !rec.is_enabled() {
        return;
    }
    rec.gauge("tgraph_nodes").set(g.num_nodes() as i64);
    rec.gauge("tgraph_edges").set(g.num_edges() as i64);
    for (phase, d) in [
        ("rw_p1_walk", times.rwalk),
        ("rw_p2_word2vec", times.word2vec),
        ("data_prep", times.data_prep),
        ("rw_p3_train", times.train_total),
        ("rw_p4_test", times.test),
    ] {
        rec.record_duration(&format!("pipeline_phase_ns{{phase=\"{phase}\"}}"), d);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lp_graph() -> TemporalGraph {
        tgraph::gen::preferential_attachment(500, 3, 2).undirected(true).build()
    }

    #[test]
    fn link_prediction_beats_random() {
        let report = Pipeline::new(Hyperparams::paper_optimal().quick_test())
            .run_link_prediction(&lp_graph())
            .unwrap();
        assert!(report.metrics.accuracy > 0.55, "accuracy {}", report.metrics.accuracy);
        assert!(report.metrics.auc.unwrap() > 0.55, "auc {:?}", report.metrics.auc);
        assert_eq!(report.backend, "cpu");
        assert!(report.phase_times.total() > Duration::ZERO);
    }

    #[test]
    fn node_classification_learns_planted_communities() {
        let gen = tgraph::gen::temporal_sbm(300, 3, 9_000, 0.92, 3);
        let g = gen.builder.undirected(true).build();
        let report = Pipeline::new(Hyperparams::paper_optimal().quick_test())
            .run_node_classification(&g, &gen.labels)
            .unwrap();
        assert!(report.metrics.accuracy > 0.6, "accuracy {}", report.metrics.accuracy);
        assert!(report.metrics.macro_f1.unwrap() > 0.5);
    }

    #[test]
    fn train_link_model_exposes_serving_artifacts() {
        let g = lp_graph();
        let hp = Hyperparams::paper_optimal().quick_test();
        let model = Pipeline::new(hp.clone()).train_link_model(&g).unwrap();
        assert_eq!(model.emb.num_nodes(), g.num_nodes());
        assert_eq!(model.emb.dim(), hp.dim);
        assert_eq!(model.mlp.input_dim(), 2 * hp.dim);
        assert_eq!(model.mlp.output_dim(), 1);
        assert_eq!(model.report.task, TaskKind::LinkPrediction);
        // The kept artifacts are the ones the report was computed from:
        // scoring a known-positive test edge must work end-to-end.
        let feat = model.emb.edge_feature(0, 1);
        let x = nn::Tensor2::from_rows(&[&feat]);
        let p = model.mlp.predict_proba(&x);
        assert!(p[0].is_finite() && (0.0..=1.0).contains(&p[0]));
    }

    #[test]
    fn gpu_backend_reports_modeled_times() {
        let g = lp_graph();
        let report = Pipeline::new(Hyperparams::paper_optimal().quick_test())
            .with_backend(Backend::GpuModel(GpuModel::ampere()))
            .run_link_prediction(&g)
            .unwrap();
        assert_eq!(report.backend, "gpu-model");
        assert!(report.phase_times.rwalk > Duration::ZERO);
        assert!(report.phase_times.word2vec > Duration::ZERO);
    }

    #[test]
    fn tiny_graph_is_rejected() {
        let g = tgraph::GraphBuilder::new().add_edge(tgraph::TemporalEdge::new(0, 1, 0.5)).build();
        let err = Pipeline::new(Hyperparams::paper_optimal()).run_link_prediction(&g).unwrap_err();
        assert!(matches!(err, PipelineError::GraphTooSmall { .. }));
    }

    #[test]
    fn label_mismatch_is_rejected() {
        let g = lp_graph();
        let err = Pipeline::new(Hyperparams::paper_optimal())
            .run_node_classification(&g, &[0, 1, 2])
            .unwrap_err();
        assert!(matches!(err, PipelineError::LabelMismatch { .. }));
    }

    #[test]
    fn sparse_class_is_rejected() {
        let g = lp_graph();
        let mut labels = vec![0u16; g.num_nodes()];
        labels[0] = 1; // class 1 has a single member
        let err = Pipeline::new(Hyperparams::paper_optimal())
            .run_node_classification(&g, &labels)
            .unwrap_err();
        assert!(matches!(err, PipelineError::ClassTooSmall { class: 1, members: 1 }));
    }

    #[test]
    fn snapshot_walks_pin_per_snapshot_content() {
        // The builder-based assembly must produce exactly the walks the
        // per-snapshot generations produce, concatenated in snapshot
        // order.
        let g = lp_graph();
        let hp = Hyperparams::paper_optimal()
            .with_strategy(crate::EmbeddingStrategy::SnapshotDeepWalk { snapshots: 3 });
        let got = Pipeline::new(hp.clone()).walks(&g);
        let par = hp.par_config();
        let (lo, hi) = g.time_range().unwrap();
        let k = (hp.walks_per_node / 3).max(1);
        let mut expected: Vec<Vec<tgraph::NodeId>> = Vec::new();
        for s in 1..=3usize {
            let t = lo + (hi - lo) * s as f64 / 3.0;
            let walks = hp
                .walk_options()
                .walks_per_node(k)
                .seed(hp.seed.wrapping_add(s as u64))
                .respect_time(false)
                .generate(&g.snapshot_until(t), &par);
            expected.extend(walks.iter().map(<[tgraph::NodeId]>::to_vec));
        }
        assert_eq!(got, twalk::WalkSet::from_walks(&expected, hp.walk_length));
    }

    #[test]
    fn fused_link_prediction_matches_sequential_quality() {
        let g = lp_graph();
        let hp = Hyperparams::paper_optimal().quick_test();
        let seq = Pipeline::new(hp.clone().with_fused(crate::FusedMode::Off))
            .run_link_prediction(&g)
            .unwrap();
        // quick_test keeps w2v_epochs = 2, so this also exercises the
        // epochs > 1 re-walk replay end-to-end.
        let fused =
            Pipeline::new(hp.with_fused(crate::FusedMode::On)).run_link_prediction(&g).unwrap();
        assert!(seq.phase_times.fused.is_none());
        let f = fused.phase_times.fused.expect("fused run reports the overlap split");
        assert!(f.wall >= f.producer.saturating_sub(f.producer_stall));
        assert_eq!(fused.phase_times.word2vec, f.wall);
        // Same corpus shape on both paths (walks are path-independent)...
        assert_eq!(fused.walk_stats, seq.walk_stats);
        let (fb, sb) = (fused.sampler_build.unwrap(), seq.sampler_build.unwrap());
        assert_eq!(fb.table_bytes, sb.table_bytes);
        assert_eq!(fb.cdf_vertices, sb.cdf_vertices);
        // ...and no meaningful quality gap from streamed consumption.
        assert!(
            fused.metrics.accuracy > seq.metrics.accuracy - 0.1,
            "fused {} vs sequential {}",
            fused.metrics.accuracy,
            seq.metrics.accuracy
        );
        assert!(fused.metrics.accuracy > 0.55, "accuracy {}", fused.metrics.accuracy);
    }

    #[test]
    fn fused_auto_declines_small_runs_and_gpu_model() {
        let g = lp_graph();
        let hp = Hyperparams::paper_optimal().quick_test();
        // Auto: 10 × 500 × 6 tokens is far below the floor.
        assert!(!Pipeline::new(hp.clone()).fuses_for(&g));
        // On: streamable CPU run fuses regardless of size.
        assert!(Pipeline::new(hp.clone().with_fused(crate::FusedMode::On)).fuses_for(&g));
        // The GPU model needs the materialized corpus, even under On.
        let gpu = Pipeline::new(hp.clone().with_fused(crate::FusedMode::On))
            .with_backend(Backend::GpuModel(GpuModel::ampere()));
        assert!(!gpu.fuses_for(&g));
        let report = gpu.run_link_prediction(&g).unwrap();
        assert_eq!(report.backend, "gpu-model");
        assert!(report.phase_times.fused.is_none());
        // Snapshot corpora cannot stream.
        let snap = Pipeline::new(
            hp.with_fused(crate::FusedMode::On)
                .with_strategy(crate::EmbeddingStrategy::SnapshotDeepWalk { snapshots: 2 }),
        );
        assert!(!snap.fuses_for(&g));
    }

    #[test]
    fn fused_embeddings_train_on_the_streamed_corpus() {
        // Node classification through the fused path must still learn the
        // planted communities (epochs > 1 replay included).
        let gen = tgraph::gen::temporal_sbm(300, 3, 9_000, 0.92, 3);
        let g = gen.builder.undirected(true).build();
        let report = Pipeline::new(
            Hyperparams::paper_optimal().quick_test().with_fused(crate::FusedMode::On),
        )
        .run_node_classification(&g, &gen.labels)
        .unwrap();
        assert!(report.metrics.accuracy > 0.6, "accuracy {}", report.metrics.accuracy);
        assert!(report.phase_times.fused.is_some());
        assert!(report.summary().contains("fused overlap"));
    }

    #[test]
    fn summary_mentions_phases() {
        let report = Pipeline::new(Hyperparams::paper_optimal().quick_test())
            .run_link_prediction(&lp_graph())
            .unwrap();
        let s = report.summary();
        assert!(s.contains("rwalk"));
        assert!(s.contains("word2vec"));
        assert!(s.contains("accuracy"));
    }
}
