//! Pipeline error type.

use std::fmt;

/// Errors surfaced by [`crate::Pipeline`] runs.
#[derive(Debug)]
pub enum PipelineError {
    /// The input graph is too small to split and train on.
    GraphTooSmall {
        /// Vertices present.
        nodes: usize,
        /// Edges present.
        edges: usize,
    },
    /// Label vector length does not match the vertex count.
    LabelMismatch {
        /// Labels provided.
        labels: usize,
        /// Vertices in the graph.
        nodes: usize,
    },
    /// A class has too few members to stratify into train/valid/test.
    ClassTooSmall {
        /// The offending class id.
        class: u16,
        /// Members found.
        members: usize,
    },
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::GraphTooSmall { nodes, edges } => {
                write!(f, "graph too small to train on ({nodes} nodes, {edges} edges)")
            }
            PipelineError::LabelMismatch { labels, nodes } => {
                write!(f, "{labels} labels provided for {nodes} vertices")
            }
            PipelineError::ClassTooSmall { class, members } => {
                write!(f, "class {class} has only {members} members (need at least 3)")
            }
        }
    }
}

impl std::error::Error for PipelineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_details() {
        let e = PipelineError::GraphTooSmall { nodes: 2, edges: 1 };
        assert!(e.to_string().contains("2 nodes"));
        let e = PipelineError::ClassTooSmall { class: 4, members: 1 };
        assert!(e.to_string().contains("class 4"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<PipelineError>();
    }
}
