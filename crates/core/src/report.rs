//! Pipeline run reports: per-phase timing and task metrics.

use std::time::Duration;

/// Which downstream task a report describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TaskKind {
    /// Edge existence prediction (binary).
    LinkPrediction,
    /// Multi-class vertex labeling.
    NodeClassification,
}

impl std::fmt::Display for TaskKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TaskKind::LinkPrediction => write!(f, "link prediction"),
            TaskKind::NodeClassification => write!(f, "node classification"),
        }
    }
}

/// Time attribution of a fused (overlapped) walk→train span.
///
/// When RW-P1 and RW-P2 run concurrently behind the bounded corpus
/// channel, "time in phase 1" and "time in phase 2" stop being disjoint
/// wall-clock intervals. This struct is the honest replacement: the
/// overlapped span's wall-clock, how long the walk producer was actually
/// working, and how long each side sat blocked on the channel
/// (producer on backpressure, consumers on starvation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusedPhases {
    /// Wall-clock of the overlapped walk+train span (all w2v epochs).
    pub wall: Duration,
    /// Walk production wall-clock summed across epochs (the producer
    /// thread's active span, stalls included).
    pub producer: Duration,
    /// Time walk workers spent blocked pushing into a full channel.
    pub producer_stall: Duration,
    /// Time trainer workers spent blocked popping from an empty channel,
    /// summed across workers.
    pub consumer_stall: Duration,
}

impl FusedPhases {
    /// Fraction of the producer's span spent blocked on backpressure —
    /// near 1 means training is the bottleneck (walkers wait), near 0
    /// means walking is (trainers starve instead).
    pub fn producer_stall_fraction(&self) -> f64 {
        let span = self.producer.as_secs_f64();
        if span == 0.0 {
            0.0
        } else {
            self.producer_stall.as_secs_f64() / span
        }
    }
}

/// Wall-clock time of each pipeline phase (the rows of Table III).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseTimes {
    /// Temporal random walk (RW-P1). Under fusion this is the serial
    /// sampler-preparation prologue only; the overlapped walk work is
    /// inside [`PhaseTimes::word2vec`] and split out in
    /// [`PhaseTimes::fused`].
    pub rwalk: Duration,
    /// word2vec embedding (RW-P2). Under fusion: the overlapped
    /// walk+train span (its wall-clock, not a per-phase share).
    pub word2vec: Duration,
    /// Data preparation (splits, negative sampling, features).
    pub data_prep: Duration,
    /// Total classifier training (RW-P3).
    pub train_total: Duration,
    /// Mean per-epoch training time (the quantity Table III reports).
    pub train_per_epoch: Duration,
    /// Classifier testing (RW-P4).
    pub test: Duration,
    /// Present when phases 1–2 ran fused: the overlap's time attribution.
    /// `rwalk + word2vec` remains the true phase-1+2 wall-clock either
    /// way, so [`PhaseTimes::total`] stays comparable across modes.
    pub fused: Option<FusedPhases>,
}

impl PhaseTimes {
    /// End-to-end time.
    pub fn total(&self) -> Duration {
        self.rwalk + self.word2vec + self.data_prep + self.train_total + self.test
    }

    /// Fraction of end-to-end time spent training — the paper's headline
    /// time-breakdown finding is that this dominates.
    pub fn training_fraction(&self) -> f64 {
        let total = self.total().as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.train_total.as_secs_f64() / total
        }
    }
}

/// Quality metrics of the downstream task.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TaskMetrics {
    /// Test accuracy (the paper's reported metric).
    pub accuracy: f64,
    /// Test ROC-AUC (link prediction only).
    pub auc: Option<f64>,
    /// Macro-F1 (node classification only).
    pub macro_f1: Option<f64>,
    /// Final training loss.
    pub final_train_loss: f64,
}

/// Everything a pipeline run produces besides the trained model.
#[derive(Debug, Clone, PartialEq)]
pub struct TaskReport {
    /// Task identity.
    pub task: TaskKind,
    /// Quality metrics on the held-out test set.
    pub metrics: TaskMetrics,
    /// Per-phase wall-clock (or modeled-GPU) times.
    pub phase_times: PhaseTimes,
    /// Walk-length distribution of the generated corpus (Fig. 4 data).
    pub walk_stats: twalk::stats::WalkLengthStats,
    /// Build cost of the prepared transition sampler (CDF tables), when
    /// the corpus came from the bulk walk kernel.
    pub sampler_build: Option<twalk::SamplerBuildStats>,
    /// Classifier epochs actually run (early stop may cut them short).
    pub epochs_run: usize,
    /// `"cpu"` or `"gpu-model"`.
    pub backend: &'static str,
}

impl TaskReport {
    /// One-paragraph human-readable summary.
    pub fn summary(&self) -> String {
        let t = &self.phase_times;
        let mut s =
            format!("{} [{}]: accuracy {:.3}", self.task, self.backend, self.metrics.accuracy);
        if let Some(auc) = self.metrics.auc {
            s.push_str(&format!(", AUC {auc:.3}"));
        }
        if let Some(f1) = self.metrics.macro_f1 {
            s.push_str(&format!(", macro-F1 {f1:.3}"));
        }
        s.push_str(&format!(
            " | rwalk {:.3}s, word2vec {:.3}s, prep {:.3}s, train {:.3}s ({} epochs, {:.4}s/epoch), test {:.3}s",
            t.rwalk.as_secs_f64(),
            t.word2vec.as_secs_f64(),
            t.data_prep.as_secs_f64(),
            t.train_total.as_secs_f64(),
            self.epochs_run,
            t.train_per_epoch.as_secs_f64(),
            t.test.as_secs_f64(),
        ));
        if let Some(f) = self.phase_times.fused {
            s.push_str(&format!(
                " | fused overlap {:.3}s (producer {:.3}s, stalls: producer {:.3}s / consumer {:.3}s)",
                f.wall.as_secs_f64(),
                f.producer.as_secs_f64(),
                f.producer_stall.as_secs_f64(),
                f.consumer_stall.as_secs_f64(),
            ));
        }
        if let Some(b) = self.sampler_build {
            if b.table_bytes > 0 {
                s.push_str(&format!(
                    " | sampler tables {:.1} KiB built in {:.4}s",
                    b.table_bytes as f64 / 1024.0,
                    b.build_time.as_secs_f64(),
                ));
                if b.alias_vertices > 0 || b.rejection_vertices > 0 {
                    s.push_str(&format!(
                        " (cdf {}, alias {} in {:.1} KiB, rejection {})",
                        b.cdf_vertices,
                        b.alias_vertices,
                        b.alias_bytes as f64 / 1024.0,
                        b.rejection_vertices,
                    ));
                }
            }
        }
        s
    }
}

/// Aggregate counters of a serving process — the online analog of
/// [`TaskReport`] for the `rwserve` subsystem. Batch pipelines report
/// per-phase wall-clock once; a server reports request mix, latency, and
/// micro-batch efficiency continuously.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ServeStats {
    /// Seconds the server has been up.
    pub uptime_secs: f64,
    /// Requests answered, successes and errors together.
    pub requests_total: u64,
    /// Requests answered with a structured error response.
    pub errors: u64,
    /// `link_score` requests.
    pub link_score: u64,
    /// `embedding` requests.
    pub embedding: u64,
    /// `topk` requests.
    pub topk: u64,
    /// `ingest` requests.
    pub ingest: u64,
    /// Mean per-request latency in microseconds.
    pub mean_latency_us: f64,
    /// Worst per-request latency in microseconds.
    pub max_latency_us: f64,
    /// Forward passes run by the micro-batcher.
    pub batches: u64,
    /// Mean `link_score` requests coalesced per forward pass.
    pub mean_batch: f64,
    /// Version of the model snapshot currently being served.
    pub snapshot_version: u64,
    /// Background refresh cycles published since startup.
    pub refreshes: u64,
}

impl ServeStats {
    /// Requests per second over the whole uptime.
    pub fn throughput_rps(&self) -> f64 {
        if self.uptime_secs <= 0.0 {
            0.0
        } else {
            self.requests_total as f64 / self.uptime_secs
        }
    }

    /// One-paragraph human-readable summary (mirrors
    /// [`TaskReport::summary`]).
    pub fn summary(&self) -> String {
        format!(
            "serve [v{}]: {} requests ({} errors) in {:.1}s ({:.0} rps) | \
             link_score {}, embedding {}, topk {}, ingest {} | \
             latency mean {:.1}µs max {:.1}µs | {} batches, {:.1} req/batch | {} refreshes",
            self.snapshot_version,
            self.requests_total,
            self.errors,
            self.uptime_secs,
            self.throughput_rps(),
            self.link_score,
            self.embedding,
            self.topk,
            self.ingest,
            self.mean_latency_us,
            self.max_latency_us,
            self.batches,
            self.mean_batch,
            self.refreshes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_stats_throughput_and_summary() {
        let s = ServeStats {
            uptime_secs: 2.0,
            requests_total: 100,
            errors: 3,
            link_score: 60,
            embedding: 20,
            topk: 10,
            ingest: 7,
            mean_latency_us: 45.5,
            max_latency_us: 900.0,
            batches: 5,
            mean_batch: 12.0,
            snapshot_version: 4,
            refreshes: 3,
        };
        assert!((s.throughput_rps() - 50.0).abs() < 1e-9);
        let text = s.summary();
        assert!(text.contains("100 requests"));
        assert!(text.contains("v4"));
        assert!(text.contains("req/batch"));
        assert_eq!(ServeStats::default().throughput_rps(), 0.0);
    }

    #[test]
    fn phase_total_sums_components() {
        let t = PhaseTimes {
            rwalk: Duration::from_millis(10),
            word2vec: Duration::from_millis(20),
            data_prep: Duration::from_millis(5),
            train_total: Duration::from_millis(100),
            train_per_epoch: Duration::from_millis(10),
            test: Duration::from_millis(15),
            fused: None,
        };
        assert_eq!(t.total(), Duration::from_millis(150));
        assert!((t.training_fraction() - 100.0 / 150.0).abs() < 1e-9);
    }

    #[test]
    fn fused_stall_fraction_is_bounded() {
        let f = FusedPhases {
            wall: Duration::from_millis(100),
            producer: Duration::from_millis(80),
            producer_stall: Duration::from_millis(20),
            consumer_stall: Duration::from_millis(5),
        };
        assert!((f.producer_stall_fraction() - 0.25).abs() < 1e-9);
        assert_eq!(FusedPhases::default().producer_stall_fraction(), 0.0);
    }

    #[test]
    fn empty_times_are_safe() {
        let t = PhaseTimes::default();
        assert_eq!(t.training_fraction(), 0.0);
    }

    #[test]
    fn task_kind_displays() {
        assert_eq!(TaskKind::LinkPrediction.to_string(), "link prediction");
        assert_eq!(TaskKind::NodeClassification.to_string(), "node classification");
    }
}
