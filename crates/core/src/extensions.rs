//! New-task extension point (paper §VIII-B).
//!
//! The paper's Fig. 12 shows how a user adds a new downstream task — their
//! example is *link property prediction* (classifying edge labels) — by
//! re-using the random walk and word2vec stages verbatim, writing a
//! task-specific data preparation step, and swapping the classifier head.
//! This module implements exactly that example, following the same recipe
//! a downstream user would.

use std::time::Instant;

use dataprep::SplitRatios;
use nn::{metrics, Mlp, OutputHead, Tensor2, Trainer};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use tgraph::{TemporalEdge, TemporalGraph};

use crate::{PhaseTimes, Pipeline, PipelineError, TaskKind, TaskMetrics, TaskReport};

/// An edge together with its property label (e.g. an interaction type).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LabeledEdge {
    /// The temporal edge.
    pub edge: TemporalEdge,
    /// Property class of the edge.
    pub label: u16,
}

impl Pipeline {
    /// Link property prediction (paper §VIII-B's worked example): classify
    /// the label of each edge from the concatenated endpoint embeddings.
    ///
    /// Re-uses phases 1–2 unchanged; the data preparation step sorts the
    /// labeled edges by time, holds out the temporal tail for testing
    /// (stratification is by time, as for link prediction), and trains a
    /// multi-class FNN over edge features.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::GraphTooSmall`] for degenerate graphs and
    /// [`PipelineError::ClassTooSmall`] when a label has fewer than 3
    /// examples.
    pub fn run_link_property_prediction(
        &self,
        g: &TemporalGraph,
        labeled_edges: &[LabeledEdge],
    ) -> Result<TaskReport, PipelineError> {
        if g.num_edges() < 25 || g.num_nodes() < 10 || labeled_edges.len() < 25 {
            return Err(PipelineError::GraphTooSmall {
                nodes: g.num_nodes(),
                edges: labeled_edges.len(),
            });
        }
        let num_classes = labeled_edges.iter().map(|e| e.label as usize + 1).max().unwrap_or(0);
        for c in 0..num_classes as u16 {
            let members = labeled_edges.iter().filter(|e| e.label == c).count();
            if members < 3 {
                return Err(PipelineError::ClassTooSmall { class: c, members });
            }
        }
        let hp = self.hyperparams();

        // Phases 1-2, re-used verbatim (Fig. 12 lines 11-12).
        let t0 = Instant::now();
        let walks = self.walks(g);
        let rwalk_time = t0.elapsed();
        let walk_stats = twalk::stats::length_stats(&walks);
        let t0 = Instant::now();
        let emb = embed::train(&walks, g.num_nodes(), &hp.w2v_config(), &hp.par_config());
        let w2v_time = t0.elapsed();

        // Task-specific data preparation: temporal tail = test, random
        // train/valid split of the head (same causality rule as Fig. 7).
        let t0 = Instant::now();
        let ratios = SplitRatios::default();
        let mut edges = labeled_edges.to_vec();
        edges.sort_by(|a, b| a.edge.time.partial_cmp(&b.edge.time).expect("finite times"));
        let test_count =
            ((edges.len() as f64 * ratios.test).round() as usize).clamp(1, edges.len() - 2);
        let test = edges.split_off(edges.len() - test_count);
        let mut rng = StdRng::seed_from_u64(hp.seed ^ 0x11F);
        edges.shuffle(&mut rng);
        let train_count = ((labeled_edges.len() as f64 * ratios.train).round() as usize)
            .clamp(1, edges.len() - 1);
        let valid = edges.split_off(train_count);
        let train = edges;

        let pack = |set: &[LabeledEdge]| -> (Tensor2, Vec<usize>) {
            let mut x = Tensor2::zeros(set.len(), 2 * hp.dim);
            let mut y = Vec::with_capacity(set.len());
            for (i, le) in set.iter().enumerate() {
                x.row_mut(i).copy_from_slice(&emb.edge_feature(le.edge.src, le.edge.dst));
                y.push(le.label as usize);
            }
            (x, y)
        };
        let (x_train, y_train) = pack(&train);
        let (x_valid, y_valid) = pack(&valid);
        let (x_test, y_test) = pack(&test);
        let prep_time = t0.elapsed();

        // Classifier: multi-class head over edge features.
        let dims = [2 * hp.dim, hp.hidden, num_classes];
        let mut mlp = Mlp::new(&dims, OutputHead::MultiClass, hp.seed).with_residual(hp.residual);
        let trainer = Trainer::new(hp.train_options());
        let train_report = trainer.fit_multiclass(&mut mlp, &x_train, &y_train, &x_valid, &y_valid);

        let t0 = Instant::now();
        let pred = mlp.predict_class(&x_test);
        let test_time = t0.elapsed();

        Ok(TaskReport {
            task: TaskKind::NodeClassification, // multi-class family
            metrics: TaskMetrics {
                accuracy: metrics::accuracy(&pred, &y_test),
                auc: None,
                macro_f1: Some(metrics::macro_f1(&pred, &y_test, num_classes)),
                final_train_loss: train_report.epochs.last().map_or(f64::NAN, |e| e.train_loss),
            },
            phase_times: PhaseTimes {
                rwalk: rwalk_time,
                word2vec: w2v_time,
                data_prep: prep_time,
                train_total: train_report.total_time,
                train_per_epoch: train_report.mean_epoch_time(),
                test: test_time,
                fused: None,
            },
            walk_stats,
            sampler_build: walks.sampler_stats(),
            epochs_run: train_report.epochs.len(),
            backend: "cpu",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Hyperparams;

    #[test]
    fn link_property_prediction_learns_community_property() {
        // Edge property: 1 when the edge is intra-community. With SBM
        // structure this is learnable from endpoint embeddings.
        let gen = tgraph::gen::temporal_sbm(250, 2, 6_000, 0.9, 9);
        let labels = gen.labels.clone();
        let g = gen.builder.undirected(true).build();
        let labeled: Vec<LabeledEdge> = g
            .edges()
            .map(|e| LabeledEdge {
                edge: e,
                label: u16::from(labels[e.src as usize] == labels[e.dst as usize]),
            })
            .collect();
        let report = Pipeline::new(Hyperparams::paper_optimal().quick_test())
            .run_link_property_prediction(&g, &labeled)
            .unwrap();
        assert!(report.metrics.accuracy > 0.6, "accuracy {}", report.metrics.accuracy);
    }

    #[test]
    fn sparse_edge_class_is_rejected() {
        let g = tgraph::gen::erdos_renyi(100, 1_000, 1).build();
        let mut labeled: Vec<LabeledEdge> =
            g.edges().map(|e| LabeledEdge { edge: e, label: 0 }).collect();
        labeled[0].label = 1;
        let err = Pipeline::new(Hyperparams::paper_optimal())
            .run_link_property_prediction(&g, &labeled)
            .unwrap_err();
        assert!(matches!(err, PipelineError::ClassTooSmall { class: 1, members: 1 }));
    }

    #[test]
    fn too_few_labeled_edges_rejected() {
        let g = tgraph::gen::erdos_renyi(100, 1_000, 2).build();
        let labeled: Vec<LabeledEdge> =
            g.edges().take(5).map(|e| LabeledEdge { edge: e, label: 0 }).collect();
        let err = Pipeline::new(Hyperparams::paper_optimal())
            .run_link_property_prediction(&g, &labeled)
            .unwrap_err();
        assert!(matches!(err, PipelineError::GraphTooSmall { .. }));
    }
}
