//! Incremental embedding maintenance over an evolving graph.
//!
//! The paper motivates its end-to-end time breakdown with the observation
//! that "in a real-world deployment, the graph evolves over time. With
//! this evolution, an entire pipeline needs to run to account for new
//! nodes/connections" (§VII-B). This module implements the cheaper
//! alternative the substrates make possible:
//!
//! 1. ingest edge batches into a [`tgraph::dynamic::DynamicGraph`];
//! 2. re-walk only the *dirty* vertices (those whose neighborhoods
//!    changed) with [`twalk::generate_walks_from_prepared`], sharing one
//!    prepared sampler across the batch;
//! 3. fine-tune the existing embeddings on the fresh walks with
//!    [`embed::train_from`] (warm start), leaving untouched vertices'
//!    vectors in place.
//!
//! # Examples
//!
//! ```
//! use rwalk_core::{Hyperparams, IncrementalEmbedder};
//! use tgraph::TemporalEdge;
//!
//! let base = tgraph::gen::preferential_attachment(300, 2, 3).build();
//! let mut inc = IncrementalEmbedder::new(Hyperparams::paper_optimal().quick_test(), &base);
//! let emb0 = inc.refresh().clone();
//! inc.ingest([TemporalEdge::new(0, 5, 2.0), TemporalEdge::new(5, 9, 2.1)]);
//! let emb1 = inc.refresh();
//! assert_eq!(emb1.num_nodes(), emb0.num_nodes());
//! ```

use embed::EmbeddingMatrix;
use tgraph::dynamic::DynamicGraph;
use tgraph::{TemporalEdge, TemporalGraph};
use twalk::{generate_walks_from_prepared, generate_walks_prepared};

use crate::Hyperparams;

/// Sampling methods used by the last refresh, per vertex class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefreshSamplerStats {
    /// Vertices sampled from inverse-CDF tables.
    pub cdf_vertices: usize,
    /// Vertices sampled from alias tables.
    pub alias_vertices: usize,
    /// Vertices (the churned set) sampled by bounded rejection.
    pub rejection_vertices: usize,
}

/// Maintains node embeddings over a stream of edge insertions.
#[derive(Debug)]
pub struct IncrementalEmbedder {
    hp: Hyperparams,
    graph: DynamicGraph,
    emb: Option<EmbeddingMatrix>,
    refreshes: usize,
    last_sampler: RefreshSamplerStats,
}

impl IncrementalEmbedder {
    /// Starts from an existing graph snapshot (all vertices initially
    /// considered dirty, so the first [`refresh`](Self::refresh) is a full
    /// build).
    pub fn new(hp: Hyperparams, base: &TemporalGraph) -> Self {
        Self {
            hp,
            graph: DynamicGraph::from_graph(base),
            emb: None,
            refreshes: 0,
            last_sampler: RefreshSamplerStats::default(),
        }
    }

    /// Appends a batch of temporal edges.
    pub fn ingest<I: IntoIterator<Item = TemporalEdge>>(&mut self, edges: I) {
        self.graph.add_edges(edges);
    }

    /// Vertices awaiting re-walk.
    pub fn pending_dirty(&self) -> usize {
        self.graph.dirty_count()
    }

    /// Number of refreshes performed so far.
    pub fn refreshes(&self) -> usize {
        self.refreshes
    }

    /// Per-method vertex counts of the sampler built by the last refresh
    /// that generated walks (all zeros before the first refresh and after
    /// no-op refreshes).
    pub fn last_sampler_stats(&self) -> RefreshSamplerStats {
        self.last_sampler
    }

    /// Current CSR snapshot of the evolving graph.
    pub fn snapshot(&self) -> TemporalGraph {
        self.graph.to_csr()
    }

    /// The embeddings produced by the last [`refresh`](Self::refresh), if
    /// any. Between an [`ingest`](Self::ingest) and the next refresh this
    /// lags the graph — callers serving queries should hold the snapshot
    /// returned by `refresh` instead of re-reading this.
    pub fn embedding(&self) -> Option<&EmbeddingMatrix> {
        self.emb.as_ref()
    }

    /// Brings embeddings up to date and returns them.
    ///
    /// The first call trains from scratch over the whole graph; later
    /// calls re-walk only the dirty vertices and fine-tune with a warm
    /// start. With no pending changes this is a cheap no-op.
    pub fn refresh(&mut self) -> &EmbeddingMatrix {
        let csr = self.graph.to_csr();
        let par = self.hp.par_config();
        let seed_bump = self.refreshes as u64;
        let opts = self.hp.walk_options().seed(self.hp.seed.wrapping_add(seed_bump));
        let walk_cfg = opts.config();

        match self.emb.take() {
            None => {
                let sampler = opts.prepare(&csr);
                self.last_sampler = method_counts(&sampler);
                let walks = generate_walks_prepared(&csr, &walk_cfg, &sampler, &par);
                self.graph.take_dirty();
                self.emb = Some(embed::train(&walks, csr.num_nodes(), &self.hp.w2v_config(), &par));
            }
            Some(current) => {
                let dirty = self.graph.take_dirty();
                if dirty.is_empty() && csr.num_nodes() == current.num_nodes() {
                    self.emb = Some(current);
                    self.refreshes += 1;
                    return self.emb.as_ref().expect("just set");
                }
                // The CSR changes between refreshes, so the sampler must be
                // rebuilt — but one build now covers every dirty vertex's
                // walks instead of paying direct evaluation per step. The
                // dirty vertices themselves are churning under ingest, so
                // the builder routes them to table-free bounded rejection
                // instead of rebuilding tables that the next batch would
                // invalidate again.
                let sampler = opts.sampler_builder().churned(dirty.iter().copied()).build(&csr);
                self.last_sampler = method_counts(&sampler);
                let walks = generate_walks_from_prepared(&csr, &walk_cfg, &sampler, &dirty, &par);
                if walks.num_walks() == 0 {
                    // The vertex space grew but no dirty vertex produced a
                    // walk (e.g. a zero-walk config). The table must still
                    // track the graph: extend it with word2vec-style
                    // initialized rows so every vertex keeps a usable,
                    // trainable vector.
                    self.emb =
                        Some(current.grown(csr.num_nodes(), walk_cfg.seed.wrapping_add(0x9807)));
                } else {
                    // Fine-tune at a reduced learning rate: the goal is to
                    // absorb the new structure without tearing up the
                    // existing space.
                    let mut cfg = self.hp.w2v_config();
                    cfg.initial_lr *= 0.5;
                    cfg.epochs = cfg.epochs.max(1);
                    self.emb =
                        Some(embed::train_from(&walks, csr.num_nodes(), &current, &cfg, &par));
                }
            }
        }
        self.refreshes += 1;
        self.emb.as_ref().expect("embedding just computed")
    }
}

fn method_counts(sampler: &twalk::PreparedSampler) -> RefreshSamplerStats {
    let s = sampler.stats();
    RefreshSamplerStats {
        cdf_vertices: s.cdf_vertices,
        alias_vertices: s.alias_vertices,
        rejection_vertices: s.rejection_vertices,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base_graph() -> TemporalGraph {
        tgraph::gen::temporal_sbm(200, 2, 4_000, 0.92, 6).builder.undirected(true).build()
    }

    #[test]
    fn first_refresh_builds_full_embeddings() {
        let g = base_graph();
        let mut inc = IncrementalEmbedder::new(Hyperparams::paper_optimal().quick_test(), &g);
        let emb = inc.refresh();
        assert_eq!(emb.num_nodes(), g.num_nodes());
        assert!(emb.as_slice().iter().any(|&x| x != 0.0));
    }

    #[test]
    fn refresh_without_changes_is_stable() {
        let g = base_graph();
        let mut inc = IncrementalEmbedder::new(Hyperparams::paper_optimal().quick_test(), &g);
        let before = inc.refresh().clone();
        let after = inc.refresh().clone();
        assert_eq!(before, after);
        assert_eq!(inc.refreshes(), 2);
    }

    #[test]
    fn incremental_refresh_only_moves_touched_vectors() {
        let g = base_graph();
        let mut inc =
            IncrementalEmbedder::new(Hyperparams::paper_optimal().quick_test().with_threads(1), &g);
        let before = inc.refresh().clone();
        inc.ingest([TemporalEdge::new(0, 1, 2.0), TemporalEdge::new(1, 2, 2.1)]);
        assert_eq!(inc.pending_dirty(), 3);
        let after = inc.refresh().clone();
        // Walks from {0, 1, 2} visit a bounded neighborhood; most vertices
        // must be untouched.
        let moved = (0..g.num_nodes() as u32).filter(|&v| after.get(v) != before.get(v)).count();
        assert!(moved > 0, "no vector moved at all");
        assert!(
            moved < g.num_nodes() / 2,
            "incremental refresh rewrote {moved}/{} vectors",
            g.num_nodes()
        );
    }

    /// Regression: ingesting an edge whose endpoint is far beyond the
    /// embedding row count must leave matrix and graph sizes consistent
    /// after refresh, with every implicitly-allocated row initialized
    /// (non-zero), not zero-padded.
    #[test]
    fn far_id_growth_allocates_initialized_rows() {
        let g = base_graph();
        let mut inc = IncrementalEmbedder::new(Hyperparams::paper_optimal().quick_test(), &g);
        inc.refresh();
        // dst id skips 300 vertices and has no outgoing edges.
        inc.ingest([TemporalEdge::new(0, 500, 2.0)]);
        let emb = inc.refresh().clone();
        assert_eq!(emb.num_nodes(), 501, "embedding rows lag the grown graph");
        assert_eq!(inc.snapshot().num_nodes(), 501);
        assert!(
            emb.get(500).iter().any(|&x| x != 0.0),
            "new endpoint 500 left with an uninitialized (zero) row"
        );
        // Implicitly-allocated ids between the old max and the new
        // endpoint also get initialized vectors.
        for v in [250u32, 400] {
            assert!(emb.get(v).iter().any(|&x| x != 0.0), "implicit vertex {v} row is zero");
        }
        // A follow-up refresh touching only old vertices keeps the size.
        inc.ingest([TemporalEdge::new(1, 2, 3.0)]);
        assert_eq!(inc.refresh().num_nodes(), 501);
    }

    /// Regression: growth works for a brand-new disconnected component
    /// too (neither endpoint existed before).
    #[test]
    fn disconnected_new_component_grows_table() {
        let g = base_graph();
        let n = g.num_nodes();
        let mut inc = IncrementalEmbedder::new(Hyperparams::paper_optimal().quick_test(), &g);
        inc.refresh();
        inc.ingest([TemporalEdge::new(n as u32, n as u32 + 1, 2.0)]);
        let emb = inc.refresh();
        assert_eq!(emb.num_nodes(), n + 2);
        assert!(emb.get(n as u32).iter().any(|&x| x != 0.0));
        assert!(emb.get(n as u32 + 1).iter().any(|&x| x != 0.0));
    }

    #[test]
    fn dirty_vertices_are_resampled_by_rejection() {
        let g = base_graph();
        let mut inc = IncrementalEmbedder::new(Hyperparams::paper_optimal().quick_test(), &g);
        inc.refresh();
        // The full build has no churned set.
        assert_eq!(inc.last_sampler_stats().rejection_vertices, 0);
        inc.ingest([TemporalEdge::new(0, 1, 2.0), TemporalEdge::new(1, 2, 2.1)]);
        inc.refresh();
        let stats = inc.last_sampler_stats();
        // Vertices 0, 1, 2 churned; all have out-edges in this graph.
        assert_eq!(stats.rejection_vertices, 3, "{stats:?}");
        assert!(stats.cdf_vertices > 0, "{stats:?}");
    }

    #[test]
    fn embedding_accessor_tracks_refreshes() {
        let g = base_graph();
        let mut inc = IncrementalEmbedder::new(Hyperparams::paper_optimal().quick_test(), &g);
        assert!(inc.embedding().is_none());
        inc.refresh();
        assert_eq!(inc.embedding().map(|e| e.num_nodes()), Some(g.num_nodes()));
    }

    #[test]
    fn new_vertices_gain_embeddings() {
        let g = base_graph();
        let n = g.num_nodes() as u32;
        let mut inc = IncrementalEmbedder::new(Hyperparams::paper_optimal().quick_test(), &g);
        inc.refresh();
        inc.ingest([
            TemporalEdge::new(n, 0, 2.0),
            TemporalEdge::new(0, n, 2.1),
            TemporalEdge::new(n, 1, 2.2),
        ]);
        let emb = inc.refresh();
        assert_eq!(emb.num_nodes(), n as usize + 1);
        assert!(emb.get(n).iter().any(|&x| x != 0.0), "new vertex has zero vector");
    }
}
