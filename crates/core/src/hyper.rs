//! Pipeline hyperparameters.

use twalk::{SamplingMethod, TransitionSampler, WalkEngine, WalkOptions};

/// How node embeddings are produced (phases 1–2).
///
/// [`TemporalWalks`](EmbeddingStrategy::TemporalWalks) is the paper's
/// CTDNE pipeline; the other two are the baseline families its related
/// work contrasts against (§II-B): modeling the dynamic graph as fully
/// static, or as a sequence of static snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EmbeddingStrategy {
    /// Temporally-valid random walks (the paper's method).
    #[default]
    TemporalWalks,
    /// Static DeepWalk: timestamps ignored, walks over the full graph.
    StaticDeepWalk,
    /// DeepWalk over a sequence of cumulative snapshots `G_{t_1..t_S}`;
    /// walk budget is divided across snapshots so corpus size stays
    /// comparable.
    SnapshotDeepWalk {
        /// Number of snapshots `S` (≥ 1).
        snapshots: usize,
    },
}

/// Whether phases 1–2 run as the fused streaming pipeline (walk workers
/// feeding hogwild trainers through a bounded channel) or sequentially
/// (materialize the full corpus, then train).
///
/// Fusion changes *performance shape only*: end-to-end time approaches
/// `max(walk, train)` instead of `walk + train`, and peak memory drops by
/// the corpus size. It does not change walks (per-`(walk, vertex)` RNG
/// streams) and keeps training within the hogwild tolerance the paper
/// already relies on — see DESIGN.md §16 for the exact equivalences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FusedMode {
    /// Always fuse when the strategy supports streaming (temporal walks
    /// and static DeepWalk on the CPU backend; snapshot baselines and the
    /// GPU model need the materialized corpus and fall back).
    On,
    /// Always run the phases sequentially.
    Off,
    /// Fuse when it is expected to pay off: CPU backend, streamable
    /// strategy, and a corpus large enough (≥ ~2M tokens) that overlap
    /// and memory savings outweigh channel overhead.
    #[default]
    Auto,
}

/// All tunables of the end-to-end pipeline.
///
/// Defaults are the paper's empirically optimal operating point (§VII-A):
/// 10 walks per node, walk length 6, embedding dimension 8, with standard
/// word2vec and SGD training constants. The artifact's tunables (§A.8)
/// map onto these fields.
///
/// # Examples
///
/// ```
/// use rwalk_core::Hyperparams;
///
/// let hp = Hyperparams::paper_optimal();
/// assert_eq!(hp.walks_per_node, 10);
/// assert_eq!(hp.walk_length, 6);
/// assert_eq!(hp.dim, 8);
/// let sweep = hp.clone().with_dim(16);
/// assert_eq!(sweep.dim, 16);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Hyperparams {
    /// Random walks per node (`K`).
    pub walks_per_node: usize,
    /// Maximum walk length (`N`).
    pub walk_length: usize,
    /// Embedding dimension (`d`).
    pub dim: usize,
    /// Walk transition probability model.
    pub sampler: TransitionSampler,
    /// Per-vertex sampling method policy for the weighted samplers
    /// (a pure performance knob; every method draws from the same
    /// analytic distribution).
    pub sampler_method: SamplingMethod,
    /// Walk execution strategy (per-walk, step-synchronous batched, or
    /// step-interleaved; a pure performance knob, walks are
    /// engine-independent).
    pub engine: WalkEngine,
    /// word2vec skip-gram window.
    pub window: usize,
    /// word2vec negative samples.
    pub negatives: usize,
    /// word2vec epochs.
    pub w2v_epochs: usize,
    /// Hidden layer width of the FNN classifiers.
    pub hidden: usize,
    /// Hidden layers appended beyond the paper's defaults (2-layer FNN for
    /// link prediction, 3-layer for node classification). Non-zero values
    /// deepen both classifiers; combined with [`Self::residual`] this
    /// realizes the §VIII-A ResNet-style variant.
    pub extra_hidden_layers: usize,
    /// Maximum classifier training epochs.
    pub train_epochs: usize,
    /// Classifier mini-batch size.
    pub batch_size: usize,
    /// Classifier learning rate.
    pub lr: f32,
    /// Classifier momentum.
    pub momentum: f32,
    /// Per-epoch learning-rate decay.
    pub lr_decay: f32,
    /// Early-stop once validation accuracy reaches this target.
    pub target_accuracy: Option<f64>,
    /// Seed for every random stage (walks, word2vec, splits, init).
    pub seed: u64,
    /// Worker threads (`0` = all available).
    pub threads: usize,
    /// ResNet-style skip connections in the classifier (paper §VIII-A).
    pub residual: bool,
    /// Embedding production strategy (temporal walks vs static/snapshot
    /// baselines).
    pub strategy: EmbeddingStrategy,
    /// Fused streaming walk→train pipeline mode (a pure performance
    /// knob; see [`FusedMode`]).
    pub fused: FusedMode,
}

impl Hyperparams {
    /// The paper's optimal setting: `K = 10`, `N = 6`, `d = 8`.
    pub fn paper_optimal() -> Self {
        Self {
            walks_per_node: 10,
            walk_length: 6,
            dim: 8,
            sampler: TransitionSampler::Softmax,
            sampler_method: SamplingMethod::Auto,
            engine: WalkEngine::Auto,
            window: 5,
            negatives: 5,
            w2v_epochs: 3,
            hidden: 64,
            extra_hidden_layers: 0,
            train_epochs: 30,
            batch_size: 64,
            lr: 0.1,
            momentum: 0.9,
            lr_decay: 0.97,
            target_accuracy: None,
            seed: 42,
            threads: 0,
            residual: false,
            strategy: EmbeddingStrategy::default(),
            fused: FusedMode::default(),
        }
    }

    /// Shrinks the training budget for fast unit/integration tests while
    /// keeping the pipeline end-to-end.
    #[must_use]
    pub fn quick_test(mut self) -> Self {
        self.w2v_epochs = 2;
        self.train_epochs = 10;
        self
    }

    /// Sets the walks-per-node sweep parameter (Fig. 8b x-axis).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn with_walks_per_node(mut self, k: usize) -> Self {
        assert!(k >= 1, "need at least one walk per node");
        self.walks_per_node = k;
        self
    }

    /// Sets the walk-length sweep parameter (Fig. 8c x-axis).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn with_walk_length(mut self, n: usize) -> Self {
        assert!(n >= 1, "walks must have at least one vertex");
        self.walk_length = n;
        self
    }

    /// Sets the embedding-dimension sweep parameter (Fig. 8d x-axis).
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    #[must_use]
    pub fn with_dim(mut self, d: usize) -> Self {
        assert!(d >= 1, "embedding dimension must be positive");
        self.dim = d;
        self
    }

    /// Sets the seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the walk transition sampler.
    #[must_use]
    pub fn with_sampler(mut self, sampler: TransitionSampler) -> Self {
        self.sampler = sampler;
        self
    }

    /// Sets the per-vertex sampling method policy; flows into
    /// [`Self::walk_options`] and from there through `Pipeline` and
    /// `IncrementalEmbedder`.
    #[must_use]
    pub fn with_sampler_method(mut self, method: SamplingMethod) -> Self {
        self.sampler_method = method;
        self
    }

    /// Sets the embedding strategy (paper method vs baselines).
    #[must_use]
    pub fn with_strategy(mut self, strategy: EmbeddingStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the walk execution engine; flows into [`Self::walk_config`]
    /// and from there through `Pipeline` and `IncrementalEmbedder`.
    #[must_use]
    pub fn with_engine(mut self, engine: WalkEngine) -> Self {
        self.engine = engine;
        self
    }

    /// Sets the fused streaming pipeline mode.
    #[must_use]
    pub fn with_fused(mut self, fused: FusedMode) -> Self {
        self.fused = fused;
        self
    }

    /// Sets the thread count (`0` = all).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Resolved parallel configuration.
    pub fn par_config(&self) -> par::ParConfig {
        if self.threads == 0 {
            par::ParConfig::new()
        } else {
            par::ParConfig::with_threads(self.threads)
        }
        .chunk_size(64)
    }

    /// The full walk-options bundle this setting implies; the single
    /// source for both the kernel configuration and the sampler builder.
    pub fn walk_options(&self) -> WalkOptions {
        WalkOptions::new(self.walks_per_node, self.walk_length)
            .sampler(self.sampler)
            .sampler_method(self.sampler_method)
            .seed(self.seed)
            .engine(self.engine)
    }

    /// The walk configuration this setting implies (the kernel-facing
    /// projection of [`Self::walk_options`]).
    pub fn walk_config(&self) -> twalk::WalkConfig {
        self.walk_options().config()
    }

    /// The word2vec configuration this setting implies.
    pub fn w2v_config(&self) -> embed::Word2VecConfig {
        let mut cfg = embed::Word2VecConfig::default()
            .dim(self.dim)
            .epochs(self.w2v_epochs)
            .seed(self.seed ^ 0x77);
        cfg.window = self.window;
        cfg.negatives = self.negatives;
        cfg
    }

    /// The classifier training options this setting implies.
    pub fn train_options(&self) -> nn::TrainOptions {
        nn::TrainOptions {
            epochs: self.train_epochs,
            batch_size: self.batch_size,
            lr: self.lr,
            momentum: self.momentum,
            lr_decay: self.lr_decay,
            shuffle_seed: self.seed ^ 0xBEEF,
            target_valid_accuracy: self.target_accuracy,
        }
    }
}

impl Default for Hyperparams {
    fn default() -> Self {
        Self::paper_optimal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_optimal_matches_section_vii_summary() {
        let hp = Hyperparams::paper_optimal();
        assert_eq!((hp.walks_per_node, hp.walk_length, hp.dim), (10, 6, 8));
    }

    #[test]
    fn derived_configs_carry_values() {
        let hp = Hyperparams::paper_optimal().with_dim(16).with_seed(9);
        assert_eq!(hp.w2v_config().dim, 16);
        assert_eq!(hp.walk_config().walks_per_node, 10);
        assert_eq!(hp.walk_config().seed, 9);
        assert_eq!(hp.train_options().epochs, hp.train_epochs);
    }

    #[test]
    fn engine_flows_into_walk_config() {
        let hp = Hyperparams::paper_optimal();
        assert_eq!(hp.walk_config().engine, WalkEngine::Auto);
        let hp = hp.with_engine(WalkEngine::Batched);
        assert_eq!(hp.walk_config().engine, WalkEngine::Batched);
        let hp = hp.with_engine(WalkEngine::Interleaved);
        assert_eq!(hp.walk_config().engine, WalkEngine::Interleaved);
    }

    #[test]
    fn sampler_method_flows_into_walk_options() {
        let hp = Hyperparams::paper_optimal();
        assert_eq!(hp.walk_options().sampler_method, SamplingMethod::Auto);
        let hp = hp.with_sampler_method(SamplingMethod::Alias);
        let opts = hp.walk_options();
        assert_eq!(opts.sampler_method, SamplingMethod::Alias);
        assert_eq!(opts.sampler, hp.sampler);
        assert_eq!(opts.seed, hp.seed);
        assert!(opts.validate().is_ok());
    }

    #[test]
    fn zero_threads_resolves_to_available() {
        let hp = Hyperparams::paper_optimal().with_threads(0);
        assert!(hp.par_config().threads() >= 1);
        let hp = hp.with_threads(3);
        assert_eq!(hp.par_config().threads(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one walk")]
    fn zero_walks_rejected() {
        let _ = Hyperparams::paper_optimal().with_walks_per_node(0);
    }
}
