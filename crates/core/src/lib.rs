//! End-to-end random-walk temporal graph learning pipeline (paper Fig. 1).
//!
//! This crate is the paper's primary contribution as a library: the
//! four-phase pipeline
//!
//! 1. **temporal random walk** ([`twalk`]) —
//! 2. **word2vec** ([`embed`]) —
//! 3. **data preparation** ([`dataprep`]) —
//! 4. **FNN classifier training/testing** ([`nn`])
//!
//! wired together behind [`Pipeline`], with per-phase wall-clock timing
//! (Table III), the paper-optimal hyperparameter defaults (`K = 10`,
//! `N = 6`, `d = 8`; §VII-A), and a modeled-GPU backend that reports the
//! phase times an Ampere-class GPU would achieve (see [`perfmodel`]).
//!
//! # Examples
//!
//! ```
//! use rwalk_core::{Hyperparams, Pipeline};
//!
//! let g = tgraph::gen::preferential_attachment(400, 3, 1)
//!     .undirected(true)
//!     .build();
//! let report = Pipeline::new(Hyperparams::paper_optimal().quick_test())
//!     .run_link_prediction(&g)
//!     .unwrap();
//! assert!(report.metrics.accuracy > 0.5); // beats coin-flipping
//! println!("{}", report.summary());
//! ```

mod error;
pub mod extensions;
mod hyper;
pub mod incremental;
mod pipeline;
mod report;

pub use error::PipelineError;
pub use extensions::LabeledEdge;
pub use hyper::{EmbeddingStrategy, FusedMode, Hyperparams};
pub use incremental::{IncrementalEmbedder, RefreshSamplerStats};
pub use pipeline::{Backend, LinkModel, Pipeline};
pub use report::{FusedPhases, PhaseTimes, ServeStats, TaskKind, TaskMetrics, TaskReport};
