//! Property tests for the hand-rolled JSON layer (`rwserve::json`).
//!
//! Two invariants, exercised with a seeded generator so failures
//! reproduce exactly:
//!
//! 1. **Roundtrip**: `parse(v.to_string()) == v` for every tree the
//!    serializer can emit (finite numbers only — the serializer maps
//!    non-finite to `null` by design, tested separately).
//! 2. **Totality**: malformed input — truncations, bad escapes, deep
//!    nesting, non-JSON number tokens — returns `Err`, never panics and
//!    never aborts the process (stack exhaustion counts as a crash).
//!
//! These properties are independent of the SIMD dispatch mode; CI runs
//! this suite under `SIMD_FORCE_SCALAR=1` as well to pin that down.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rwserve::json::{Json, MAX_DEPTH};

/// Random JSON tree, depth-bounded so size stays manageable.
fn gen_value(rng: &mut StdRng, depth: usize) -> Json {
    // Leaves only at the bottom; containers get rarer with depth.
    let choice = if depth == 0 { rng.gen_range(0..4u32) } else { rng.gen_range(0..6u32) };
    match choice {
        0 => Json::Null,
        1 => Json::Bool(rng.gen()),
        2 => Json::Num(gen_number(rng)),
        3 => Json::Str(gen_string(rng)),
        4 => {
            let n = rng.gen_range(0..5usize);
            Json::Arr((0..n).map(|_| gen_value(rng, depth - 1)).collect())
        }
        _ => {
            let n = rng.gen_range(0..5usize);
            Json::Obj((0..n).map(|_| (gen_string(rng), gen_value(rng, depth - 1))).collect())
        }
    }
}

fn gen_number(rng: &mut StdRng) -> f64 {
    match rng.gen_range(0..6u32) {
        // Small integers (the protocol's bread and butter: node ids).
        0 => f64::from(rng.gen_range(-1_000_000i32..1_000_000)),
        // Integers at the edge of f64 exactness.
        1 => (rng.gen::<u64>() % (1u64 << 53)) as f64,
        // Uniform fractions.
        2 => rng.gen::<f64>(),
        // Scaled with negative values.
        3 => (rng.gen::<f64>() - 0.5) * 1e12,
        // Tiny magnitudes.
        4 => rng.gen::<f64>() * 1e-300,
        // Extreme-but-finite magnitudes.
        _ => {
            let extremes = [f64::MAX, f64::MIN, f64::MIN_POSITIVE, -0.0, 0.0, 1e308, -1e308];
            extremes[rng.gen_range(0..extremes.len())]
        }
    }
}

fn gen_string(rng: &mut StdRng) -> String {
    let n = rng.gen_range(0..12usize);
    (0..n)
        .map(|_| match rng.gen_range(0..6u32) {
            // Printable ASCII.
            0 | 1 => char::from(rng.gen_range(0x20u8..0x7f)),
            // The characters the escaper special-cases.
            2 => ['"', '\\', '/', '\n', '\r', '\t', '\u{08}', '\u{0C}'][rng.gen_range(0..8usize)],
            // Other control characters (forced \uXXXX escapes).
            3 => char::from_u32(rng.gen_range(0..0x20u32)).unwrap(),
            // BMP code points (skipping the surrogate range).
            4 => char::from_u32(rng.gen_range(0xA0u32..0xD800)).unwrap(),
            // Astral plane (surrogate pairs when \u-escaped).
            _ => char::from_u32(rng.gen_range(0x1_0000u32..0x1_F000)).unwrap(),
        })
        .collect()
}

#[test]
fn serialize_then_parse_is_identity_on_10k_random_values() {
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for i in 0..10_000 {
        let v = gen_value(&mut rng, 4);
        let text = v.to_string();
        let back = Json::parse(&text)
            .unwrap_or_else(|e| panic!("iteration {i}: {e} for serialized {text:?}"));
        assert_eq!(back, v, "iteration {i}: roundtrip changed {text:?}");
        // And the reparse is a fixpoint: serializing again is stable.
        assert_eq!(back.to_string(), text, "iteration {i}");
    }
}

#[test]
fn truncations_of_valid_documents_never_panic() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for _ in 0..300 {
        let text = gen_value(&mut rng, 3).to_string();
        for end in (0..text.len()).filter(|&e| text.is_char_boundary(e)) {
            // Must not panic; truncated docs may still be valid (e.g.
            // "12" from "123"), so only totality is asserted.
            let _ = Json::parse(&text[..end]);
        }
    }
}

#[test]
fn malformed_corpus_errors_cleanly() {
    let deep = "[".repeat(10_000);
    let deep_objs = r#"{"a":"#.repeat(10_000);
    let closed_tower = format!("{}1{}", "[".repeat(MAX_DEPTH + 50), "]".repeat(MAX_DEPTH + 50));
    let corpus: Vec<&str> = vec![
        // Number tokens JSON does not have.
        "NaN",
        "Infinity",
        "-Infinity",
        "nan",
        "inf",
        "1e999",
        "-1e999",
        "0x10",
        "+1",
        "-",
        "1e",
        "1e+",
        ".5",
        // Bad escapes.
        r#""\x""#,
        r#""\u12""#,
        r#""\u123g""#,
        r#""\ud800""#,
        r#""\ud800A""#,
        r#""\udc00""#,
        r#""\ud800\ud800""#,
        r#""\"#,
        // Structure errors.
        "",
        "   ",
        "{",
        "}",
        "[",
        "]",
        "{]",
        "[}",
        "[1 2]",
        "{\"a\" 1}",
        "{\"a\":1,}",
        "[1,]",
        "[,1]",
        "{:1}",
        "{1:2}",
        "\"unterminated",
        "tru",
        "truex",
        "nullx",
        "falsey",
        "{\"a\":1}{\"b\":2}",
        "[1]  x",
        // Deep nesting (stack-exhaustion attack shape).
        &deep,
        &deep_objs,
        &closed_tower,
    ];
    for bad in corpus {
        let head: String = bad.chars().take(40).collect();
        let err = Json::parse(bad).expect_err(&format!("accepted malformed input {head:?}"));
        assert!(!err.to_string().is_empty());
    }
}

#[test]
fn non_finite_numbers_serialize_as_null_and_reparse() {
    for n in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let text = Json::Num(n).to_string();
        assert_eq!(text, "null");
        assert_eq!(Json::parse(&text).unwrap(), Json::Null);
    }
}
