//! Stress tests for [`rwserve::MicroBatcher`] under thread churn: waves
//! of short-lived client threads (1–64 per wave) hammering one batcher.
//!
//! Invariants checked after every wave:
//!
//! - **No lost or duplicated requests**: every client gets exactly one
//!   reply, and the batch-size histogram accounts for every request.
//! - **Queue-depth gauge returns to zero** once all in-flight requests
//!   have been answered.
//! - **Bit-for-bit fidelity**: batched scores equal the unbatched
//!   [`rwserve::engine::score_pairs`] oracle exactly — coalescing into a
//!   wider GEMM must not change a single mantissa bit.

use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

use embed::EmbeddingMatrix;
use nn::{Mlp, OutputHead};
use rwserve::engine::score_pairs;
use rwserve::{BatchPolicy, EmbeddingStore, Metrics, MicroBatcher};

const NODES: u32 = 60;

fn store() -> Arc<EmbeddingStore> {
    let n = NODES as usize;
    let d = 8;
    let data: Vec<f32> = (0..n * d).map(|i| ((i % 11) as f32 - 5.0) * 0.13).collect();
    let emb = EmbeddingMatrix::from_vec(n, d, data);
    Arc::new(EmbeddingStore::new(emb, Mlp::new(&[2 * d, 12, 1], OutputHead::Binary, 9)))
}

fn observed_batcher(
    store: Arc<EmbeddingStore>,
    policy: BatchPolicy,
) -> (Arc<MicroBatcher>, Arc<obs::Registry>) {
    let registry = Arc::new(obs::Registry::new());
    let rec = obs::Recorder::with_registry(Arc::clone(&registry));
    let batcher = MicroBatcher::with_observability(
        store,
        Arc::new(Metrics::new()),
        policy,
        rec.gauge("serve_batcher_queue_depth"),
        rec.histogram("serve_batch_size"),
    );
    (Arc::new(batcher), registry)
}

#[test]
fn waves_of_client_threads_lose_nothing_and_match_the_oracle() {
    let store = store();
    let snap = store.load();
    let (batcher, registry) = observed_batcher(
        Arc::clone(&store),
        BatchPolicy { max_batch: 16, max_wait: Duration::from_micros(500) },
    );

    let mut total_requests = 0u64;
    // Wave sizes sweep the 1–64 client range, including the degenerate
    // single-client wave and a few oversubscribed ones.
    for (wave, &clients) in [1usize, 2, 7, 16, 33, 64, 5, 48, 64, 1].iter().enumerate() {
        let (tx, rx) = mpsc::channel();
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let b = Arc::clone(&batcher);
                let tx = tx.clone();
                thread::spawn(move || {
                    // Distinct pairs per client per wave, all valid nodes.
                    let u = ((wave * 31 + c * 7) as u32) % NODES;
                    let v = ((wave * 13 + c * 3 + 1) as u32) % NODES;
                    let (result, version) = b.score(u, v);
                    tx.send((c, u, v, result, version)).expect("main receiver alive");
                })
            })
            .collect();
        drop(tx);

        // Every client replies exactly once; a lost request would hang,
        // so bound the wait rather than joining blindly.
        let mut seen = vec![0u32; clients];
        for _ in 0..clients {
            let (c, u, v, result, version) =
                rx.recv_timeout(Duration::from_secs(10)).expect("reply lost under churn");
            seen[c] += 1;
            assert_eq!(version, 1, "no publishes happened");
            let expect = score_pairs(&snap, &[(u, v)])[0]
                .as_ref()
                .copied()
                .expect("all pairs are valid nodes");
            let got = result.expect("all pairs are valid nodes");
            assert!(
                got.to_bits() == expect.to_bits(),
                "wave {wave} client {c}: batched {got} != oracle {expect} for ({u},{v})"
            );
        }
        assert!(rx.recv().is_err(), "duplicate reply detected");
        assert!(seen.iter().all(|&n| n == 1), "client replied {seen:?} times");
        for h in handles {
            h.join().unwrap();
        }
        total_requests += clients as u64;

        // The wave fully drained: nothing is left enqueued, and the
        // batch-size histogram accounts for every request ever sent.
        let snap_m = registry.snapshot();
        assert_eq!(
            snap_m.gauge("serve_batcher_queue_depth"),
            Some(0),
            "queue depth nonzero after wave {wave}"
        );
        let sizes = snap_m.histogram("serve_batch_size").expect("recorded");
        assert_eq!(sizes.sum, total_requests, "lost/duplicated requests after wave {wave}");
    }
}

#[test]
fn score_all_under_churn_matches_oracle_bit_for_bit() {
    let store = store();
    let snap = store.load();
    let (batcher, registry) = observed_batcher(
        Arc::clone(&store),
        BatchPolicy { max_batch: 8, max_wait: Duration::from_micros(200) },
    );

    // Several pipelining clients, each with its own pair list, racing
    // against single-shot clients.
    let handles: Vec<_> = (0..6u32)
        .map(|t| {
            let b = Arc::clone(&batcher);
            thread::spawn(move || {
                let pairs: Vec<(u32, u32)> = (0..25u32)
                    .map(|i| ((t * 17 + i) % NODES, (t * 5 + i * 3 + 1) % NODES))
                    .collect();
                let results = b.score_all(&pairs);
                (pairs, results)
            })
        })
        .collect();
    for h in handles {
        let (pairs, results) = h.join().unwrap();
        assert_eq!(results.len(), pairs.len());
        for (&pair, (result, _version)) in pairs.iter().zip(&results) {
            let expect = score_pairs(&snap, &[pair])[0].as_ref().copied().unwrap();
            let got = result.as_ref().copied().unwrap();
            assert_eq!(got.to_bits(), expect.to_bits(), "pair {pair:?} diverged from oracle");
        }
    }
    assert_eq!(registry.snapshot().gauge("serve_batcher_queue_depth"), Some(0));
}
