//! Concurrency stress: queries racing background snapshot publishes must
//! never observe torn state (half of one model version, half of another).
//!
//! Two layers:
//!
//! 1. A white-box store test where every published version is filled with
//!    a version-derived sentinel value, so any mix of versions inside one
//!    loaded snapshot is detectable.
//! 2. An end-to-end test where real queries run against a [`Service`]
//!    while an [`IncrementalEmbedder`]-backed refresher ingests edges and
//!    publishes — every response must be internally consistent and the
//!    version must only move forward.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use embed::EmbeddingMatrix;
use nn::{Mlp, OutputHead};
use par::ParConfig;
use rwalk_core::{Hyperparams, IncrementalEmbedder};
use rwserve::json::Json;
use rwserve::{BatchPolicy, EmbeddingStore, Service};

/// Every f32 in version `v`'s table equals `v as f32`, and the expected
/// link score for such a uniform table is the same for every pair — so a
/// reader can verify an entire query against a single version.
#[test]
fn snapshot_swaps_are_never_torn() {
    let (n, d) = (64, 8);
    let make_emb = |version: u64| EmbeddingMatrix::from_vec(n, d, vec![version as f32; n * d]);
    let mlp = Mlp::new(&[2 * d, 8, 1], OutputHead::Binary, 42);
    let store = Arc::new(EmbeddingStore::new(make_emb(1), mlp));
    let stop = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..4)
        .map(|_| {
            let store = Arc::clone(&store);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut observed = 0u64;
                let mut loads = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snap = store.load();
                    let expect = snap.version as f32;
                    // Scan the whole table: every value must match the
                    // sentinel of the snapshot's own version.
                    for (i, &x) in snap.emb.as_slice().iter().enumerate() {
                        assert_eq!(
                            x, expect,
                            "torn snapshot: v{} table holds {x} at flat index {i}",
                            snap.version
                        );
                    }
                    assert!(snap.version >= observed, "version moved backwards");
                    observed = snap.version;
                    loads += 1;
                }
                loads
            })
        })
        .collect();

    // Writer: publish as fast as possible for a while.
    for version in 2..400u64 {
        let published = store.publish_embedding(make_emb(version));
        assert_eq!(published, version);
    }
    thread::sleep(Duration::from_millis(20));
    stop.store(true, Ordering::Relaxed);
    let total_loads: u64 = readers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(total_loads > 0, "readers never ran");
    assert_eq!(store.version(), 399);
}

#[test]
fn queries_stay_consistent_while_refreshes_publish() {
    let g = tgraph::gen::preferential_attachment(150, 2, 9).undirected(true).build();
    let hp = Hyperparams::paper_optimal().quick_test();
    let mut embedder = IncrementalEmbedder::new(hp.clone(), &g);
    let emb = embedder.refresh().clone();
    let mlp = Mlp::new(&[2 * emb.dim(), 8, 1], OutputHead::Binary, hp.seed);
    let store = Arc::new(EmbeddingStore::new(emb, mlp));
    let service = Arc::new(
        Service::new(
            Arc::clone(&store),
            ParConfig::with_threads(2),
            BatchPolicy { max_batch: 16, max_wait: Duration::from_micros(100) },
        )
        .with_refresher(embedder, Duration::from_millis(5)),
    );

    let stop = Arc::new(AtomicBool::new(false));
    let queriers: Vec<_> = (0..4u32)
        .map(|t| {
            let service = Arc::clone(&service);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut last_version = 0u64;
                let mut answered = 0u64;
                let mut i = t;
                while !stop.load(Ordering::Relaxed) {
                    let (u, v) = (i % 150, (i * 7 + 1) % 150);
                    let line = format!(r#"{{"op":"link_score","u":{u},"v":{v}}}"#);
                    let response = Json::parse(&service.handle_line(&line)).unwrap();
                    assert_eq!(
                        response.get("ok"),
                        Some(&Json::Bool(true)),
                        "valid query failed mid-refresh: {response}"
                    );
                    let score = response.get("score").and_then(Json::as_f64).unwrap();
                    assert!(
                        (0.0..=1.0).contains(&score) && score.is_finite(),
                        "nonsense score {score} — torn model state?"
                    );
                    let version = response.get("version").and_then(Json::as_u64).unwrap();
                    assert!(version >= last_version, "served version went backwards");
                    last_version = version;
                    answered += 1;
                    i = i.wrapping_add(13);
                }
                answered
            })
        })
        .collect();

    // Stream edges (including brand-new vertices) while queries run.
    for (round, next_node) in (150u32..156).enumerate() {
        let t = 2.0 + round as f64 * 0.1;
        let response = Json::parse(&service.handle_line(&format!(
            r#"{{"op":"ingest","edges":[[0,{next_node},{t}],[{next_node},1,{t}]]}}"#
        )))
        .unwrap();
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        thread::sleep(Duration::from_millis(15));
    }

    // Wait for at least one background publish.
    let deadline = Instant::now() + Duration::from_secs(60);
    while store.version() < 2 {
        assert!(Instant::now() < deadline, "no refresh ever published");
        thread::sleep(Duration::from_millis(10));
    }

    stop.store(true, Ordering::Relaxed);
    let answered: u64 = queriers.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(answered > 0, "queriers never ran");

    let stats = service.stats();
    assert!(stats.refreshes >= 1, "refresher published nothing");
    assert!(stats.snapshot_version >= 2);
    assert_eq!(stats.errors, 0, "consistent queries must not error during refreshes");
    // The streamed new vertices are now served.
    let grown = store.load();
    assert!(grown.emb.num_nodes() > 150, "new vertices missing from served table");
}
