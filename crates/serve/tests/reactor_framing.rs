//! Framing state-machine matrix: every protocol message, split at every
//! byte boundary, plus coalesced reads and partial-write resumption.
//!
//! These tests drive the sans-IO machines ([`LineFramer`], [`WriteBuf`])
//! directly — no sockets — so the full split matrix runs in
//! milliseconds. The reactor wires the same structs to nonblocking
//! `TcpStream`s, so what passes here holds on the wire.

use std::io::{self, Write};

use rwserve::protocol::parse_request;
use rwserve::reactor::conn::{Frame, FrameError, LineFramer, WriteBuf, MAX_LINE_BYTES};

/// One of each protocol operation, in wire form.
const MESSAGES: &[&str] = &[
    r#"{"op":"link_score","u":3,"v":17}"#,
    r#"{"op":"embedding","u":3}"#,
    r#"{"op":"topk","u":3,"k":5}"#,
    r#"{"op":"ingest","edges":[[3,17,0.9],[17,4,0.95]]}"#,
    r#"{"op":"stats"}"#,
    r#"{"op":"metrics"}"#,
];

#[test]
fn every_message_survives_every_split_point() {
    for message in MESSAGES {
        let wire = format!("{message}\n");
        let bytes = wire.as_bytes();
        for split in 0..=bytes.len() {
            let mut framer = LineFramer::new(MAX_LINE_BYTES);
            let mut frames = Vec::new();
            frames.extend(framer.push(&bytes[..split]).unwrap());
            frames.extend(framer.push(&bytes[split..]).unwrap());
            assert_eq!(
                frames,
                vec![Frame::Line((*message).to_string())],
                "{message:?} split at byte {split}"
            );
            let Frame::Line(line) = &frames[0] else { unreachable!() };
            parse_request(line).unwrap_or_else(|e| panic!("{message:?} at split {split}: {e}"));
        }
    }
}

#[test]
fn every_message_survives_byte_at_a_time_delivery() {
    for message in MESSAGES {
        let wire = format!("{message}\n");
        let mut framer = LineFramer::new(MAX_LINE_BYTES);
        let mut frames = Vec::new();
        for byte in wire.as_bytes() {
            frames.extend(framer.push(std::slice::from_ref(byte)).unwrap());
        }
        assert_eq!(frames, vec![Frame::Line((*message).to_string())], "{message:?} one byte/read");
        assert_eq!(framer.pending_bytes(), 0);
    }
}

#[test]
fn coalesced_multi_message_read_frames_each_request() {
    // All six requests arriving in a single read() — the common case
    // for a pipelining client — must frame into six lines, in order.
    let wire: String = MESSAGES.iter().map(|m| format!("{m}\n")).collect();
    let mut framer = LineFramer::new(MAX_LINE_BYTES);
    let frames = framer.push(wire.as_bytes()).unwrap();
    assert_eq!(frames.len(), MESSAGES.len());
    for (frame, message) in frames.iter().zip(MESSAGES) {
        assert_eq!(frame, &Frame::Line((*message).to_string()));
    }

    // Same stream with CRLF endings and interleaved blank lines.
    let wire: String = MESSAGES.iter().map(|m| format!("{m}\r\n\r\n")).collect();
    let mut framer = LineFramer::new(MAX_LINE_BYTES);
    let frames = framer.push(wire.as_bytes()).unwrap();
    assert_eq!(frames.len(), MESSAGES.len(), "blank lines must be skipped, not framed");
}

#[test]
fn overflow_is_fatal_even_when_split_across_reads() {
    let limit = 64;
    for chunk_size in [1usize, 7, 63, 64, 65, 200] {
        let mut framer = LineFramer::new(limit);
        let flood = vec![b'x'; 4 * limit];
        let mut error = None;
        for chunk in flood.chunks(chunk_size) {
            match framer.push(chunk) {
                Ok(frames) => assert!(frames.is_empty()),
                Err(e) => {
                    error = Some(e);
                    break;
                }
            }
        }
        assert_eq!(
            error,
            Some(FrameError::LineTooLong { limit }),
            "chunk size {chunk_size} never overflowed"
        );
        // Poisoned and drained: the oversized tail is not retained.
        assert_eq!(framer.pending_bytes(), 0);
        assert!(framer.push(b"{\"op\":\"stats\"}\n").is_err());
    }
}

/// Accepts up to `budget` bytes per readiness window, then WouldBlock —
/// a socket with a pathologically small send buffer.
struct TinySendBuffer {
    out: Vec<u8>,
    window: usize,
    budget: usize,
}

impl Write for TinySendBuffer {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.budget == 0 {
            return Err(io::Error::new(io::ErrorKind::WouldBlock, "send buffer full"));
        }
        let n = buf.len().min(self.budget);
        self.out.extend_from_slice(&buf[..n]);
        self.budget -= n;
        Ok(n)
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

#[test]
fn responses_resume_exactly_after_partial_writes() {
    // Queue a realistic response burst, then drain it through send
    // windows of 1..=9 bytes. Whatever the window, the byte stream must
    // come out identical — partial writes resume, never restart.
    let responses: Vec<String> =
        (0..8).map(|i| format!("{{\"ok\":true,\"score\":0.{i},\"version\":{i}}}\n")).collect();
    let expected: String = responses.concat();
    for window in 1..=9usize {
        let mut wb = WriteBuf::new();
        for response in &responses {
            wb.push(response.as_bytes());
        }
        let mut sink = TinySendBuffer { out: Vec::new(), window, budget: window };
        let mut rounds = 0;
        while !wb.flush_to(&mut sink).unwrap() {
            rounds += 1;
            assert!(rounds < 10_000, "window {window}: no progress");
            sink.budget = sink.window; // epoll reports writable again
        }
        assert_eq!(sink.out, expected.as_bytes(), "window {window}");
        assert!(wb.is_empty());
        assert!(
            rounds >= expected.len() / window.max(1) - 1,
            "window {window}: drained in {rounds} rounds — resumption untested"
        );
    }
}

#[test]
fn write_buf_interleaves_pushes_and_flushes() {
    // Pushing while earlier bytes are still stuck must append, not clobber.
    let mut wb = WriteBuf::new();
    wb.push(b"first\n");
    let mut sink = TinySendBuffer { out: Vec::new(), window: 4, budget: 4 };
    assert!(!wb.flush_to(&mut sink).unwrap());
    wb.push(b"second\n");
    assert_eq!(wb.pending_bytes(), "t\nsecond\n".len());
    loop {
        sink.budget = sink.window;
        if wb.flush_to(&mut sink).unwrap() {
            break;
        }
    }
    assert_eq!(sink.out, b"first\nsecond\n");
}
