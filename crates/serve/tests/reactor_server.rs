//! End-to-end reactor transport tests over real loopback TCP: ordered
//! pipelining, concurrent connections, the overflow/shed/idle protection
//! paths, and HTTP metrics scrapes — all against [`ReactorServer`].
//!
//! The shed tests pin down the admission-control contract: past
//! saturation every request still gets exactly one structured response
//! (`"error":"overloaded"`) on its own connection, in order — requests
//! are never silently dropped and connections never torn down.

#![cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64")))]

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use embed::EmbeddingMatrix;
use nn::{Mlp, OutputHead};
use par::ParConfig;
use rwserve::json::Json;
use rwserve::{BatchPolicy, EmbeddingStore, ReactorConfig, ReactorServer, Service};

const NODES: usize = 24;

fn make_service() -> Arc<Service> {
    let d = 4;
    let data: Vec<f32> = (0..NODES * d).map(|i| ((i % 9) as f32 - 4.0) * 0.1).collect();
    let emb = EmbeddingMatrix::from_vec(NODES, d, data);
    let store =
        Arc::new(EmbeddingStore::new(emb, Mlp::new(&[2 * d, 8, 1], OutputHead::Binary, 42)));
    Arc::new(Service::new(store, ParConfig::with_threads(2), BatchPolicy::default()))
}

fn start(config: ReactorConfig) -> ReactorServer {
    ReactorServer::start(make_service(), "127.0.0.1:0", config).expect("start reactor")
}

fn ask(reader: &mut BufReader<TcpStream>, stream: &mut TcpStream, line: &str) -> Json {
    stream.write_all(format!("{line}\n").as_bytes()).unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    assert!(!response.is_empty(), "connection closed after {line:?}");
    Json::parse(response.trim()).unwrap()
}

#[test]
fn serves_queries_over_tcp() {
    let server = start(ReactorConfig::default());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    let score = ask(&mut reader, &mut stream, r#"{"op":"link_score","u":1,"v":2}"#);
    assert_eq!(score.get("ok"), Some(&Json::Bool(true)));
    assert!(score.get("score").and_then(Json::as_f64).is_some());

    let topk = ask(&mut reader, &mut stream, r#"{"op":"topk","u":0,"k":2}"#);
    assert_eq!(topk.get("neighbors").and_then(Json::as_array).map(<[Json]>::len), Some(2));

    // Parse errors answer inline and the connection survives.
    let bad = ask(&mut reader, &mut stream, "{not json");
    assert_eq!(bad.get("ok"), Some(&Json::Bool(false)));
    let again = ask(&mut reader, &mut stream, r#"{"op":"stats"}"#);
    assert_eq!(again.get("ok"), Some(&Json::Bool(true)));

    server.shutdown();
}

#[test]
fn pipelined_responses_come_back_in_request_order() {
    // Requests route to different shards and complete out of order
    // internally; the reorder buffer must still emit responses in
    // request order. topk with k = i makes the order observable: the
    // i-th response must have exactly i neighbors.
    let server = start(ReactorConfig { shards: 4, ..ReactorConfig::default() });
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    let burst = 16usize;
    let mut wire = String::new();
    for i in 0..burst {
        let u = i % NODES;
        wire.push_str(&format!("{{\"op\":\"topk\",\"u\":{u},\"k\":{}}}\n", i + 1));
    }
    stream.write_all(wire.as_bytes()).unwrap();

    for i in 0..burst {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let v = Json::parse(line.trim()).unwrap();
        assert_eq!(v.get("ok"), Some(&Json::Bool(true)), "response {i}: {v}");
        let neighbors = v.get("neighbors").and_then(Json::as_array).map(<[Json]>::len);
        assert_eq!(neighbors, Some(i + 1), "response {i} out of order: {v}");
    }
    server.shutdown();
}

#[test]
fn concurrent_connections_are_served() {
    let server = start(ReactorConfig::default());
    let addr = server.local_addr();
    let handles: Vec<_> = (0..8u32)
        .map(|i| {
            std::thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                for round in 0..5 {
                    let u = (u64::from(i) * 5 + round) % NODES as u64;
                    let v = ask(
                        &mut reader,
                        &mut stream,
                        &format!("{{\"op\":\"embedding\",\"u\":{u}}}"),
                    );
                    assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(server.service().stats().embedding, 40);
    server.shutdown();
}

#[test]
fn half_close_still_receives_all_responses() {
    // The `nc <<EOF` pattern: client writes everything, shuts down its
    // write half, then reads. Every response must still arrive.
    let server = start(ReactorConfig::default());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut wire = String::new();
    for u in 0..10 {
        wire.push_str(&format!("{{\"op\":\"embedding\",\"u\":{u}}}\n"));
    }
    stream.write_all(wire.as_bytes()).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    let mut body = String::new();
    stream.read_to_string(&mut body).unwrap();
    let lines: Vec<&str> = body.lines().collect();
    assert_eq!(lines.len(), 10, "{body}");
    for line in lines {
        assert_eq!(Json::parse(line).unwrap().get("ok"), Some(&Json::Bool(true)));
    }
    server.shutdown();
}

#[test]
fn oversized_line_gets_structured_error_then_close() {
    let config = ReactorConfig { max_line_bytes: 256, ..ReactorConfig::default() };
    let server = start(config);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    // 4 KiB with no newline: must trip the 256-byte cap.
    stream.write_all(&vec![b'x'; 4096]).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let v = Json::parse(line.trim()).unwrap();
    assert_eq!(v.get("ok"), Some(&Json::Bool(false)), "{v}");
    assert!(
        v.get("error").and_then(Json::as_str).unwrap_or("").contains("exceeds 256 bytes"),
        "{v}"
    );
    // ... and the connection is closed afterwards.
    let mut rest = String::new();
    reader.read_line(&mut rest).unwrap();
    assert!(rest.is_empty(), "expected EOF after overflow, got {rest:?}");
    server.shutdown();
}

#[test]
fn shed_path_answers_overloaded_and_never_drops_requests() {
    // One shard with a budget of 2 and a heavy pipelined burst: the
    // reactor must shed — but every request still gets exactly one
    // response, connections stay open, and the queue-depth gauge never
    // exceeds the budget.
    let config = ReactorConfig { shards: 1, shard_budget: 2, ..ReactorConfig::default() };
    let server = start(config);
    let service = Arc::clone(server.service());
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    let burst = 400usize;
    let mut wire = String::new();
    for i in 0..burst {
        let (u, v) = (i % NODES, (i + 1) % NODES);
        wire.push_str(&format!("{{\"op\":\"link_score\",\"u\":{u},\"v\":{v}}}\n"));
    }
    stream.write_all(wire.as_bytes()).unwrap();

    let mut ok = 0usize;
    let mut overloaded = 0usize;
    for i in 0..burst {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(!line.is_empty(), "connection dropped at response {i}");
        let v = Json::parse(line.trim()).unwrap();
        if v.get("ok") == Some(&Json::Bool(true)) {
            ok += 1;
        } else {
            assert_eq!(
                v.get("error").and_then(Json::as_str),
                Some("overloaded"),
                "non-overload error under load: {v}"
            );
            assert!(v.get("detail").and_then(Json::as_str).is_some(), "{v}");
            overloaded += 1;
        }
    }
    assert_eq!(ok + overloaded, burst, "every request answered exactly once");
    assert!(ok > 0, "nothing succeeded under load");

    let snapshot = service.registry().snapshot();
    let depth = snapshot.gauge("serve_shard_queue_depth{shard=\"0\"}").unwrap_or(0);
    assert!(depth <= 2, "queue depth {depth} exceeded the admission budget");
    if overloaded > 0 {
        let shed = snapshot.counter("serve_shed_total").unwrap_or(0);
        assert!(shed as usize >= overloaded, "shed counter {shed} < {overloaded} responses");
    }

    // The connection survives shedding: a fresh request round-trips.
    let v = ask(&mut reader, &mut stream, r#"{"op":"stats"}"#);
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
    server.shutdown();
}

#[test]
fn connection_cap_sheds_new_connections_with_a_structured_line() {
    let config = ReactorConfig { max_conns: 1, ..ReactorConfig::default() };
    let server = start(config);
    let mut first = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(first.try_clone().unwrap());
    // Round-trip so the first connection is registered before the second
    // arrives.
    let v = ask(&mut reader, &mut first, r#"{"op":"stats"}"#);
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)));

    let mut second = TcpStream::connect(server.local_addr()).unwrap();
    let mut body = String::new();
    second.read_to_string(&mut body).unwrap(); // server closes after the notice
    let v = Json::parse(body.trim()).unwrap();
    assert_eq!(v.get("error").and_then(Json::as_str), Some("overloaded"), "{body:?}");
    assert!(v.get("detail").and_then(Json::as_str).unwrap_or("").contains("connection limit"));

    // The registered connection is unaffected.
    let v = ask(&mut reader, &mut first, r#"{"op":"stats"}"#);
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
    server.shutdown();
}

#[test]
fn idle_connections_time_out_with_a_notice() {
    let config =
        ReactorConfig { idle_timeout: Duration::from_millis(300), ..ReactorConfig::default() };
    let server = start(config);
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let v = ask(&mut reader, &mut stream, r#"{"op":"stats"}"#);
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)));

    // Go silent; the sweep (every ~100 ms) should close us with a notice.
    let mut line = String::new();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    reader.read_line(&mut line).unwrap();
    let v = Json::parse(line.trim()).unwrap();
    assert!(v.get("error").and_then(Json::as_str).unwrap_or("").contains("idle timeout"), "{v}");
    let mut rest = String::new();
    reader.read_line(&mut rest).unwrap();
    assert!(rest.is_empty(), "expected EOF after idle close");

    let snapshot = server.service().registry().snapshot();
    assert!(snapshot.counter("serve_conn_idle_closed_total").unwrap_or(0) >= 1);
    server.shutdown();
}

#[test]
fn http_get_metrics_scrapes_over_the_reactor() {
    let server = start(ReactorConfig::default());
    // Prime a counter on a JSON-lines connection first.
    {
        let mut json = TcpStream::connect(server.local_addr()).unwrap();
        let mut reader = BufReader::new(json.try_clone().unwrap());
        ask(&mut reader, &mut json, r#"{"op":"link_score","u":1,"v":2}"#);
    }
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream.write_all(b"GET /metrics HTTP/1.1\r\nHost: localhost\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.0 200 OK\r\n"), "{response}");
    let body = response.split("\r\n\r\n").nth(1).unwrap();
    assert!(body.contains(r#"serve_request_ns_count{op="link_score"} 1"#), "{body}");
    // The reactor's own metrics are in the same registry.
    assert!(body.contains("serve_connections_accepted_total"), "{body}");
    assert!(body.contains("serve_reactor_loop_ns"), "{body}");
    server.shutdown();
}

#[test]
fn shutdown_converges_with_open_connections() {
    let server = start(ReactorConfig::default());
    let _idle = TcpStream::connect(server.local_addr()).unwrap();
    let mut busy = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(busy.try_clone().unwrap());
    let v = ask(&mut reader, &mut busy, r#"{"op":"stats"}"#);
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
    server.shutdown(); // must join reactor + shard workers promptly
}
