//! Protocol robustness over real TCP: malformed JSON, unknown node ids,
//! and `k = 0` must each produce a structured error response while the
//! connection — and the server — keep working.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use embed::EmbeddingMatrix;
use nn::{Mlp, OutputHead};
use par::ParConfig;
use rwserve::json::Json;
use rwserve::{BatchPolicy, EmbeddingStore, Server, Service};

fn start_server() -> Server {
    let (n, d) = (20, 4);
    let data: Vec<f32> = (0..n * d).map(|i| ((i % 9) as f32 - 4.0) * 0.1).collect();
    let emb = EmbeddingMatrix::from_vec(n, d, data);
    let store =
        Arc::new(EmbeddingStore::new(emb, Mlp::new(&[2 * d, 8, 1], OutputHead::Binary, 42)));
    let service = Arc::new(Service::new(store, ParConfig::with_threads(2), BatchPolicy::default()));
    Server::start(service, "127.0.0.1:0", 2).expect("bind loopback")
}

fn ask(reader: &mut BufReader<TcpStream>, stream: &mut TcpStream, line: &str) -> Json {
    stream.write_all(format!("{line}\n").as_bytes()).unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    assert!(!response.is_empty(), "server closed the connection after {line:?}");
    Json::parse(response.trim()).unwrap()
}

fn assert_error(v: &Json, context: &str) -> String {
    assert_eq!(v.get("ok"), Some(&Json::Bool(false)), "{context}: expected ok=false, got {v}");
    v.get("error")
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("{context}: error response without message: {v}"))
        .to_string()
}

#[test]
fn bad_requests_get_structured_errors_and_the_connection_survives() {
    let server = start_server();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    // 1. Malformed JSON.
    let v = ask(&mut reader, &mut stream, "{this is not json!");
    let msg = assert_error(&v, "malformed JSON");
    assert!(msg.contains("invalid JSON"), "unhelpful message: {msg}");

    // 2. Valid JSON, not a valid request.
    let v = ask(&mut reader, &mut stream, r#"{"op":"warp_drive"}"#);
    assert!(assert_error(&v, "unknown op").contains("unknown op"));

    // 3. Unknown node id.
    let v = ask(&mut reader, &mut stream, r#"{"op":"link_score","u":0,"v":12345}"#);
    assert!(assert_error(&v, "unknown node").contains("unknown node id 12345"));
    let v = ask(&mut reader, &mut stream, r#"{"op":"embedding","u":9999}"#);
    assert!(assert_error(&v, "unknown node").contains("9999"));

    // 4. k = 0.
    let v = ask(&mut reader, &mut stream, r#"{"op":"topk","u":1,"k":0}"#);
    assert!(assert_error(&v, "zero k").contains("k must be at least 1"));

    // 5. Ingest without a refresher configured.
    let v = ask(&mut reader, &mut stream, r#"{"op":"ingest","edges":[[1,2,0.5]]}"#);
    assert!(assert_error(&v, "no refresher").contains("ingest unavailable"));

    // The same connection still answers good requests afterwards.
    let v = ask(&mut reader, &mut stream, r#"{"op":"link_score","u":1,"v":2}"#);
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)));

    // And the errors were counted, not swallowed.
    let v = ask(&mut reader, &mut stream, r#"{"op":"stats"}"#);
    let stats = v.get("stats").expect("stats payload");
    assert_eq!(stats.get("errors").and_then(Json::as_u64), Some(6));

    server.shutdown();
}

#[test]
fn an_aborted_connection_does_not_kill_the_server() {
    let server = start_server();
    let addr = server.local_addr();

    // Client 1 sends garbage and hangs up mid-protocol.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"\x00\xffgarbage without newline").unwrap();
    } // dropped: RST/FIN while the server may still be mid-read

    // Client 2 gets normal service.
    let mut stream = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let v = ask(&mut reader, &mut stream, r#"{"op":"topk","u":0,"k":3}"#);
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(v.get("neighbors").and_then(Json::as_array).map(<[Json]>::len), Some(3));

    server.shutdown();
}

#[test]
fn blank_lines_are_ignored_not_answered() {
    let server = start_server();
    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    stream.write_all(b"\n  \n").unwrap();
    // No response should arrive for blank lines; the next real request
    // gets the next response on the stream.
    let v = ask(&mut reader, &mut stream, r#"{"op":"embedding","u":0}"#);
    assert_eq!(v.get("ok"), Some(&Json::Bool(true)));
    assert!(v.get("embedding").is_some());

    server.shutdown();
}
