//! The JSON-lines wire protocol: one request object per line in, one
//! response object per line out.
//!
//! Requests (`op` selects the operation):
//!
//! ```text
//! {"op":"link_score","u":3,"v":17}
//! {"op":"embedding","u":3}
//! {"op":"topk","u":3,"k":5}
//! {"op":"ingest","edges":[[3,17,0.9],[17,4,0.95]]}
//! {"op":"stats"}
//! {"op":"metrics"}
//! ```
//!
//! Successful responses carry `"ok":true` plus the payload and the
//! snapshot `"version"` that answered them; failures carry `"ok":false`
//! and a human-readable `"error"` — and never terminate the connection.

use tgraph::{NodeId, TemporalEdge};

use crate::json::{obj, Json};

/// A parsed, validated protocol request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Link-existence probability for `(u, v)`.
    LinkScore {
        /// Source node.
        u: NodeId,
        /// Destination node.
        v: NodeId,
    },
    /// The embedding vector of `u`.
    Embedding {
        /// Node to look up.
        u: NodeId,
    },
    /// The `k` nearest neighbors of `u` by embedding dot product.
    TopK {
        /// Query node.
        u: NodeId,
        /// How many neighbors.
        k: usize,
    },
    /// Queue temporal edges for the next background refresh.
    Ingest {
        /// Edges as `(src, dst, time)`.
        edges: Vec<TemporalEdge>,
    },
    /// Serving counters.
    Stats,
    /// The service's metrics registry rendered as Prometheus text.
    Metrics,
}

impl Request {
    /// The node id that shard routing hashes, when the operation has one
    /// (`link_score`/`embedding`/`topk` key on `u`). Keyless operations
    /// (`ingest`, `stats`, `metrics`) return `None` and are routed by
    /// connection instead.
    pub fn routing_key(&self) -> Option<u64> {
        match self {
            Request::LinkScore { u, .. } | Request::Embedding { u } | Request::TopK { u, .. } => {
                Some(u64::from(*u))
            }
            Request::Ingest { .. } | Request::Stats | Request::Metrics => None,
        }
    }
}

/// Parses one request line. The error string is ready to embed in an
/// `"ok":false` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let v = Json::parse(line).map_err(|e| e.to_string())?;
    let op = v
        .get("op")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing string field \"op\"".to_string())?;
    match op {
        "link_score" => Ok(Request::LinkScore { u: node_field(&v, "u")?, v: node_field(&v, "v")? }),
        "embedding" => Ok(Request::Embedding { u: node_field(&v, "u")? }),
        "topk" => {
            let k = v
                .get("k")
                .and_then(Json::as_u64)
                .ok_or_else(|| "missing non-negative integer field \"k\"".to_string())?;
            Ok(Request::TopK { u: node_field(&v, "u")?, k: k as usize })
        }
        "ingest" => {
            let items = v
                .get("edges")
                .and_then(Json::as_array)
                .ok_or_else(|| "missing array field \"edges\"".to_string())?;
            let mut edges = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                edges.push(parse_edge(item).map_err(|e| format!("edges[{i}]: {e}"))?);
            }
            Ok(Request::Ingest { edges })
        }
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics),
        other => Err(format!("unknown op {other:?}")),
    }
}

fn node_field(v: &Json, name: &str) -> Result<NodeId, String> {
    let raw = v
        .get(name)
        .and_then(Json::as_u64)
        .ok_or_else(|| format!("missing non-negative integer field {name:?}"))?;
    NodeId::try_from(raw).map_err(|_| format!("field {name:?} exceeds the node id range"))
}

fn parse_edge(item: &Json) -> Result<TemporalEdge, String> {
    let parts = item.as_array().ok_or("expected [src, dst, time]")?;
    if parts.len() != 3 {
        return Err(format!("expected 3 elements, got {}", parts.len()));
    }
    let src = parts[0].as_u64().ok_or("src must be a non-negative integer")?;
    let dst = parts[1].as_u64().ok_or("dst must be a non-negative integer")?;
    let time = parts[2].as_f64().ok_or("time must be a number")?;
    let src = NodeId::try_from(src).map_err(|_| "src exceeds the node id range".to_string())?;
    let dst = NodeId::try_from(dst).map_err(|_| "dst exceeds the node id range".to_string())?;
    if !time.is_finite() {
        return Err("time must be finite".to_string());
    }
    Ok(TemporalEdge::new(src, dst, time))
}

/// An `"ok":false` response line (no trailing newline).
pub fn error_response(message: &str) -> String {
    obj([("ok", Json::Bool(false)), ("error", Json::Str(message.to_string()))]).to_string()
}

/// The structured load-shedding response: `"error":"overloaded"` so
/// clients can match on it exactly, plus a `"detail"` naming which
/// budget tripped. Shedding never closes the connection (except the
/// connection-cap path, where there is no connection to keep).
pub fn overloaded_response(detail: &str) -> String {
    obj([
        ("ok", Json::Bool(false)),
        ("error", Json::Str("overloaded".to_string())),
        ("detail", Json::Str(detail.to_string())),
    ])
    .to_string()
}

/// An `"ok":true` response with the payload fields and snapshot version.
pub fn ok_response(fields: Vec<(&'static str, Json)>, version: u64) -> String {
    let mut all = vec![("ok", Json::Bool(true))];
    all.extend(fields);
    all.push(("version", Json::Num(version as f64)));
    obj(all).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_every_op() {
        assert_eq!(
            parse_request(r#"{"op":"link_score","u":3,"v":17}"#),
            Ok(Request::LinkScore { u: 3, v: 17 })
        );
        assert_eq!(parse_request(r#"{"op":"embedding","u":0}"#), Ok(Request::Embedding { u: 0 }));
        assert_eq!(parse_request(r#"{"op":"topk","u":2,"k":5}"#), Ok(Request::TopK { u: 2, k: 5 }));
        assert_eq!(
            parse_request(r#"{"op":"ingest","edges":[[1,2,0.5],[2,3,0.75]]}"#),
            Ok(Request::Ingest {
                edges: vec![TemporalEdge::new(1, 2, 0.5), TemporalEdge::new(2, 3, 0.75)]
            })
        );
        assert_eq!(parse_request(r#"{"op":"stats"}"#), Ok(Request::Stats));
        assert_eq!(parse_request(r#"{"op":"metrics"}"#), Ok(Request::Metrics));
    }

    #[test]
    fn rejects_malformed_requests_with_messages() {
        for (line, needle) in [
            ("{not json", "invalid JSON"),
            (r#"{"u":1,"v":2}"#, "\"op\""),
            (r#"{"op":"frobnicate"}"#, "unknown op"),
            (r#"{"op":"link_score","u":1}"#, "\"v\""),
            (r#"{"op":"link_score","u":-1,"v":2}"#, "\"u\""),
            (r#"{"op":"link_score","u":1.5,"v":2}"#, "\"u\""),
            (r#"{"op":"link_score","u":"x","v":2}"#, "\"u\""),
            (r#"{"op":"link_score","u":5000000000,"v":2}"#, "node id range"),
            (r#"{"op":"topk","u":1}"#, "\"k\""),
            (r#"{"op":"ingest"}"#, "\"edges\""),
            (r#"{"op":"ingest","edges":[[1,2]]}"#, "edges[0]"),
            (r#"{"op":"ingest","edges":[[1,2,"t"]]}"#, "time"),
            (r#"{"op":"ingest","edges":[5]}"#, "edges[0]"),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(err.contains(needle), "error {err:?} for {line:?} missing {needle:?}");
        }
    }

    #[test]
    fn response_builders_emit_protocol_shapes() {
        let ok = ok_response(vec![("score", Json::Num(0.5))], 3);
        assert_eq!(ok, r#"{"ok":true,"score":0.5,"version":3}"#);
        let err = error_response("unknown node id 99");
        assert_eq!(err, r#"{"ok":false,"error":"unknown node id 99"}"#);
    }
}
