//! Raw `epoll`/`eventfd` syscalls for the readiness-driven reactor.
//!
//! The workspace is dependency-free, so — following the raw-syscall mmap
//! precedent in `crates/store` — the reactor talks to the kernel
//! directly: `epoll_create1`, `epoll_ctl`, `epoll_pwait`, and `eventfd2`
//! via inline-asm syscalls on Linux x86_64/aarch64. Sockets themselves
//! stay `std::net` (`TcpListener`/`TcpStream` in nonblocking mode); only
//! the readiness machinery needs syscalls std does not expose.
//!
//! Safety argument: every wrapper passes kernel-owned integers (fds,
//! timeouts) or pointers to stack/heap buffers whose lifetimes cover the
//! call (`epoll_pwait` writes into the caller's event slice, bounded by
//! its length; `eventfd` reads/writes touch one local `u64`). The kernel
//! signals failure by returning `-errno` in `-4095..0`, which each
//! wrapper converts to `std::io::Error`; no wrapper dereferences a
//! returned pointer.

use std::io;

#[cfg(target_arch = "x86_64")]
mod nr {
    pub const READ: usize = 0;
    pub const WRITE: usize = 1;
    pub const CLOSE: usize = 3;
    pub const EPOLL_CTL: usize = 233;
    pub const EPOLL_PWAIT: usize = 281;
    pub const EVENTFD2: usize = 290;
    pub const EPOLL_CREATE1: usize = 291;
}

#[cfg(target_arch = "aarch64")]
mod nr {
    pub const READ: usize = 63;
    pub const WRITE: usize = 64;
    pub const CLOSE: usize = 57;
    pub const EPOLL_CTL: usize = 21;
    pub const EPOLL_PWAIT: usize = 22;
    pub const EVENTFD2: usize = 19;
    pub const EPOLL_CREATE1: usize = 20;
}

/// Readiness: data to read (or a pending accept).
pub const EPOLLIN: u32 = 0x001;
/// Readiness: the socket send buffer has room.
pub const EPOLLOUT: u32 = 0x004;
/// Error condition (always reported, no need to register).
pub const EPOLLERR: u32 = 0x008;
/// Hangup (always reported, no need to register).
pub const EPOLLHUP: u32 = 0x010;
/// Peer closed its write half.
pub const EPOLLRDHUP: u32 = 0x2000;

/// `epoll_ctl` op: register a new fd.
pub const EPOLL_CTL_ADD: i32 = 1;
/// `epoll_ctl` op: unregister an fd.
pub const EPOLL_CTL_DEL: i32 = 2;
/// `epoll_ctl` op: change an fd's interest mask.
pub const EPOLL_CTL_MOD: i32 = 3;

const EFD_NONBLOCK: usize = 0x800;

/// The kernel's `struct epoll_event`: an interest/readiness mask plus a
/// caller-chosen 64-bit token. x86_64 is the one ABI where the kernel
/// packs the struct (no padding between the `u32` and the `u64`);
/// everywhere else it has natural alignment.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Debug, Clone, Copy, Default)]
pub struct EpollEvent {
    /// EPOLL* bit mask.
    pub events: u32,
    /// Opaque token, returned verbatim with each readiness report.
    pub data: u64,
}

#[cfg(target_arch = "x86_64")]
unsafe fn syscall4(n: usize, a: usize, b: usize, c: usize, d: usize) -> isize {
    let ret: isize;
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") n => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret
}

#[cfg(target_arch = "x86_64")]
unsafe fn syscall5(n: usize, a: usize, b: usize, c: usize, d: usize, e: usize) -> isize {
    let ret: isize;
    unsafe {
        std::arch::asm!(
            "syscall",
            inlateout("rax") n => ret,
            in("rdi") a,
            in("rsi") b,
            in("rdx") c,
            in("r10") d,
            in("r8") e,
            lateout("rcx") _,
            lateout("r11") _,
            options(nostack),
        );
    }
    ret
}

#[cfg(target_arch = "aarch64")]
unsafe fn syscall4(n: usize, a: usize, b: usize, c: usize, d: usize) -> isize {
    let ret: isize;
    unsafe {
        std::arch::asm!(
            "svc 0",
            in("x8") n,
            inlateout("x0") a => ret,
            in("x1") b,
            in("x2") c,
            in("x3") d,
            options(nostack),
        );
    }
    ret
}

#[cfg(target_arch = "aarch64")]
unsafe fn syscall5(n: usize, a: usize, b: usize, c: usize, d: usize, e: usize) -> isize {
    let ret: isize;
    unsafe {
        std::arch::asm!(
            "svc 0",
            in("x8") n,
            inlateout("x0") a => ret,
            in("x1") b,
            in("x2") c,
            in("x3") d,
            in("x4") e,
            options(nostack),
        );
    }
    ret
}

fn check(ret: isize) -> io::Result<isize> {
    if (-4095..0).contains(&ret) {
        Err(io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret)
    }
}

/// An owned epoll instance fd; closed on drop.
#[derive(Debug)]
pub struct Epoll {
    fd: i32,
}

impl Epoll {
    /// Creates a new epoll instance.
    pub fn new() -> io::Result<Self> {
        let ret = check(unsafe { syscall4(nr::EPOLL_CREATE1, 0, 0, 0, 0) })?;
        Ok(Self { fd: ret as i32 })
    }

    /// Registers `fd` with interest `events` and token `data`.
    pub fn add(&self, fd: i32, events: u32, data: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, data)
    }

    /// Changes `fd`'s interest mask (token is re-specified).
    pub fn modify(&self, fd: i32, events: u32, data: u64) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, data)
    }

    /// Unregisters `fd`.
    pub fn delete(&self, fd: i32) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
    }

    fn ctl(&self, op: i32, fd: i32, events: u32, data: u64) -> io::Result<()> {
        let ev = EpollEvent { events, data };
        check(unsafe {
            syscall4(
                nr::EPOLL_CTL,
                self.fd as usize,
                op as usize,
                fd as usize,
                std::ptr::addr_of!(ev) as usize,
            )
        })?;
        Ok(())
    }

    /// Blocks until readiness (or `timeout_ms`, or a signal), filling
    /// `events`. Returns how many entries were written. A negative
    /// timeout blocks indefinitely; `EINTR` is reported as zero events
    /// rather than an error, so callers just loop.
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> io::Result<usize> {
        let ret = unsafe {
            syscall5(
                nr::EPOLL_PWAIT,
                self.fd as usize,
                events.as_mut_ptr() as usize,
                events.len(),
                timeout_ms as usize,
                0, // no signal mask
            )
        };
        match check(ret) {
            Ok(n) => Ok(n as usize),
            Err(e) if e.kind() == io::ErrorKind::Interrupted => Ok(0),
            Err(e) => Err(e),
        }
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        let _ = unsafe { syscall4(nr::CLOSE, self.fd as usize, 0, 0, 0) };
    }
}

/// An owned nonblocking eventfd: the reactor's cross-thread wakeup
/// primitive. Shard workers [`EventFd::signal`] it after pushing
/// completions; the reactor registers it in the epoll set and
/// [`EventFd::drain`]s it when it fires.
#[derive(Debug)]
pub struct EventFd {
    fd: i32,
}

impl EventFd {
    /// Creates a nonblocking eventfd with counter 0.
    pub fn new() -> io::Result<Self> {
        let ret = check(unsafe { syscall4(nr::EVENTFD2, 0, EFD_NONBLOCK, 0, 0) })?;
        Ok(Self { fd: ret as i32 })
    }

    /// The raw fd (for epoll registration).
    pub fn fd(&self) -> i32 {
        self.fd
    }

    /// Adds 1 to the counter, waking any epoll wait. Safe from any
    /// thread; errors are ignored (the counter saturating still wakes).
    pub fn signal(&self) {
        let one: u64 = 1;
        let _ = unsafe {
            syscall4(nr::WRITE, self.fd as usize, std::ptr::addr_of!(one) as usize, 8, 0)
        };
    }

    /// Resets the counter to 0 so level-triggered epoll stops reporting
    /// it readable.
    pub fn drain(&self) {
        let mut buf: u64 = 0;
        let _ = unsafe {
            syscall4(nr::READ, self.fd as usize, std::ptr::addr_of_mut!(buf) as usize, 8, 0)
        };
    }
}

impl Drop for EventFd {
    fn drop(&mut self) {
        let _ = unsafe { syscall4(nr::CLOSE, self.fd as usize, 0, 0, 0) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventfd_signal_wakes_epoll_and_drain_quiesces() {
        let ep = Epoll::new().unwrap();
        let ev = EventFd::new().unwrap();
        ep.add(ev.fd(), EPOLLIN, 7).unwrap();

        let mut events = [EpollEvent::default(); 4];
        // Nothing signaled: a zero timeout returns immediately with none.
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);

        ev.signal();
        assert_eq!(ep.wait(&mut events, 1000).unwrap(), 1);
        // Copy out of the (possibly packed) struct before asserting.
        let (data, mask) = (events[0].data, events[0].events);
        assert_eq!(data, 7);
        assert_ne!(mask & EPOLLIN, 0);

        // Draining clears level-triggered readiness.
        ev.drain();
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }

    #[test]
    fn epoll_reports_listener_accept_readiness() {
        use std::net::{TcpListener, TcpStream};
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let ep = Epoll::new().unwrap();
        {
            use std::os::unix::io::AsRawFd;
            ep.add(listener.as_raw_fd(), EPOLLIN, 1).unwrap();
        }
        let mut events = [EpollEvent::default(); 4];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0, "no pending accept yet");
        let _client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let n = ep.wait(&mut events, 2000).unwrap();
        assert_eq!(n, 1);
        let data = events[0].data;
        assert_eq!(data, 1);
    }

    #[test]
    fn delete_unregisters() {
        let ep = Epoll::new().unwrap();
        let ev = EventFd::new().unwrap();
        ep.add(ev.fd(), EPOLLIN, 3).unwrap();
        ev.signal();
        ep.delete(ev.fd()).unwrap();
        let mut events = [EpollEvent::default(); 4];
        assert_eq!(ep.wait(&mut events, 0).unwrap(), 0);
    }
}
