//! Sans-IO per-connection state machines: JSON-lines framing on the read
//! side, partial-write resumption on the write side.
//!
//! Both are pure byte-in/byte-out structs with no socket inside, so the
//! test suite can drive every split point of every protocol message
//! through them without a kernel (tests/reactor_framing.rs). The reactor
//! owns one of each per connection and wires them to a nonblocking
//! `TcpStream`.

use std::collections::VecDeque;
use std::io::{self, Write};

/// Default cap on one accumulated request line. A JSON-lines client that
/// never sends a newline would otherwise grow the read buffer without
/// bound — a slow-loris OOM. One MiB comfortably fits the largest
/// legitimate request (a multi-thousand-edge `ingest` batch) while
/// bounding per-connection memory.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// What [`LineFramer::push`] extracted from the stream so far.
#[derive(Debug, PartialEq, Eq)]
pub enum Frame {
    /// One complete newline-terminated line (newline stripped, trimmed).
    /// Empty lines are skipped, not framed.
    Line(String),
    /// The stream opened with `GET ` — an HTTP scrape, not JSON lines.
    /// Carries the request path (e.g. `/metrics`).
    HttpGet(String),
}

/// Why the framer refused more input. Both are connection-fatal: the
/// caller sends one structured error line and closes after flushing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The accumulated line exceeded the cap without a newline.
    LineTooLong {
        /// The configured cap that was exceeded.
        limit: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::LineTooLong { limit } => {
                write!(f, "request line exceeds {limit} bytes without a newline")
            }
        }
    }
}

/// Incremental newline-delimited framing over arbitrarily chunked reads.
///
/// Feed whatever the socket returned — single bytes, half messages,
/// twelve coalesced messages — and get back exactly the complete lines,
/// independent of chunking. Once an error is returned the framer is
/// poisoned and returns the same error for all further input.
#[derive(Debug)]
pub struct LineFramer {
    buf: Vec<u8>,
    max_line: usize,
    poisoned: bool,
}

impl LineFramer {
    /// A framer enforcing `max_line` bytes per accumulated line.
    pub fn new(max_line: usize) -> Self {
        Self { buf: Vec::new(), max_line, poisoned: false }
    }

    /// Appends `data` and extracts every line completed by it.
    ///
    /// # Errors
    ///
    /// [`FrameError::LineTooLong`] once the unterminated tail exceeds the
    /// cap, or when a line completed by this push is itself longer than
    /// the cap (so the verdict never depends on how the stream was
    /// chunked). Lines completed by this same push are still returned by
    /// the *previous* calls; the erroring call returns only the error
    /// (the connection is closing anyway).
    pub fn push(&mut self, data: &[u8]) -> Result<Vec<Frame>, FrameError> {
        if self.poisoned {
            return Err(FrameError::LineTooLong { limit: self.max_line });
        }
        self.buf.extend_from_slice(data);
        let mut frames = Vec::new();
        let mut start = 0;
        while let Some(rel) = self.buf[start..].iter().position(|&b| b == b'\n') {
            if rel > self.max_line {
                // A completed line longer than the cap. Had the same bytes
                // arrived split before the newline, the tail check below
                // would already have poisoned the connection — accepting
                // the line here would make framing chunking-dependent.
                self.poisoned = true;
                self.buf = Vec::new();
                return Err(FrameError::LineTooLong { limit: self.max_line });
            }
            let line = &self.buf[start..start + rel];
            let text = String::from_utf8_lossy(line);
            let trimmed = text.trim();
            if !trimmed.is_empty() {
                if let Some(path) = trimmed.strip_prefix("GET ") {
                    let path = path.split_whitespace().next().unwrap_or("").to_string();
                    frames.push(Frame::HttpGet(path));
                } else {
                    frames.push(Frame::Line(trimmed.to_string()));
                }
            }
            start += rel + 1;
        }
        self.buf.drain(..start);
        if self.buf.len() > self.max_line {
            self.poisoned = true;
            self.buf = Vec::new(); // release the oversized tail immediately
            return Err(FrameError::LineTooLong { limit: self.max_line });
        }
        Ok(frames)
    }

    /// Bytes buffered waiting for a newline.
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }
}

/// Outbound bytes with partial-write resumption.
///
/// Responses are appended whole; [`WriteBuf::flush_to`] pushes as much as
/// the sink accepts and keeps the cursor, so a connection whose send
/// buffer fills mid-response resumes exactly where it stopped when epoll
/// reports it writable again.
#[derive(Debug, Default)]
pub struct WriteBuf {
    queue: VecDeque<u8>,
}

impl WriteBuf {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queues `bytes` for transmission.
    pub fn push(&mut self, bytes: &[u8]) {
        self.queue.extend(bytes);
    }

    /// True when every queued byte has been flushed.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Bytes still waiting to be written.
    pub fn pending_bytes(&self) -> usize {
        self.queue.len()
    }

    /// Writes as much as `sink` accepts (retrying after short writes).
    /// Returns `Ok(true)` when the buffer fully drained, `Ok(false)` when
    /// the sink applied backpressure (`WouldBlock`) and bytes remain.
    ///
    /// # Errors
    ///
    /// Propagates any sink error other than `WouldBlock`/`Interrupted`
    /// (e.g. a peer reset) — the connection is dead.
    pub fn flush_to(&mut self, sink: &mut impl Write) -> io::Result<bool> {
        while !self.queue.is_empty() {
            let (head, _) = self.queue.as_slices();
            match sink.write(head) {
                Ok(0) => {
                    return Err(io::Error::new(io::ErrorKind::WriteZero, "sink accepted 0 bytes"))
                }
                Ok(n) => {
                    self.queue.drain(..n);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_are_chunking_independent() {
        let stream = b"{\"op\":\"stats\"}\n{\"op\":\"metrics\"}\n";
        for split in 0..stream.len() {
            let mut f = LineFramer::new(MAX_LINE_BYTES);
            let mut got = Vec::new();
            got.extend(f.push(&stream[..split]).unwrap());
            got.extend(f.push(&stream[split..]).unwrap());
            assert_eq!(
                got,
                vec![
                    Frame::Line("{\"op\":\"stats\"}".into()),
                    Frame::Line("{\"op\":\"metrics\"}".into())
                ],
                "split at byte {split}"
            );
        }
    }

    #[test]
    fn empty_and_whitespace_lines_are_skipped() {
        let mut f = LineFramer::new(64);
        assert_eq!(f.push(b"\n  \n\r\nx\n").unwrap(), vec![Frame::Line("x".into())]);
    }

    #[test]
    fn http_get_is_recognized() {
        let mut f = LineFramer::new(64);
        assert_eq!(
            f.push(b"GET /metrics HTTP/1.1\r\n").unwrap(),
            vec![Frame::HttpGet("/metrics".into())]
        );
    }

    #[test]
    fn overlong_line_poisons() {
        let mut f = LineFramer::new(8);
        assert!(f.push(b"12345678").unwrap().is_empty()); // exactly at cap: still waiting
        let err = f.push(b"9").unwrap_err();
        assert_eq!(err, FrameError::LineTooLong { limit: 8 });
        assert_eq!(f.pending_bytes(), 0, "oversized tail is released");
        // Poisoned: even a clean newline no longer produces frames.
        assert!(f.push(b"ok\n").is_err());
    }

    /// Found by the fuzz harness (`rwalk-fuzz`, framer target): a
    /// terminated line longer than the cap was accepted when delivered in
    /// one push, but poisoned the framer when the same bytes arrived
    /// split before the newline — the verdict depended on chunking.
    /// Minimized corpus entry: crates/fuzz/tests/corpus/framer/overlong-terminated-line.bin
    #[test]
    fn overlong_terminated_line_rejected_regardless_of_chunking() {
        let line = b"123456789\n"; // 9 payload bytes, cap 8
                                   // One push: must poison, not frame.
        let mut f = LineFramer::new(8);
        let err = f.push(line).unwrap_err();
        assert_eq!(err, FrameError::LineTooLong { limit: 8 });
        assert!(f.push(b"ok\n").is_err(), "framer stays poisoned");
        // Every split point must agree with the one-shot verdict.
        for split in 0..line.len() {
            let mut f = LineFramer::new(8);
            let first = f.push(&line[..split]);
            let verdict = first.and_then(|_| f.push(&line[split..]));
            assert!(verdict.is_err(), "split at byte {split} accepted an overlong line");
        }
        // A line of exactly the cap is fine from every split point, since
        // an exactly-cap unterminated tail is also fine.
        let ok_line = b"12345678\n";
        for split in 0..ok_line.len() {
            let mut f = LineFramer::new(8);
            let mut got = Vec::new();
            got.extend(f.push(&ok_line[..split]).unwrap());
            got.extend(f.push(&ok_line[split..]).unwrap());
            assert_eq!(got, vec![Frame::Line("12345678".into())], "split at byte {split}");
        }
    }

    #[test]
    fn write_buf_resumes_partial_writes() {
        // Accepts `cap` bytes, then reports WouldBlock until the next
        // "readiness" — a tiny-send-buffer socket in miniature.
        struct Trickle {
            out: Vec<u8>,
            cap: usize,
            budget: usize,
        }
        impl Write for Trickle {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.budget == 0 {
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "full"));
                }
                let n = buf.len().min(self.budget);
                self.out.extend_from_slice(&buf[..n]);
                self.budget -= n;
                Ok(n)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let mut wb = WriteBuf::new();
        wb.push(b"{\"ok\":true}\n");
        wb.push(b"{\"ok\":false}\n");
        let mut sink = Trickle { out: Vec::new(), cap: 3, budget: 3 };
        let mut rounds = 0;
        loop {
            rounds += 1;
            if wb.flush_to(&mut sink).unwrap() {
                break;
            }
            sink.budget = sink.cap; // epoll says writable again
        }
        assert_eq!(sink.out, b"{\"ok\":true}\n{\"ok\":false}\n");
        assert!(wb.is_empty());
        assert!(rounds >= 8, "3-byte budget forces many resumptions, got {rounds}");
    }
}
