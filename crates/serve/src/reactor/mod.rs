//! The readiness-driven serve front end: one epoll event loop, N shard
//! workers, explicit admission control.
//!
//! The blocking server ([`crate::Server`]) parks one thread per
//! connection, so connection count — not CPU — caps throughput, and a
//! growing batcher queue has no backpressure. This module replaces the
//! front end with a reactor (DESIGN.md §15):
//!
//! - **One event loop** (`epoll`, raw syscalls in [`sys`] following the
//!   `crates/store` mmap precedent) owns the listener, every connection,
//!   and an eventfd the shard workers use to hand finished responses
//!   back. Sockets are nonblocking; per-connection state machines
//!   ([`conn`]) handle JSON-lines framing across arbitrary read
//!   boundaries and resume partial writes when send buffers fill.
//! - **Shard workers** ([`crate::shard`]) own disjoint consistent-hash
//!   ranges of the request key space. The reactor parses on the loop and
//!   submits; a worker drains its queue in one gulp and pushes all the
//!   `link_score`s through one pipelined micro-batcher submission, so
//!   the GEMM coalescer fills from every connection at once.
//! - **Admission control**: each shard queues at most a budget of
//!   pending requests; past it the reactor answers
//!   `{"ok":false,"error":"overloaded"}` immediately instead of
//!   queueing (bounded memory, bounded queueing delay — throughput
//!   degrades gracefully past saturation). A connection cap sheds
//!   whole connections the same way, and idle connections time out.
//!
//! Responses can complete out of submission order (different shards),
//! so the reactor holds a per-connection reorder buffer keyed by a
//! sequence number and writes strictly in request order — the wire
//! contract of the JSON-lines protocol is unchanged.

pub mod conn;

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"), not(miri)))]
pub mod sys;

use std::time::Duration;

/// Tuning knobs for [`ReactorServer::start`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReactorConfig {
    /// Number of shard workers. `0` picks a default from the host's
    /// available parallelism (clamped to 2..=8).
    pub shards: usize,
    /// Admission budget: pending requests each shard queues before the
    /// reactor starts shedding with structured `overloaded` errors.
    pub shard_budget: usize,
    /// Connection cap: accepts beyond it receive one `overloaded` line
    /// and are closed immediately.
    pub max_conns: usize,
    /// Connections idle longer than this (no bytes read, nothing in
    /// flight) are closed with a structured notice.
    pub idle_timeout: Duration,
    /// Per-line framing cap (see [`conn::MAX_LINE_BYTES`]).
    pub max_line_bytes: usize,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        Self {
            shards: 0,
            shard_budget: 1024,
            max_conns: 4096,
            idle_timeout: Duration::from_secs(60),
            max_line_bytes: conn::MAX_LINE_BYTES,
        }
    }
}

impl ReactorConfig {
    /// The shard count [`ReactorConfig::shards`] resolves to on this host.
    pub fn resolved_shards(&self) -> usize {
        if self.shards > 0 {
            self.shards
        } else {
            std::thread::available_parallelism().map_or(2, std::num::NonZeroUsize::get).clamp(2, 8)
        }
    }
}

#[cfg(all(target_os = "linux", any(target_arch = "x86_64", target_arch = "aarch64"), not(miri)))]
mod imp {
    use std::collections::{BTreeMap, HashMap};
    use std::io::{self, Read, Write};
    use std::net::{SocketAddr, TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::thread;
    use std::time::{Duration, Instant};

    use super::conn::{Frame, FrameError, LineFramer, WriteBuf};
    use super::sys::{
        Epoll, EpollEvent, EventFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT, EPOLLRDHUP,
    };
    use super::ReactorConfig;
    use crate::protocol::{overloaded_response, parse_request};
    use crate::shard::{CompletionQueue, Job, ShardPool};
    use crate::Service;

    const LISTENER_TOKEN: u64 = 0;
    const WAKE_TOKEN: u64 = 1;
    const FIRST_CONN_TOKEN: u64 = 2;
    /// Upper bound on readiness reports drained per `epoll_wait`.
    const EVENTS_PER_WAIT: usize = 256;
    /// The loop re-checks the stop flag and idle deadlines at least this
    /// often even with no readiness.
    const WAIT_TIMEOUT_MS: i32 = 100;

    /// A running reactor server. Stops (and joins the event loop and all
    /// shard workers) on drop.
    pub struct ReactorServer {
        local_addr: SocketAddr,
        stop: Arc<AtomicBool>,
        wake: Arc<EventFd>,
        thread: Option<thread::JoinHandle<()>>,
        service: Arc<Service>,
    }

    impl std::fmt::Debug for ReactorServer {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("ReactorServer")
                .field("local_addr", &self.local_addr)
                .finish_non_exhaustive()
        }
    }

    impl ReactorServer {
        /// Binds `addr` (port 0 for OS-assigned) and starts the event
        /// loop plus the shard worker pool over `service`.
        ///
        /// # Errors
        ///
        /// Any socket/epoll/eventfd setup error.
        pub fn start(service: Arc<Service>, addr: &str, config: ReactorConfig) -> io::Result<Self> {
            let listener = TcpListener::bind(addr)?;
            listener.set_nonblocking(true)?;
            let local_addr = listener.local_addr()?;
            let epoll = Epoll::new()?;
            let wake = Arc::new(EventFd::new()?);
            epoll.add(listener.as_raw_fd(), EPOLLIN, LISTENER_TOKEN)?;
            epoll.add(wake.fd(), EPOLLIN, WAKE_TOKEN)?;

            let stop = Arc::new(AtomicBool::new(false));
            let completions = Arc::new(CompletionQueue::new());
            let worker_wake = Arc::clone(&wake);
            let shards = ShardPool::new(
                &service,
                &completions,
                Arc::new(move || worker_wake.signal()),
                config.resolved_shards(),
                config.shard_budget.max(1),
            );

            let rec = obs::Recorder::with_registry(Arc::clone(service.registry()));
            let mut reactor = Reactor {
                listener,
                epoll,
                wake: Arc::clone(&wake),
                stop: Arc::clone(&stop),
                service: Arc::clone(&service),
                shards,
                completions,
                config,
                conns: HashMap::new(),
                next_token: FIRST_CONN_TOKEN,
                last_sweep: Instant::now(),
                loop_ns: rec.histogram("serve_reactor_loop_ns"),
                shed_total: rec.counter("serve_shed_total"),
                accepted_total: rec.counter("serve_connections_accepted_total"),
                active: rec.gauge("serve_connections_active"),
                overflow_closed: rec.counter("serve_conn_overflow_closed_total"),
                idle_closed: rec.counter("serve_conn_idle_closed_total"),
            };
            let thread = thread::Builder::new()
                .name("rwserve-reactor".to_string())
                .spawn(move || reactor.run())
                .expect("spawn reactor thread");
            Ok(Self { local_addr, stop, wake, thread: Some(thread), service })
        }

        /// The bound address (with the OS-assigned port resolved).
        pub fn local_addr(&self) -> SocketAddr {
            self.local_addr
        }

        /// The service behind the transport.
        pub fn service(&self) -> &Arc<Service> {
            &self.service
        }

        /// Stops the event loop, drains shard workers, joins all threads.
        pub fn shutdown(mut self) {
            self.stop_and_join();
        }

        fn stop_and_join(&mut self) {
            self.stop.store(true, Ordering::Release);
            self.wake.signal();
            if let Some(handle) = self.thread.take() {
                let _ = handle.join();
            }
        }
    }

    impl Drop for ReactorServer {
        fn drop(&mut self) {
            self.stop_and_join();
        }
    }

    /// Per-connection reactor state: the socket, both sans-IO state
    /// machines, and the response reorder buffer.
    struct Conn {
        stream: TcpStream,
        framer: LineFramer,
        out: WriteBuf,
        /// Sequence number the next parsed request will get.
        next_seq: u64,
        /// Next sequence number to append to `out` — responses with
        /// higher seqs wait in `ready` until their predecessors land.
        next_flush: u64,
        /// Completed responses that arrived out of order.
        ready: BTreeMap<u64, String>,
        last_activity: Instant,
        /// Peer closed its write half (EOF read); finish in-flight work,
        /// flush, then close.
        read_done: bool,
        /// Fatal-path flag (framing overflow, HTTP response, idle
        /// timeout): stop reading, flush `out`, close.
        closing: bool,
        /// Whether EPOLLOUT is currently part of the interest mask.
        want_write: bool,
    }

    impl Conn {
        /// True once every accepted request has been answered in order.
        fn drained(&self) -> bool {
            self.next_flush == self.next_seq
        }

        /// Moves contiguous completed responses into the write buffer.
        fn flush_ready(&mut self) {
            while let Some(response) = self.ready.remove(&self.next_flush) {
                self.out.push(response.as_bytes());
                self.out.push(b"\n");
                self.next_flush += 1;
            }
        }

        /// Pushes buffered bytes to the socket. `Err` means the
        /// connection is dead.
        fn flush_out(&mut self) -> io::Result<bool> {
            self.out.flush_to(&mut self.stream)
        }
    }

    struct Reactor {
        listener: TcpListener,
        epoll: Epoll,
        wake: Arc<EventFd>,
        stop: Arc<AtomicBool>,
        service: Arc<Service>,
        shards: ShardPool,
        completions: Arc<CompletionQueue>,
        config: ReactorConfig,
        conns: HashMap<u64, Conn>,
        next_token: u64,
        last_sweep: Instant,
        loop_ns: obs::HistogramHandle,
        shed_total: obs::CounterHandle,
        accepted_total: obs::CounterHandle,
        active: obs::GaugeHandle,
        overflow_closed: obs::CounterHandle,
        idle_closed: obs::CounterHandle,
    }

    impl Reactor {
        fn run(&mut self) {
            let mut events = [EpollEvent::default(); EVENTS_PER_WAIT];
            while !self.stop.load(Ordering::Acquire) {
                let n = match self.epoll.wait(&mut events, WAIT_TIMEOUT_MS) {
                    Ok(n) => n,
                    Err(_) => break, // epoll itself failed; nothing to salvage
                };
                let started = Instant::now();
                for ev in &events[..n] {
                    match ev.data {
                        LISTENER_TOKEN => self.accept_ready(),
                        WAKE_TOKEN => self.wake.drain(),
                        token => self.conn_ready(token, ev.events),
                    }
                }
                self.deliver_completions();
                self.sweep_idle();
                self.loop_ns.record_duration(started.elapsed());
            }
        }

        /// Accepts until the listener would block, shedding connections
        /// past the cap with one structured line.
        fn accept_ready(&mut self) {
            loop {
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        self.accepted_total.inc();
                        if self.conns.len() >= self.config.max_conns {
                            self.shed_total.inc();
                            let mut stream = stream;
                            let _ = stream.set_nonblocking(true);
                            let mut line = overloaded_response("connection limit reached");
                            line.push('\n');
                            let _ = stream.write(line.as_bytes());
                            continue; // dropped => closed
                        }
                        if stream.set_nonblocking(true).is_err() {
                            continue;
                        }
                        let _ = stream.set_nodelay(true);
                        let token = self.next_token;
                        self.next_token += 1;
                        if self.epoll.add(stream.as_raw_fd(), EPOLLIN | EPOLLRDHUP, token).is_err()
                        {
                            continue;
                        }
                        self.conns.insert(
                            token,
                            Conn {
                                stream,
                                framer: LineFramer::new(self.config.max_line_bytes),
                                out: WriteBuf::new(),
                                next_seq: 0,
                                next_flush: 0,
                                ready: BTreeMap::new(),
                                last_activity: Instant::now(),
                                read_done: false,
                                closing: false,
                                want_write: false,
                            },
                        );
                        self.active.add(1);
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(_) => break,
                }
            }
        }

        /// Handles readiness on one connection.
        fn conn_ready(&mut self, token: u64, events: u32) {
            if !self.conns.contains_key(&token) {
                return; // closed earlier in this batch; token never reused
            }
            if events & (EPOLLERR | EPOLLHUP) != 0 {
                self.close(token);
                return;
            }
            if events & EPOLLOUT != 0 {
                let Some(conn) = self.conns.get_mut(&token) else { return };
                match conn.flush_out() {
                    Ok(_) => {}
                    Err(_) => {
                        self.close(token);
                        return;
                    }
                }
            }
            if events & (EPOLLIN | EPOLLRDHUP) != 0 && self.read_ready(token).is_err() {
                self.close(token);
                return;
            }
            self.settle(token);
        }

        /// Reads until WouldBlock, framing and routing each complete
        /// request. `Err` means the connection died mid-read.
        fn read_ready(&mut self, token: u64) -> Result<(), ()> {
            let mut chunk = [0u8; 16 * 1024];
            loop {
                let Some(conn) = self.conns.get_mut(&token) else { return Ok(()) };
                if conn.closing || conn.read_done {
                    return Ok(()); // input no longer welcome
                }
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        // EOF: the peer finished sending (e.g. `nc <<EOF`
                        // half-close). Keep the connection until every
                        // in-flight response has been written back.
                        conn.read_done = true;
                        return Ok(());
                    }
                    Ok(n) => {
                        conn.last_activity = Instant::now();
                        match conn.framer.push(&chunk[..n]) {
                            Ok(frames) => self.handle_frames(token, frames),
                            Err(FrameError::LineTooLong { limit }) => {
                                self.overflow_closed.inc();
                                let Some(conn) = self.conns.get_mut(&token) else {
                                    return Ok(());
                                };
                                let seq = conn.next_seq;
                                conn.next_seq += 1;
                                let message =
                                    format!("request line exceeds {limit} bytes without a newline");
                                let response = self.service.reject(&message);
                                let Some(conn) = self.conns.get_mut(&token) else {
                                    return Ok(());
                                };
                                conn.ready.insert(seq, response);
                                conn.closing = true;
                                return Ok(());
                            }
                        }
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => return Err(()),
                }
            }
        }

        /// Routes each framed request: parse errors answered inline,
        /// valid requests submitted to their shard, shed when the
        /// shard's admission budget is full.
        fn handle_frames(&mut self, token: u64, frames: Vec<Frame>) {
            for frame in frames {
                match frame {
                    Frame::HttpGet(path) => {
                        let body = crate::server::http_response(&path, &self.service);
                        if let Some(conn) = self.conns.get_mut(&token) {
                            conn.out.push(body.as_bytes());
                            conn.closing = true; // HTTP/1.0: close after response
                        }
                        return; // headers after the request line are irrelevant
                    }
                    Frame::Line(line) => {
                        let Some(conn) = self.conns.get_mut(&token) else { return };
                        let seq = conn.next_seq;
                        conn.next_seq += 1;
                        match parse_request(&line) {
                            Err(message) => {
                                let response = self.service.reject(&message);
                                if let Some(conn) = self.conns.get_mut(&token) {
                                    conn.ready.insert(seq, response);
                                }
                            }
                            Ok(request) => {
                                if let Err(_job) =
                                    self.shards.try_submit(Job { conn: token, seq, request })
                                {
                                    self.shed_total.inc();
                                    if let Some(conn) = self.conns.get_mut(&token) {
                                        conn.ready.insert(
                                            seq,
                                            overloaded_response("shard admission budget full"),
                                        );
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }

        /// Hands every completed response to its connection's reorder
        /// buffer and settles those connections.
        fn deliver_completions(&mut self) {
            let completions = self.completions.drain();
            if completions.is_empty() {
                return;
            }
            let mut touched = Vec::new();
            for c in completions {
                if let Some(conn) = self.conns.get_mut(&c.conn) {
                    if c.seq == conn.next_flush && conn.ready.is_empty() {
                        // In-order arrival — the common case (a client
                        // with one request outstanding can never be
                        // reordered): straight to the write buffer, no
                        // reorder-map churn.
                        conn.out.push(c.response.as_bytes());
                        conn.out.push(b"\n");
                        conn.next_flush += 1;
                    } else {
                        conn.ready.insert(c.seq, c.response);
                    }
                    if !touched.contains(&c.conn) {
                        touched.push(c.conn);
                    }
                }
            }
            for token in touched {
                self.settle(token);
            }
        }

        /// Post-event bookkeeping for one connection: order-preserving
        /// response flush, opportunistic write, EPOLLOUT toggling, and
        /// close-when-done.
        fn settle(&mut self, token: u64) {
            let Some(conn) = self.conns.get_mut(&token) else { return };
            conn.flush_ready();
            if !conn.out.is_empty() && conn.flush_out().is_err() {
                self.close(token);
                return;
            }
            let Some(conn) = self.conns.get_mut(&token) else { return };
            if conn.out.is_empty() && (conn.closing || (conn.read_done && conn.drained())) {
                self.close(token);
                return;
            }
            // Toggle write interest to match reality: EPOLLOUT only while
            // bytes wait, else a busy socket would wake the loop forever.
            let want_write = !conn.out.is_empty();
            if want_write != conn.want_write {
                let mut mask = EPOLLIN | EPOLLRDHUP;
                if want_write {
                    mask |= EPOLLOUT;
                }
                let fd = conn.stream.as_raw_fd();
                if self.epoll.modify(fd, mask, token).is_ok() {
                    if let Some(conn) = self.conns.get_mut(&token) {
                        conn.want_write = want_write;
                    }
                } else {
                    self.close(token);
                }
            }
        }

        /// Closes connections that have been idle (nothing read, nothing
        /// in flight) past the configured timeout. Runs at most every
        /// `WAIT_TIMEOUT_MS`.
        fn sweep_idle(&mut self) {
            if self.last_sweep.elapsed() < Duration::from_millis(WAIT_TIMEOUT_MS as u64) {
                return;
            }
            self.last_sweep = Instant::now();
            let timeout = self.config.idle_timeout;
            let idle: Vec<u64> = self
                .conns
                .iter()
                .filter(|(_, c)| {
                    c.last_activity.elapsed() > timeout
                        && c.drained()
                        && c.out.is_empty()
                        && !c.closing
                })
                .map(|(&t, _)| t)
                .collect();
            for token in idle {
                self.idle_closed.inc();
                if let Some(conn) = self.conns.get_mut(&token) {
                    let mut line = crate::protocol::error_response(&format!(
                        "idle timeout after {} ms",
                        timeout.as_millis()
                    ));
                    line.push('\n');
                    conn.out.push(line.as_bytes());
                    conn.closing = true;
                }
                self.settle(token);
            }
        }

        /// Removes a connection. Dropping the stream closes the fd,
        /// which also removes it from the epoll set; the explicit delete
        /// just keeps the set tidy when `try_clone`d fds exist.
        fn close(&mut self, token: u64) {
            if let Some(conn) = self.conns.remove(&token) {
                let _ = self.epoll.delete(conn.stream.as_raw_fd());
                self.active.sub(1);
            }
        }
    }
}

#[cfg(not(all(
    target_os = "linux",
    any(target_arch = "x86_64", target_arch = "aarch64"),
    not(miri)
)))]
mod imp {
    use std::io;
    use std::net::SocketAddr;
    use std::sync::Arc;

    use super::ReactorConfig;
    use crate::Service;

    /// Stub on platforms without the epoll reactor (non-Linux, or miri):
    /// [`ReactorServer::start`] fails with `Unsupported`, pointing
    /// callers at the blocking server.
    #[derive(Debug)]
    pub struct ReactorServer {
        never: std::convert::Infallible,
    }

    impl ReactorServer {
        /// Always fails on this platform.
        ///
        /// # Errors
        ///
        /// `Unsupported`, unconditionally.
        pub fn start(
            _service: Arc<Service>,
            _addr: &str,
            _config: ReactorConfig,
        ) -> io::Result<Self> {
            Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "the epoll reactor requires linux on x86_64/aarch64; use the blocking server",
            ))
        }

        /// Unreachable (the stub cannot be constructed).
        pub fn local_addr(&self) -> SocketAddr {
            match self.never {}
        }

        /// Unreachable (the stub cannot be constructed).
        pub fn service(&self) -> &Arc<Service> {
            match self.never {}
        }

        /// Unreachable (the stub cannot be constructed).
        pub fn shutdown(self) {
            match self.never {}
        }
    }
}

pub use imp::ReactorServer;
