//! `rwserve` — the online serving subsystem for random-walk temporal
//! graph embeddings.
//!
//! The paper studies the *offline* pipeline (walk → word2vec → FNN) and
//! notes that in deployment the graph keeps evolving (§VII-B). This crate
//! is the deployment half the paper leaves open: it takes the artifacts
//! the pipeline trains ([`rwalk_core::LinkModel`]) and serves them online
//! while the graph continues to grow.
//!
//! Four pieces, each its own module:
//!
//! - [`store`]: an [`EmbeddingStore`] holding the current
//!   `(embedding table, link-FNN)` pair as one immutable
//!   [`ModelSnapshot`] behind an atomic swap — readers never block and
//!   never observe a torn model (DESIGN.md §9).
//! - [`engine`] + [`batcher`]: the query side. `link_score(u, v)`,
//!   `embedding(u)`, and `topk_neighbors(u, k)` (a parallel brute-force
//!   dot-product scan), with a [`MicroBatcher`] that coalesces concurrent
//!   `link_score` calls into one batched GEMM forward pass.
//! - [`refresh`]: the write side. Streamed edges queue into a
//!   [`Refresher`] that ingests them into the evolving graph, re-embeds
//!   dirty vertices with [`rwalk_core::IncrementalEmbedder`] off the hot
//!   path, and publishes fresh snapshots.
//! - [`protocol`] + [`server`]: a dependency-light JSON-lines protocol
//!   over `std::net` TCP, with handlers scheduled on a [`par::TaskPool`]
//!   and counters surfaced as [`rwalk_core::ServeStats`].
//! - [`reactor`] + [`shard`]: the readiness-driven front end (DESIGN.md
//!   §15). One epoll event loop (raw syscalls, no dependencies) owns
//!   every connection; parsed requests route by consistent hash to N
//!   shard workers whose batched dispatch keeps the [`MicroBatcher`]
//!   full, with bounded admission budgets that shed load as structured
//!   `"overloaded"` errors. The blocking [`Server`] remains available
//!   behind `--io blocking` for A/B comparison.
//!
//! # Examples
//!
//! In-process serving (no socket):
//!
//! ```
//! use std::sync::Arc;
//! use par::ParConfig;
//! use rwalk_core::{Hyperparams, Pipeline};
//! use rwserve::{BatchPolicy, EmbeddingStore, Service};
//!
//! let g = tgraph::gen::preferential_attachment(300, 3, 1).undirected(true).build();
//! let model = Pipeline::new(Hyperparams::paper_optimal().quick_test())
//!     .train_link_model(&g)
//!     .unwrap();
//! let store = Arc::new(EmbeddingStore::new(model.emb, model.mlp));
//! let svc = Service::new(store, ParConfig::with_threads(2), BatchPolicy::default());
//! let response = svc.handle_line(r#"{"op":"link_score","u":3,"v":7}"#);
//! assert!(response.contains("\"ok\":true"));
//! ```

pub mod batcher;
pub mod engine;
pub mod json;
pub mod metrics;
pub mod protocol;
pub mod reactor;
pub mod refresh;
pub mod server;
pub mod service;
pub mod shard;
pub mod store;

pub use batcher::{BatchPolicy, MicroBatcher};
pub use engine::{QueryEngine, QueryError};
pub use metrics::Metrics;
pub use reactor::{ReactorConfig, ReactorServer};
pub use refresh::Refresher;
pub use server::Server;
pub use service::Service;
pub use shard::ShardPool;
pub use store::{EmbeddingStore, ModelSnapshot};
